package repro

// One testing.B benchmark per experiment (E1-E8 in DESIGN.md). Each bench
// exercises the experiment's core operation at a fixed size so that
// `go test -bench=. -benchmem` reports comparable per-operation costs;
// cmd/benchrunner prints the full experiment tables with parameter sweeps.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bom"
	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ingest"
	"repro/internal/latency"
	"repro/internal/provenance"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xom"
)

// mustHiring builds the hiring domain or aborts the benchmark.
func mustHiring(b *testing.B) *workload.Domain {
	b.Helper()
	d, err := workload.Hiring()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// loadedSystem builds a system pre-loaded with n fully visible traces.
func loadedSystem(b *testing.B, d *workload.Domain, n int, cfg core.Config) (*core.System, *workload.SimResult) {
	b.Helper()
	sys, err := core.New(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	res := d.Simulate(workload.SimOptions{Seed: 99, Traces: n, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		b.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		b.Fatal(err)
	}
	return sys, res
}

// BenchmarkE1_Table1Codec measures the Table-1 row codec: encoding a
// provenance node to its XML row and decoding it back.
func BenchmarkE1_Table1Codec(b *testing.B) {
	d := mustHiring(b)
	sys, _ := loadedSystem(b, d, 10, core.Config{})
	app := sys.Store.AppIDs()[0]
	rows := sys.Store.RowsForApp(app)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := rows[i%len(rows)]
		n, e, err := store.DecodeRow(row)
		if err != nil {
			b.Fatal(err)
		}
		if n != nil {
			if _, err := store.EncodeNode(n); err != nil {
				b.Fatal(err)
			}
		} else if _, err := store.EncodeEdge(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_TraceBuild measures building one Fig-1 trace end to end:
// simulate, capture through the recorder pipeline, correlate.
func BenchmarkE2_TraceBuild(b *testing.B) {
	d := mustHiring(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(d, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		res := d.Simulate(workload.SimOptions{Seed: int64(i), Traces: 1, Visibility: 1.0})
		if err := sys.Ingest(res.Events); err != nil {
			b.Fatal(err)
		}
		if err := sys.CorrelateAll(); err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}

// BenchmarkE3_VisibilitySweep measures one full detection decision at 70%
// visibility: evaluating all three controls on one trace, rules vs the
// integrated hand-coded baseline.
func BenchmarkE3_VisibilitySweep(b *testing.B) {
	d := mustHiring(b)
	res := d.Simulate(workload.SimOptions{Seed: 5, Traces: 500, ViolationRate: 0.3, Visibility: 0.7})
	sys, err := core.New(d, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Ingest(res.Events); err != nil {
		b.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		b.Fatal(err)
	}
	apps := sys.Store.AppIDs()

	b.Run("rules", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Registry.Check(apps[i%len(apps)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		h := baseline.NewHiring(baseline.ScopeIntegrated())
		for _, ev := range res.Events {
			h.Observe(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := h.Verdicts(apps[i%len(apps)]); len(v) != 3 {
				b.Fatal("bad verdicts")
			}
		}
	})
}

// BenchmarkE4_AuthoringPipeline measures the Fig-3 steps: XOM generation,
// verbalization, and compiling the paper's control against the vocabulary.
func BenchmarkE4_AuthoringPipeline(b *testing.B) {
	d := mustHiring(b)
	controlText := d.Controls[0].Text
	b.Run("verbalize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			om, err := xom.FromModel(d.Model)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bom.Verbalize(om, bom.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rules.Compile(controlText, d.Vocab); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5_Scale measures per-trace checking and indexed point queries
// on a 10k-trace store, with the scan ablation alongside.
func BenchmarkE5_Scale(b *testing.B) {
	d := mustHiring(b)
	sys, _ := loadedSystem(b, d, 10000, core.Config{})
	apps := sys.Store.AppIDs()
	b.Run("check-one-trace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Registry.Check(apps[i%len(apps)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	target := provenance.String("REQ-hiring-005000")
	q := query.Query{Type: "jobRequisition", Preds: []query.Pred{
		{Field: "reqID", Op: query.Eq, Value: target},
	}}
	b.Run("point-query-indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sys.Query.Run(q)
			if err != nil || len(res) != 1 {
				b.Fatalf("res=%d err=%v", len(res), err)
			}
		}
	})
	b.Run("point-query-scan", func(b *testing.B) {
		scanSys, _ := loadedSystem(b, d, 10000, core.Config{DisableIndexes: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := scanSys.Query.Run(q)
			if err != nil || len(res) != 1 {
				b.Fatalf("res=%d err=%v", len(res), err)
			}
		}
	})
}

// BenchmarkE6_Continuous measures the incremental path: one event arriving
// at a loaded store, triggering re-correlation and re-checking of its
// trace.
func BenchmarkE6_Continuous(b *testing.B) {
	d := mustHiring(b)
	sys, _ := loadedSystem(b, d, 2000, core.Config{})
	apps := sys.Store.AppIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := apps[i%len(apps)]
		// The incremental unit of work: re-correlate + re-check one trace.
		if err := sys.CorrelateTrace(app); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Registry.Check(app); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTouchNodes resolves one updatable node per trace; re-writing it
// emits one change-feed event that dirties the trace.
func benchTouchNodes(b *testing.B, sys *core.System, apps []string) []*provenance.Node {
	b.Helper()
	touch := make([]*provenance.Node, len(apps))
	for i, app := range apps {
		for _, r := range sys.Store.RowsForApp(app) {
			if n := sys.Store.Node(r.ID); n != nil {
				touch[i] = n
				break
			}
		}
		if touch[i] == nil {
			b.Fatalf("no touchable node for %s", app)
		}
	}
	return touch
}

// BenchmarkE6b_ContinuousParallel measures the sharded continuous-checking
// engine against the serial baseline on the E6 workload: an event stream
// touching every trace of a loaded hiring store in bursts, each event
// demanding an eventually up-to-date verdict for its trace.
//
//   - serial: the seed's single-goroutine Checker semantics — every event
//     triggers a full re-check of its trace, one at a time, no
//     coalescing, no cache.
//   - engine/workers=N: the sharded engine fed the identical stream — N
//     hash-sharded workers with dirty-set coalescing — measured to
//     quiescence (every trace's final state checked). The result cache is
//     disabled so both variants pay full evaluation cost per check; the
//     win measured here is coalescing plus cross-trace parallelism.
//   - feed/workers=N: the full production stack for context — the same
//     events as real store writes flowing through the change feed, result
//     cache live. Write cost dominates this variant; it bounds end-to-end
//     ingest throughput rather than checking throughput.
func BenchmarkE6b_ContinuousParallel(b *testing.B) {
	d := mustHiring(b)
	const traces = 256
	const burst = 4 // events per trace per round

	b.Run("serial", func(b *testing.B) {
		sys, _ := loadedSystem(b, d, traces, core.Config{DisableCheckCache: true})
		apps := sys.Store.AppIDs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, app := range apps {
				for k := 0; k < burst; k++ {
					if _, err := sys.Registry.Check(app); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(traces*burst*b.N)/b.Elapsed().Seconds(), "events/s")
	})

	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("engine/workers=%d", w), func(b *testing.B) {
			sys, _ := loadedSystem(b, d, traces, core.Config{DisableCheckCache: true})
			apps := sys.Store.AppIDs()
			ch := controls.NewCheckerOpts(sys.Registry, nil, controls.CheckerOptions{Workers: w})
			ch.Start()
			defer ch.Stop()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, app := range apps {
					for k := 0; k < burst; k++ {
						ch.MarkDirty(app)
					}
				}
				ch.WaitFor(sys.Store.Stats().Seq)
			}
			b.ReportMetric(float64(traces*burst*b.N)/b.Elapsed().Seconds(), "events/s")
			st := ch.Stats()
			b.ReportMetric(float64(st.ChecksRun)/float64(b.N), "checks/round")
		})
	}

	b.Run("feed/workers=4", func(b *testing.B) {
		sys, _ := loadedSystem(b, d, traces, core.Config{})
		apps := sys.Store.AppIDs()
		touch := benchTouchNodes(b, sys, apps)
		ch := controls.NewCheckerOpts(sys.Registry, nil, controls.CheckerOptions{Workers: 4})
		ch.Start()
		defer ch.Stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range touch {
				for k := 0; k < burst; k++ {
					if err := sys.Store.UpdateNode(n); err != nil {
						b.Fatal(err)
					}
				}
			}
			ch.WaitFor(sys.Store.Stats().Seq)
		}
		b.ReportMetric(float64(traces*burst*b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkE7_VocabScale measures compiling the paper control against a
// 1000-phrase vocabulary (compare with BenchmarkE4's domain-sized one).
func BenchmarkE7_VocabScale(b *testing.B) {
	tbl, err := experiments.E7VocabScale([]int{1000})
	if err != nil {
		b.Fatal(err)
	}
	_ = tbl
	// The table run above validates correctness; the loop below isolates
	// the compile cost at that vocabulary size.
	d := mustHiring(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.Compile(d.Controls[0].Text, d.Vocab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_ChangeCost measures deploying a new control on a loaded
// system — the paper's "no application change" operation.
func BenchmarkE8_ChangeCost(b *testing.B) {
	d := mustHiring(b)
	sys, _ := loadedSystem(b, d, 500, core.Config{})
	text := `
definitions
  set 'the request' to a job requisition ;
if the candidate list of 'the request' exists
then the internal control is satisfied ;
`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-control-%d", i)
		if _, err := sys.Registry.Deploy(id, "bench", text); err != nil {
			b.Fatal(err)
		}
		if err := sys.Registry.Remove(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_GroupCommit measures synced ingest throughput (experiment
// E9 in DESIGN.md §4.2): every acknowledged write is fsynced, and the
// group-commit pipeline lets concurrent writers share one fsync where the
// per-append baseline pays one each. The grouped/per-append ratio at 16
// writers is the experiment's headline number.
func BenchmarkE9_GroupCommit(b *testing.B) {
	d := mustHiring(b)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"grouped", false}, {"per-append", true}} {
		for _, writers := range []int{1, 4, 16} {
			mode, writers := mode, writers
			b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
				st, err := store.Open(store.Options{
					Dir: b.TempDir(), Model: d.Model, Sync: true,
					DisableGroupCommit: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := w; i < b.N; i += writers {
							n := &provenance.Node{
								ID: fmt.Sprintf("n%d-%d", w, i), Class: provenance.ClassData,
								Type: "jobRequisition", AppID: fmt.Sprintf("A%d", w),
								Attrs: map[string]provenance.Value{
									"reqID": provenance.String(fmt.Sprintf("REQ-%d-%d", w, i)),
								},
							}
							if err := st.PutNode(n); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
				ds := st.Durability()
				if ds.Fsyncs > 0 {
					b.ReportMetric(float64(b.N)/float64(ds.Fsyncs), "events/fsync")
				}
			})
		}
	}
}

// BenchmarkE10_ReadWriteMix measures the MVCC snapshot read path (D7)
// against the shared-mutex baseline (-no-snapshots ablation) under
// concurrent write pressure: 8 reader goroutines drive compliance checks
// over a loaded hiring store while 0, 4 or 16 background writers commit
// enrichment updates through the group-commit pipeline as fast as they
// can. Reported per variant: aggregate check throughput (checks/s), the
// p99 single-check latency (p99-us), and the write throughput the
// background writers sustained alongside (writes/s).
//
// With snapshots, every check runs against an immutable published
// snapshot after one atomic pointer load, so check latency is flat in
// writer count; under the ablation readers and writers share the state
// RWMutex and checks stall behind every commit.
func BenchmarkE10_ReadWriteMix(b *testing.B) {
	d := mustHiring(b)
	const traces = 256
	const readerGoroutines = 8
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"snapshot", false}, {"mutex", true}} {
		for _, writers := range []int{0, 4, 16} {
			mode, writers := mode, writers
			b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
				sys, _ := loadedSystem(b, d, traces, core.Config{
					Dir: b.TempDir(), DisableCheckCache: true,
					DisableSnapshots: mode.disable,
				})
				apps := sys.Store.AppIDs()

				// Background writers: each loops enrichment updates on a
				// node of its own trace until the readers finish.
				var touch []*provenance.Node
				if writers > 0 {
					touch = benchTouchNodes(b, sys, apps[:writers])
				}
				stop := make(chan struct{})
				var writes atomic.Int64
				var wwg sync.WaitGroup
				for w := 0; w < writers; w++ {
					w := w
					wwg.Add(1)
					go func() {
						defer wwg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							if err := sys.Store.UpdateNode(touch[w]); err != nil {
								b.Error(err)
								return
							}
							writes.Add(1)
						}
					}()
				}

				var remaining atomic.Int64
				remaining.Store(int64(b.N))
				lat := make([][]time.Duration, readerGoroutines)
				var rwg sync.WaitGroup
				b.ResetTimer()
				for r := 0; r < readerGoroutines; r++ {
					r := r
					rwg.Add(1)
					go func() {
						defer rwg.Done()
						samples := make([]time.Duration, 0, b.N/readerGoroutines+8)
						for {
							i := remaining.Add(-1)
							if i < 0 {
								break
							}
							app := apps[int(i)%len(apps)]
							t0 := time.Now()
							if _, err := sys.Registry.Check(app); err != nil {
								b.Error(err)
								return
							}
							samples = append(samples, time.Since(t0))
						}
						lat[r] = samples
					}()
				}
				rwg.Wait()
				b.StopTimer()
				close(stop)
				wwg.Wait()

				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "checks/s")
				if writers > 0 {
					b.ReportMetric(float64(writes.Load())/b.Elapsed().Seconds(), "writes/s")
				}
				var all latency.Digest
				for _, s := range lat {
					all.AddAll(s)
				}
				if all.Count() > 0 {
					b.ReportMetric(float64(all.P50().Microseconds()), "p50-us")
					b.ReportMetric(float64(all.P99().Microseconds()), "p99-us")
				}
			})
		}
	}
}

// BenchmarkE12_AsyncIngest measures experiment E12: the asynchronous
// ingestion gateway (D9) against the synchronous ingest baseline
// (-sync-ingest ablation) on a durable, fsynced store with continuous
// correlation/checking live in both modes. Each benchmark iteration
// replays the same simulated hiring event stream — split into 64-event
// client batches and striped across W concurrent writers — into a fresh
// system (fresh systems keep every iteration's writes real; replaying
// into a loaded store would be absorbed as duplicate rows). Sync writers
// pay the full group commit per call; async writers offer batches to the
// bounded gateway under idempotency keys, back off on 429, and the
// iteration ends only when the gateway has drained every admitted event.
// Reported: durable events/s, p99 admission latency (the admission call
// is the commit itself in sync mode), and shed 429s per op for async.
func BenchmarkE12_AsyncIngest(b *testing.B) {
	d := mustHiring(b)
	const traces = 200
	res := d.Simulate(workload.SimOptions{Seed: 12, Traces: traces, ViolationRate: 0.3, Visibility: 1.0})
	batches := res.EventBatches(64)
	total := len(res.Events)
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		for _, writers := range []int{4, 16} {
			mode, writers := mode, writers
			b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
				var admit latency.Digest
				var shed atomic.Uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sys, err := core.New(d, core.Config{
						Dir: b.TempDir(), Sync: true, Continuous: true,
						DisableAsyncIngest: !mode.async,
						IngestQueueDepth:   512,
					})
					if err != nil {
						b.Fatal(err)
					}
					lat := make([][]time.Duration, writers)
					b.StartTimer()
					var wg sync.WaitGroup
					for w := 0; w < writers; w++ {
						w := w
						wg.Add(1)
						go func() {
							defer wg.Done()
							samples := make([]time.Duration, 0, len(batches)/writers+1)
							for j := w; j < len(batches); j += writers {
								if !mode.async {
									t0 := time.Now()
									if err := sys.Ingest(batches[j]); err != nil {
										b.Error(err)
										return
									}
									samples = append(samples, time.Since(t0))
									continue
								}
								key := fmt.Sprintf("e12-%d-%d", w, j)
								for {
									t0 := time.Now()
									_, err := sys.Gateway.Offer(key, batches[j])
									var ov *ingest.OverloadError
									if errors.As(err, &ov) {
										shed.Add(1)
										time.Sleep(ov.RetryAfter)
										continue
									}
									if err != nil {
										b.Error(err)
										return
									}
									samples = append(samples, time.Since(t0))
									break
								}
							}
							lat[w] = samples
						}()
					}
					wg.Wait()
					if mode.async {
						ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
						if err := sys.Gateway.WaitIdle(ctx); err != nil {
							b.Fatal(err)
						}
						cancel()
					}
					b.StopTimer()
					for _, s := range lat {
						admit.AddAll(s)
					}
					sys.Close()
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "events/s")
				if admit.Count() > 0 {
					b.ReportMetric(float64(admit.P99().Microseconds()), "p99-admit-us")
				}
				if mode.async {
					b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/op")
				}
			})
		}
	}
}

// BenchmarkE11_IndexedRuleEval measures experiment E11: index-accelerated
// rule evaluation versus the full-scan ablation (-no-rule-indexes). One
// hiring trace is padded to ~1k nodes with person resources — bystander
// records a binder's type posting list skips but a linear scan must
// touch — and 16 controls (the domain's three rule texts cycled under
// distinct IDs) are checked against it with the result cache off, so
// every iteration pays the full evaluation path. Indexed evaluation
// combines the type index (candidate enumeration in O(matches)), the
// binder planner, and cross-control binding reuse (identical binder
// fingerprints computed once per trace version); the ablation rescans the
// shard per binder per control.
func BenchmarkE11_IndexedRuleEval(b *testing.B) {
	d := mustHiring(b)
	const nControls = 16
	const traceNodes = 1000
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"indexed", false}, {"scan", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			sys, _ := loadedSystem(b, d, 4, core.Config{
				DisableCheckCache:  true,
				DisableRuleIndexes: mode.disable,
			})
			app := sys.Store.AppIDs()[0]
			var have int
			if err := sys.Store.View(func(g *provenance.Graph) error {
				have = len(g.Nodes(provenance.NodeFilter{AppID: app}))
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			for i := have; i < traceNodes; i++ {
				err := sys.Store.PutNode(&provenance.Node{
					ID: fmt.Sprintf("e11-pad-%04d", i), Class: provenance.ClassResource,
					Type: "person", AppID: app,
					Attrs: map[string]provenance.Value{
						"name":  provenance.String(fmt.Sprintf("Pad Person %d", i)),
						"email": provenance.String(fmt.Sprintf("pad%d@example.com", i)),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, cp := range sys.Registry.List() {
				if err := sys.Registry.Remove(cp.ID); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < nControls; i++ {
				cs := d.Controls[i%len(d.Controls)]
				if _, err := sys.Registry.Deploy(fmt.Sprintf("e11-%02d", i), cs.Name, cs.Text); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Registry.Check(app); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			bs := sys.Registry.BindingStats()
			if total := bs.Hits + bs.Misses; total > 0 {
				b.ReportMetric(bs.ReuseRatio(), "reuse-ratio")
			}
		})
	}
}
