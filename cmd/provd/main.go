// Command provd serves the business provenance system over HTTP: event
// ingestion (recorder clients post application events), internal control
// deployment in business vocabulary, compliance queries, dashboard KPIs,
// Table-1 row inspection and provenance graph navigation.
//
// Usage:
//
//	provd -domain hiring -addr :8341 [-dir /var/lib/provd] [-sync] [-flush-window 2ms]
//	      [-continuous] [-materialize] [-workers N]
//
// Endpoints:
//
//	POST   /events            ingest a JSON array of application events
//	GET    /controls          list deployed controls
//	POST   /controls          deploy {"id","name","text"}
//	DELETE /controls?id=X     remove a control
//	GET    /compliance[?app=] check one trace or all traces
//	GET    /dashboard         per-control KPIs
//	GET    /violations?n=10   recent violation feed
//	GET    /graph?app=X       one trace's nodes and edges
//	GET    /rows?app=X        one trace's Table-1 rows
//	GET    /query?type=&field=&value=[&explain=1]  typed node query
//	GET    /stats             store/pipeline statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8341", "listen address")
	domainName := flag.String("domain", "hiring", "process domain: hiring, procurement or claims")
	dir := flag.String("dir", "", "store directory (empty = in-memory)")
	continuous := flag.Bool("continuous", false, "correlate and check incrementally on the change feed")
	materialize := flag.Bool("materialize", false, "materialize control points into the graph (Fig 2)")
	workers := flag.Int("workers", 0, "continuous-checking shard workers and CheckAll fan-out (0 = GOMAXPROCS)")
	sync := flag.Bool("sync", false, "fsync before acknowledging writes (group-committed; needs -dir)")
	flushWindow := flag.Duration("flush-window", 0, "max time a write may wait to share a group commit (0 = opportunistic)")
	noSnapshots := flag.Bool("no-snapshots", false, "disable MVCC snapshot reads; readers share a mutex with writers (E10 ablation)")
	noRuleIndexes := flag.Bool("no-rule-indexes", false, "disable index-accelerated rule evaluation; binders scan full trace shards (E11 ablation)")
	flag.Parse()
	if *sync && *dir == "" {
		log.Fatal("provd: -sync requires -dir (an in-memory store has nothing to fsync)")
	}

	domain, err := buildDomain(*domainName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(domain, core.Config{
		Dir: *dir, Continuous: *continuous, Materialize: *materialize,
		Workers: *workers, Sync: *sync, FlushWindow: *flushWindow,
		DisableSnapshots:   *noSnapshots,
		DisableRuleIndexes: *noRuleIndexes,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	log.Printf("provd: domain %s, %d controls deployed, listening on %s",
		domain.Name, len(domain.Controls), *addr)
	srv := httpapi.NewServer(sys, *continuous)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildDomain(name string) (*workload.Domain, error) {
	switch name {
	case "hiring":
		return workload.Hiring()
	case "procurement":
		return workload.Procurement()
	case "claims":
		return workload.Claims()
	default:
		return nil, fmt.Errorf("unknown domain %q (want hiring, procurement or claims)", name)
	}
}
