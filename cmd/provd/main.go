// Command provd serves the business provenance system over HTTP: event
// ingestion (recorder clients post application events), internal control
// deployment in business vocabulary, compliance queries, dashboard KPIs,
// Table-1 row inspection and provenance graph navigation.
//
// Usage:
//
//	provd -domain hiring -addr :8341 [-dir /var/lib/provd] [-sync] [-flush-window 2ms]
//	      [-continuous] [-materialize] [-workers N]
//	      [-ingest-shards N] [-ingest-queue N] [-ingest-batch N]
//	      [-ingest-window D] [-sync-ingest]
//	      [-segment-cold N] [-segment-cache-mb N] [-no-tiering]
//	      [-compact-every D] [-window-tick D]
//
// Event ingestion is asynchronous by default: POST /events admits the
// batch into the bounded ingestion gateway and answers 202 with an ack
// token (or 429 + Retry-After under overload). -sync-ingest restores the
// old synchronous path. On SIGINT/SIGTERM the server stops accepting
// work, drains the admitted backlog, and exits cleanly.
//
// Endpoints:
//
//	POST   /events            admit a JSON array of application events (202
//	                          ack; ?sync=1 forces synchronous ingestion)
//	GET    /ingest/ack?token= poll an admitted batch's status
//	GET    /ingest/stats      ingestion gateway counters
//	GET    /controls          list deployed controls
//	POST   /controls          deploy {"id","name","text"[,"shadow":true]}
//	POST   /controls/X/promote   swap X's shadow candidate live
//	POST   /controls/X/rollback  discard X's shadow candidate
//	DELETE /controls?id=X     remove a control
//	GET    /tenants           list tenants with quotas and admission stats
//	POST   /tenants           create or retune {"id","name","weight","quota"}
//	GET    /compliance[?app=] check one trace or all traces
//	GET    /dashboard         per-control KPIs
//	GET    /violations?n=10   recent violation feed
//	GET    /graph?app=X       one trace's nodes and edges
//	GET    /rows?app=X        one trace's Table-1 rows
//	GET    /query?type=&field=&value=[&explain=1]  typed node query
//	GET    /segments          sealed cold-tier segments with zone maps
//	GET    /stats             store/pipeline statistics
//
// /graph and /compliance accept ?asof=N (a store sequence) for
// point-in-time audit reads against the tiered store's history.
//
// Every data endpoint accepts an X-Tenant header scoping the request to
// one tenant's namespace; without it the operator sees the global view.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8341", "listen address")
	domainName := flag.String("domain", "hiring", "process domain: hiring, procurement or claims")
	dir := flag.String("dir", "", "store directory (empty = in-memory)")
	continuous := flag.Bool("continuous", false, "correlate and check incrementally on the change feed")
	materialize := flag.Bool("materialize", false, "materialize control points into the graph (Fig 2)")
	workers := flag.Int("workers", 0, "continuous-checking shard workers and CheckAll fan-out (0 = GOMAXPROCS)")
	sync := flag.Bool("sync", false, "fsync before acknowledging writes (group-committed; needs -dir)")
	flushWindow := flag.Duration("flush-window", 0, "max time a write may wait to share a group commit (0 = opportunistic)")
	noSnapshots := flag.Bool("no-snapshots", false, "disable MVCC snapshot reads; readers share a mutex with writers (E10 ablation)")
	noRuleIndexes := flag.Bool("no-rule-indexes", false, "disable index-accelerated rule evaluation; binders scan full trace shards (E11 ablation)")
	noDeltaEval := flag.Bool("no-delta-eval", false, "disable delta-driven control checking; every dirty trace re-evaluates all controls (E14 ablation)")
	noFairShare := flag.Bool("no-fair-share", false, "disable weighted fair-share checker scheduling; dirty traces drain through one FIFO regardless of tenant (E17 ablation)")
	ingestShards := flag.Int("ingest-shards", 0, "ingestion gateway admission queues, hashed by trace (0 = default)")
	ingestQueue := flag.Int("ingest-queue", 0, "events each admission queue holds before shedding load with 429 (0 = default)")
	ingestBatch := flag.Int("ingest-batch", 0, "events coalesced per store commit by the gateway (0 = default)")
	ingestWindow := flag.Duration("ingest-window", 0, "max time an undersized gateway batch waits for company (0 = opportunistic)")
	syncIngest := flag.Bool("sync-ingest", false, "disable the async ingestion gateway; POST /events ingests synchronously (E12 ablation)")
	segmentCold := flag.Uint64("segment-cold", 4096, "commits a trace may sit untouched before compaction seals it into a cold segment (0 = never demote; needs -dir)")
	segmentCacheMB := flag.Int("segment-cache-mb", 0, "sealed-segment block cache size in MiB (0 = default 32)")
	noTiering := flag.Bool("no-tiering", false, "disable tiered storage; every trace stays in memory (E15 ablation)")
	noSegmentGC := flag.Bool("no-segment-gc", false, "keep sealed segments whose traces were all promoted back or superseded; preserves full as-of history at the cost of disk")
	compactEvery := flag.Duration("compact-every", time.Minute, "compaction cadence: demotes cold traces and shrinks the log, skipping idle ticks (0 = never; needs -dir)")
	windowTick := flag.Duration("window-tick", time.Minute, "cadence for surfacing expired control windows without a triggering commit (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain admitted events on shutdown")
	flag.Parse()
	if *sync && *dir == "" {
		log.Fatal("provd: -sync requires -dir (an in-memory store has nothing to fsync)")
	}

	domain, err := buildDomain(*domainName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(domain, core.Config{
		Dir: *dir, Continuous: *continuous, Materialize: *materialize,
		Workers: *workers, Sync: *sync, FlushWindow: *flushWindow,
		DisableSnapshots:   *noSnapshots,
		DisableRuleIndexes: *noRuleIndexes,
		DisableDeltaEval:   *noDeltaEval,
		DisableFairShare:   *noFairShare,
		IngestShards:       *ingestShards,
		IngestQueueDepth:   *ingestQueue,
		IngestMaxBatch:     *ingestBatch,
		IngestFlushWindow:  *ingestWindow,
		DisableAsyncIngest: *syncIngest,
		DisableTiering:     *noTiering,
		DisableSegmentGC:   *noSegmentGC,
		SegmentColdAfter:   *segmentCold,
		SegmentCacheMB:     *segmentCacheMB,
		CompactEvery:       *compactEvery,
		WindowTick:         *windowTick,
	})
	if err != nil {
		log.Fatal(err)
	}

	mode := "async ingest"
	if *syncIngest {
		mode = "sync ingest"
	}
	log.Printf("provd: domain %s, %d controls deployed, %s, listening on %s",
		domain.Name, len(domain.Controls), mode, *addr)
	srv := &http.Server{Addr: *addr, Handler: httpapi.NewServer(sys, *continuous)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		sys.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, let in-flight
	// requests finish, then drain the ingestion gateway so every admitted
	// event reaches the store before the process exits.
	log.Printf("provd: shutting down, draining ingest backlog (max %v)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("provd: http shutdown: %v", err)
	}
	if sys.Gateway != nil {
		if err := sys.Gateway.Drain(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("provd: ingest drain: %v", err)
		}
	}
	if err := sys.Close(); err != nil {
		log.Printf("provd: close: %v", err)
	}
	log.Print("provd: bye")
}

func buildDomain(name string) (*workload.Domain, error) {
	switch name {
	case "hiring":
		return workload.Hiring()
	case "procurement":
		return workload.Procurement()
	case "claims":
		return workload.Claims()
	default:
		return nil, fmt.Errorf("unknown domain %q (want hiring, procurement or claims)", name)
	}
}
