package main

import "testing"

func TestBuildDomain(t *testing.T) {
	for _, name := range []string{"hiring", "procurement", "claims"} {
		d, err := buildDomain(name)
		if err != nil {
			t.Fatalf("buildDomain(%s): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("buildDomain(%s).Name = %s", name, d.Name)
		}
		if len(d.Controls) == 0 {
			t.Errorf("%s ships no controls", name)
		}
	}
	if _, err := buildDomain("nope"); err == nil {
		t.Error("unknown domain accepted")
	}
}
