// Command benchrunner regenerates every experiment table of the
// reproduction (E1-E8, see DESIGN.md and EXPERIMENTS.md) and prints them
// to stdout.
//
// Usage:
//
//	benchrunner [-quick] [-only E3,E5]
//
// -quick shrinks the workloads for a fast smoke run; -only selects a
// comma-separated subset of experiment IDs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E3,E5)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	failed := 0
	for _, r := range experiments.All(*quick) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tbl, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): FAILED: %v\n", r.ID, r.Name, err)
			failed++
			continue
		}
		fmt.Print(tbl.Render())
		fmt.Printf("   (%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
