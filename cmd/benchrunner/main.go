// Command benchrunner regenerates every experiment table of the
// reproduction (E1-E8 and E11-E12, see DESIGN.md and EXPERIMENTS.md) and
// prints them to stdout.
//
// Usage:
//
//	benchrunner [-quick] [-only E3,E5] [-json BENCH.json]
//
// -quick shrinks the workloads for a fast smoke run; -only selects a
// comma-separated subset of experiment IDs; -json additionally writes
// the tables (IDs, columns, rows, notes, wall time) to a machine-readable
// BENCH json file for trend tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchTable is the JSON shape of one experiment table.
type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Paper   string     `json:"paper,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Millis  int64      `json:"millis"`
}

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E3,E5)")
	jsonPath := flag.String("json", "", "also write results to this BENCH json file")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	failed := 0
	var out []benchTable
	for _, r := range experiments.All(*quick) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tbl, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): FAILED: %v\n", r.ID, r.Name, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Print(tbl.Render())
		fmt.Printf("   (%s completed in %s)\n\n", r.ID, elapsed.Round(time.Millisecond))
		out = append(out, benchTable{
			ID: tbl.ID, Title: tbl.Title, Paper: tbl.Paper,
			Columns: tbl.Columns, Rows: tbl.Rows, Notes: tbl.Notes,
			Millis: elapsed.Milliseconds(),
		})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
