package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"time"

	"repro/internal/events"
	"repro/internal/ingest"
	"repro/internal/workload"
)

// client talks to a provd instance.
type client struct {
	base   string
	tenant string // X-Tenant scope; empty = the operator's global view
	out    io.Writer
	in     io.Reader // stdin for `ingest`; injectable for tests
}

// do issues one request with the client's tenant scope attached.
func (c *client) do(method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	return http.DefaultClient.Do(req)
}

// getJSON issues a GET and decodes the JSON response into v.
func (c *client) getJSON(path string, v any) error {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, v)
}

// postJSON issues a POST with a JSON body and decodes the response into v.
func (c *client) postJSON(path string, body, v any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.do(http.MethodPost, path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, v)
}

func decodeResponse(resp *http.Response, v any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("server: %s", apiErr.Error)
		}
		return fmt.Errorf("server returned %s", resp.Status)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(raw, v)
}

// wire types mirror provd's handlers.
type eventWire struct {
	Source    string            `json:"source"`
	Type      string            `json:"type"`
	AppID     string            `json:"appId"`
	Timestamp time.Time         `json:"timestamp"`
	Payload   map[string]string `json:"payload"`
}

type controlWire struct {
	ID            string `json:"id"`
	Name          string `json:"name"`
	Text          string `json:"text,omitempty"`
	Version       int    `json:"version,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Shadow        bool   `json:"shadow,omitempty"`
	ShadowVersion int    `json:"shadowVersion,omitempty"`
}

type outcomeWire struct {
	Control string   `json:"control"`
	AppID   string   `json:"appId"`
	Verdict string   `json:"verdict"`
	Alerts  []string `json:"alerts"`
}

func (c *client) cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(c.out)
	domainName := fs.String("domain", "hiring", "hiring, procurement or claims")
	traces := fs.Int("traces", 100, "process instances to play")
	violations := fs.Float64("violations", 0.3, "seeded violation rate")
	visibility := fs.Float64("visibility", 1.0, "capture probability of unmanaged events")
	seed := fs.Int64("seed", 1, "simulation seed")
	async := fs.Bool("async", false, "ship through the spooling recorder (admission control, retries) instead of one synchronous POST")
	batch := fs.Int("batch", 128, "recorder batch size (with -async)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d *workload.Domain
	var err error
	switch *domainName {
	case "hiring":
		d, err = workload.Hiring()
	case "procurement":
		d, err = workload.Procurement()
	case "claims":
		d, err = workload.Claims()
	default:
		return fmt.Errorf("unknown domain %q", *domainName)
	}
	if err != nil {
		return err
	}
	res := d.Simulate(workload.SimOptions{
		Seed: *seed, Traces: *traces,
		ViolationRate: *violations, Visibility: *visibility,
	})
	seededViolations := 0
	for _, tr := range res.Truth {
		if tr.Violation {
			seededViolations++
		}
	}
	if *async {
		if err := c.ship(res.Events, *batch); err != nil {
			return err
		}
	} else {
		evs := make([]eventWire, len(res.Events))
		for i, ev := range res.Events {
			evs[i] = eventWire{Source: ev.Source, Type: ev.Type, AppID: ev.AppID,
				Timestamp: ev.Timestamp, Payload: ev.Payload}
		}
		var stats map[string]any
		if err := c.postJSON("/events?sync=1", evs, &stats); err != nil {
			return err
		}
	}
	fmt.Fprintf(c.out, "ingested %d events from %d traces (%d seeded violations, %d events lost to visibility)\n",
		len(res.Events), *traces, seededViolations, res.Dropped)
	return nil
}

// ship delivers events through the spooling recorder: spool, batch,
// retry with backoff until every batch is applied.
func (c *client) ship(evs []events.AppEvent, batch int) error {
	rec := ingest.NewRecorder(ingest.RecorderConfig{MaxBatch: batch},
		&ingest.HTTPSender{Base: c.base})
	for _, ev := range evs {
		for {
			err := rec.Record(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ingest.ErrSpoolFull) {
				rec.Close()
				return err
			}
			time.Sleep(5 * time.Millisecond) // spool full: natural backpressure
		}
	}
	if err := rec.Close(); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Fprintf(c.out, "shipped %d events in %d batches (%d retries: %d overloads, %d transport errors)\n",
		st.Enqueued, st.Applied, st.Retries, st.Overloads, st.TransportErrors)
	for _, ee := range rec.EventErrors() {
		fmt.Fprintf(c.out, "event rejected (batch index %d): %s\n", ee.Index, ee.Err)
	}
	return nil
}

// cmdIngest streams NDJSON application events from stdin through the
// spooling recorder — the shape a real recorder client integration takes.
func (c *client) cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	fs.SetOutput(c.out)
	batch := fs.Int("batch", 128, "recorder batch size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := c.in
	if in == nil {
		in = os.Stdin
	}
	rec := ingest.NewRecorder(ingest.RecorderConfig{MaxBatch: *batch},
		&ingest.HTTPSender{Base: c.base})
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var w eventWire
		if err := json.Unmarshal(raw, &w); err != nil {
			rec.Close()
			return fmt.Errorf("stdin line %d: %v", line, err)
		}
		ev := events.AppEvent{Source: w.Source, Type: w.Type, AppID: w.AppID,
			Timestamp: w.Timestamp, Payload: w.Payload}
		for {
			err := rec.Record(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ingest.ErrSpoolFull) {
				rec.Close()
				return err
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := sc.Err(); err != nil {
		rec.Close()
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Fprintf(c.out, "ingested %d events in %d batches (%d retries: %d overloads, %d transport errors)\n",
		st.Enqueued, st.Applied, st.Retries, st.Overloads, st.TransportErrors)
	rejected := rec.EventErrors()
	for _, ee := range rejected {
		fmt.Fprintf(c.out, "event rejected (batch index %d): %s\n", ee.Index, ee.Err)
	}
	if len(rejected) > 0 {
		return fmt.Errorf("%d events rejected", len(rejected))
	}
	return nil
}

func (c *client) cmdControls(args []string) error {
	var list []controlWire
	if err := c.getJSON("/controls", &list); err != nil {
		return err
	}
	for _, ctl := range list {
		shadow := ""
		if ctl.Shadow {
			shadow = fmt.Sprintf("  [shadow v%d]", ctl.ShadowVersion)
		}
		fmt.Fprintf(c.out, "%-24s v%d  %s%s\n", ctl.ID, ctl.Version, ctl.Name, shadow)
	}
	return nil
}

func (c *client) cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ContinueOnError)
	fs.SetOutput(c.out)
	id := fs.String("id", "", "control ID")
	name := fs.String("name", "", "control title")
	file := fs.String("file", "", "rule text file")
	shadow := fs.Bool("shadow", false, "deploy as a shadow candidate next to the live version")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *file == "" {
		return fmt.Errorf("deploy requires -id and -file")
	}
	text, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var got controlWire
	if err := c.postJSON("/controls", controlWire{ID: *id, Name: *name, Text: string(text), Shadow: *shadow}, &got); err != nil {
		return err
	}
	if *shadow {
		fmt.Fprintf(c.out, "shadow candidate v%d attached to %s (live v%d)\n", got.ShadowVersion, got.ID, got.Version)
		return nil
	}
	fmt.Fprintf(c.out, "deployed %s version %d\n", got.ID, got.Version)
	return nil
}

// cmdControl drives the shadow rollout actions:
//
//	pctl control promote -id my-control    swap the shadow candidate live
//	pctl control rollback -id my-control   discard the shadow candidate
func (c *client) cmdControl(args []string) error {
	if len(args) == 0 || (args[0] != "promote" && args[0] != "rollback") {
		return fmt.Errorf("control requires a verb: promote or rollback")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("control "+verb, flag.ContinueOnError)
	fs.SetOutput(c.out)
	id := fs.String("id", "", "control ID")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("control %s: -id required", verb)
	}
	var got controlWire
	if err := c.postJSON("/controls/"+url.PathEscape(*id)+"/"+verb, struct{}{}, &got); err != nil {
		return err
	}
	if verb == "promote" {
		fmt.Fprintf(c.out, "promoted %s to version %d\n", got.ID, got.Version)
	} else {
		fmt.Fprintf(c.out, "rolled back shadow candidate of %s (live v%d)\n", got.ID, got.Version)
	}
	return nil
}

// tenantWire mirrors the /tenants document: config plus the per-tenant
// admission counters.
type tenantWire struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Weight int    `json:"weight,omitempty"`
	Quota  struct {
		EventsPerSec   float64 `json:"eventsPerSec,omitempty"`
		Burst          int     `json:"burst,omitempty"`
		MaxQueuedBytes int64   `json:"maxQueuedBytes,omitempty"`
	} `json:"quota"`
	Stats struct {
		AdmittedEvents uint64 `json:"admittedEvents"`
		RejectedEvents uint64 `json:"rejectedEvents"`
		QueuedBytes    int64  `json:"queuedBytes"`
	} `json:"stats"`
}

// cmdTenants manages the multi-tenant control plane:
//
//	pctl tenants                                            list tenants with quotas and admission stats
//	pctl tenants create -id acme [-name "Acme"] [-weight 3] [-rate 100 -burst 200] [-max-queued-bytes N]
//	pctl tenants quota -id acme -rate 100 [-burst 200] [-max-queued-bytes N]
func (c *client) cmdTenants(args []string) error {
	if len(args) > 0 && (args[0] == "create" || args[0] == "quota") {
		verb, rest := args[0], args[1:]
		fs := flag.NewFlagSet("tenants "+verb, flag.ContinueOnError)
		fs.SetOutput(c.out)
		id := fs.String("id", "", "tenant ID")
		name := fs.String("name", "", "display name (create)")
		weight := fs.Int("weight", 0, "fair-share weight (0 = keep/default)")
		rate := fs.Float64("rate", 0, "admitted events/sec (0 = unlimited)")
		burst := fs.Int("burst", 0, "burst size in events (0 = rate-derived)")
		maxQueued := fs.Int64("max-queued-bytes", 0, "queued-bytes cap (0 = unlimited)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("tenants %s: -id required", verb)
		}
		body := map[string]any{"id": *id, "quota": map[string]any{
			"eventsPerSec": *rate, "burst": *burst, "maxQueuedBytes": *maxQueued,
		}}
		if verb == "create" {
			body["name"] = *name
			body["weight"] = *weight
		}
		var got tenantWire
		if err := c.postJSON("/tenants", body, &got); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "tenant %s: weight %d, quota %s\n", got.ID, got.Weight, quotaString(got))
		return nil
	}
	if len(args) > 0 && args[0] != "list" {
		return fmt.Errorf("unknown tenants verb %q (list, create, quota)", args[0])
	}
	var list []tenantWire
	if err := c.getJSON("/tenants", &list); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-16s %-20s %6s %-26s %9s %9s %7s\n",
		"TENANT", "NAME", "WEIGHT", "QUOTA", "ADMITTED", "REJECTED", "QUEUED")
	for _, tn := range list {
		fmt.Fprintf(c.out, "%-16s %-20s %6d %-26s %9d %9d %7d\n",
			tn.ID, tn.Name, tn.Weight, quotaString(tn),
			tn.Stats.AdmittedEvents, tn.Stats.RejectedEvents, tn.Stats.QueuedBytes)
	}
	return nil
}

// quotaString renders a tenant's quota compactly for the table.
func quotaString(tn tenantWire) string {
	q := tn.Quota
	if q.EventsPerSec == 0 && q.MaxQueuedBytes == 0 {
		return "unlimited"
	}
	s := ""
	if q.EventsPerSec > 0 {
		s = fmt.Sprintf("%g/s burst %d", q.EventsPerSec, q.Burst)
	}
	if q.MaxQueuedBytes > 0 {
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%dB queued", q.MaxQueuedBytes)
	}
	return s
}

func (c *client) cmdRemove(args []string) error {
	fs := flag.NewFlagSet("remove", flag.ContinueOnError)
	fs.SetOutput(c.out)
	id := fs.String("id", "", "control ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("remove requires -id")
	}
	resp, err := c.do(http.MethodDelete, "/controls?id="+url.QueryEscape(*id), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := decodeResponse(resp, nil); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "removed %s\n", *id)
	return nil
}

func (c *client) cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(c.out)
	app := fs.String("app", "", "trace ID (empty = all traces)")
	failures := fs.Bool("failures", false, "only print non-satisfied outcomes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/compliance"
	if *app != "" {
		path += "?app=" + url.QueryEscape(*app)
	}
	var outcomes []outcomeWire
	if err := c.getJSON(path, &outcomes); err != nil {
		return err
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].AppID != outcomes[j].AppID {
			return outcomes[i].AppID < outcomes[j].AppID
		}
		return outcomes[i].Control < outcomes[j].Control
	})
	printed := 0
	for _, o := range outcomes {
		if *failures && o.Verdict == "satisfied" {
			continue
		}
		fmt.Fprintf(c.out, "%-20s %-24s %s", o.AppID, o.Control, o.Verdict)
		for _, a := range o.Alerts {
			fmt.Fprintf(c.out, "  [%s]", a)
		}
		fmt.Fprintln(c.out)
		printed++
	}
	fmt.Fprintf(c.out, "%d outcomes\n", printed)
	return nil
}

func (c *client) cmdDashboard(args []string) error {
	var kpis []struct {
		ControlID      string  `json:"ControlID"`
		Name           string  `json:"Name"`
		Total          int     `json:"Total"`
		Satisfied      int     `json:"Satisfied"`
		Violated       int     `json:"Violated"`
		Indeterminate  int     `json:"Indeterminate"`
		NotApplicable  int     `json:"NotApplicable"`
		ComplianceRate float64 `json:"ComplianceRate"`
		DefiniteRate   float64 `json:"DefiniteRate"`
	}
	if err := c.getJSON("/dashboard", &kpis); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-24s %7s %9s %8s %6s %5s %10s\n",
		"CONTROL", "TRACES", "SATISFIED", "VIOLATED", "INDET", "N/A", "COMPLIANCE")
	for _, k := range kpis {
		fmt.Fprintf(c.out, "%-24s %7d %9d %8d %6d %5d %9.1f%%\n",
			k.ControlID, k.Total, k.Satisfied, k.Violated, k.Indeterminate,
			k.NotApplicable, 100*k.ComplianceRate)
	}
	return nil
}

func (c *client) cmdViolations(args []string) error {
	fs := flag.NewFlagSet("violations", flag.ContinueOnError)
	fs.SetOutput(c.out)
	n := fs.Int("n", 10, "entries to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var feed []struct {
		ControlID string   `json:"ControlID"`
		AppID     string   `json:"AppID"`
		Alerts    []string `json:"Alerts"`
	}
	if err := c.getJSON(fmt.Sprintf("/violations?n=%d", *n), &feed); err != nil {
		return err
	}
	for _, v := range feed {
		fmt.Fprintf(c.out, "%-20s %-24s", v.AppID, v.ControlID)
		for _, a := range v.Alerts {
			fmt.Fprintf(c.out, "  [%s]", a)
		}
		fmt.Fprintln(c.out)
	}
	return nil
}

func (c *client) cmdRows(args []string) error {
	fs := flag.NewFlagSet("rows", flag.ContinueOnError)
	fs.SetOutput(c.out)
	app := fs.String("app", "", "trace ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("rows requires -app")
	}
	var rows []struct {
		ID    string `json:"ID"`
		Class string `json:"Class"`
		AppID string `json:"AppID"`
		XML   string `json:"XML"`
	}
	if err := c.getJSON("/rows?app="+url.QueryEscape(*app), &rows); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-22s %-9s %-18s %s\n", "ID", "CLASS", "APPID", "XML")
	for _, r := range rows {
		fmt.Fprintf(c.out, "%-22s %-9s %-18s %s\n", r.ID, r.Class, r.AppID, r.XML)
	}
	return nil
}

func (c *client) cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	fs.SetOutput(c.out)
	app := fs.String("app", "", "trace ID")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("graph requires -app")
	}
	if *dot {
		resp, err := c.do(http.MethodGet, "/graph.dot?app="+url.QueryEscape(*app), nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeResponse(resp, nil)
		}
		_, err = io.Copy(c.out, resp.Body)
		return err
	}
	var g struct {
		Nodes []struct {
			ID    string            `json:"id"`
			Class string            `json:"class"`
			Type  string            `json:"type"`
			Attrs map[string]string `json:"attrs"`
		} `json:"nodes"`
		Edges []struct {
			Type   string `json:"type"`
			Source string `json:"source"`
			Target string `json:"target"`
		} `json:"edges"`
	}
	if err := c.getJSON("/graph?app="+url.QueryEscape(*app), &g); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(c.out, "node %-9s %-28s %s\n", n.Class, n.ID, n.Type)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(c.out, "edge %-28s -%s-> %s\n", e.Source, e.Type, e.Target)
	}
	return nil
}

func (c *client) cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(c.out)
	findings := fs.Int("findings", 20, "max findings listed per control")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := c.do(http.MethodGet, fmt.Sprintf("/report?findings=%d", *findings), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeResponse(resp, nil)
	}
	_, err = io.Copy(c.out, resp.Body)
	return err
}

// segmentWire mirrors store.SegmentInfo.
type segmentWire struct {
	ID        uint64  `json:"id"`
	Path      string  `json:"path"`
	SizeBytes int64   `json:"size_bytes"`
	Traces    int     `json:"traces"`
	Rows      int     `json:"rows"`
	Blocks    int     `json:"blocks"`
	SealSeq   uint64  `json:"seal_seq"`
	MinSeq    uint64  `json:"min_seq"`
	MaxSeq    uint64  `json:"max_seq"`
	MinApp    string  `json:"min_app"`
	MaxApp    string  `json:"max_app"`
	BloomFill float64 `json:"bloom_fill"`
	BloomFPP  float64 `json:"bloom_fpp"`
}

func (c *client) cmdSegments(args []string) error {
	var segs []segmentWire
	if err := c.getJSON("/segments", &segs); err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Fprintln(c.out, "no sealed segments")
		return nil
	}
	fmt.Fprintf(c.out, "%-4s %10s %7s %6s %6s %12s %-24s %10s %8s\n",
		"ID", "SIZE", "TRACES", "ROWS", "BLOCKS", "SEQ", "TRACE RANGE", "BLOOM", "FPP")
	var bytes int64
	var traces, rows int
	for _, s := range segs {
		fmt.Fprintf(c.out, "%-4d %10d %7d %6d %6d %5d..%-5d %-24s %9.1f%% %8.4f\n",
			s.ID, s.SizeBytes, s.Traces, s.Rows, s.Blocks, s.MinSeq, s.MaxSeq,
			s.MinApp+".."+s.MaxApp, 100*s.BloomFill, s.BloomFPP)
		bytes += s.SizeBytes
		traces += s.Traces
		rows += s.Rows
	}
	fmt.Fprintf(c.out, "%d segments, %d sealed traces, %d rows, %d bytes\n",
		len(segs), traces, rows, bytes)
	return nil
}

func (c *client) cmdStats(args []string) error {
	var stats map[string]any
	if err := c.getJSON("/stats", &stats); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(c.out, string(raw))
	return nil
}

// cmdCluster inspects and reshapes a provrouter cluster:
//
//	pctl -server http://router:8340 cluster            topology and health
//	pctl cluster join -name s3 -url http://host:8343   add a shard (handoff)
//	pctl cluster leave -name s1 [-force]               drain (or drop) a shard
func (c *client) cmdCluster(args []string) error {
	if len(args) > 0 && (args[0] == "join" || args[0] == "leave") {
		verb, rest := args[0], args[1:]
		fs := flag.NewFlagSet("cluster "+verb, flag.ContinueOnError)
		fs.SetOutput(c.out)
		name := fs.String("name", "", "shard name")
		url := fs.String("url", "", "shard base URL (join)")
		force := fs.Bool("force", false, "drop a dead shard without handoff (leave)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *name == "" {
			return fmt.Errorf("cluster %s: -name required", verb)
		}
		var out map[string]any
		if verb == "join" {
			if *url == "" {
				return fmt.Errorf("cluster join: -url required")
			}
			if err := c.postJSON("/cluster/join", map[string]string{"name": *name, "url": *url}, &out); err != nil {
				return err
			}
		} else {
			body := map[string]any{"name": *name, "force": *force}
			if err := c.postJSON("/cluster/leave", body, &out); err != nil {
				return err
			}
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(c.out, string(raw))
		return nil
	}
	var topo struct {
		Shards []struct {
			Name    string  `json:"name"`
			URL     string  `json:"url"`
			Share   float64 `json:"share"`
			Healthy bool    `json:"healthy"`
			Error   string  `json:"error"`
		} `json:"shards"`
		Vnodes       int `json:"vnodes"`
		MovingTraces int `json:"movingTraces"`
		PendingAcks  int `json:"pendingAcks"`
	}
	if err := c.getJSON("/cluster", &topo); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-12s %-28s %7s %-8s %s\n", "SHARD", "URL", "SHARE", "STATE", "")
	for _, sh := range topo.Shards {
		state := "up"
		if !sh.Healthy {
			state = "DOWN"
		}
		fmt.Fprintf(c.out, "%-12s %-28s %6.1f%% %-8s %s\n",
			sh.Name, sh.URL, 100*sh.Share, state, sh.Error)
	}
	fmt.Fprintf(c.out, "%d shards, %d vnodes/shard, %d traces mid-handoff, %d pending acks\n",
		len(topo.Shards), topo.Vnodes, topo.MovingTraces, topo.PendingAcks)
	return nil
}
