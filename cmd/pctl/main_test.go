package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/workload"
)

// startProvd spins a real provd HTTP server for the CLI to talk to.
func startProvd(t *testing.T) string {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(sys, false))
	t.Cleanup(func() {
		srv.Close()
		sys.Close()
	})
	return srv.URL
}

// pctl runs the CLI against the server and captures stdout.
func pctl(t *testing.T, url string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(append([]string{"-server", url}, args...), &out)
	return out.String(), err
}

func TestPctlEndToEnd(t *testing.T) {
	url := startProvd(t)

	out, err := pctl(t, url, "simulate", "-domain", "hiring", "-traces", "20",
		"-violations", "0.4", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ingested") || !strings.Contains(out, "20 traces") {
		t.Fatalf("simulate output: %s", out)
	}

	out, err = pctl(t, url, "controls")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gm-approval", "four-eyes", "no-reject-proceed"} {
		if !strings.Contains(out, want) {
			t.Errorf("controls output missing %s:\n%s", want, out)
		}
	}

	out, err = pctl(t, url, "check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "80 outcomes") {
		t.Fatalf("check output: %s", out)
	}
	out, err = pctl(t, url, "check", "-failures")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, " satisfied") {
		t.Fatalf("failures filter leaked satisfied rows:\n%s", out)
	}

	out, err = pctl(t, url, "dashboard")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CONTROL") || !strings.Contains(out, "gm-approval") {
		t.Fatalf("dashboard output: %s", out)
	}

	out, err = pctl(t, url, "violations", "-n", "3")
	if err != nil {
		t.Fatal(err)
	}

	out, err = pctl(t, url, "rows", "-app", "hiring-000000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ps:jobRequisition") {
		t.Fatalf("rows output lacks Table-1 XML:\n%s", out)
	}

	out, err = pctl(t, url, "stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hiring") {
		t.Fatalf("stats output: %s", out)
	}
}

func TestPctlDeployAndRemove(t *testing.T) {
	url := startProvd(t)
	dir := t.TempDir()
	ruleFile := filepath.Join(dir, "rule.bal")
	rule := `
definitions
  set 'r' to a job requisition ;
if 'r' exists then the internal control is satisfied ;
`
	if err := os.WriteFile(ruleFile, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := pctl(t, url, "deploy", "-id", "cli-control", "-name", "From CLI", "-file", ruleFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deployed cli-control version 1") {
		t.Fatalf("deploy output: %s", out)
	}
	out, err = pctl(t, url, "controls")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cli-control") {
		t.Fatalf("controls output: %s", out)
	}
	out, err = pctl(t, url, "remove", "-id", "cli-control")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "removed cli-control") {
		t.Fatalf("remove output: %s", out)
	}
	// Bad rule file is rejected with the server's compile diagnostic.
	if err := os.WriteFile(ruleFile, []byte("if gibberish"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pctl(t, url, "deploy", "-id", "bad", "-file", ruleFile); err == nil {
		t.Fatal("bad rule deployed")
	}
}

func TestPctlErrors(t *testing.T) {
	url := startProvd(t)
	if _, err := pctl(t, url); err == nil {
		t.Error("missing command accepted")
	}
	if _, err := pctl(t, url, "frobnicate"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := pctl(t, url, "deploy", "-id", "x"); err == nil {
		t.Error("deploy without -file accepted")
	}
	if _, err := pctl(t, url, "rows"); err == nil {
		t.Error("rows without -app accepted")
	}
	if _, err := pctl(t, url, "remove"); err == nil {
		t.Error("remove without -id accepted")
	}
	if _, err := pctl(t, url, "simulate", "-domain", "nope"); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, err := pctl(t, "http://127.0.0.1:1", "stats"); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestPctlGraph(t *testing.T) {
	url := startProvd(t)
	if _, err := pctl(t, url, "simulate", "-domain", "hiring", "-traces", "2", "-seed", "4"); err != nil {
		t.Fatal(err)
	}
	out, err := pctl(t, url, "graph", "-app", "hiring-000000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "node data") || !strings.Contains(out, "edge ") {
		t.Fatalf("graph output:\n%s", out)
	}
	out, err = pctl(t, url, "graph", "-app", "hiring-000000", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph provenance") {
		t.Fatalf("dot output:\n%s", out)
	}
	if _, err := pctl(t, url, "graph"); err == nil {
		t.Error("graph without -app accepted")
	}
}

func TestPctlReport(t *testing.T) {
	url := startProvd(t)
	if _, err := pctl(t, url, "simulate", "-domain", "hiring", "-traces", "10",
		"-violations", "0.5", "-seed", "6"); err != nil {
		t.Fatal(err)
	}
	out, err := pctl(t, url, "report", "-findings", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COMPLIANCE AUDIT REPORT", "### control", "evidence"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestPctlSegments lists the cold tier: empty on a fresh in-memory
// store, and one sealed segment after a durable store demotes traces.
func TestPctlSegments(t *testing.T) {
	url := startProvd(t)
	out, err := pctl(t, url, "segments")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no sealed segments") {
		t.Fatalf("segments on empty store: %s", out)
	}

	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(sys, false))
	t.Cleanup(func() {
		srv.Close()
		sys.Close()
	})
	if _, err := pctl(t, srv.URL, "simulate", "-domain", "hiring", "-traces", "3", "-seed", "9"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Store.DemoteTraces("hiring-000000", "hiring-000001"); err != nil {
		t.Fatal(err)
	}
	out, err = pctl(t, srv.URL, "segments")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 segments, 2 sealed traces") ||
		!strings.Contains(out, "hiring-000000..hiring-000001") {
		t.Fatalf("segments output:\n%s", out)
	}
}

// TestPctlSimulateAsync ships the simulation through the spooling
// recorder: admission, retries-until-applied, flush-on-close.
func TestPctlSimulateAsync(t *testing.T) {
	url := startProvd(t)
	out, err := pctl(t, url, "simulate", "-domain", "hiring", "-traces", "10",
		"-seed", "7", "-async", "-batch", "16")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shipped") || !strings.Contains(out, "10 traces") {
		t.Fatalf("async simulate output: %s", out)
	}
	// The events really landed: all traces are checkable.
	out, err = pctl(t, url, "check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "40 outcomes") {
		t.Fatalf("check after async simulate: %s", out)
	}
}

// TestPctlIngestNDJSON streams newline-delimited events from stdin
// through the recorder, including a rejected event surfaced by index.
func TestPctlIngestNDJSON(t *testing.T) {
	url := startProvd(t)
	ndjson := `
{"source":"lombardi","type":"requisition.submitted","appId":"T1","payload":{"recordId":"N1","req":"REQ-1"}}

{"source":"mail","type":"approval.recorded","appId":"T1","payload":{"recordId":"N2","req":"REQ-1","approved":"true"}}
`
	var out strings.Builder
	err := runIO([]string{"-server", url, "ingest", "-batch", "4"},
		strings.NewReader(ndjson), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ingested 2 events") {
		t.Fatalf("ingest output: %s", out.String())
	}

	// A rejected event (missing required field) fails the run and names
	// the event.
	bad := `{"source":"lombardi","type":"requisition.submitted","appId":"T2","payload":{"recordId":"N9"}}`
	out.Reset()
	err = runIO([]string{"-server", url, "ingest"}, strings.NewReader(bad), &out)
	if err == nil {
		t.Fatalf("rejected event not reported: %s", out.String())
	}
	if !strings.Contains(out.String(), "event rejected") {
		t.Fatalf("ingest output lacks rejection: %s", out.String())
	}

	// Malformed NDJSON is a line-numbered error.
	err = runIO([]string{"-server", url, "ingest"}, strings.NewReader("not json\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line error = %v", err)
	}
}

// TestPctlTenants drives the tenant control plane end to end: create
// with a quota, list with stats, retune, and tenant-scoped reads via the
// global -tenant flag.
func TestPctlTenants(t *testing.T) {
	url := startProvd(t)

	out, err := pctl(t, url, "tenants", "create", "-id", "acme", "-name", "Acme",
		"-weight", "3", "-rate", "50", "-burst", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tenant acme") || !strings.Contains(out, "weight 3") {
		t.Fatalf("create output: %s", out)
	}

	out, err = pctl(t, url, "tenants")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TENANT") || !strings.Contains(out, "acme") ||
		!strings.Contains(out, "default") || !strings.Contains(out, "50/s burst 100") {
		t.Fatalf("tenants table: %s", out)
	}

	if out, err = pctl(t, url, "tenants", "quota", "-id", "acme", "-rate", "80"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "80/s") {
		t.Fatalf("quota output: %s", out)
	}

	// Scoped simulate + check: the tenant sees only its own traces.
	if _, err = pctl(t, url, "tenants", "quota", "-id", "acme", "-rate", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err = pctl(t, url, "simulate", "-traces", "5", "-seed", "3"); err != nil {
		t.Fatal(err)
	}
	out, err = pctl(t, url, "-tenant", "acme", "check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 outcomes") {
		t.Fatalf("acme sees the default tenant's outcomes:\n%s", out)
	}
}

// TestPctlShadowPromote walks the rollout flow: deploy, attach a shadow
// candidate, promote it, and roll back a second candidate.
func TestPctlShadowPromote(t *testing.T) {
	url := startProvd(t)
	dir := t.TempDir()
	rule := filepath.Join(dir, "rule.bal")
	text := `
definitions
  set 'the request' to a job requisition ;
if
  the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "no approval on record" ;
`
	if err := os.WriteFile(rule, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	if out, err := pctl(t, url, "deploy", "-id", "roll-1", "-name", "Rollout", "-file", rule); err != nil || !strings.Contains(out, "version 1") {
		t.Fatalf("deploy: %v %s", err, out)
	}
	out, err := pctl(t, url, "deploy", "-id", "roll-1", "-file", rule, "-shadow")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shadow candidate v2") {
		t.Fatalf("shadow deploy output: %s", out)
	}
	if out, err = pctl(t, url, "controls"); err != nil || !strings.Contains(out, "[shadow v2]") {
		t.Fatalf("controls with shadow: %v %s", err, out)
	}
	if out, err = pctl(t, url, "control", "promote", "-id", "roll-1"); err != nil || !strings.Contains(out, "version 2") {
		t.Fatalf("promote: %v %s", err, out)
	}
	// Attach and discard another candidate.
	if _, err = pctl(t, url, "deploy", "-id", "roll-1", "-file", rule, "-shadow"); err != nil {
		t.Fatal(err)
	}
	if out, err = pctl(t, url, "control", "rollback", "-id", "roll-1"); err != nil || !strings.Contains(out, "rolled back") {
		t.Fatalf("rollback: %v %s", err, out)
	}
	// Nothing left to promote: the server's 422 surfaces as an error.
	if _, err = pctl(t, url, "control", "promote", "-id", "roll-1"); err == nil {
		t.Fatal("promote with no candidate succeeded")
	}
}
