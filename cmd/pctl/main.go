// Command pctl is the command-line client for provd: it generates and
// ingests simulated process events, deploys internal controls written in
// business vocabulary, and queries compliance results and dashboard KPIs.
//
// Usage:
//
//	pctl -server http://localhost:8341 <command> [args]
//
// Commands:
//
//	simulate -domain hiring -traces 100 [-violations 0.3] [-visibility 1.0] [-seed 1] [-async]
//	    generate process instances and ingest their application events;
//	    -async ships them through the spooling recorder (admission
//	    control, idempotent retries) instead of one synchronous POST
//	ingest [-batch 128]
//	    stream NDJSON application events from stdin through the spooling
//	    recorder (one JSON event object per line)
//	controls
//	    list deployed controls
//	deploy -id my-control -name "Title" -file rule.bal [-shadow]
//	    compile and deploy a control from a rule-text file; -shadow
//	    attaches it as a candidate evaluated silently next to the live
//	    version
//	control promote -id my-control
//	    swap a control's shadow candidate live (atomic version bump)
//	control rollback -id my-control
//	    discard a control's shadow candidate
//	remove -id my-control
//	    remove a deployed control
//	tenants [list | create -id acme [-name N] [-weight W] [-rate R -burst B] [-max-queued-bytes M] | quota -id acme -rate R ...]
//	    list tenants with quotas and admission stats, or create/retune one
//	    (the global -tenant flag scopes the other commands to a tenant)
//	check [-app trace-id]
//	    evaluate controls on one trace or all traces
//	dashboard
//	    print per-control KPIs
//	violations [-n 10]
//	    print the recent violation feed
//	rows -app trace-id
//	    print a trace's provenance rows (Table 1 of the paper)
//	graph -app trace-id [-dot]
//	    print a trace's provenance graph (or Graphviz DOT with -dot)
//	report [-findings 20]
//	    print the plain-text compliance audit report
//	segments
//	    list the store's sealed cold-tier segments with zone maps and
//	    bloom-filter stats
//	stats
//	    print store and pipeline statistics
//	cluster [join -name N -url U | leave -name N [-force]]
//	    inspect a provrouter cluster's topology, or add/drain a shard
//	    (against provrouter, not a single provd)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pctl:", err)
		os.Exit(1)
	}
}

// run parses global flags and dispatches the subcommand. Split from main
// for testability.
func run(args []string, out io.Writer) error {
	return runIO(args, os.Stdin, out)
}

// runIO additionally injects stdin (the `ingest` command reads it).
func runIO(args []string, in io.Reader, out io.Writer) error {
	global := flag.NewFlagSet("pctl", flag.ContinueOnError)
	server := global.String("server", "http://localhost:8341", "provd base URL")
	tenantID := global.String("tenant", "", "tenant scope (X-Tenant header; empty = global operator view)")
	global.SetOutput(out)
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (simulate, ingest, controls, deploy, control, remove, check, dashboard, violations, rows, graph, report, segments, stats, tenants, cluster)")
	}
	c := &client{base: *server, tenant: *tenantID, out: out, in: in}
	cmd, cmdArgs := rest[0], rest[1:]
	switch cmd {
	case "simulate":
		return c.cmdSimulate(cmdArgs)
	case "ingest":
		return c.cmdIngest(cmdArgs)
	case "controls":
		return c.cmdControls(cmdArgs)
	case "deploy":
		return c.cmdDeploy(cmdArgs)
	case "control":
		return c.cmdControl(cmdArgs)
	case "remove":
		return c.cmdRemove(cmdArgs)
	case "check":
		return c.cmdCheck(cmdArgs)
	case "dashboard":
		return c.cmdDashboard(cmdArgs)
	case "violations":
		return c.cmdViolations(cmdArgs)
	case "rows":
		return c.cmdRows(cmdArgs)
	case "graph":
		return c.cmdGraph(cmdArgs)
	case "report":
		return c.cmdReport(cmdArgs)
	case "segments":
		return c.cmdSegments(cmdArgs)
	case "stats":
		return c.cmdStats(cmdArgs)
	case "tenants":
		return c.cmdTenants(cmdArgs)
	case "cluster":
		return c.cmdCluster(cmdArgs)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
