// Command provbench is the open-loop workload generator and load
// harness: it materializes a deterministic request schedule from a
// workload spec and drives it into a target — an in-process system, a
// provd server over HTTP, or a null sink — without ever letting the
// target's behavior slow the schedule down. Sheds are counted, not
// retried, so overload shows up as shed batches and latency instead of
// being hidden by client back-pressure.
//
// Usage:
//
//	provbench [-spec FILE | -domain hiring -rate 200 -clients 8 ...]
//	          [-record FILE | -replay FILE]
//	          [-target URL | -sync-ingest] [-detect-every N]
//	          [-json FILE] [-csv FILE] [-dry]
//
// The workload comes from a JSON spec file (-spec) or from the
// single-class flags. -record writes the generated schedule to a trace
// file; -replay executes a previously recorded trace instead of
// generating. With no -target the harness boots an in-process system
// (async ingestion gateway by default, -sync-ingest for the ablation)
// and samples detection lag against the continuous checker when
// -detect-every is set. -dry runs the schedule against a null target on
// a virtual clock: no I/O, no wall-clock waits, and byte-identical
// reports for a fixed seed — the reproducibility check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/provbench"
)

func main() {
	var (
		specPath = flag.String("spec", "", "JSON workload spec file (overrides the single-class flags)")
		domain   = flag.String("domain", "hiring", "process domain: hiring, procurement or claims")
		seed     = flag.Int64("seed", 1, "generation seed")
		duration = flag.Duration("duration", 2*time.Second, "schedule horizon")
		rate     = flag.Float64("rate", 200, "aggregate offered rate, batches/sec")
		clients  = flag.Int("clients", 8, "client population size")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson, gamma, weibull or uniform")
		shape    = flag.Float64("shape", 0, "arrival shape parameter (gamma/weibull)")

		record = flag.String("record", "", "write the schedule to this trace file")
		replay = flag.String("replay", "", "replay a recorded trace instead of generating")

		target      = flag.String("target", "", "drive a provd server at this base URL instead of an in-process system")
		syncIngest  = flag.Bool("sync-ingest", false, "in-process: disable the async ingestion gateway (ablation)")
		dir         = flag.String("dir", "", "in-process store directory (default: a temp dir)")
		queueDepth  = flag.Int("queue-depth", 512, "in-process: ingestion gateway queue depth")
		detectEvery = flag.Int("detect-every", 0, "sample detection lag every Nth admitted op (in-process only)")

		jsonPath = flag.String("json", "", "write the JSON report to this file")
		csvPath  = flag.String("csv", "", "write the CSV report to this file")
		dry      = flag.Bool("dry", false, "dry run: null target on a virtual clock, byte-identical reports per seed")
	)
	flag.Parse()

	if err := run(config{
		specPath: *specPath, domain: *domain, seed: *seed, duration: *duration,
		rate: *rate, clients: *clients, arrival: *arrival, shape: *shape,
		record: *record, replay: *replay,
		target: *target, syncIngest: *syncIngest, dir: *dir,
		queueDepth: *queueDepth, detectEvery: *detectEvery,
		jsonPath: *jsonPath, csvPath: *csvPath, dry: *dry,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "provbench:", err)
		os.Exit(1)
	}
}

type config struct {
	specPath, domain        string
	seed                    int64
	duration                time.Duration
	rate                    float64
	clients                 int
	arrival                 string
	shape                   float64
	record, replay          string
	target, dir             string
	syncIngest, dry         bool
	queueDepth, detectEvery int
	jsonPath, csvPath       string
}

func run(cfg config) error {
	sched, err := buildSchedule(cfg)
	if err != nil {
		return err
	}
	if cfg.record != "" {
		f, err := os.Create(cfg.record)
		if err != nil {
			return err
		}
		if err := provbench.WriteTrace(f, sched); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded %d ops (%d events) to %s\n",
			len(sched.Ops), sched.Events, cfg.record)
	}

	tgt, opts, cleanup, err := buildTarget(cfg, sched)
	if err != nil {
		return err
	}
	if cleanup != nil {
		defer cleanup()
	}

	rep, err := provbench.Run(sched, tgt, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if cfg.jsonPath != "" {
		if err := writeReport(cfg.jsonPath, rep.WriteJSON); err != nil {
			return err
		}
	}
	if cfg.csvPath != "" {
		if err := writeReport(cfg.csvPath, rep.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func buildSchedule(cfg config) (*provbench.Schedule, error) {
	if cfg.replay != "" {
		f, err := os.Open(cfg.replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return provbench.ReadTrace(f)
	}
	var spec provbench.Spec
	if cfg.specPath != "" {
		data, err := os.ReadFile(cfg.specPath)
		if err != nil {
			return nil, err
		}
		spec, err = provbench.ParseSpec(data)
		if err != nil {
			return nil, err
		}
	} else {
		spec = provbench.DefaultSpec(cfg.domain, cfg.seed, cfg.duration,
			cfg.rate, cfg.clients,
			provbench.ArrivalSpec{Process: cfg.arrival, Shape: cfg.shape})
	}
	return provbench.Generate(spec)
}

// buildTarget resolves the target the flags select, together with the
// run options it requires.
func buildTarget(cfg config, sched *provbench.Schedule) (provbench.Target, provbench.Options, func(), error) {
	var opts provbench.Options
	switch {
	case cfg.dry:
		// Null target + virtual clock + inline execution: the whole run
		// is a pure function of the schedule.
		opts.Clock = provbench.NewVirtualClock(time.Unix(0, 0))
		opts.Inline = true
		opts.AckPoll = time.Millisecond
		return &provbench.NullTarget{PendingPolls: 2}, opts, nil, nil

	case cfg.target != "":
		if cfg.detectEvery > 0 {
			return nil, opts, nil, fmt.Errorf("-detect-every needs an in-process target")
		}
		return &provbench.HTTPTarget{Base: cfg.target}, opts, nil, nil

	default:
		name := cfg.domain
		if len(sched.Spec.Classes) > 0 {
			name = sched.Spec.Classes[0].Domain
			for _, c := range sched.Spec.Classes {
				if c.Domain != name {
					return nil, opts, nil, fmt.Errorf("in-process target: spec mixes domains %q and %q; use -target against a multi-domain deployment", name, c.Domain)
				}
			}
		}
		d, err := provbench.DomainFor(name)
		if err != nil {
			return nil, opts, nil, err
		}
		dir := cfg.dir
		var cleanup func()
		if dir == "" {
			dir, err = os.MkdirTemp("", "provbench-*")
			if err != nil {
				return nil, opts, nil, err
			}
			cleanup = func() { os.RemoveAll(dir) }
		}
		sys, err := core.New(d, core.Config{
			Dir: dir, Sync: true, Continuous: true,
			DisableAsyncIngest: cfg.syncIngest,
			IngestQueueDepth:   cfg.queueDepth,
		})
		if err != nil {
			if cleanup != nil {
				cleanup()
			}
			return nil, opts, nil, err
		}
		prev := cleanup
		cleanup = func() {
			sys.Close()
			if prev != nil {
				prev()
			}
		}
		opts.DetectEvery = cfg.detectEvery
		opts.AckPoll = time.Millisecond
		return &provbench.SystemTarget{Sys: sys}, opts, cleanup, nil
	}
}

func writeReport(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
