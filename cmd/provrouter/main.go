// Command provrouter fronts a sharded provd cluster: a stateless
// consistent-hash router that splits event batches by trace owner,
// proxies single-trace reads to the owning shard, and scatter-gathers
// cross-trace queries (/stats, /compliance, /segments, ...) with a merge
// layer. Shards are ordinary provd processes; the router holds no data.
//
// Usage:
//
//	provrouter -addr :8340 -shard s1=http://localhost:8341 \
//	           -shard s2=http://localhost:8342 [-vnodes 128]
//
// Topology changes at runtime:
//
//	POST /cluster/join  {"name":"s3","url":"http://localhost:8343"}
//	POST /cluster/leave {"name":"s1"}            graceful: handoff first
//	POST /cluster/leave {"name":"s1","force":true}  dead shard: drop range
//	GET  /cluster                                 topology and health
//
// Joining and leaving move only the traces whose ring arc changes owner
// (~K/N of K traces), shipped as sealed segments with a brief per-trace
// write shed during the tail copy — the rest of the cluster never stops.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/cluster"
)

// shardFlags collects repeated -shard name=url flags.
type shardFlags []cluster.Shard

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sh := range *s {
		parts[i] = sh.Name + "=" + sh.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, cluster.Shard{Name: name, URL: url})
	return nil
}

func main() {
	addr := flag.String("addr", ":8340", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default 128)")
	var shards shardFlags
	flag.Var(&shards, "shard", "shard as name=url (repeat per shard)")
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "provrouter: at least one -shard name=url required")
		os.Exit(2)
	}
	rt, err := cluster.NewRouter(shards, *vnodes)
	if err != nil {
		log.Fatalf("provrouter: %v", err)
	}
	log.Printf("provrouter: %d shards, listening on %s", len(shards), *addr)
	if err := http.ListenAndServe(*addr, rt); err != nil {
		log.Fatalf("provrouter: %v", err)
	}
}
