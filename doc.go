// Package repro reproduces "Designing internal control points in
// partially managed processes by using business vocabulary" (Doganata,
// ICDE 2011 workshops): a business provenance management system integrated
// with a business rule management system, so that internal control points
// are authored in business vocabulary and verified as subgraphs of the
// provenance graph.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); cmd/provd serves it over HTTP, cmd/pctl is the CLI client,
// cmd/benchrunner regenerates the experiment tables, and examples/ holds
// four runnable walkthroughs. bench_test.go in this directory carries one
// testing.B benchmark per experiment (E1-E8).
package repro
