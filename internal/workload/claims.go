package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bom"
	"repro/internal/controls"
	"repro/internal/correlate"
	"repro/internal/events"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// Claims builds an insurance claim handling process: a claimant files a
// claim (portal, managed), an adjuster is assigned (managed), the adjuster
// produces a damage estimate in a standalone tool (unmanaged), large
// payouts require senior approval over e-mail (unmanaged), and the payout
// is released by the policy system (managed).
func Claims() (*Domain, error) {
	m := provenance.NewModel("claims")
	if err := buildClaimsModel(m); err != nil {
		return nil, err
	}
	om, err := xom.FromModel(m)
	if err != nil {
		return nil, err
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{
			"payoutApproval": "payout approval",
		},
		MemberLabels: map[string]string{
			"claim.claimID":                "claim number",
			"claim.amount":                 "claimed amount",
			"claim.claimantEmail":          "claimant email",
			"claim.assignmentForInverse":   "assignment",
			"claim.estimateForInverse":     "estimate",
			"claim.approvalForInverse":     "payout approval",
			"claim.payoutForInverse":       "payout",
			"assignment.adjusterEmail":     "adjuster email",
			"estimate.amount":              "estimated amount",
			"payoutApproval.level":         "approval level",
			"payoutApproval.approverEmail": "approver email",
			"payout.amount":                "payout amount",
		},
	})
	if err != nil {
		return nil, err
	}
	return &Domain{
		Name:         "claims",
		Model:        m,
		Vocab:        vocab,
		Mappings:     claimsMappings(),
		Correlations: claimsCorrelations(),
		Controls:     claimsControls(),
		generate:     generateClaimsTrace,
		violationKinds: map[string]string{
			"no-senior-approval": "senior-approval",
			"self-adjusting":     "adjuster-independence",
			"overpayment":        "estimate-bound",
		},
	}, nil
}

func buildClaimsModel(m *provenance.Model) error {
	types := []provenance.TypeDef{
		{Name: "person", Class: provenance.ClassResource},
		{Name: "filing", Class: provenance.ClassTask},
		{Name: "assessment", Class: provenance.ClassTask},
		{Name: "disbursement", Class: provenance.ClassTask},
		{Name: "claim", Class: provenance.ClassData},
		{Name: "assignment", Class: provenance.ClassData},
		{Name: "estimate", Class: provenance.ClassData},
		{Name: "payoutApproval", Class: provenance.ClassData},
		{Name: "payout", Class: provenance.ClassData},
	}
	type fieldSpec struct {
		typ string
		f   provenance.FieldDef
	}
	fields := []fieldSpec{
		{"person", provenance.FieldDef{Name: "name", Kind: provenance.KindString}},
		{"person", provenance.FieldDef{Name: "email", Kind: provenance.KindString}},
		{"person", provenance.FieldDef{Name: "role", Kind: provenance.KindString}},
		{"filing", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"assessment", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"disbursement", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"claim", provenance.FieldDef{Name: "claimID", Kind: provenance.KindString, Indexed: true}},
		{"claim", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
		{"claim", provenance.FieldDef{Name: "claimantEmail", Kind: provenance.KindString}},
		{"assignment", provenance.FieldDef{Name: "claimID", Kind: provenance.KindString, Indexed: true}},
		{"assignment", provenance.FieldDef{Name: "adjusterEmail", Kind: provenance.KindString}},
		{"estimate", provenance.FieldDef{Name: "claimID", Kind: provenance.KindString, Indexed: true}},
		{"estimate", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
		{"payoutApproval", provenance.FieldDef{Name: "claimID", Kind: provenance.KindString, Indexed: true}},
		{"payoutApproval", provenance.FieldDef{Name: "approverEmail", Kind: provenance.KindString}},
		{"payoutApproval", provenance.FieldDef{Name: "level", Kind: provenance.KindString}},
		{"payout", provenance.FieldDef{Name: "claimID", Kind: provenance.KindString, Indexed: true}},
		{"payout", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
	}
	relations := []provenance.RelationDef{
		{Name: "assignmentFor", SourceType: "assignment", TargetType: "claim"},
		{Name: "estimateFor", SourceType: "estimate", TargetType: "claim"},
		{Name: "approvalFor", SourceType: "payoutApproval", TargetType: "claim"},
		{Name: "payoutFor", SourceType: "payout", TargetType: "claim"},
		{Name: "claimantOf", SourceType: "person", TargetType: "claim"},
		{Name: "actor", SourceType: "person"},
		{Name: "nextTask"},
	}
	for i := range types {
		if err := m.AddType(&types[i]); err != nil {
			return err
		}
	}
	for i := range fields {
		f := fields[i].f
		if err := m.AddField(fields[i].typ, &f); err != nil {
			return err
		}
	}
	for i := range relations {
		r := relations[i]
		if err := m.AddRelation(&r); err != nil {
			return err
		}
	}
	return controls.DeclareModel(m)
}

func claimsMappings() []*events.Mapping {
	str := provenance.KindString
	flt := provenance.KindFloat
	return []*events.Mapping{
		{Name: "portal-claim", Source: "portal", EventType: "claim.filed",
			NodeType: "claim", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "claim", Attr: "claimID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
				{PayloadKey: "claimantEmail", Attr: "claimantEmail", Kind: str},
			}},
		{Name: "portal-file-task", Source: "portal", EventType: "task.file",
			NodeType: "filing", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "dispatch-assignment", Source: "dispatch", EventType: "adjuster.assigned",
			NodeType: "assignment", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "claim", Attr: "claimID", Kind: str, Required: true},
				{PayloadKey: "adjusterEmail", Attr: "adjusterEmail", Kind: str},
			}},
		{Name: "fieldtool-estimate", Source: "fieldtool", EventType: "estimate.recorded",
			NodeType: "estimate", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "claim", Attr: "claimID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
			}},
		{Name: "fieldtool-assess-task", Source: "fieldtool", EventType: "task.assess",
			NodeType: "assessment", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "mail-payout-approval", Source: "mail", EventType: "payout.approved",
			NodeType: "payoutApproval", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "claim", Attr: "claimID", Kind: str, Required: true},
				{PayloadKey: "approverEmail", Attr: "approverEmail", Kind: str},
				{PayloadKey: "level", Attr: "level", Kind: str},
			}},
		{Name: "policy-payout", Source: "policy", EventType: "payout.released",
			NodeType: "payout", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "claim", Attr: "claimID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
			}},
		{Name: "policy-pay-task", Source: "policy", EventType: "task.disburse",
			NodeType: "disbursement", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "directory", Source: "hrdir", EventType: "person.observed",
			NodeType: "person", Class: provenance.ClassResource, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "name", Attr: "name", Kind: str, Required: true},
				{PayloadKey: "email", Attr: "email", Kind: str},
				{PayloadKey: "role", Attr: "role", Kind: str},
			}},
	}
}

func claimsCorrelations() []correlate.Rule {
	join := func(name, edge, src string) correlate.Rule {
		return &correlate.KeyJoin{RuleName: name, EdgeType: edge,
			SourceType: src, SourceField: "claimID",
			TargetType: "claim", TargetField: "claimID"}
	}
	return []correlate.Rule{
		join("assignment-join", "assignmentFor", "assignment"),
		join("estimate-join", "estimateFor", "estimate"),
		join("payout-approval-join", "approvalFor", "payoutApproval"),
		join("payout-join", "payoutFor", "payout"),
		&correlate.KeyJoin{RuleName: "claimant-join", EdgeType: "claimantOf",
			SourceType: "person", SourceField: "email",
			TargetType: "claim", TargetField: "claimantEmail"},
		ActorRule(),
		&correlate.TemporalOrder{RuleName: "task-order", EdgeType: "nextTask"},
	}
}

func claimsControls() []ControlSpec {
	return []ControlSpec{
		{
			ID:   "senior-approval",
			Name: "Payouts above 10000 require senior approval",
			Text: `
definitions
  set 'the claim' to a claim ;
if
  the payout of 'the claim' does not exist
  or the payout amount of the payout of 'the claim' is at most 10000
  or ( the payout approval of 'the claim' exists
       and the approval level of the payout approval of 'the claim' is "senior" )
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "large payout released without senior approval" ;
`,
		},
		{
			ID:   "adjuster-independence",
			Name: "Adjusters must not handle their own claims",
			Text: `
definitions
  set 'the claim' to a claim ;
if
  the assignment of 'the claim' does not exist
  or the adjuster email of the assignment of 'the claim'
     is not the claimant email of 'the claim'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "claim assigned to its own claimant" ;
`,
		},
		{
			ID:   "estimate-bound",
			Name: "Payouts must stay within 120% of the estimate",
			Text: `
definitions
  set 'the claim' to a claim ;
if
  the payout of 'the claim' does not exist
  or the payout amount of the payout of 'the claim'
     is at most the estimated amount of the estimate of 'the claim' * 1.2
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "payout exceeds the damage estimate beyond tolerance" ;
`,
		},
	}
}

var claimsEpoch = time.Date(2011, 6, 1, 10, 0, 0, 0, time.UTC)

var adjusters = []struct{ name, email string }{
	{"Nora Quist", "nquist@insure.com"},
	{"Pete Vance", "pvance@insure.com"},
	{"Ada Wong", "awong@insure.com"},
}

var claimants = []struct{ name, email string }{
	{"Carl Maas", "cmaas@mail.com"},
	{"Dana Ortiz", "dortiz@mail.com"},
	{"Nora Quist", "nquist@insure.com"}, // an adjuster can also be a claimant
}

func generateClaimsTrace(rng *rand.Rand, app string, seed string) []GenEvent {
	claimant := claimants[rng.Intn(2)] // external claimants by default
	adjuster := adjusters[rng.Intn(len(adjusters))]
	if seed == "self-adjusting" {
		claimant = claimants[2]
		adjuster = adjusters[0] // Nora adjusts Nora's claim
	} else if adjuster.email == claimant.email {
		adjuster = adjusters[1]
	}
	base := claimsEpoch.Add(time.Duration(rng.Intn(1_000_000)) * time.Second)
	at := func(step int) time.Time { return base.Add(time.Duration(step) * time.Hour) }
	claimID := "CL-" + app

	claimed := 1000 + rng.Float64()*29000 // 1000 .. 30000
	estimate := claimed * (0.6 + rng.Float64()*0.4)
	payout := estimate * (0.9 + rng.Float64()*0.2) // within the 1.2 bound
	switch seed {
	case "no-senior-approval":
		// A large payout that stays inside the estimate bound, so only
		// the senior-approval control is genuinely violated.
		claimed = 15000 + rng.Float64()*15000
		estimate = claimed * (0.8 + rng.Float64()*0.2)
		payout = estimate * (0.9 + rng.Float64()*0.2)
	case "overpayment":
		payout = estimate * (1.5 + rng.Float64()*1.0)
	}
	large := payout > 10000

	var out []GenEvent
	emit := func(managed bool, source, etype string, step int, payload map[string]string) {
		out = append(out, GenEvent{Managed: managed, Event: events.AppEvent{
			Source: source, Type: etype, AppID: app, Timestamp: at(step), Payload: payload,
		}})
	}
	emit(true, "hrdir", "person.observed", 0, map[string]string{
		"recordId": app + "-claimant", "name": claimant.name, "email": claimant.email, "role": "Claimant",
	})
	emit(true, "hrdir", "person.observed", 0, map[string]string{
		"recordId": app + "-adjuster", "name": adjuster.name, "email": adjuster.email, "role": "Adjuster",
	})
	emit(true, "portal", "claim.filed", 1, map[string]string{
		"recordId": app + "-claim", "claim": claimID,
		"amount": fmt.Sprintf("%.2f", claimed), "claimantEmail": claimant.email,
	})
	emit(true, "portal", "task.file", 1, map[string]string{
		"recordId": app + "-t-file", "actorEmail": claimant.email,
	})
	emit(true, "dispatch", "adjuster.assigned", 2, map[string]string{
		"recordId": app + "-assign", "claim": claimID, "adjusterEmail": adjuster.email,
	})
	emit(false, "fieldtool", "task.assess", 4, map[string]string{
		"recordId": app + "-t-assess", "actorEmail": adjuster.email,
	})
	emit(false, "fieldtool", "estimate.recorded", 4, map[string]string{
		"recordId": app + "-est", "claim": claimID,
		"amount": fmt.Sprintf("%.2f", estimate),
	})
	if large && seed != "no-senior-approval" {
		emit(false, "mail", "payout.approved", 6, map[string]string{
			"recordId": app + "-pappr", "claim": claimID,
			"approverEmail": "senior@insure.com", "level": "senior",
		})
	}
	emit(true, "policy", "payout.released", 8, map[string]string{
		"recordId": app + "-payout", "claim": claimID,
		"amount": fmt.Sprintf("%.2f", payout),
	})
	emit(true, "policy", "task.disburse", 8, map[string]string{
		"recordId": app + "-t-pay", "actorEmail": "policy-bot@insure.com",
	})
	return out
}
