package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bom"
	"repro/internal/controls"
	"repro/internal/correlate"
	"repro/internal/events"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// Hiring builds the paper's "new position open" process (Fig 1): a hiring
// manager submits a job requisition; new positions route to the general
// manager for approval; approved (or existing-position) requisitions go to
// human resources, which finds job candidates and notifies the hiring
// manager.
//
// Management levels: the Lombardi workflow steps (submission, requisition
// record, notification) and the HR directory are managed; the general
// manager's approval happens over e-mail and the candidate search in a
// standalone HR tool — both unmanaged, captured only with the simulation's
// visibility probability.
func Hiring() (*Domain, error) {
	m := provenance.NewModel("hiring")
	if err := buildHiringModel(m); err != nil {
		return nil, err
	}
	om, err := xom.FromModel(m)
	if err != nil {
		return nil, err
	}
	// The paper's getManagerGen example: the general manager responsible
	// for a department, resolved through a lookup table.
	if err := om.RegisterMethod("jobRequisition", xom.LookupTableMethod(
		"getManagerGen", "dept", map[string]string{
			"dept501": "Jane Smith",
			"dept502": "Ravi Patel",
			"dept503": "Ana Flores",
		})); err != nil {
		return nil, err
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{
			"jobRequisition": "job requisition",
			"approvalStatus": "approval record",
		},
		MemberLabels: map[string]string{
			"jobRequisition.reqID":                "requisition ID",
			"jobRequisition.positionType":         "position type",
			"jobRequisition.submitterEmail":       "submitter email",
			"jobRequisition.submittedAt":          "submission time",
			"jobRequisition.getManagerGen":        "general manager",
			"jobRequisition.submitterOfInverse":   "submitter",
			"jobRequisition.approvalOfInverse":    "approval",
			"jobRequisition.candidatesForInverse": "candidate list",
			"approvalStatus.approved":             "approved flag",
			"approvalStatus.approverEmail":        "approver email",
			"approvalStatus.decidedAt":            "decision time",
			"candidateList.count":                 "candidate count",
		},
	})
	if err != nil {
		return nil, err
	}
	d := &Domain{
		Name:         "hiring",
		Model:        m,
		Vocab:        vocab,
		Mappings:     hiringMappings(),
		Correlations: hiringCorrelations(),
		Enrichers: []correlate.Enricher{
			&correlate.DurationEnricher{
				EnricherName: "submission-duration", NodeType: "submission",
				StartField: "start", EndField: "end", Target: "durationSeconds",
			},
		},
		Controls: hiringControls(),
		generate: generateHiringTrace,
		violationKinds: map[string]string{
			"skip-approval":        "gm-approval",
			"self-approval":        "four-eyes",
			"proceed-after-reject": "no-reject-proceed",
			"late-approval":        "approval-timeliness",
		},
	}
	return d, nil
}

func buildHiringModel(m *provenance.Model) error {
	steps := []func() error{
		func() error {
			return m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource,
				Doc: "an actor observed in the HR directory"})
		},
		func() error {
			return m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("person", &provenance.FieldDef{Name: "email", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("person", &provenance.FieldDef{Name: "manager", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("person", &provenance.FieldDef{Name: "role", Kind: provenance.KindString})
		},

		func() error {
			return m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassTask,
				Doc: "submit job requisition task"})
		},
		func() error {
			return m.AddField("submission", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("submission", &provenance.FieldDef{Name: "start", Kind: provenance.KindTime})
		},
		func() error {
			return m.AddField("submission", &provenance.FieldDef{Name: "end", Kind: provenance.KindTime})
		},
		func() error {
			return m.AddField("submission", &provenance.FieldDef{Name: "durationSeconds",
				Kind: provenance.KindFloat, Label: "submission duration",
				Doc: "derived by the duration enricher"})
		},

		func() error {
			return m.AddType(&provenance.TypeDef{Name: "approvalTask", Class: provenance.ClassTask,
				Doc: "approve/reject requisition task"})
		},
		func() error {
			return m.AddField("approvalTask", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString})
		},
		func() error {
			return m.AddType(&provenance.TypeDef{Name: "candidateSearch", Class: provenance.ClassTask,
				Doc: "find job candidates task"})
		},
		func() error {
			return m.AddField("candidateSearch", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString})
		},
		func() error {
			return m.AddType(&provenance.TypeDef{Name: "notification", Class: provenance.ClassTask,
				Doc: "notify hiring manager task"})
		},
		func() error {
			return m.AddField("notification", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString})
		},

		func() error {
			return m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData,
				Doc: "the job requisition business artifact"})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "dept", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "position", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "submitterEmail", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("jobRequisition", &provenance.FieldDef{Name: "submittedAt", Kind: provenance.KindTime})
		},

		func() error {
			return m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData,
				Doc: "the general manager's approval or rejection"})
		},
		func() error {
			return m.AddField("approvalStatus", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true})
		},
		func() error {
			return m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool})
		},
		func() error {
			return m.AddField("approvalStatus", &provenance.FieldDef{Name: "approverEmail", Kind: provenance.KindString})
		},
		func() error {
			return m.AddField("approvalStatus", &provenance.FieldDef{Name: "decidedAt", Kind: provenance.KindTime})
		},

		func() error {
			return m.AddType(&provenance.TypeDef{Name: "candidateList", Class: provenance.ClassData,
				Doc: "the list of job candidates"})
		},
		func() error {
			return m.AddField("candidateList", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true})
		},
		func() error {
			return m.AddField("candidateList", &provenance.FieldDef{Name: "count", Kind: provenance.KindInt})
		},

		func() error {
			return m.AddRelation(&provenance.RelationDef{Name: "submitterOf",
				SourceType: "person", TargetType: "jobRequisition"})
		},
		func() error {
			return m.AddRelation(&provenance.RelationDef{Name: "approvalOf",
				SourceType: "approvalStatus", TargetType: "jobRequisition"})
		},
		func() error {
			return m.AddRelation(&provenance.RelationDef{Name: "candidatesFor",
				SourceType: "candidateList", TargetType: "jobRequisition"})
		},
		func() error {
			return m.AddRelation(&provenance.RelationDef{Name: "managerOf",
				SourceType: "person", TargetType: "person"})
		},
		func() error { return m.AddRelation(&provenance.RelationDef{Name: "actor", SourceType: "person"}) },
		func() error { return m.AddRelation(&provenance.RelationDef{Name: "nextTask"}) },
		func() error { return controls.DeclareModel(m) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

func hiringMappings() []*events.Mapping {
	str := provenance.KindString
	return []*events.Mapping{
		{Name: "hr-directory", Source: "hrdir", EventType: "person.observed",
			NodeType: "person", Class: provenance.ClassResource, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "name", Attr: "name", Kind: str, Required: true},
				{PayloadKey: "email", Attr: "email", Kind: str, Required: true},
				{PayloadKey: "manager", Attr: "manager", Kind: str},
				{PayloadKey: "role", Attr: "role", Kind: str},
			}},
		{Name: "lombardi-requisition", Source: "lombardi", EventType: "requisition.submitted",
			NodeType: "jobRequisition", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "req", Attr: "reqID", Kind: str, Required: true},
				{PayloadKey: "ptype", Attr: "positionType", Kind: str},
				{PayloadKey: "dept", Attr: "dept", Kind: str},
				{PayloadKey: "position", Attr: "position", Kind: str},
				{PayloadKey: "submitterEmail", Attr: "submitterEmail", Kind: str},
				{PayloadKey: "submittedAt", Attr: "submittedAt", Kind: provenance.KindTime},
			}},
		{Name: "lombardi-submit-task", Source: "lombardi", EventType: "task.submit",
			NodeType: "submission", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str},
				{PayloadKey: "start", Attr: "start", Kind: provenance.KindTime},
				{PayloadKey: "end", Attr: "end", Kind: provenance.KindTime},
			}},
		{Name: "mail-approve-task", Source: "mail", EventType: "task.approve",
			NodeType: "approvalTask", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str},
			}},
		{Name: "mail-approval", Source: "mail", EventType: "approval.recorded",
			NodeType: "approvalStatus", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "req", Attr: "reqID", Kind: str, Required: true},
				{PayloadKey: "approved", Attr: "approved", Kind: provenance.KindBool, Required: true},
				{PayloadKey: "approverEmail", Attr: "approverEmail", Kind: str},
				{PayloadKey: "decidedAt", Attr: "decidedAt", Kind: provenance.KindTime},
			}},
		{Name: "hrdb-search-task", Source: "hrdb", EventType: "task.search",
			NodeType: "candidateSearch", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str},
			}},
		{Name: "hrdb-candidates", Source: "hrdb", EventType: "candidates.found",
			NodeType: "candidateList", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "req", Attr: "reqID", Kind: str, Required: true},
				{PayloadKey: "count", Attr: "count", Kind: provenance.KindInt},
			}},
		{Name: "lombardi-notify-task", Source: "lombardi", EventType: "task.notify",
			NodeType: "notification", Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str},
			}},
	}
}

func hiringCorrelations() []correlate.Rule {
	return []correlate.Rule{
		&correlate.KeyJoin{RuleName: "submitter-join", EdgeType: "submitterOf",
			SourceType: "person", SourceField: "email",
			TargetType: "jobRequisition", TargetField: "submitterEmail"},
		&correlate.KeyJoin{RuleName: "approval-join", EdgeType: "approvalOf",
			SourceType: "approvalStatus", SourceField: "reqID",
			TargetType: "jobRequisition", TargetField: "reqID"},
		&correlate.KeyJoin{RuleName: "candidates-join", EdgeType: "candidatesFor",
			SourceType: "candidateList", SourceField: "reqID",
			TargetType: "jobRequisition", TargetField: "reqID"},
		&correlate.KeyJoin{RuleName: "manager-join", EdgeType: "managerOf",
			SourceType: "person", SourceField: "name",
			TargetType: "person", TargetField: "manager"},
		ActorRule(),
		&correlate.TemporalOrder{RuleName: "task-order", EdgeType: "nextTask"},
	}
}

// ActorRule links person resources to the tasks they executed by matching
// the task's actorEmail attribute — an IT-level relation the paper lists
// ("a relation between a resource record and a task record shows who was
// involved in executing that particular task").
func ActorRule() correlate.Rule {
	return &correlate.Func{RuleName: "actor-join",
		Fn: func(g *provenance.Graph, appID string) []*provenance.Edge {
			byEmail := make(map[string][]*provenance.Node)
			for _, p := range g.Nodes(provenance.NodeFilter{Type: "person", AppID: appID}) {
				if e := p.Attr("email"); !e.IsZero() {
					byEmail[e.Str()] = append(byEmail[e.Str()], p)
				}
			}
			var out []*provenance.Edge
			for _, task := range g.Nodes(provenance.NodeFilter{Class: provenance.ClassTask, AppID: appID}) {
				email := task.Attr("actorEmail")
				if email.IsZero() {
					continue
				}
				for _, p := range byEmail[email.Str()] {
					out = append(out, &provenance.Edge{Type: "actor", Source: p.ID, Target: task.ID})
				}
			}
			return out
		}}
}

func hiringControls() []ControlSpec {
	return []ControlSpec{
		{
			ID:   "gm-approval",
			Name: "New positions need GM approval before candidate search",
			Text: `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is not "new"
  or the candidate list of 'the request' does not exist
  or the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "candidate search started without general manager approval" ;
`,
		},
		{
			ID:   "four-eyes",
			Name: "Requisitions must not be approved by their submitter",
			Text: `
definitions
  set 'the request' to a job requisition ;
if
  the approval of 'the request' does not exist
  or the approver email of the approval of 'the request'
     is not the submitter email of 'the request'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "requisition approved by its own submitter" ;
`,
		},
		{
			ID:   "no-reject-proceed",
			Name: "Rejected requisitions must not proceed to candidate search",
			Text: `
definitions
  set 'the request' to a job requisition ;
if
  the approval of 'the request' does not exist
  or the approved flag of the approval of 'the request' is true
  or the candidate list of 'the request' does not exist
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "candidate search proceeded after rejection" ;
`,
		},
		{
			ID:   "approval-timeliness",
			Name: "GM approval must follow submission within 48 hours",
			Text: `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is not "new"
  or the approval of 'the request' does not exist
  or the decision time of the approval of 'the request'
     is within 48 hours of the submission time of 'the request'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "general manager approval recorded more than 48 hours after submission" ;
`,
		},
	}
}

// hiringPeople is the deterministic actor pool.
var hiringManagers = []struct {
	name, email, manager, dept string
}{
	{"Joe Doe", "jdoe@acme.com", "Jane Smith", "dept501"},
	{"Mia Chen", "mchen@acme.com", "Jane Smith", "dept501"},
	{"Omar Haddad", "ohaddad@acme.com", "Ravi Patel", "dept502"},
	{"Lena Braun", "lbraun@acme.com", "Ana Flores", "dept503"},
}

var generalManagers = map[string]struct{ name, email string }{
	"dept501": {"Jane Smith", "jsmith@acme.com"},
	"dept502": {"Ravi Patel", "rpatel@acme.com"},
	"dept503": {"Ana Flores", "aflores@acme.com"},
}

var hiringEpoch = time.Date(2011, 4, 11, 9, 0, 0, 0, time.UTC)

// generateHiringTrace plays one instance of the Fig 1 process.
func generateHiringTrace(rng *rand.Rand, app string, seed string) []GenEvent {
	hm := hiringManagers[rng.Intn(len(hiringManagers))]
	gm := generalManagers[hm.dept]
	base := hiringEpoch.Add(time.Duration(rng.Intn(1_000_000)) * time.Second)
	at := func(step int) time.Time { return base.Add(time.Duration(step) * time.Minute) }
	ts := func(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

	newPosition := rng.Float64() < 0.5
	if seed != "" {
		newPosition = true // every seeded violation concerns a new position
	}
	ptype := "existing"
	if newPosition {
		ptype = "new"
	}
	reqID := "REQ-" + app

	var out []GenEvent
	emit := func(managed bool, source, etype string, step int, payload map[string]string) {
		out = append(out, GenEvent{Managed: managed, Event: events.AppEvent{
			Source: source, Type: etype, AppID: app, Timestamp: at(step), Payload: payload,
		}})
	}

	// Managed: HR directory observation of the submitter and the Lombardi
	// submission steps.
	emit(true, "hrdir", "person.observed", 0, map[string]string{
		"recordId": app + "-hm", "name": hm.name, "email": hm.email,
		"manager": hm.manager, "role": "Hiring Manager",
	})
	emit(true, "lombardi", "requisition.submitted", 1, map[string]string{
		"recordId": app + "-req", "req": reqID, "ptype": ptype,
		"dept": hm.dept, "position": "Sales Specialist", "submitterEmail": hm.email,
		"submittedAt": ts(at(1)),
	})
	emit(true, "lombardi", "task.submit", 1, map[string]string{
		"recordId": app + "-t-submit", "actorEmail": hm.email,
		"start": ts(at(0)), "end": ts(at(1)),
	})

	approved := true
	searchHappens := true
	if newPosition {
		switch seed {
		case "skip-approval":
			// No approval at all, but the search still happens.
		case "self-approval":
			emit(true, "hrdir", "person.observed", 2, map[string]string{
				"recordId": app + "-gm", "name": gm.name, "email": gm.email, "role": "General Manager",
			})
			emit(false, "mail", "task.approve", 3, map[string]string{
				"recordId": app + "-t-approve", "actorEmail": hm.email,
			})
			emit(false, "mail", "approval.recorded", 3, map[string]string{
				"recordId": app + "-apprv", "req": reqID,
				"approved": "true", "approverEmail": hm.email, "decidedAt": ts(at(3)),
			})
		case "late-approval":
			// The approval is genuine — right approver, right outcome — but
			// recorded 60 hours after submission, violating the 48-hour
			// timeliness window.
			emit(true, "hrdir", "person.observed", 2, map[string]string{
				"recordId": app + "-gm", "name": gm.name, "email": gm.email, "role": "General Manager",
			})
			emit(false, "mail", "task.approve", 3, map[string]string{
				"recordId": app + "-t-approve", "actorEmail": gm.email,
			})
			emit(false, "mail", "approval.recorded", 3, map[string]string{
				"recordId": app + "-apprv", "req": reqID,
				"approved": "true", "approverEmail": gm.email,
				"decidedAt": ts(at(1).Add(60 * time.Hour)),
			})
		case "proceed-after-reject":
			approved = false
			emit(true, "hrdir", "person.observed", 2, map[string]string{
				"recordId": app + "-gm", "name": gm.name, "email": gm.email, "role": "General Manager",
			})
			emit(false, "mail", "task.approve", 3, map[string]string{
				"recordId": app + "-t-approve", "actorEmail": gm.email,
			})
			emit(false, "mail", "approval.recorded", 3, map[string]string{
				"recordId": app + "-apprv", "req": reqID,
				"approved": "false", "approverEmail": gm.email, "decidedAt": ts(at(3)),
			})
		default:
			approved = rng.Float64() < 0.9
			emit(true, "hrdir", "person.observed", 2, map[string]string{
				"recordId": app + "-gm", "name": gm.name, "email": gm.email, "role": "General Manager",
			})
			emit(false, "mail", "task.approve", 3, map[string]string{
				"recordId": app + "-t-approve", "actorEmail": gm.email,
			})
			emit(false, "mail", "approval.recorded", 3, map[string]string{
				"recordId": app + "-apprv", "req": reqID,
				"approved": fmt.Sprintf("%t", approved), "approverEmail": gm.email,
				"decidedAt": ts(at(3)),
			})
			if !approved {
				searchHappens = false // compliant rejection: process stops
			}
		}
	}
	if searchHappens {
		emit(false, "hrdb", "task.search", 5, map[string]string{
			"recordId": app + "-t-search", "actorEmail": "hr@acme.com",
		})
		emit(false, "hrdb", "candidates.found", 6, map[string]string{
			"recordId": app + "-cand", "req": reqID,
			"count": fmt.Sprintf("%d", 1+rng.Intn(8)),
		})
	}
	emit(true, "lombardi", "task.notify", 7, map[string]string{
		"recordId": app + "-t-notify", "actorEmail": "system@acme.com",
	})
	return out
}
