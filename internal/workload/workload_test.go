package workload_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

func domains(t testing.TB) []*workload.Domain {
	t.Helper()
	var out []*workload.Domain
	for _, build := range []func() (*workload.Domain, error){
		workload.Hiring, workload.Procurement, workload.Claims,
	} {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestDomainsWireUp verifies every domain's model, mappings, correlations
// and control texts are mutually consistent: core.New compiles all of them
// against the generated vocabulary.
func TestDomainsWireUp(t *testing.T) {
	for _, d := range domains(t) {
		sys, err := core.New(d, core.Config{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if got := len(sys.Registry.List()); got != len(d.Controls) {
			t.Errorf("%s: %d controls deployed, want %d", d.Name, got, len(d.Controls))
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimulateDeterminism(t *testing.T) {
	for _, d := range domains(t) {
		opts := workload.SimOptions{Seed: 42, Traces: 25, ViolationRate: 0.3, Visibility: 0.8}
		a := d.Simulate(opts)
		b := d.Simulate(opts)
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("%s: event streams differ across identical runs", d.Name)
		}
		if !reflect.DeepEqual(a.Truth, b.Truth) {
			t.Errorf("%s: truth differs across identical runs", d.Name)
		}
		c := d.Simulate(workload.SimOptions{Seed: 43, Traces: 25, ViolationRate: 0.3, Visibility: 0.8})
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Errorf("%s: different seeds produced identical streams", d.Name)
		}
	}
}

func TestSimulateVisibilityDropsUnmanagedOnly(t *testing.T) {
	for _, d := range domains(t) {
		full := d.Simulate(workload.SimOptions{Seed: 7, Traces: 50, Visibility: 1.0})
		if full.Dropped != 0 {
			t.Errorf("%s: full visibility dropped %d events", d.Name, full.Dropped)
		}
		half := d.Simulate(workload.SimOptions{Seed: 7, Traces: 50, Visibility: 0.5})
		if half.Dropped == 0 {
			t.Errorf("%s: visibility 0.5 dropped nothing", d.Name)
		}
		if half.Generated != full.Generated {
			t.Errorf("%s: generation depends on visibility", d.Name)
		}
		if len(half.Events) >= len(full.Events) {
			t.Errorf("%s: dropping lost no events", d.Name)
		}
	}
}

func TestSimulateViolationRate(t *testing.T) {
	d := domains(t)[0]
	res := d.Simulate(workload.SimOptions{Seed: 1, Traces: 1000, ViolationRate: 0.3})
	var v int
	for _, tr := range res.Truth {
		if tr.Violation {
			v++
			if tr.Kind == "" || tr.ControlID == "" {
				t.Fatalf("violating trace lacks kind/control: %+v", tr)
			}
		}
	}
	if v < 240 || v > 360 {
		t.Errorf("seeded violations = %d of 1000, want ~300", v)
	}
}

// runFull ingests a simulation into a fresh system, correlates and checks.
func runFull(t testing.TB, d *workload.Domain, res *workload.SimResult) map[string]map[string]rules.Verdict {
	t.Helper()
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]map[string]rules.Verdict) // app -> control -> verdict
	for _, o := range outcomes {
		app := o.Result.AppID
		if verdicts[app] == nil {
			verdicts[app] = make(map[string]rules.Verdict)
		}
		verdicts[app][o.ControlID] = o.Result.Verdict
	}
	return verdicts
}

// TestGroundTruthAtFullVisibility is the end-to-end oracle: with every
// event captured, each control's verdict must match the seeded ground
// truth exactly — violated on its seeded violations, satisfied elsewhere.
func TestGroundTruthAtFullVisibility(t *testing.T) {
	for _, d := range domains(t) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res := d.Simulate(workload.SimOptions{Seed: 11, Traces: 200, ViolationRate: 0.3, Visibility: 1.0})
			verdicts := runFull(t, d, res)
			if len(verdicts) != 200 {
				t.Fatalf("traces checked = %d", len(verdicts))
			}
			for app, truth := range res.Truth {
				for control, v := range verdicts[app] {
					want := rules.Satisfied
					if truth.Violation && truth.ControlID == control {
						want = rules.Violated
					}
					if v != want {
						t.Errorf("%s %s: verdict %v, want %v (truth: %+v)", app, control, v, want, truth)
					}
				}
			}
		})
	}
}

// TestReorderInvariance: correlation is key-based, so delivery order must
// not change any verdict.
func TestReorderInvariance(t *testing.T) {
	for _, d := range domains(t) {
		ordered := d.Simulate(workload.SimOptions{Seed: 5, Traces: 60, ViolationRate: 0.3, Visibility: 1.0})
		shuffled := d.Simulate(workload.SimOptions{Seed: 5, Traces: 60, ViolationRate: 0.3, Visibility: 1.0, Reorder: true})
		a := runFull(t, d, ordered)
		b := runFull(t, d, shuffled)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: verdicts depend on delivery order", d.Name)
		}
	}
}

// TestDuplicateDelivery: at-least-once capture must not change verdicts
// (duplicate record IDs are rejected by the store, first write wins).
func TestDuplicateDelivery(t *testing.T) {
	d := domains(t)[0]
	clean := d.Simulate(workload.SimOptions{Seed: 9, Traces: 40, ViolationRate: 0.3, Visibility: 1.0})
	dups := d.Simulate(workload.SimOptions{Seed: 9, Traces: 40, ViolationRate: 0.3, Visibility: 1.0, DuplicateRate: 0.5})
	if len(dups.Events) <= len(clean.Events) {
		t.Skip("no duplicates generated at this seed")
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Duplicate IDs produce ingest errors; the pipeline keeps going.
	_ = sys.Ingest(dups.Events)
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		truth := dups.Truth[o.Result.AppID]
		want := rules.Satisfied
		if truth.Violation && truth.ControlID == o.ControlID {
			want = rules.Violated
		}
		if o.Result.Verdict != want {
			t.Errorf("%s %s: verdict %v, want %v", o.Result.AppID, o.ControlID, o.Result.Verdict, want)
		}
	}
}

func TestViolationKindsAccessors(t *testing.T) {
	d := domains(t)[0]
	kinds := d.ViolationKinds()
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
	if d.ControlFor("skip-approval") != "gm-approval" {
		t.Fatalf("ControlFor = %q", d.ControlFor("skip-approval"))
	}
}

// TestLowVisibilityDegradesGracefully: at reduced visibility the system
// must produce some non-definite verdicts or false alarms, but never crash
// and never mislabel a fully-captured violation as satisfied.
func TestLowVisibilityDegradesGracefully(t *testing.T) {
	d := domains(t)[0]
	res := d.Simulate(workload.SimOptions{Seed: 21, Traces: 150, ViolationRate: 0.3, Visibility: 0.6})
	verdicts := runFull(t, d, res)
	counts := map[rules.Verdict]int{}
	for _, per := range verdicts {
		for _, v := range per {
			counts[v]++
		}
	}
	if counts[rules.Satisfied] == 0 || counts[rules.Violated] == 0 {
		t.Fatalf("degenerate verdict distribution: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 150*4 {
		t.Fatalf("total verdicts = %d", total)
	}
}

func BenchmarkSimulateHiring(b *testing.B) {
	d, err := workload.Hiring()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := d.Simulate(workload.SimOptions{Seed: int64(i), Traces: 100, ViolationRate: 0.3})
		if len(res.Events) == 0 {
			b.Fatal("no events")
		}
	}
}

func BenchmarkEndToEndHiring(b *testing.B) {
	d, err := workload.Hiring()
	if err != nil {
		b.Fatal(err)
	}
	res := d.Simulate(workload.SimOptions{Seed: 3, Traces: 100, ViolationRate: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(d, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Ingest(res.Events); err != nil {
			b.Fatal(err)
		}
		if err := sys.CorrelateAll(); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.CheckAll(); err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}

func ExampleDomain() {
	d, _ := workload.Hiring()
	fmt.Println(d.Name, len(d.Controls))
	// Output: hiring 4
}

// TestVisibilityMonotonicity: lowering visibility can only reduce the
// share of decisions the rule engine settles definitely-correctly. The
// runs are seeded, so the assertion is deterministic.
func TestVisibilityMonotonicity(t *testing.T) {
	d := domains(t)[0]
	correctShare := func(vis float64) float64 {
		res := d.Simulate(workload.SimOptions{Seed: 33, Traces: 200, ViolationRate: 0.3, Visibility: vis})
		verdicts := runFull(t, d, res)
		correct, total := 0, 0
		for app, per := range verdicts {
			truth := res.Truth[app]
			for control, v := range per {
				total++
				want := rules.Satisfied
				if truth.Violation && truth.ControlID == control {
					want = rules.Violated
				}
				if v == want {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	full := correctShare(1.0)
	low := correctShare(0.5)
	if full != 1.0 {
		t.Fatalf("full visibility correctness = %v, want 1.0", full)
	}
	if low >= full {
		t.Fatalf("low-visibility correctness %v not below full %v", low, full)
	}
	if low < 0.5 {
		t.Fatalf("low-visibility correctness %v collapsed", low)
	}
}

// TestEventBatches verifies batching preserves order, respects the size
// bound, and covers every captured event exactly once.
func TestEventBatches(t *testing.T) {
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	res := d.Simulate(workload.SimOptions{Seed: 7, Traces: 20, Visibility: 1.0})
	for _, size := range []int{1, 7, 128, len(res.Events) + 1} {
		batches := res.EventBatches(size)
		var flat int
		for i, b := range batches {
			if len(b) == 0 || len(b) > size {
				t.Fatalf("size %d: batch %d has %d events", size, i, len(b))
			}
			if i < len(batches)-1 && len(b) != size {
				t.Fatalf("size %d: non-final batch %d has %d events", size, i, len(b))
			}
			for j, ev := range b {
				if !reflect.DeepEqual(ev, res.Events[flat+j]) {
					t.Fatalf("size %d: batch %d event %d out of order", size, i, j)
				}
			}
			flat += len(b)
		}
		if flat != len(res.Events) {
			t.Fatalf("size %d: batches cover %d of %d events", size, flat, len(res.Events))
		}
	}
	if got := res.EventBatches(0); len(got) == 0 {
		t.Fatal("EventBatches(0) returned nothing; want default size")
	}
}
