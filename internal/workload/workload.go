// Package workload provides the process domains the reproduction runs on:
// complete bundles of provenance data model, recorder mappings,
// correlation rules, business vocabulary and internal controls for three
// partially managed business processes, plus a deterministic simulator
// that plays process instances and emits their application events.
//
// The hiring domain is the paper's Fig 1 "new position open" process
// (taken from the Lombardi user guide); procurement (three-way match) and
// insurance claims are the additional scenarios the experiments sweep.
//
// The simulator models partial management explicitly: every generated
// event is marked managed or unmanaged. Managed events come from workflow
// systems and are always captured; unmanaged events (email approvals,
// manual steps) are captured only with the configured visibility
// probability — the operating regime the paper targets.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bom"
	"repro/internal/correlate"
	"repro/internal/events"
	"repro/internal/provenance"
)

// ControlSpec is one internal control shipped with a domain.
type ControlSpec struct {
	ID   string
	Name string
	Text string
}

// GenEvent is one simulated application event with its management flag.
type GenEvent struct {
	Event events.AppEvent
	// Managed events are emitted by workflow systems and always captured;
	// unmanaged ones are subject to visibility loss.
	Managed bool
}

// TraceTruth is the ground truth of one simulated trace.
type TraceTruth struct {
	AppID string
	// Violation reports whether the trace genuinely violates a control.
	Violation bool
	// Kind names the seeded violation ("skip-approval", ...); empty for
	// compliant traces.
	Kind string
	// ControlID names the control the seeded violation targets.
	ControlID string
}

// Domain bundles one business process.
type Domain struct {
	// Name identifies the domain ("hiring").
	Name string
	// Model is the provenance data model, including the control-point
	// declarations.
	Model *provenance.Model
	// Vocab is the verbalized business vocabulary.
	Vocab *bom.Vocabulary
	// Mappings are the recorder clients.
	Mappings []*events.Mapping
	// Correlations are the analytics rules that derive the graph edges.
	Correlations []correlate.Rule
	// Enrichers are the enrichment passes run after correlation.
	Enrichers []correlate.Enricher
	// Controls are the domain's internal controls in business vocabulary.
	Controls []ControlSpec

	// generate plays one process instance.
	generate func(rng *rand.Rand, app string, seedViolation string) []GenEvent
	// violationKinds lists the seedable violation kinds with the control
	// each one violates.
	violationKinds map[string]string
}

// SimOptions configures a simulation run.
type SimOptions struct {
	// Seed makes the run reproducible.
	Seed int64
	// Traces is the number of process instances to play.
	Traces int
	// ViolationRate is the fraction of traces seeded with a genuine
	// violation (spread uniformly over the domain's violation kinds).
	ViolationRate float64
	// Visibility is the capture probability of unmanaged events; managed
	// events are always captured. 1.0 reproduces a fully managed process.
	Visibility float64
	// DuplicateRate is the probability an unmanaged event is delivered
	// twice (at-least-once capture).
	DuplicateRate float64
	// Reorder shuffles event delivery order within each trace; record
	// timestamps are unaffected.
	Reorder bool
}

// SimResult is the output of a simulation run.
type SimResult struct {
	// Events are the captured application events, in delivery order.
	Events []events.AppEvent
	// Truth maps trace IDs to their ground truth.
	Truth map[string]TraceTruth
	// Generated counts events before visibility loss; Dropped counts the
	// unmanaged events that were lost.
	Generated int
	Dropped   int
}

// Simulate plays opts.Traces process instances and applies the
// partial-management noise model.
func (d *Domain) Simulate(opts SimOptions) *SimResult {
	if opts.Visibility <= 0 {
		opts.Visibility = 1.0
	}
	// Two independent streams: trace content and capture noise. This keeps
	// the generated process instances (and the ground truth) identical
	// across runs that differ only in the noise parameters.
	genRng := rand.New(rand.NewSource(opts.Seed))
	noiseRng := rand.New(rand.NewSource(opts.Seed ^ 0x5DEECE66D))
	res := &SimResult{Truth: make(map[string]TraceTruth, opts.Traces)}

	kinds := make([]string, 0, len(d.violationKinds))
	for k := range d.violationKinds {
		kinds = append(kinds, k)
	}
	// Deterministic order for the rng stream.
	sortStrings(kinds)

	for i := 0; i < opts.Traces; i++ {
		app := fmt.Sprintf("%s-%06d", d.Name, i)
		seed := ""
		if len(kinds) > 0 && genRng.Float64() < opts.ViolationRate {
			seed = kinds[genRng.Intn(len(kinds))]
		}
		gen := d.generate(genRng, app, seed)
		res.Truth[app] = TraceTruth{
			AppID:     app,
			Violation: seed != "",
			Kind:      seed,
			ControlID: d.violationKinds[seed],
		}
		var delivered []events.AppEvent
		for _, ge := range gen {
			res.Generated++
			if !ge.Managed && noiseRng.Float64() > opts.Visibility {
				res.Dropped++
				continue
			}
			delivered = append(delivered, ge.Event)
			if !ge.Managed && opts.DuplicateRate > 0 && noiseRng.Float64() < opts.DuplicateRate {
				delivered = append(delivered, ge.Event)
			}
		}
		if opts.Reorder {
			noiseRng.Shuffle(len(delivered), func(a, b int) {
				delivered[a], delivered[b] = delivered[b], delivered[a]
			})
		}
		res.Events = append(res.Events, delivered...)
	}
	return res
}

// EventBatches splits the captured events into ingestion batches of at
// most size events each, preserving delivery order. Recorder clients and
// the ingestion experiments use it to model clients that ship events in
// bounded posts rather than one giant array.
func (r *SimResult) EventBatches(size int) [][]events.AppEvent {
	if size <= 0 {
		size = 128
	}
	var batches [][]events.AppEvent
	for off := 0; off < len(r.Events); off += size {
		end := off + size
		if end > len(r.Events) {
			end = len(r.Events)
		}
		batches = append(batches, r.Events[off:end])
	}
	return batches
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ViolationKinds lists the domain's seedable violation kinds, sorted.
func (d *Domain) ViolationKinds() []string {
	kinds := make([]string, 0, len(d.violationKinds))
	for k := range d.violationKinds {
		kinds = append(kinds, k)
	}
	sortStrings(kinds)
	return kinds
}

// ControlFor returns the ID of the control a violation kind targets.
func (d *Domain) ControlFor(kind string) string { return d.violationKinds[kind] }
