package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bom"
	"repro/internal/controls"
	"repro/internal/correlate"
	"repro/internal/events"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// Procurement builds a purchase-to-pay process with the classic three-way
// match controls. The ERP records purchase orders and payments (managed);
// PO approvals travel by e-mail and goods receipts are scanned in a
// standalone warehouse tool (both unmanaged), so the match evidence spans
// systems exactly as the paper's partially managed setting describes.
func Procurement() (*Domain, error) {
	m := provenance.NewModel("procurement")
	if err := buildProcurementModel(m); err != nil {
		return nil, err
	}
	om, err := xom.FromModel(m)
	if err != nil {
		return nil, err
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{
			"purchaseOrder": "purchase order",
			"poApproval":    "purchase approval",
		},
		MemberLabels: map[string]string{
			"purchaseOrder.poID":               "PO number",
			"purchaseOrder.amount":             "order amount",
			"purchaseOrder.requesterEmail":     "requester email",
			"purchaseOrder.approvalForInverse": "PO approval",
			"purchaseOrder.receiptForInverse":  "goods receipt",
			"purchaseOrder.invoiceForInverse":  "invoice",
			"purchaseOrder.paymentForInverse":  "payment",
			"purchaseOrder.requesterOfInverse": "requester",
			"poApproval.approved":              "approval flag",
			"poApproval.approverEmail":         "approver email",
			"invoice.amount":                   "invoice amount",
			"payment.amount":                   "paid amount",
			"goodsReceipt.quantity":            "received quantity",
		},
	})
	if err != nil {
		return nil, err
	}
	return &Domain{
		Name:         "procurement",
		Model:        m,
		Vocab:        vocab,
		Mappings:     procurementMappings(),
		Correlations: procurementCorrelations(),
		Controls:     procurementControls(),
		generate:     generateProcurementTrace,
		violationKinds: map[string]string{
			"pay-without-receipt": "three-way-match",
			"invoice-overrun":     "invoice-tolerance",
			"skip-po-approval":    "po-approval",
		},
	}, nil
}

func buildProcurementModel(m *provenance.Model) error {
	type fieldSpec struct {
		typ string
		f   provenance.FieldDef
	}
	types := []provenance.TypeDef{
		{Name: "person", Class: provenance.ClassResource},
		{Name: "poCreation", Class: provenance.ClassTask},
		{Name: "receiving", Class: provenance.ClassTask},
		{Name: "payRun", Class: provenance.ClassTask},
		{Name: "purchaseOrder", Class: provenance.ClassData},
		{Name: "poApproval", Class: provenance.ClassData},
		{Name: "goodsReceipt", Class: provenance.ClassData},
		{Name: "invoice", Class: provenance.ClassData},
		{Name: "payment", Class: provenance.ClassData},
	}
	fields := []fieldSpec{
		{"person", provenance.FieldDef{Name: "name", Kind: provenance.KindString}},
		{"person", provenance.FieldDef{Name: "email", Kind: provenance.KindString}},
		{"person", provenance.FieldDef{Name: "role", Kind: provenance.KindString}},
		{"poCreation", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"receiving", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"payRun", provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}},
		{"purchaseOrder", provenance.FieldDef{Name: "poID", Kind: provenance.KindString, Indexed: true}},
		{"purchaseOrder", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
		{"purchaseOrder", provenance.FieldDef{Name: "vendor", Kind: provenance.KindString}},
		{"purchaseOrder", provenance.FieldDef{Name: "requesterEmail", Kind: provenance.KindString}},
		{"poApproval", provenance.FieldDef{Name: "poID", Kind: provenance.KindString, Indexed: true}},
		{"poApproval", provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}},
		{"poApproval", provenance.FieldDef{Name: "approverEmail", Kind: provenance.KindString}},
		{"goodsReceipt", provenance.FieldDef{Name: "poID", Kind: provenance.KindString, Indexed: true}},
		{"goodsReceipt", provenance.FieldDef{Name: "quantity", Kind: provenance.KindInt}},
		{"invoice", provenance.FieldDef{Name: "poID", Kind: provenance.KindString, Indexed: true}},
		{"invoice", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
		{"invoice", provenance.FieldDef{Name: "vendor", Kind: provenance.KindString}},
		{"payment", provenance.FieldDef{Name: "poID", Kind: provenance.KindString, Indexed: true}},
		{"payment", provenance.FieldDef{Name: "amount", Kind: provenance.KindFloat}},
	}
	relations := []provenance.RelationDef{
		{Name: "approvalFor", SourceType: "poApproval", TargetType: "purchaseOrder"},
		{Name: "receiptFor", SourceType: "goodsReceipt", TargetType: "purchaseOrder"},
		{Name: "invoiceFor", SourceType: "invoice", TargetType: "purchaseOrder"},
		{Name: "paymentFor", SourceType: "payment", TargetType: "purchaseOrder"},
		{Name: "requesterOf", SourceType: "person", TargetType: "purchaseOrder"},
		{Name: "actor", SourceType: "person"},
		{Name: "nextTask"},
	}
	for i := range types {
		if err := m.AddType(&types[i]); err != nil {
			return err
		}
	}
	for i := range fields {
		f := fields[i].f
		if err := m.AddField(fields[i].typ, &f); err != nil {
			return err
		}
	}
	for i := range relations {
		r := relations[i]
		if err := m.AddRelation(&r); err != nil {
			return err
		}
	}
	return controls.DeclareModel(m)
}

func procurementMappings() []*events.Mapping {
	str := provenance.KindString
	flt := provenance.KindFloat
	return []*events.Mapping{
		{Name: "erp-po", Source: "erp", EventType: "po.created",
			NodeType: "purchaseOrder", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "po", Attr: "poID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
				{PayloadKey: "vendor", Attr: "vendor", Kind: str},
				{PayloadKey: "requesterEmail", Attr: "requesterEmail", Kind: str},
			}},
		{Name: "erp-po-task", Source: "erp", EventType: "task.po", NodeType: "poCreation",
			Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "mail-po-approval", Source: "mail", EventType: "po.approved",
			NodeType: "poApproval", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "po", Attr: "poID", Kind: str, Required: true},
				{PayloadKey: "approved", Attr: "approved", Kind: provenance.KindBool},
				{PayloadKey: "approverEmail", Attr: "approverEmail", Kind: str},
			}},
		{Name: "wms-receipt", Source: "wms", EventType: "goods.received",
			NodeType: "goodsReceipt", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "po", Attr: "poID", Kind: str, Required: true},
				{PayloadKey: "quantity", Attr: "quantity", Kind: provenance.KindInt},
			}},
		{Name: "wms-receive-task", Source: "wms", EventType: "task.receive", NodeType: "receiving",
			Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "ap-invoice", Source: "ap", EventType: "invoice.posted",
			NodeType: "invoice", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "po", Attr: "poID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
				{PayloadKey: "vendor", Attr: "vendor", Kind: str},
			}},
		{Name: "erp-payment", Source: "erp", EventType: "payment.released",
			NodeType: "payment", Class: provenance.ClassData, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "po", Attr: "poID", Kind: str, Required: true},
				{PayloadKey: "amount", Attr: "amount", Kind: flt},
			}},
		{Name: "erp-pay-task", Source: "erp", EventType: "task.pay", NodeType: "payRun",
			Class: provenance.ClassTask, IDKey: "recordId",
			Fields: []events.FieldMapping{{PayloadKey: "actorEmail", Attr: "actorEmail", Kind: str}}},
		{Name: "directory", Source: "hrdir", EventType: "person.observed",
			NodeType: "person", Class: provenance.ClassResource, IDKey: "recordId",
			Fields: []events.FieldMapping{
				{PayloadKey: "name", Attr: "name", Kind: str, Required: true},
				{PayloadKey: "email", Attr: "email", Kind: str},
				{PayloadKey: "role", Attr: "role", Kind: str},
			}},
	}
}

func procurementCorrelations() []correlate.Rule {
	join := func(name, edge, src string) correlate.Rule {
		return &correlate.KeyJoin{RuleName: name, EdgeType: edge,
			SourceType: src, SourceField: "poID",
			TargetType: "purchaseOrder", TargetField: "poID"}
	}
	return []correlate.Rule{
		join("po-approval-join", "approvalFor", "poApproval"),
		join("receipt-join", "receiptFor", "goodsReceipt"),
		join("invoice-join", "invoiceFor", "invoice"),
		join("payment-join", "paymentFor", "payment"),
		&correlate.KeyJoin{RuleName: "requester-join", EdgeType: "requesterOf",
			SourceType: "person", SourceField: "email",
			TargetType: "purchaseOrder", TargetField: "requesterEmail"},
		ActorRule(),
		&correlate.TemporalOrder{RuleName: "task-order", EdgeType: "nextTask"},
	}
}

func procurementControls() []ControlSpec {
	return []ControlSpec{
		{
			ID:   "three-way-match",
			Name: "Payments require goods receipt and invoice",
			Text: `
definitions
  set 'the order' to a purchase order ;
if
  the payment of 'the order' does not exist
  or ( the goods receipt of 'the order' exists
       and the invoice of 'the order' exists )
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "payment released without a complete three-way match" ;
`,
		},
		{
			ID:   "invoice-tolerance",
			Name: "Invoices must stay within 5% of the order amount",
			Text: `
definitions
  set 'the order' to a purchase order ;
if
  the invoice of 'the order' does not exist
  or the invoice amount of the invoice of 'the order'
     is at most the order amount of 'the order' * 1.05
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "invoice exceeds the order amount beyond tolerance" ;
`,
		},
		{
			ID:   "po-approval",
			Name: "Orders above 10000 require an approval",
			Text: `
definitions
  set 'the order' to a purchase order ;
if
  the order amount of 'the order' is at most 10000
  or the PO approval of 'the order' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "large order placed without approval" ;
`,
		},
	}
}

var procurementEpoch = time.Date(2011, 5, 2, 8, 0, 0, 0, time.UTC)

var buyers = []struct{ name, email string }{
	{"Sam Porter", "sporter@acme.com"},
	{"Ida Novak", "inovak@acme.com"},
	{"Leo Park", "lpark@acme.com"},
}

func generateProcurementTrace(rng *rand.Rand, app string, seed string) []GenEvent {
	buyer := buyers[rng.Intn(len(buyers))]
	base := procurementEpoch.Add(time.Duration(rng.Intn(1_000_000)) * time.Second)
	at := func(step int) time.Time { return base.Add(time.Duration(step) * time.Hour) }
	poID := "PO-" + app

	amount := 500 + rng.Float64()*19500 // 500 .. 20000
	if seed == "skip-po-approval" {
		amount = 10001 + rng.Float64()*9999 // force above threshold
	}
	large := amount > 10000

	var out []GenEvent
	emit := func(managed bool, source, etype string, step int, payload map[string]string) {
		out = append(out, GenEvent{Managed: managed, Event: events.AppEvent{
			Source: source, Type: etype, AppID: app, Timestamp: at(step), Payload: payload,
		}})
	}

	emit(true, "hrdir", "person.observed", 0, map[string]string{
		"recordId": app + "-buyer", "name": buyer.name, "email": buyer.email, "role": "Buyer",
	})
	emit(true, "erp", "po.created", 1, map[string]string{
		"recordId": app + "-po", "po": poID,
		"amount": fmt.Sprintf("%.2f", amount), "vendor": "Vendor-X",
		"requesterEmail": buyer.email,
	})
	emit(true, "erp", "task.po", 1, map[string]string{
		"recordId": app + "-t-po", "actorEmail": buyer.email,
	})
	if large && seed != "skip-po-approval" {
		emit(false, "mail", "po.approved", 2, map[string]string{
			"recordId": app + "-appr", "po": poID,
			"approved": "true", "approverEmail": "cfo@acme.com",
		})
	}
	if seed != "pay-without-receipt" {
		emit(false, "wms", "goods.received", 5, map[string]string{
			"recordId": app + "-gr", "po": poID,
			"quantity": fmt.Sprintf("%d", 1+rng.Intn(100)),
		})
		emit(false, "wms", "task.receive", 5, map[string]string{
			"recordId": app + "-t-recv", "actorEmail": "warehouse@acme.com",
		})
	}
	invoiceAmount := amount * (0.97 + rng.Float64()*0.06) // within ±~5%
	if seed == "invoice-overrun" {
		invoiceAmount = amount * (1.2 + rng.Float64()*0.5)
	}
	emit(true, "ap", "invoice.posted", 8, map[string]string{
		"recordId": app + "-inv", "po": poID,
		"amount": fmt.Sprintf("%.2f", invoiceAmount), "vendor": "Vendor-X",
	})
	emit(true, "erp", "payment.released", 10, map[string]string{
		"recordId": app + "-pay", "po": poID,
		"amount": fmt.Sprintf("%.2f", invoiceAmount),
	})
	emit(true, "erp", "task.pay", 10, map[string]string{
		"recordId": app + "-t-pay", "actorEmail": "ap-bot@acme.com",
	})
	return out
}
