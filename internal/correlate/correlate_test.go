package correlate

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

func testModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	must(m.AddField("person", &provenance.FieldDef{Name: "email", Kind: provenance.KindString}))
	must(m.AddField("person", &provenance.FieldDef{Name: "manager", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassTask}))
	must(m.AddField("submission", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}))
	must(m.AddRelation(&provenance.RelationDef{Name: "approvalOf", SourceType: "approvalStatus", TargetType: "jobRequisition"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "actor", SourceType: "person", TargetType: "submission"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "managerOf", SourceType: "person", TargetType: "person"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "nextTask"}))
	return m
}

func testStore(t testing.TB) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func put(t testing.TB, s *store.Store, n *provenance.Node) {
	t.Helper()
	if err := s.PutNode(n); err != nil {
		t.Fatal(err)
	}
}

func approvalJoin() *KeyJoin {
	return &KeyJoin{
		RuleName: "approval-join", EdgeType: "approvalOf",
		SourceType: "approvalStatus", SourceField: "reqID",
		TargetType: "jobRequisition", TargetField: "reqID",
	}
}

func TestKeyJoinDerivesEdges(t *testing.T) {
	s := testStore(t)
	put(t, s, &provenance.Node{ID: "req1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	put(t, s, &provenance.Node{ID: "app1", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "A", Attrs: map[string]provenance.Value{
			"reqID": provenance.String("R1"), "approved": provenance.Bool(true)}})
	// Unrelated approval: different key, must not join.
	put(t, s, &provenance.Node{ID: "app2", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R99")}})
	// Approval without a key: must not join.
	put(t, s, &provenance.Node{ID: "app3", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "A"})

	e, err := NewEngine(s, approvalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	var has bool
	err = s.View(func(g *provenance.Graph) error {
		has = g.HasEdge("app1", "approvalOf", "req1")
		if g.NumEdges() != 1 {
			return fmt.Errorf("derived %d edges, want 1", g.NumEdges())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("approvalOf edge missing")
	}
	st := e.Stats()
	if st.EdgesDerived != 1 || st.TracesProcessed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyJoinIsIdempotent(t *testing.T) {
	s := testStore(t)
	put(t, s, &provenance.Node{ID: "req1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	put(t, s, &provenance.Node{ID: "app1", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	e, err := NewEngine(s, approvalJoin())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.RunTrace("A"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Edges; got != 1 {
		t.Fatalf("edges after 3 runs = %d, want 1", got)
	}
}

func TestKeyJoinRespectsTraceBoundary(t *testing.T) {
	s := testStore(t)
	put(t, s, &provenance.Node{ID: "req1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	// Same key but another trace: must not join.
	put(t, s, &provenance.Node{ID: "app1", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "B", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	e, err := NewEngine(s, approvalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Edges; got != 0 {
		t.Fatalf("cross-trace join produced %d edges", got)
	}
}

func TestManagerSelfJoinExcludesSelf(t *testing.T) {
	// A person whose manager field equals their own name must not get a
	// managerOf self loop (the graph would reject it anyway; the rule
	// filters it first).
	s := testStore(t)
	put(t, s, &provenance.Node{ID: "p1", Class: provenance.ClassResource, Type: "person",
		AppID: "A", Attrs: map[string]provenance.Value{
			"name": provenance.String("Root Boss"), "manager": provenance.String("Root Boss")}})
	put(t, s, &provenance.Node{ID: "p2", Class: provenance.ClassResource, Type: "person",
		AppID: "A", Attrs: map[string]provenance.Value{
			"name": provenance.String("Joe"), "manager": provenance.String("Root Boss")}})
	mgr := &KeyJoin{RuleName: "mgr", EdgeType: "managerOf",
		SourceType: "person", SourceField: "name",
		TargetType: "person", TargetField: "manager"}
	e, err := NewEngine(s, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	err = s.View(func(g *provenance.Graph) error {
		if !g.HasEdge("p1", "managerOf", "p2") {
			return fmt.Errorf("managerOf p1->p2 missing")
		}
		if g.NumEdges() != 1 {
			return fmt.Errorf("edges = %d, want 1", g.NumEdges())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTemporalOrder(t *testing.T) {
	s := testStore(t)
	base := time.Unix(10000, 0).UTC()
	for i, id := range []string{"t-c", "t-a", "t-b"} {
		put(t, s, &provenance.Node{ID: id, Class: provenance.ClassTask, Type: "submission",
			AppID: "A", Timestamp: base.Add(time.Duration(2-i) * time.Minute)})
	}
	// Order by timestamp: t-b (base), t-a (base+1m), t-c (base+2m).
	e, err := NewEngine(s, &TemporalOrder{RuleName: "order", EdgeType: "nextTask"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	err = s.View(func(g *provenance.Graph) error {
		if !g.HasEdge("t-b", "nextTask", "t-a") || !g.HasEdge("t-a", "nextTask", "t-c") {
			return fmt.Errorf("chain wrong: %v", g.AllEdges(provenance.EdgeFilter{}))
		}
		if g.NumEdges() != 2 {
			return fmt.Errorf("edges = %d", g.NumEdges())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTemporalOrderTiesBrokenByID(t *testing.T) {
	s := testStore(t)
	ts := time.Unix(500, 0).UTC()
	put(t, s, &provenance.Node{ID: "t2", Class: provenance.ClassTask, Type: "submission", AppID: "A", Timestamp: ts})
	put(t, s, &provenance.Node{ID: "t1", Class: provenance.ClassTask, Type: "submission", AppID: "A", Timestamp: ts})
	e, err := NewEngine(s, &TemporalOrder{RuleName: "order", EdgeType: "nextTask"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	err = s.View(func(g *provenance.Graph) error {
		if !g.HasEdge("t1", "nextTask", "t2") {
			return fmt.Errorf("deterministic tie-break violated")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFuncRule(t *testing.T) {
	s := testStore(t)
	put(t, s, &provenance.Node{ID: "p1", Class: provenance.ClassResource, Type: "person", AppID: "A",
		Attrs: map[string]provenance.Value{"email": provenance.String("j@x.com")}})
	put(t, s, &provenance.Node{ID: "t1", Class: provenance.ClassTask, Type: "submission", AppID: "A",
		Attrs: map[string]provenance.Value{"actorEmail": provenance.String("j@x.com")}})
	rule := &Func{RuleName: "actor-fn", Fn: func(g *provenance.Graph, appID string) []*provenance.Edge {
		var res []*provenance.Edge
		for _, task := range g.Nodes(provenance.NodeFilter{Class: provenance.ClassTask, AppID: appID}) {
			email := task.Attr("actorEmail")
			if email.IsZero() {
				continue
			}
			for _, p := range g.Nodes(provenance.NodeFilter{Type: "person", AppID: appID}) {
				if p.Attr("email").Equal(email) {
					res = append(res, &provenance.Edge{Type: "actor", Source: p.ID, Target: task.ID})
				}
			}
		}
		return res
	}}
	e, err := NewEngine(s, rule)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	err = s.View(func(g *provenance.Graph) error {
		if !g.HasEdge("p1", "actor", "t1") {
			return fmt.Errorf("actor edge missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineValidation(t *testing.T) {
	s := testStore(t)
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewEngine(s, &Func{RuleName: ""}); err == nil {
		t.Error("empty rule name accepted")
	}
	if _, err := NewEngine(s, approvalJoin(), approvalJoin()); err == nil {
		t.Error("duplicate rule names accepted")
	}
	bad := &Func{RuleName: "bad", Fn: func(*provenance.Graph, string) []*provenance.Edge {
		return []*provenance.Edge{{Type: "approvalOf"}} // missing endpoints
	}}
	e, err := NewEngine(s, bad)
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, &provenance.Node{ID: "x", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A"})
	if err := e.RunTrace("A"); err == nil {
		t.Error("malformed derived edge accepted")
	}
}

func TestIncrementalCorrelation(t *testing.T) {
	s := testStore(t)
	e, err := NewEngine(s, approvalJoin())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	put(t, s, &provenance.Node{ID: "req1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})
	put(t, s, &provenance.Node{ID: "app1", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("R1")}})

	deadline := time.After(5 * time.Second)
	for {
		var has bool
		if err := s.View(func(g *provenance.Graph) error {
			has = g.HasEdge("app1", "approvalOf", "req1")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if has {
			break
		}
		select {
		case <-deadline:
			t.Fatal("incremental correlation never derived the edge")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Stop is idempotent and Start after Stop works.
	e.Stop()
	e.Stop()
	e.Start()
	e.Stop()
}

func BenchmarkKeyJoinTrace(b *testing.B) {
	s, err := store.Open(store.Options{Model: testModel(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		n := &provenance.Node{ID: fmt.Sprintf("req%d", i), Class: provenance.ClassData,
			Type: "jobRequisition", AppID: "A",
			Attrs: map[string]provenance.Value{"reqID": provenance.String(fmt.Sprintf("R%d", i))}}
		if err := s.PutNode(n); err != nil {
			b.Fatal(err)
		}
		a := &provenance.Node{ID: fmt.Sprintf("app%d", i), Class: provenance.ClassData,
			Type: "approvalStatus", AppID: "A",
			Attrs: map[string]provenance.Value{"reqID": provenance.String(fmt.Sprintf("R%d", i))}}
		if err := s.PutNode(a); err != nil {
			b.Fatal(err)
		}
	}
	e, err := NewEngine(s, approvalJoin())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunTrace("A"); err != nil {
			b.Fatal(err)
		}
	}
}
