package correlate

import (
	"fmt"

	"repro/internal/provenance"
)

// Enricher derives attributes for a trace's nodes — the enrichment half of
// the paper's "data correlation and enrichment component". Enrichers run
// after the edge rules in RunTrace; only changed attributes are written,
// so enrichment is idempotent and safe in incremental mode.
type Enricher interface {
	// Name identifies the enricher in errors and stats.
	Name() string
	// Enrich returns the attribute updates the trace should receive.
	Enrich(g *provenance.Graph, appID string) []AttrUpdate
}

// AttrUpdate assigns attributes to one node.
type AttrUpdate struct {
	NodeID string
	Attrs  map[string]provenance.Value
}

// EnrichFunc adapts a function to an Enricher.
type EnrichFunc struct {
	EnricherName string
	Fn           func(g *provenance.Graph, appID string) []AttrUpdate
}

// Name implements Enricher.
func (e *EnrichFunc) Name() string { return e.EnricherName }

// Enrich implements Enricher.
func (e *EnrichFunc) Enrich(g *provenance.Graph, appID string) []AttrUpdate {
	return e.Fn(g, appID)
}

// DurationEnricher computes a duration attribute (in seconds) for nodes of
// one type from their start/end time attributes — a typical IT-level
// enrichment turning two raw timestamps into a business-meaningful number.
type DurationEnricher struct {
	EnricherName string
	NodeType     string
	StartField   string
	EndField     string
	// Target is the attribute receiving the duration in seconds.
	Target string
}

// Name implements Enricher.
func (d *DurationEnricher) Name() string { return d.EnricherName }

// Enrich implements Enricher.
func (d *DurationEnricher) Enrich(g *provenance.Graph, appID string) []AttrUpdate {
	var out []AttrUpdate
	for _, n := range g.NodesByType(appID, d.NodeType) {
		start, end := n.Attr(d.StartField), n.Attr(d.EndField)
		if start.IsZero() || end.IsZero() {
			continue
		}
		secs := end.TimeVal().Sub(start.TimeVal()).Seconds()
		out = append(out, AttrUpdate{
			NodeID: n.ID,
			Attrs:  map[string]provenance.Value{d.Target: provenance.Float(secs)},
		})
	}
	return out
}

// AddEnricher registers an enricher on the engine. Names must be unique
// among enrichers.
func (e *Engine) AddEnricher(en Enricher) error {
	if en == nil || en.Name() == "" {
		return fmt.Errorf("correlate: enricher with empty name")
	}
	for _, prev := range e.enrichers {
		if prev.Name() == en.Name() {
			return fmt.Errorf("correlate: duplicate enricher name %s", en.Name())
		}
	}
	e.enrichers = append(e.enrichers, en)
	return nil
}

// runEnrichers computes and applies attribute updates for one trace,
// writing only values that actually change.
func (e *Engine) runEnrichers(appID string) error {
	if len(e.enrichers) == 0 {
		return nil
	}
	type change struct {
		enricher string
		node     *provenance.Node // cloned, updated
	}
	var changes []change
	err := e.st.View(func(g *provenance.Graph) error {
		for _, en := range e.enrichers {
			for _, upd := range en.Enrich(g, appID) {
				n := g.Node(upd.NodeID)
				if n == nil {
					return fmt.Errorf("correlate: enricher %s targets unknown node %s",
						en.Name(), upd.NodeID)
				}
				dirty := false
				for k, v := range upd.Attrs {
					if !n.Attr(k).Equal(v) {
						dirty = true
					}
				}
				if !dirty {
					continue
				}
				c := n.Clone()
				for k, v := range upd.Attrs {
					c.SetAttr(k, v)
				}
				changes = append(changes, change{en.Name(), c})
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var firstErr error
	for _, ch := range changes {
		if err := e.st.UpdateNode(ch.node); err != nil {
			e.mu.Lock()
			e.stats.Errors++
			e.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("correlate: enricher %s: %v", ch.enricher, err)
			}
			continue
		}
		e.mu.Lock()
		e.stats.AttrsEnriched++
		e.mu.Unlock()
	}
	return firstErr
}
