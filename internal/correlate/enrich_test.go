package correlate

import (
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

func enrichModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := testModel(t)
	if err := m.AddField("submission", &provenance.FieldDef{
		Name: "start", Kind: provenance.KindTime}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddField("submission", &provenance.FieldDef{
		Name: "end", Kind: provenance.KindTime}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddField("submission", &provenance.FieldDef{
		Name: "durationSeconds", Kind: provenance.KindFloat}); err != nil {
		t.Fatal(err)
	}
	return m
}

func enrichStore(t testing.TB) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Model: enrichModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDurationEnricher(t *testing.T) {
	s := enrichStore(t)
	start := time.Unix(1000, 0).UTC()
	put(t, s, &provenance.Node{ID: "t1", Class: provenance.ClassTask, Type: "submission",
		AppID: "A", Attrs: map[string]provenance.Value{
			"start": provenance.Time(start),
			"end":   provenance.Time(start.Add(90 * time.Second)),
		}})
	// A task with a missing end time is skipped, not an error.
	put(t, s, &provenance.Node{ID: "t2", Class: provenance.ClassTask, Type: "submission",
		AppID: "A", Attrs: map[string]provenance.Value{
			"start": provenance.Time(start),
		}})
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEnricher(&DurationEnricher{
		EnricherName: "duration", NodeType: "submission",
		StartField: "start", EndField: "end", Target: "durationSeconds",
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	if got := s.Node("t1").Attr("durationSeconds").FloatVal(); got != 90 {
		t.Fatalf("duration = %v", got)
	}
	if !s.Node("t2").Attr("durationSeconds").IsZero() {
		t.Fatal("partial task enriched")
	}
	if e.Stats().AttrsEnriched != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	// Idempotent: a second run writes nothing.
	seqBefore := s.Stats().Seq
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Seq != seqBefore {
		t.Fatal("re-enrichment wrote unchanged values")
	}
}

func TestEnrichFuncAndValidation(t *testing.T) {
	s := enrichStore(t)
	put(t, s, &provenance.Node{ID: "t1", Class: provenance.ClassTask, Type: "submission", AppID: "A"})
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEnricher(nil); err == nil {
		t.Error("nil enricher accepted")
	}
	if err := e.AddEnricher(&EnrichFunc{EnricherName: ""}); err == nil {
		t.Error("unnamed enricher accepted")
	}
	fn := &EnrichFunc{EnricherName: "mark", Fn: func(g *provenance.Graph, appID string) []AttrUpdate {
		return []AttrUpdate{{NodeID: "t1", Attrs: map[string]provenance.Value{
			"actorEmail": provenance.String("derived@acme.com")}}}
	}}
	if err := e.AddEnricher(fn); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEnricher(&EnrichFunc{EnricherName: "mark"}); err == nil {
		t.Error("duplicate enricher name accepted")
	}
	if err := e.RunTrace("A"); err != nil {
		t.Fatal(err)
	}
	if got := s.Node("t1").Attr("actorEmail").Str(); got != "derived@acme.com" {
		t.Fatalf("enriched attr = %q", got)
	}
	// Enricher targeting a ghost node fails loudly.
	bad := &EnrichFunc{EnricherName: "ghost", Fn: func(*provenance.Graph, string) []AttrUpdate {
		return []AttrUpdate{{NodeID: "nope", Attrs: map[string]provenance.Value{
			"actorEmail": provenance.String("x")}}}
	}}
	if err := e.AddEnricher(bad); err != nil {
		t.Fatal(err)
	}
	if err := e.RunTrace("A"); err == nil {
		t.Error("ghost-node enrichment succeeded")
	}
}

func TestIncrementalEnrichmentConverges(t *testing.T) {
	// In incremental mode enrichment updates re-trigger the engine; the
	// changed-values-only policy must make it quiesce instead of looping.
	s := enrichStore(t)
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEnricher(&DurationEnricher{
		EnricherName: "duration", NodeType: "submission",
		StartField: "start", EndField: "end", Target: "durationSeconds",
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	start := time.Unix(2000, 0).UTC()
	put(t, s, &provenance.Node{ID: "t1", Class: provenance.ClassTask, Type: "submission",
		AppID: "A", Attrs: map[string]provenance.Value{
			"start": provenance.Time(start),
			"end":   provenance.Time(start.Add(30 * time.Second)),
		}})
	deadline := time.After(5 * time.Second)
	for {
		if v := s.Node("t1").Attr("durationSeconds"); !v.IsZero() {
			if v.FloatVal() != 30 {
				t.Fatalf("duration = %v", v.FloatVal())
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("enrichment never applied")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Quiescence: the store sequence stabilizes.
	var seq uint64
	for i := 0; i < 50; i++ {
		cur := s.Stats().Seq
		if cur == seq && i > 10 {
			return
		}
		seq = cur
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("store never quiesced: enrichment loop suspected")
}
