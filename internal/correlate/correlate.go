// Package correlate implements the data correlation and enrichment
// component of the business provenance system (Section II-A): analytics
// that link the collected records into the provenance graph by deriving
// relation edges, and enrichment passes that add derived attributes.
//
// Some relations are basic IT-level links (reads/writes between tasks and
// data, actor joins); others are derived from business context (the
// manager relation between persons). Both are expressed as correlation
// rules run over each trace, either in batch or incrementally from the
// store's change feed.
package correlate

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/provenance"
	"repro/internal/store"
)

// Rule derives relation edges for one trace. Derive must be a pure
// function of the trace subgraph: the engine deduplicates and persists the
// returned edges. Edge IDs are assigned by the engine; rules leave ID
// empty and may leave AppID empty (the engine fills both in).
type Rule interface {
	// Name identifies the rule in stats and generated edge IDs.
	Name() string
	// Derive returns the edges that should exist in the trace. Already
	// existing edges are filtered out by the engine, so rules may return
	// the full set every time.
	Derive(g *provenance.Graph, appID string) []*provenance.Edge
}

// KeyJoin links a source node to a target node whenever a source attribute
// equals a target attribute within the same trace — the workhorse
// correlation ("the approval whose reqID matches the requisition's reqID
// is the approvalOf that requisition").
type KeyJoin struct {
	// RuleName identifies the rule.
	RuleName string
	// EdgeType is the relation type of the derived edges.
	EdgeType string
	// SourceType / SourceField and TargetType / TargetField declare the
	// join. A node joins when its field value equals the other side's.
	SourceType  string
	SourceField string
	TargetType  string
	TargetField string
}

// Name implements Rule.
func (k *KeyJoin) Name() string { return k.RuleName }

// Derive implements Rule by hash-joining the two node sets on the key.
func (k *KeyJoin) Derive(g *provenance.Graph, appID string) []*provenance.Edge {
	targets := make(map[string][]*provenance.Node)
	for _, t := range g.NodesByType(appID, k.TargetType) {
		v := t.Attr(k.TargetField)
		if v.IsZero() {
			continue
		}
		targets[v.Key()] = append(targets[v.Key()], t)
	}
	var res []*provenance.Edge
	for _, s := range g.NodesByType(appID, k.SourceType) {
		v := s.Attr(k.SourceField)
		if v.IsZero() {
			continue
		}
		for _, t := range targets[v.Key()] {
			if s.ID == t.ID {
				continue
			}
			res = append(res, &provenance.Edge{
				Type: k.EdgeType, Source: s.ID, Target: t.ID,
			})
		}
	}
	return res
}

// TemporalOrder derives nextTask-style edges by ordering the trace's task
// nodes by timestamp and chaining consecutive ones.
type TemporalOrder struct {
	// RuleName identifies the rule.
	RuleName string
	// EdgeType is the relation type of the derived edges ("nextTask").
	EdgeType string
}

// Name implements Rule.
func (o *TemporalOrder) Name() string { return o.RuleName }

// Derive implements Rule.
func (o *TemporalOrder) Derive(g *provenance.Graph, appID string) []*provenance.Edge {
	tasks := g.Nodes(provenance.NodeFilter{Class: provenance.ClassTask, AppID: appID})
	sort.SliceStable(tasks, func(i, j int) bool {
		if !tasks[i].Timestamp.Equal(tasks[j].Timestamp) {
			return tasks[i].Timestamp.Before(tasks[j].Timestamp)
		}
		return tasks[i].ID < tasks[j].ID
	})
	var res []*provenance.Edge
	for i := 1; i < len(tasks); i++ {
		res = append(res, &provenance.Edge{
			Type: o.EdgeType, Source: tasks[i-1].ID, Target: tasks[i].ID,
		})
	}
	return res
}

// Func adapts a plain function to a Rule, for context-derived relations
// that need custom logic.
type Func struct {
	RuleName string
	Fn       func(g *provenance.Graph, appID string) []*provenance.Edge
}

// Name implements Rule.
func (f *Func) Name() string { return f.RuleName }

// Derive implements Rule.
func (f *Func) Derive(g *provenance.Graph, appID string) []*provenance.Edge {
	return f.Fn(g, appID)
}

// Stats counts correlation outcomes.
type Stats struct {
	// TracesProcessed counts RunTrace executions.
	TracesProcessed int
	// EdgesDerived counts edges persisted by the engine.
	EdgesDerived int
	// AttrsEnriched counts node updates applied by enrichers.
	AttrsEnriched int
	// Errors counts failed edge inserts and enrichment updates.
	Errors int
}

// Engine runs correlation rules over the provenance store.
type Engine struct {
	st        *store.Store
	rules     []Rule
	enrichers []Enricher

	mu    sync.Mutex
	seq   int
	stats Stats

	sub  *store.Subscription
	done chan struct{}
}

// NewEngine builds a correlation engine. Rule names must be unique: they
// namespace the derived edge IDs.
func NewEngine(st *store.Store, rules ...Rule) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("correlate: nil store")
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.Name() == "" {
			return nil, fmt.Errorf("correlate: rule with empty name")
		}
		if seen[r.Name()] {
			return nil, fmt.Errorf("correlate: duplicate rule name %s", r.Name())
		}
		seen[r.Name()] = true
	}
	return &Engine{st: st, rules: rules}, nil
}

// RunTrace runs every rule against one trace and persists the new edges.
// It is idempotent: an edge of the same type between the same endpoints is
// derived at most once.
func (e *Engine) RunTrace(appID string) error {
	type want struct {
		rule string
		edge *provenance.Edge
	}
	var wanted []want
	err := e.st.View(func(g *provenance.Graph) error {
		for _, r := range e.rules {
			for _, ed := range r.Derive(g, appID) {
				if ed.Source == "" || ed.Target == "" || ed.Type == "" {
					return fmt.Errorf("correlate: rule %s produced malformed edge %+v", r.Name(), ed)
				}
				if g.HasEdge(ed.Source, ed.Type, ed.Target) {
					continue
				}
				wanted = append(wanted, want{r.Name(), ed})
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.stats.TracesProcessed++
	e.mu.Unlock()

	var firstErr error
	added := make(map[string]bool) // dedup within this batch
	for _, w := range wanted {
		key := w.edge.Source + "\x00" + w.edge.Type + "\x00" + w.edge.Target
		if added[key] {
			continue
		}
		added[key] = true
		// The counter is in-memory, but cr- edges also arrive from log
		// replay and shard-handoff imports with IDs this engine never
		// allocated; skip past any taken ID instead of colliding.
		e.mu.Lock()
		var id string
		for {
			e.seq++
			id = fmt.Sprintf("cr-%s-%d", w.rule, e.seq)
			if e.st.Edge(id) == nil {
				break
			}
		}
		e.mu.Unlock()
		ed := w.edge.Clone()
		ed.ID = id
		ed.AppID = appID
		if err := e.st.PutEdge(ed); err != nil {
			e.mu.Lock()
			e.stats.Errors++
			e.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("correlate: rule %s: %v", w.rule, err)
			}
			continue
		}
		e.mu.Lock()
		e.stats.EdgesDerived++
		e.mu.Unlock()
	}
	if err := e.runEnrichers(appID); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// RunAll correlates every trace currently in the store.
func (e *Engine) RunAll() error {
	var firstErr error
	for _, app := range e.st.AppIDs() {
		if err := e.RunTrace(app); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Start begins incremental correlation: every node insert or update
// triggers re-correlation of the affected trace. Edge events are ignored
// (the engine's own output would otherwise feed back). Call Stop to end.
func (e *Engine) Start() {
	if e.sub != nil {
		return
	}
	e.sub = e.st.Subscribe()
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		for ev := range e.sub.C() {
			if ev.Kind == store.EventEdge {
				continue
			}
			// Errors here are counted in stats; incremental correlation is
			// best-effort and the next event retries the trace.
			_ = e.RunTrace(ev.AppID())
		}
	}()
}

// Stop ends incremental correlation and waits for the worker to drain.
func (e *Engine) Stop() {
	if e.sub == nil {
		return
	}
	e.sub.Cancel()
	<-e.done
	e.sub = nil
	e.done = nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
