package tenant

import (
	"encoding/json"
	"fmt"
	"os"
)

// SaveTo writes the tenant set to path atomically (tmp + rename), the
// same durability idiom controls.json uses: a restarted node restores
// the namespaces, weights and quotas operators configured.
func (r *Registry) SaveTo(path string) error {
	out := r.List()
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("tenant: save: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("tenant: save: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("tenant: save: %v", err)
	}
	return nil
}

// LoadFrom restores tenants recorded at path. A missing file is not an
// error (fresh node). Returns the number of tenants restored.
func (r *Registry) LoadFrom(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("tenant: load: %v", err)
	}
	var in []Tenant
	if err := json.Unmarshal(raw, &in); err != nil {
		return 0, fmt.Errorf("tenant: load: %v", err)
	}
	restored := 0
	for _, t := range in {
		if t.ID == DefaultID {
			// The default tenant always exists; only its tuning restores.
			if err := r.Create(t); err != nil {
				return restored, err
			}
			continue
		}
		if err := r.Create(t); err != nil {
			return restored, fmt.Errorf("tenant: load %s: %v", t.ID, err)
		}
		restored++
	}
	return restored, nil
}
