package tenant

import (
	"path/filepath"
	"testing"
	"time"
)

func TestQualifySplit(t *testing.T) {
	cases := []struct {
		tenant, app, want string
	}{
		{"default", "JR-1", "JR-1"},
		{"", "JR-1", "JR-1"},
		{"acme", "JR-1", "acme::JR-1"},
		{"acme", "", ""},
	}
	for _, c := range cases {
		if got := Qualify(c.tenant, c.app); got != c.want {
			t.Errorf("Qualify(%q,%q) = %q, want %q", c.tenant, c.app, got, c.want)
		}
	}
	if tn, app := Split("acme::JR-1"); tn != "acme" || app != "JR-1" {
		t.Errorf("Split = %q,%q", tn, app)
	}
	if tn, app := Split("JR-1"); tn != DefaultID || app != "JR-1" {
		t.Errorf("Split unqualified = %q,%q", tn, app)
	}
	// A separator at position 0 is not a namespace.
	if tn, _ := Split("::x"); tn != DefaultID {
		t.Errorf("Split(::x) tenant = %q", tn)
	}
	if Owner("beta::T-9") != "beta" || Owner("T-9") != DefaultID {
		t.Error("Owner mismatch")
	}
	for id, want := range map[string]bool{
		"acme": true, "a-1_b.c": true, "": false, "a::b": false, "a b": false, "a/b": false,
	} {
		if ValidID(id) != want {
			t.Errorf("ValidID(%q) != %v", id, want)
		}
	}
}

func TestRegistryDefaults(t *testing.T) {
	r := NewRegistry()
	if !r.Exists(DefaultID) {
		t.Fatal("default tenant missing")
	}
	if w := r.Weight(DefaultID); w != 1 {
		t.Fatalf("default weight = %d", w)
	}
	if w := r.Weight("ghost"); w != 1 {
		t.Fatalf("unknown weight = %d", w)
	}
	// Unlimited quota admits anything.
	if _, ok := r.Admit(DefaultID, 1_000_000, 1<<30); !ok {
		t.Fatal("default tenant should admit freely")
	}
}

func TestTokenBucket(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	if err := r.Create(Tenant{ID: "acme", Weight: 2, Quota: Quota{EventsPerSec: 10, Burst: 10}}); err != nil {
		t.Fatal(err)
	}
	// Full bucket: 10 admit, the 11th rejects with a positive hint.
	if _, ok := r.Admit("acme", 10, 0); !ok {
		t.Fatal("burst should admit")
	}
	ra, ok := r.Admit("acme", 1, 0)
	if ok {
		t.Fatal("empty bucket should reject")
	}
	if ra <= 0 {
		t.Fatalf("retryAfter = %v", ra)
	}
	// Refill after 500ms buys 5 events.
	now = now.Add(500 * time.Millisecond)
	if _, ok := r.Admit("acme", 5, 0); !ok {
		t.Fatal("refilled tokens should admit")
	}
	if _, ok := r.Admit("acme", 1, 0); ok {
		t.Fatal("bucket drained again")
	}
	st := r.Stats()["acme"]
	if st.AdmittedEvents != 15 || st.RejectedEvents != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueuedBytes(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(Tenant{ID: "acme", Quota: Quota{MaxQueuedBytes: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Admit("acme", 1, 80); !ok {
		t.Fatal("under cap should admit")
	}
	if _, ok := r.Admit("acme", 1, 30); ok {
		t.Fatal("over cap should reject")
	}
	r.Release("acme", 80)
	if _, ok := r.Admit("acme", 1, 30); !ok {
		t.Fatal("released bytes should admit")
	}
	if qb := r.Stats()["acme"].QueuedBytes; qb != 30 {
		t.Fatalf("queuedBytes = %d", qb)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	r := NewRegistry()
	r.Create(Tenant{ID: "acme", Name: "Acme Corp", Weight: 4, Quota: Quota{EventsPerSec: 100, Burst: 50}})
	r.Create(Tenant{ID: "beta", Quota: Quota{MaxQueuedBytes: 1 << 20}})
	if err := r.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	n, err := r2.LoadFrom(path)
	if err != nil || n != 2 {
		t.Fatalf("LoadFrom = %d, %v", n, err)
	}
	got, ok := r2.Get("acme")
	if !ok || got.Weight != 4 || got.Quota.EventsPerSec != 100 || got.Name != "Acme Corp" {
		t.Fatalf("restored acme = %+v", got)
	}
	if _, err := NewRegistry().LoadFrom(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Fatalf("missing file should not error: %v", err)
	}
}

func TestCreateUpsert(t *testing.T) {
	r := NewRegistry()
	r.Create(Tenant{ID: "acme", Weight: 1, Quota: Quota{EventsPerSec: 5}})
	if err := r.Create(Tenant{ID: "acme", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get("acme")
	if got.Weight != 3 || got.Quota.EventsPerSec != 0 {
		t.Fatalf("upsert = %+v", got)
	}
	if err := r.Create(Tenant{ID: "bad::id"}); err == nil {
		t.Fatal("invalid ID should error")
	}
	if err := r.SetQuota("ghost", Quota{}); err == nil {
		t.Fatal("unknown tenant quota should error")
	}
}
