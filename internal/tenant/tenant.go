// Package tenant is the multi-tenant control plane: a registry of
// namespaces sharing one cluster, each with its own traces, controls,
// admission quota and fair-share weight. "Millions of users" means many
// organizations on one deployment; the paper's business-user-authored
// controls only scale to that shape when each organization's vocabulary,
// controls and verdicts are invisible to every other.
//
// Tenancy is carried in the trace ID itself: a trace owned by tenant
// "acme" is stored as "acme::JR-1001". The default tenant is the
// identity mapping — "JR-1001" stays "JR-1001" — so every pre-tenancy
// trace, test and tool keeps working unchanged. Because the namespace
// is part of the key, cross-tenant reads are impossible by construction:
// a query scoped to one tenant cannot even name another tenant's rows.
package tenant

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultID is the implicit tenant every unqualified trace belongs to.
const DefaultID = "default"

// sep joins a tenant ID and a trace ID into a qualified trace ID.
const sep = "::"

// Qualify namespaces a trace ID under a tenant. The default tenant (and
// the empty tenant) is the identity, so single-tenant deployments never
// see qualified IDs.
func Qualify(tenantID, appID string) string {
	if tenantID == "" || tenantID == DefaultID || appID == "" {
		return appID
	}
	return tenantID + sep + appID
}

// Split breaks a qualified trace ID into its tenant and bare trace ID.
// Unqualified IDs belong to the default tenant.
func Split(qualified string) (tenantID, appID string) {
	if i := strings.Index(qualified, sep); i > 0 {
		return qualified[:i], qualified[i+len(sep):]
	}
	return DefaultID, qualified
}

// Owner returns the tenant a qualified trace ID belongs to.
func Owner(qualified string) string {
	t, _ := Split(qualified)
	return t
}

// IsBare reports whether a trace or control name is free of the
// namespace separator. Scoped requests may only use bare names: under
// the default tenant Qualify is the identity, so a smuggled qualified
// name would alias another tenant's keys — the one hole in "cannot even
// name another tenant's rows", closed by rejecting such names at every
// scoped boundary.
func IsBare(name string) bool { return !strings.Contains(name, sep) }

// ValidID reports whether id is usable as a tenant namespace: non-empty,
// free of the separator, and free of whitespace.
func ValidID(id string) bool {
	if id == "" || strings.Contains(id, sep) {
		return false
	}
	return !strings.ContainsAny(id, " \t\r\n/")
}

// Quota bounds one tenant's admission rate. Zero values mean unlimited
// on that axis — the default tenant starts unlimited, so tenancy is
// opt-in pressure, never a silent regression.
type Quota struct {
	// EventsPerSec is the token-bucket refill rate over admitted events.
	EventsPerSec float64 `json:"eventsPerSec,omitempty"`
	// Burst is the bucket capacity; zero defaults to one second of rate
	// (minimum 1) so short bursts ride through.
	Burst int `json:"burst,omitempty"`
	// MaxQueuedBytes caps the tenant's admitted-not-yet-flushed bytes in
	// the ingestion gateway.
	MaxQueuedBytes int64 `json:"maxQueuedBytes,omitempty"`
}

// Tenant is one namespace of the control plane.
type Tenant struct {
	// ID is the namespace key carried in qualified trace IDs.
	ID string `json:"id"`
	// Name is the human-readable organization name.
	Name string `json:"name,omitempty"`
	// Weight is the fair-share scheduling weight of the tenant's checker
	// queue; zero or negative normalizes to 1.
	Weight int `json:"weight,omitempty"`
	// Quota is the tenant's admission bound.
	Quota Quota `json:"quota"`
}

func (t Tenant) weight() int {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// bucket is one tenant's admission state: a token bucket over events
// plus a gauge of queued (admitted, unflushed) bytes.
type bucket struct {
	tokens      float64
	last        time.Time
	queuedBytes int64
}

// AdmissionStats snapshots one tenant's quota counters.
type AdmissionStats struct {
	AdmittedEvents uint64 `json:"admittedEvents"`
	RejectedEvents uint64 `json:"rejectedEvents"`
	QueuedBytes    int64  `json:"queuedBytes"`
}

// Registry holds the tenants of one node. Safe for concurrent use; the
// default tenant always exists and cannot be removed.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
	buckets map[string]*bucket
	stats   map[string]*AdmissionStats
	now     func() time.Time
}

// NewRegistry builds a registry holding only the default tenant
// (unlimited quota, weight 1).
func NewRegistry() *Registry {
	r := &Registry{
		tenants: make(map[string]*Tenant),
		buckets: make(map[string]*bucket),
		stats:   make(map[string]*AdmissionStats),
		now:     time.Now,
	}
	r.tenants[DefaultID] = &Tenant{ID: DefaultID, Name: "default tenant", Weight: 1}
	return r
}

// SetClock injects a clock for tests; nil restores the wall clock.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	r.now = now
}

// Create registers a tenant. Creating an existing ID updates its name,
// weight and quota in place (an upsert — the operator's pctl flow).
func (r *Registry) Create(t Tenant) error {
	if !ValidID(t.ID) {
		return fmt.Errorf("tenant: invalid tenant ID %q", t.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.tenants[t.ID]
	if !ok {
		cp := t
		r.tenants[t.ID] = &cp
		return nil
	}
	if t.Name != "" {
		cur.Name = t.Name
	}
	if t.Weight > 0 {
		cur.Weight = t.Weight
	}
	cur.Quota = t.Quota
	// A changed rate must not strand a bucket filled under the old one.
	delete(r.buckets, t.ID)
	return nil
}

// SetQuota replaces one tenant's quota.
func (r *Registry) SetQuota(id string, q Quota) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("tenant: unknown tenant %q", id)
	}
	t.Quota = q
	delete(r.buckets, id)
	return nil
}

// Get returns a tenant by ID.
func (r *Registry) Get(id string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		return Tenant{}, false
	}
	return *t, true
}

// Exists reports whether a tenant is registered.
func (r *Registry) Exists(id string) bool {
	_, ok := r.Get(id)
	return ok
}

// List returns every tenant sorted by ID.
func (r *Registry) List() []Tenant {
	r.mu.Lock()
	out := make([]Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, *t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Weight returns a tenant's fair-share weight (1 for unknown tenants, so
// schedulers never divide by zero on a race with tenant creation).
func (r *Registry) Weight(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[id]; ok {
		return t.weight()
	}
	return 1
}

// Admit charges a batch of n events totalling size bytes against the
// tenant's quota. It returns ok=true on admission; on rejection it
// returns the tenant-specific backoff: how long until the token bucket
// will have refilled enough for the batch. Unknown tenants admit freely
// (the HTTP layer rejects them before quota is consulted). Admitted
// bytes stay charged until Release.
func (r *Registry) Admit(id string, n int, size int64) (retryAfter time.Duration, ok bool) {
	if n <= 0 {
		return 0, true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, known := r.tenants[id]
	if !known {
		return 0, true
	}
	st := r.statsLocked(id)
	q := t.Quota
	if q.MaxQueuedBytes > 0 {
		if b := r.buckets[id]; b != nil && b.queuedBytes+size > q.MaxQueuedBytes {
			st.RejectedEvents += uint64(n)
			// Bytes drain as the gateway flushes; the bucket rate is the
			// best available backoff hint, else a short fixed one.
			if q.EventsPerSec > 0 {
				return backoff(float64(n) / q.EventsPerSec), false
			}
			return 100 * time.Millisecond, false
		}
	}
	if q.EventsPerSec > 0 {
		b := r.bucketLocked(id, q)
		now := r.now()
		b.tokens += now.Sub(b.last).Seconds() * q.EventsPerSec
		b.last = now
		if cap := float64(burstOf(q)); b.tokens > cap {
			b.tokens = cap
		}
		if b.tokens < float64(n) {
			st.RejectedEvents += uint64(n)
			return backoff((float64(n) - b.tokens) / q.EventsPerSec), false
		}
		b.tokens -= float64(n)
	}
	if q.MaxQueuedBytes > 0 {
		r.bucketLocked(id, q).queuedBytes += size
	}
	st.AdmittedEvents += uint64(n)
	return 0, true
}

// Refund undoes an earlier Admit — tokens and queued bytes return to the
// bucket, the admitted-event count rolls back. The gateway uses it when a
// multi-tenant batch is rejected after some of its tenants were already
// charged: a rejected batch must not consume anyone's quota.
func (r *Registry) Refund(id string, n int, size int64) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, known := r.tenants[id]
	if !known {
		return
	}
	q := t.Quota
	if b := r.buckets[id]; b != nil {
		if q.EventsPerSec > 0 {
			b.tokens += float64(n)
			if cap := float64(burstOf(q)); b.tokens > cap {
				b.tokens = cap
			}
		}
		b.queuedBytes -= size
		if b.queuedBytes < 0 {
			b.queuedBytes = 0
		}
	}
	if st := r.stats[id]; st != nil {
		if st.AdmittedEvents >= uint64(n) {
			st.AdmittedEvents -= uint64(n)
		} else {
			st.AdmittedEvents = 0
		}
	}
}

// Release returns queued bytes to the tenant's budget once the gateway
// has flushed them.
func (r *Registry) Release(id string, size int64) {
	if size <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.buckets[id]; b != nil {
		b.queuedBytes -= size
		if b.queuedBytes < 0 {
			b.queuedBytes = 0
		}
	}
}

// Stats returns per-tenant admission counters keyed by tenant ID.
func (r *Registry) Stats() map[string]AdmissionStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]AdmissionStats, len(r.stats))
	for id, st := range r.stats {
		s := *st
		if b := r.buckets[id]; b != nil {
			s.QueuedBytes = b.queuedBytes
		}
		out[id] = s
	}
	return out
}

func (r *Registry) bucketLocked(id string, q Quota) *bucket {
	b := r.buckets[id]
	if b == nil {
		b = &bucket{tokens: float64(burstOf(q)), last: r.now()}
		r.buckets[id] = b
	}
	return b
}

func (r *Registry) statsLocked(id string) *AdmissionStats {
	st := r.stats[id]
	if st == nil {
		st = &AdmissionStats{}
		r.stats[id] = st
	}
	return st
}

// burstOf resolves a quota's bucket capacity: explicit burst, else one
// second of rate, floored at 1.
func burstOf(q Quota) int {
	if q.Burst > 0 {
		return q.Burst
	}
	if b := int(q.EventsPerSec); b > 0 {
		return b
	}
	return 1
}

// backoff rounds a fractional-second deficit up to a millisecond floor so
// Retry-After never degenerates to zero.
func backoff(seconds float64) time.Duration {
	d := time.Duration(seconds * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
