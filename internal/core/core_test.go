package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/workload"
)

func hiring(t testing.TB) *workload.Domain {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSystemBatchLifecycle(t *testing.T) {
	d := hiring(t)
	sys, err := core.New(d, core.Config{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	res := d.Simulate(workload.SimOptions{Seed: 2, Traces: 30, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if sys.Pipeline.Stats().Recorded == 0 {
		t.Fatal("nothing recorded")
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	if sys.Correlator.Stats().EdgesDerived == 0 {
		t.Fatal("no edges derived")
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 30*len(d.Controls) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	// Dashboard got fed.
	kpis := sys.Board.Snapshot()
	if len(kpis) != len(d.Controls) {
		t.Fatalf("kpis = %d", len(kpis))
	}
	// Fig 2 materialization happened.
	var customs int
	err = sys.Store.View(func(g *provenance.Graph) error {
		customs = len(g.Nodes(provenance.NodeFilter{Class: provenance.ClassCustom}))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if customs != 30*len(d.Controls) {
		t.Fatalf("materialized control points = %d", customs)
	}
	// Query engine answers over the same store.
	nodes, err := sys.Query.Run(query.Query{Type: "jobRequisition"})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 30 {
		t.Fatalf("requisitions = %d", len(nodes))
	}
}

func TestSystemContinuousMode(t *testing.T) {
	d := hiring(t)
	sys, err := core.New(d, core.Config{Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	res := d.Simulate(workload.SimOptions{Seed: 4, Traces: 5, ViolationRate: 0.5, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	// Correlation and checking happen on the change feed; wait for the
	// dashboard to converge to 5 traces per control.
	deadline := time.After(10 * time.Second)
	for {
		kpis := sys.Board.Snapshot()
		done := len(kpis) == len(d.Controls)
		for _, k := range kpis {
			if k.Total < 5 {
				done = false
			}
		}
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("dashboard never converged: %+v", sys.Board.Snapshot())
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Verdicts agree with ground truth once the feed drains.
	var violatedTruth int
	for _, tr := range res.Truth {
		if tr.Violation {
			violatedTruth++
		}
	}
	waitForStableVerdicts(t, sys, res, violatedTruth)
}

func waitForStableVerdicts(t *testing.T, sys *core.System, res *workload.SimResult, want int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		violated := 0
		for app, truth := range res.Truth {
			outcomes, err := sys.Registry.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outcomes {
				if o.Result.Verdict == rules.Violated && truth.ControlID == o.ControlID {
					violated++
				}
			}
		}
		if violated == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("violations = %d, want %d", violated, want)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestSystemPersistenceAcrossRestart(t *testing.T) {
	d := hiring(t)
	dir := t.TempDir()
	sys, err := core.New(d, core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res := d.Simulate(workload.SimOptions{Seed: 6, Traces: 10, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	before, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := core.New(d, core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	after, err := sys2.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("outcomes %d != %d after restart", len(after), len(before))
	}
	for i := range before {
		if before[i].Result.Verdict != after[i].Result.Verdict ||
			before[i].Result.AppID != after[i].Result.AppID {
			t.Fatalf("outcome %d changed across restart", i)
		}
	}
}

func TestSystemNilDomain(t *testing.T) {
	if _, err := core.New(nil, core.Config{}); err == nil {
		t.Fatal("nil domain accepted")
	}
}

func TestSystemCorrelateTrace(t *testing.T) {
	d := hiring(t)
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 8, Traces: 2, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	app := sys.Store.AppIDs()[0]
	if err := sys.CorrelateTrace(app); err != nil {
		t.Fatal(err)
	}
	outcomes, err := sys.Check(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(d.Controls) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
}

func TestDeployedControlsSurviveRestart(t *testing.T) {
	d := hiring(t)
	dir := t.TempDir()
	sys, err := core.New(d, core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	custom := `
definitions
  set 'r' to a job requisition ;
if the candidate list of 'r' exists then the internal control is satisfied ;
`
	if _, err := sys.DeployControl("user-control", "User deployed", custom); err != nil {
		t.Fatal(err)
	}
	// Redeploy to advance the version past 1.
	cp, err := sys.DeployControl("user-control", "", custom)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != 2 {
		t.Fatalf("version = %d", cp.Version)
	}
	// Also tighten a domain control; the edited version must survive too.
	edited := `
definitions
  set 'the request' to a job requisition ;
if the approval of 'the request' exists then the internal control is satisfied ;
`
	if _, err := sys.DeployControl("gm-approval", "", edited); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := core.New(d, core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	got := sys2.Registry.Get("user-control")
	if got == nil {
		t.Fatal("user control lost across restart")
	}
	if got.Version < 2 || got.Name != "User deployed" {
		t.Fatalf("restored control = %+v", got)
	}
	gm := sys2.Registry.Get("gm-approval")
	if gm == nil || !strings.Contains(gm.Text, "the approval of 'the request' exists then") {
		t.Fatalf("edited domain control not restored: %+v", gm)
	}
	// Removal persists as well.
	if err := sys2.RemoveControl("user-control"); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
	sys3, err := core.New(d, core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys3.Close()
	if sys3.Registry.Get("user-control") != nil {
		t.Fatal("removed control resurrected")
	}
}

// TestSystemTieredDemotion wires the tier knobs through core: a durable
// system with an aggressive cold threshold and a fast compaction
// heartbeat demotes untouched traces to sealed segments on its own, and
// demoted traces stay fully checkable. The ablation keeps everything
// resident.
func TestSystemTieredDemotion(t *testing.T) {
	d := hiring(t)
	sys, err := core.New(d, core.Config{
		Dir:              t.TempDir(),
		SegmentColdAfter: 1,
		CompactEvery:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	res := d.Simulate(workload.SimOptions{Seed: 11, Traces: 6, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.Store.Tiering().SealedTraces == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compaction heartbeat never demoted: %+v", sys.Store.Tiering())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Demoted traces still answer compliance checks through rehydration.
	out, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6*len(d.Controls) {
		t.Fatalf("outcomes = %d, want %d", len(out), 6*len(d.Controls))
	}

	abl, err := core.New(d, core.Config{Dir: t.TempDir(), DisableTiering: true, SegmentColdAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer abl.Close()
	if ti := abl.Store.Tiering(); ti.Enabled {
		t.Fatalf("ablation reports tiering enabled: %+v", ti)
	}
	if err := abl.Store.DemoteTraces("x"); err == nil {
		t.Fatal("ablation accepted a demotion")
	}
}
