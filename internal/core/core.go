// Package core wires the paper's full architecture into one system: the
// provenance store, recorder-client pipeline, correlation analytics,
// verbalized vocabulary, internal control registry, and compliance
// dashboard. This is the library's primary entry point — the bridge the
// paper builds "by connecting provenance data model to execution object
// model first, then to business object model, and finally to rule editing
// in business vocabulary".
//
// Two operating modes mirror the paper's Section II-A query styles:
//
//   - Batch: ingest events, run CorrelateAll, then CheckAll — the
//     "query deployed into the provenance store" style.
//   - Continuous: Config.Continuous starts the incremental correlator and
//     the continuous compliance checker on the store's change feed, so
//     verdicts and dashboard KPIs update as events arrive.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/controls"
	"repro/internal/correlate"
	"repro/internal/dashboard"
	"repro/internal/events"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Config tunes a System.
type Config struct {
	// Dir is the store's log directory; empty runs in memory.
	Dir string
	// Sync forces fsync before acknowledging writes (durability over
	// throughput). Concurrent writers share fsyncs via group commit.
	Sync bool
	// FlushWindow bounds how long the group-commit pipeline may hold a
	// write open to batch it with others. Zero flushes opportunistically:
	// no added latency, batching only under concurrency.
	FlushWindow time.Duration
	// DisableIndexes turns off secondary indexes (ablation D4).
	DisableIndexes bool
	// DisableSnapshots turns off the store's MVCC snapshot read path;
	// readers fall back to the shared RWMutex (ablation D7, experiment
	// E10).
	DisableSnapshots bool
	// Materialize writes control points into the graph (Fig 2).
	Materialize bool
	// Continuous starts incremental correlation and continuous compliance
	// checking on the change feed.
	Continuous bool
	// Workers is the shard count of the continuous checking engine and
	// the fan-out width of batch CheckAll (0 = GOMAXPROCS).
	Workers int
	// DisableCheckCache turns off the incremental compliance result cache
	// (used by ablation benchmarks; leave off in production).
	DisableCheckCache bool
	// DisableRuleIndexes turns off index-accelerated rule evaluation:
	// graph secondary-index lookups fall back to full-shard scans and the
	// cross-control binding cache is bypassed (ablation D8, experiment
	// E11).
	DisableRuleIndexes bool
	// MaxViolations caps the dashboard violation feed (0 = default).
	MaxViolations int
	// IngestShards / IngestQueueDepth / IngestMaxBatch / IngestFlushWindow
	// size the async ingestion gateway: the number of trace-hashed
	// admission queues, each queue's event capacity, the events coalesced
	// per store commit, and how long an undersized run may wait for
	// company (zero = opportunistic). Zero values take the gateway
	// defaults.
	IngestShards      int
	IngestQueueDepth  int
	IngestMaxBatch    int
	IngestFlushWindow time.Duration
	// DisableAsyncIngest skips the gateway: events are ingested
	// synchronously on the caller (ablation D9, experiment E12).
	DisableAsyncIngest bool
	// CheckEvalDelay injects a synthetic flat per-re-check evaluation
	// cost into the continuous checker — the experiment device model for
	// expensive control portfolios (E17), the role slowfs plays for
	// storage in E16. Zero (production) adds nothing.
	CheckEvalDelay time.Duration
	// DisableFairShare turns off weighted per-tenant fair-share scheduling
	// in the continuous checker: all dirty traces share one FIFO and a
	// noisy tenant's backlog delays everyone (ablation D14, experiment
	// E17).
	DisableFairShare bool
	// DisableDeltaEval turns off delta-driven control checking: the
	// continuous engine then re-evaluates every control of a dirty trace
	// instead of discriminating with the commits' write set (ablation
	// D11, experiment E14).
	DisableDeltaEval bool
	// DisableTiering turns off the store's tiered-storage layer: Compact
	// never demotes traces to sealed segments and existing segments are
	// ignored (ablation D12, experiment E15).
	DisableTiering bool
	// SegmentColdAfter is the demotion policy: during store compaction a
	// trace untouched for this many commits is sealed into an on-disk
	// segment and dropped from the hot tier. Zero keeps every trace hot.
	SegmentColdAfter uint64
	// SegmentCacheMB caps the sealed-segment block cache in MiB
	// (0 = store default, 32 MiB).
	SegmentCacheMB int
	// DisableSegmentGC keeps every sealed segment on disk even after all
	// of its trace copies were promoted back or superseded; by default
	// compaction reclaims fully-dead segment files. Disabling preserves
	// the complete as-of version history at the cost of unbounded
	// segment growth (ablation for experiment E16 storage accounting).
	DisableSegmentGC bool
	// FS overrides the filesystem the durable store runs on; nil uses
	// the process filesystem. Benchmarks inject slowfs device models
	// (experiment E16), fault tests the faultfs injector.
	FS store.FS
	// CompactEvery, when positive, runs store compaction on this cadence.
	// Compaction is the demotion engine's heartbeat — SegmentColdAfter
	// only takes effect when something calls Compact — so a durable
	// daemon wanting automatic demotion sets both. Ticks are skipped
	// while the store has not grown since the last compaction, so an
	// idle system never rewrites its log. Zero leaves compaction to the
	// caller.
	CompactEvery time.Duration
	// WindowTick, when positive, starts a wall-clock ticker that calls
	// Checker.Tick at this cadence so traces whose sliding-window
	// deadline passes without the target event re-surface to observers.
	// Zero leaves the clock to the caller (Tick stays available);
	// verdicts themselves never read the wall clock either way.
	WindowTick time.Duration
}

// System is one wired instance of the paper's architecture.
type System struct {
	Domain *workload.Domain
	// controlsPath, when set, receives the deployed-control snapshot on
	// DeployControl/RemoveControl and Close.
	controlsPath string

	Store      *store.Store
	Pipeline   *events.Pipeline
	Correlator *correlate.Engine
	Registry   *controls.Registry
	Checker    *controls.Checker
	Board      *dashboard.Board
	Query      *query.Engine
	// Tenants is the multi-tenant control plane: namespaces, admission
	// quotas and fair-share weights. Always present — single-tenant
	// deployments just never leave the default tenant.
	Tenants *tenant.Registry
	// tenantsPath, when set, receives the tenant registry snapshot on
	// every tenant mutation.
	tenantsPath string
	// Gateway is the async ingestion front door; nil when
	// Config.DisableAsyncIngest is set.
	Gateway *ingest.Gateway

	continuous  bool
	compactStop chan struct{} // non-nil while the compaction ticker runs
	compactDone chan struct{}
}

// New builds and starts a system for a domain: opens the store against the
// domain's data model, registers the recorder mappings and correlation
// rules, verbalizes the vocabulary (already carried by the domain), and
// deploys the domain's internal controls.
func New(d *workload.Domain, cfg Config) (*System, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil domain")
	}
	st, err := store.Open(store.Options{
		Dir: cfg.Dir, Model: d.Model, Sync: cfg.Sync, DisableIndexes: cfg.DisableIndexes,
		FlushWindow: cfg.FlushWindow, DisableSnapshots: cfg.DisableSnapshots,
		DisableRuleIndexes: cfg.DisableRuleIndexes,
		DisableTiering:     cfg.DisableTiering,
		SegmentColdAfter:   cfg.SegmentColdAfter,
		SegmentCacheBytes:  int64(cfg.SegmentCacheMB) << 20,
		DisableSegmentGC:   cfg.DisableSegmentGC,
		FS:                 cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	sys := &System{Domain: d, Store: st, continuous: cfg.Continuous, Tenants: tenant.NewRegistry()}
	fail := func(err error) (*System, error) {
		st.Close()
		return nil, err
	}
	if sys.Pipeline, err = events.NewPipeline(st, d.Mappings...); err != nil {
		return fail(err)
	}
	if sys.Correlator, err = correlate.NewEngine(st, d.Correlations...); err != nil {
		return fail(err)
	}
	for _, en := range d.Enrichers {
		if err := sys.Correlator.AddEnricher(en); err != nil {
			return fail(err)
		}
	}
	if sys.Registry, err = controls.NewRegistry(st, d.Vocab, controls.Options{
		Materialize:         cfg.Materialize,
		CheckWorkers:        cfg.Workers,
		DisableCache:        cfg.DisableCheckCache,
		DisableBindingReuse: cfg.DisableRuleIndexes,
		DisableDeltaEval:    cfg.DisableDeltaEval,
	}); err != nil {
		return fail(err)
	}
	for _, cs := range d.Controls {
		if _, err := sys.Registry.Deploy(cs.ID, cs.Name, cs.Text); err != nil {
			return fail(err)
		}
	}
	// Restore controls business users deployed in earlier sessions; their
	// versions win over the domain defaults deployed above.
	if cfg.Dir != "" {
		sys.controlsPath = filepath.Join(cfg.Dir, "controls.json")
		if _, err := sys.Registry.LoadFrom(sys.controlsPath); err != nil {
			return fail(err)
		}
		sys.tenantsPath = filepath.Join(cfg.Dir, "tenants.json")
		if _, err := sys.Tenants.LoadFrom(sys.tenantsPath); err != nil {
			return fail(err)
		}
	}
	sys.Board = dashboard.New(cfg.MaxViolations)
	if sys.Query, err = query.NewEngine(st); err != nil {
		return fail(err)
	}
	sys.Checker = controls.NewCheckerOpts(sys.Registry, func(out []*controls.Outcome) {
		sys.Board.Record(out)
	}, controls.CheckerOptions{
		Workers:          cfg.Workers,
		DisableFairShare: cfg.DisableFairShare,
		TenantWeight:     sys.Tenants.Weight,
		EvalDelay:        cfg.CheckEvalDelay,
	})
	if cfg.Continuous {
		sys.Correlator.Start()
		sys.Checker.Start()
	}
	if cfg.WindowTick > 0 {
		sys.Checker.StartTicker(cfg.WindowTick)
	}
	if cfg.CompactEvery > 0 && cfg.Dir != "" {
		sys.startCompactor(cfg.CompactEvery)
	}
	if !cfg.DisableAsyncIngest {
		if sys.Gateway, err = ingest.New(ingest.Config{
			Shards:      cfg.IngestShards,
			QueueDepth:  cfg.IngestQueueDepth,
			MaxBatch:    cfg.IngestMaxBatch,
			FlushWindow: cfg.IngestFlushWindow,
			Dir:         cfg.Dir,
			Quotas:      sys.Tenants,
		}, sys.ingestSink(cfg.Continuous)); err != nil {
			sys.Close()
			return nil, err
		}
	}
	return sys, nil
}

// ingestSink is the gateway's downstream: one coalesced run becomes one
// keyed pipeline commit; in batch mode (no continuous correlator) the
// touched traces are then re-correlated so async ingest still yields a
// connected graph.
func (s *System) ingestSink(continuous bool) ingest.Sink {
	return func(kevs []events.KeyedEvent) error {
		err := s.Pipeline.IngestKeyed(kevs)
		if !continuous {
			seen := make(map[string]bool, 4)
			for _, kev := range kevs {
				app := kev.Event.AppID
				if app == "" || seen[app] {
					continue
				}
				seen[app] = true
				if cerr := s.Correlator.RunTrace(app); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
		return err
	}
}

// DeployControl deploys (or redeploys) a control in the default tenant
// and, for durable systems, persists the control set.
func (s *System) DeployControl(id, name, text string) (*controls.ControlPoint, error) {
	return s.DeployControlTenant(tenant.DefaultID, id, name, text)
}

// DeployControlTenant deploys a control inside one tenant's namespace
// and persists the control set when durable.
func (s *System) DeployControlTenant(tenantID, id, name, text string) (*controls.ControlPoint, error) {
	cp, err := s.Registry.DeployTenant(tenantID, id, name, text)
	if err != nil {
		return nil, err
	}
	return cp, s.persistControls()
}

// DeployShadowControl attaches a shadow candidate to an existing control
// (key is the tenant-qualified registry key) and persists it, so a
// restart does not silently abort an in-flight rollout.
func (s *System) DeployShadowControl(key, text string) (*controls.ControlPoint, error) {
	cp, err := s.Registry.DeployShadow(key, text)
	if err != nil {
		return nil, err
	}
	return cp, s.persistControls()
}

// PromoteControl atomically makes a control's shadow candidate the live
// version and persists the swap.
func (s *System) PromoteControl(key string) (*controls.ControlPoint, error) {
	cp, err := s.Registry.Promote(key)
	if err != nil {
		return nil, err
	}
	return cp, s.persistControls()
}

// RollbackControl discards a control's shadow candidate and persists.
func (s *System) RollbackControl(key string) (*controls.ControlPoint, error) {
	cp, err := s.Registry.Rollback(key)
	if err != nil {
		return nil, err
	}
	return cp, s.persistControls()
}

func (s *System) persistControls() error {
	if s.controlsPath == "" {
		return nil
	}
	return s.Registry.SaveTo(s.controlsPath)
}

// CreateTenant registers (or updates) a tenant and persists the registry
// when durable.
func (s *System) CreateTenant(t tenant.Tenant) error {
	if err := s.Tenants.Create(t); err != nil {
		return err
	}
	return s.persistTenants()
}

// SetTenantQuota replaces one tenant's admission quota and persists.
func (s *System) SetTenantQuota(id string, q tenant.Quota) error {
	if err := s.Tenants.SetQuota(id, q); err != nil {
		return err
	}
	return s.persistTenants()
}

func (s *System) persistTenants() error {
	if s.tenantsPath == "" {
		return nil
	}
	return s.Tenants.SaveTo(s.tenantsPath)
}

// RemoveControl removes a control and persists the change when durable.
func (s *System) RemoveControl(id string) error {
	if err := s.Registry.Remove(id); err != nil {
		return err
	}
	if s.controlsPath != "" {
		return s.Registry.SaveTo(s.controlsPath)
	}
	return nil
}

// Ingest feeds application events through the recorder pipeline.
func (s *System) Ingest(evs []events.AppEvent) error {
	return s.Pipeline.IngestAll(evs)
}

// CorrelateAll runs the correlation rules over every trace (batch mode).
func (s *System) CorrelateAll() error { return s.Correlator.RunAll() }

// CorrelateTrace correlates a single trace.
func (s *System) CorrelateTrace(appID string) error { return s.Correlator.RunTrace(appID) }

// Check evaluates every control on one trace and records the outcomes on
// the dashboard.
func (s *System) Check(appID string) ([]*controls.Outcome, error) {
	out, err := s.Registry.Check(appID)
	if err != nil {
		return nil, err
	}
	s.Board.Record(out)
	return out, nil
}

// CheckAll evaluates every control on every trace.
func (s *System) CheckAll() ([]*controls.Outcome, error) {
	out, err := s.Registry.CheckAll()
	if err != nil {
		return nil, err
	}
	s.Board.Record(out)
	return out, nil
}

// startCompactor runs Compact on a cadence, skipping ticks while the
// store has not grown — demotion (and log shrinkage) happens without an
// operator in the loop, and an idle system never rewrites its log. A
// failed compaction aborts cleanly (the store keeps serving from the old
// log) and is retried on the next grown tick.
func (s *System) startCompactor(every time.Duration) {
	s.compactStop = make(chan struct{})
	s.compactDone = make(chan struct{})
	go func() {
		defer close(s.compactDone)
		tk := time.NewTicker(every)
		defer tk.Stop()
		var lastSeq uint64
		for {
			select {
			case <-tk.C:
				if seq := s.Store.Stats().Seq; seq != lastSeq {
					if s.Store.Compact() == nil {
						lastSeq = seq
					}
				}
			case <-s.compactStop:
				return
			}
		}
	}()
}

// Close drains the ingestion gateway (admitted events are flushed, not
// dropped), stops continuous workers, and closes the store.
func (s *System) Close() error {
	var gerr error
	if s.Gateway != nil {
		gerr = s.Gateway.Close()
	}
	if s.compactStop != nil {
		close(s.compactStop)
		<-s.compactDone
		s.compactStop = nil
	}
	s.Checker.StopTicker()
	if s.continuous {
		s.Checker.Stop()
		s.Correlator.Stop()
	}
	if err := s.Store.Close(); err != nil {
		return err
	}
	return gerr
}
