package query

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

func testModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "headcount", Kind: provenance.KindInt}))
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	return m
}

func seeded(t testing.TB, disableIdx bool) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Model: testModel(t), DisableIndexes: disableIdx})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < 20; i++ {
		n := &provenance.Node{
			ID: fmt.Sprintf("r%02d", i), Class: provenance.ClassData, Type: "jobRequisition",
			AppID: fmt.Sprintf("App%d", i%2), Timestamp: time.Unix(int64(i), 0).UTC(),
			Attrs: map[string]provenance.Value{
				"reqID":        provenance.String(fmt.Sprintf("REQ%02d", i)),
				"positionType": provenance.String([]string{"new", "existing"}[i%2]),
				"headcount":    provenance.Int(int64(i)),
			},
		}
		if i == 7 {
			delete(n.Attrs, "positionType") // a partially captured record
		}
		if err := s.PutNode(n); err != nil {
			t.Fatal(err)
		}
	}
	p := &provenance.Node{ID: "p1", Class: provenance.ClassResource, Type: "person", AppID: "App0",
		Attrs: map[string]provenance.Value{"name": provenance.String("Joe Doe")}}
	if err := s.PutNode(p); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPredMatches(t *testing.T) {
	n := &provenance.Node{ID: "x", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A",
		Attrs: map[string]provenance.Value{
			"reqID":     provenance.String("REQ07"),
			"headcount": provenance.Int(5),
		}}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Pred{"reqID", Eq, provenance.String("REQ07")}, true},
		{Pred{"reqID", Eq, provenance.String("REQ08")}, false},
		{Pred{"reqID", Ne, provenance.String("REQ08")}, true},
		{Pred{"reqID", Contains, provenance.String("Q0")}, true},
		{Pred{"reqID", Contains, provenance.String("zz")}, false},
		{Pred{"headcount", Lt, provenance.Int(6)}, true},
		{Pred{"headcount", Le, provenance.Int(5)}, true},
		{Pred{"headcount", Gt, provenance.Int(5)}, false},
		{Pred{"headcount", Ge, provenance.Int(5)}, true},
		{Pred{"headcount", Eq, provenance.Float(5)}, true},
		{Pred{"headcount", Lt, provenance.String("x")}, false}, // incomparable
		{Pred{"positionType", Present, provenance.Value{}}, false},
		{Pred{"positionType", Absent, provenance.Value{}}, true},
		{Pred{"reqID", Present, provenance.Value{}}, true},
		{Pred{"positionType", Eq, provenance.String("new")}, false}, // missing attr
	}
	for i, c := range cases {
		if got := c.p.Matches(n); got != c.want {
			t.Errorf("case %d (%s %s): got %v", i, c.p.Field, c.p.Op, got)
		}
	}
}

func TestPlanChoosesIndex(t *testing.T) {
	s := seeded(t, false)
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := e.Plan(Query{Type: "jobRequisition", Preds: []Pred{
		{Field: "reqID", Op: Eq, Value: provenance.String("REQ07")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Indexed() {
		t.Fatalf("plan not indexed: %s", pl.Explain())
	}
	if !strings.Contains(pl.Explain(), "IndexScan(jobRequisition.reqID") {
		t.Errorf("Explain = %s", pl.Explain())
	}
	got, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "r07" {
		t.Fatalf("result = %v", got)
	}
}

func TestPlanTypeScan(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)
	pl, err := e.Plan(Query{Type: "jobRequisition", Preds: []Pred{
		{Field: "positionType", Op: Eq, Value: provenance.String("new")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Indexed() {
		t.Fatal("unindexed field planned as index scan")
	}
	if !strings.Contains(pl.Explain(), "TypeScan(jobRequisition)") {
		t.Errorf("Explain = %s", pl.Explain())
	}
	got, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	// i even (0..19, i%2==0 -> "new"), minus r07? r07 has attr removed and
	// 7 is odd anyway. 10 evens.
	if len(got) != 10 {
		t.Fatalf("got %d rows", len(got))
	}
}

func TestPlanFullScan(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)
	pl, err := e.Plan(Query{Class: provenance.ClassResource})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.Explain(), "FullScan") {
		t.Errorf("Explain = %s", pl.Explain())
	}
	got, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "p1" {
		t.Fatalf("result = %v", got)
	}
}

func TestQueryAppIDAndLimit(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)
	got, err := e.Run(Query{Type: "jobRequisition", AppID: "App1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("App1 rows = %d", len(got))
	}
	got, err = e.Run(Query{Type: "jobRequisition", AppID: "App1", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limited rows = %d", len(got))
	}
	// Index scan + appID filter.
	got, err = e.Run(Query{Type: "jobRequisition", AppID: "App0", Preds: []Pred{
		{Field: "reqID", Op: Eq, Value: provenance.String("REQ07")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 { // r07 belongs to App1
		t.Fatalf("cross-app index result = %v", got)
	}
}

func TestQueryValidation(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)
	if _, err := e.Plan(Query{Type: "ghost"}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := e.Plan(Query{Type: "person", Class: provenance.ClassData}); err == nil {
		t.Error("class mismatch accepted")
	}
	if _, err := e.Plan(Query{Type: "person", Preds: []Pred{{Field: "ghost", Op: Eq}}}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestQueryFallbackWhenIndexesDisabled(t *testing.T) {
	s := seeded(t, true)
	e, _ := NewEngine(s)
	got, err := e.Run(Query{Type: "jobRequisition", Preds: []Pred{
		{Field: "reqID", Op: Eq, Value: provenance.String("REQ07")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "r07" {
		t.Fatalf("fallback result = %v", got)
	}
}

func TestQueryResultsAreClones(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)
	got, err := e.Run(Query{Type: "person"})
	if err != nil {
		t.Fatal(err)
	}
	got[0].SetAttr("name", provenance.String("TAMPERED"))
	if s.Node("p1").Attr("name").Str() != "Joe Doe" {
		t.Fatal("query result aliases store state")
	}
}

func BenchmarkQueryIndexed(b *testing.B) {
	s := seededBench(b, false)
	e, _ := NewEngine(s)
	q := Query{Type: "jobRequisition", Preds: []Pred{
		{Field: "reqID", Op: Eq, Value: provenance.String("REQ05000")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := e.Run(q)
		if err != nil || len(got) != 1 {
			b.Fatalf("got %d, err %v", len(got), err)
		}
	}
}

func BenchmarkQueryScan(b *testing.B) {
	s := seededBench(b, true)
	e, _ := NewEngine(s)
	q := Query{Type: "jobRequisition", Preds: []Pred{
		{Field: "reqID", Op: Eq, Value: provenance.String("REQ05000")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := e.Run(q)
		if err != nil || len(got) != 1 {
			b.Fatalf("got %d, err %v", len(got), err)
		}
	}
}

func seededBench(b *testing.B, disableIdx bool) *store.Store {
	b.Helper()
	s, err := store.Open(store.Options{Model: testModel(b), DisableIndexes: disableIdx})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	for i := 0; i < 10000; i++ {
		n := &provenance.Node{
			ID: fmt.Sprintf("r%05d", i), Class: provenance.ClassData, Type: "jobRequisition",
			AppID: "App0",
			Attrs: map[string]provenance.Value{
				"reqID": provenance.String(fmt.Sprintf("REQ%05d", i)),
			},
		}
		if err := s.PutNode(n); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func TestQueryOrderBy(t *testing.T) {
	s := seeded(t, false)
	e, _ := NewEngine(s)

	// Ascending by headcount.
	got, err := e.Run(Query{Type: "jobRequisition", OrderBy: "headcount", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Attr("headcount").IntVal() > got[i].Attr("headcount").IntVal() {
			t.Fatalf("not ascending: %v", got)
		}
	}
	if got[0].ID != "r00" {
		t.Fatalf("top-1 = %s", got[0].ID)
	}

	// Descending: highest headcount first.
	got, err = e.Run(Query{Type: "jobRequisition", OrderBy: "headcount", Desc: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "r19" {
		t.Fatalf("desc top-1 = %v", got)
	}

	// Absent values sort last: r07 lacks positionType.
	got, err = e.Run(Query{Type: "jobRequisition", OrderBy: "positionType"})
	if err != nil {
		t.Fatal(err)
	}
	if last := got[len(got)-1]; last.ID != "r07" {
		t.Fatalf("absent value not last: %s", last.ID)
	}

	// Unknown order-by field is a plan error.
	if _, err := e.Plan(Query{Type: "jobRequisition", OrderBy: "ghost"}); err == nil {
		t.Fatal("unknown order-by accepted")
	}
}

func TestQueryOrderByWithIndexScan(t *testing.T) {
	// OrderBy composes with an index scan: filter by the indexed field,
	// order by another.
	s := seeded(t, false)
	e, _ := NewEngine(s)
	pl, err := e.Plan(Query{Type: "jobRequisition",
		Preds:   []Pred{{Field: "reqID", Op: Eq, Value: provenance.String("REQ07")}},
		OrderBy: "headcount"})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Indexed() {
		t.Fatal("plan not indexed")
	}
	got, err := pl.Run()
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
}
