// Package query implements the query interface of the provenance store
// (Section II-A): declarative node queries with typed predicates, a
// planner that picks secondary indexes when available (design decision
// D4), and EXPLAIN output surfacing the chosen plan. The rule engine binds
// control-point definitions through this engine, and the query frontend
// (cmd/provd) exposes it over HTTP.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/provenance"
	"repro/internal/store"
)

// Op enumerates predicate operators.
type Op int

const (
	// Eq tests attribute equality.
	Eq Op = iota + 1
	// Ne tests attribute inequality.
	Ne
	// Lt, Le, Gt, Ge are ordered comparisons.
	Lt
	Le
	Gt
	Ge
	// Contains tests substring containment on string attributes.
	Contains
	// Present tests that the attribute was captured at all.
	Present
	// Absent tests that the attribute was not captured.
	Absent
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Contains:
		return "contains"
	case Present:
		return "present"
	case Absent:
		return "absent"
	default:
		return "?"
	}
}

// Pred is one attribute predicate.
type Pred struct {
	Field string
	Op    Op
	Value provenance.Value // unused for Present/Absent
}

// Matches evaluates the predicate against a node. Missing attributes fail
// every operator except Absent: a predicate cannot be satisfied by data
// that was never captured.
func (p Pred) Matches(n *provenance.Node) bool {
	v := n.Attr(p.Field)
	switch p.Op {
	case Present:
		return !v.IsZero()
	case Absent:
		return v.IsZero()
	}
	if v.IsZero() {
		return false
	}
	switch p.Op {
	case Eq:
		return v.Equal(p.Value)
	case Ne:
		return !v.Equal(p.Value)
	case Contains:
		return v.Kind() == provenance.KindString && p.Value.Kind() == provenance.KindString &&
			strings.Contains(v.Str(), p.Value.Str())
	case Lt, Le, Gt, Ge:
		c, err := v.Compare(p.Value)
		if err != nil {
			return false
		}
		switch p.Op {
		case Lt:
			return c < 0
		case Le:
			return c <= 0
		case Gt:
			return c > 0
		default:
			return c >= 0
		}
	default:
		return false
	}
}

// Query selects nodes. Zero-valued fields are unconstrained.
type Query struct {
	Class provenance.Class
	Type  string
	AppID string
	Preds []Pred
	// OrderBy sorts results by an attribute (absent values last, ties by
	// record ID); empty sorts by record ID. Desc reverses the order.
	OrderBy string
	Desc    bool
	// Limit caps the result set; 0 means unlimited. With OrderBy the limit
	// applies after sorting (top-k).
	Limit int
}

// Engine plans and runs queries against a store.
type Engine struct {
	st *store.Store
}

// NewEngine wraps a store.
func NewEngine(st *store.Store) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("query: nil store")
	}
	return &Engine{st: st}, nil
}

// accessPath enumerates how the planner reaches candidate nodes.
type accessPath int

const (
	fullScan accessPath = iota
	typeScan
	indexScan
)

// Plan is a prepared query: an access path plus residual filters.
type Plan struct {
	eng   *Engine
	q     Query
	path  accessPath
	ixKey int // index of the predicate served by the index scan
}

// Plan validates the query and chooses an access path: an equality
// predicate with a declared index wins, otherwise a (class,type) scan,
// otherwise a full scan.
func (e *Engine) Plan(q Query) (*Plan, error) {
	if m := e.st.Model(); m != nil {
		if q.Type != "" {
			t := m.Type(q.Type)
			if t == nil {
				return nil, fmt.Errorf("query: unknown type %q", q.Type)
			}
			if q.Class != provenance.ClassInvalid && t.Class != q.Class {
				return nil, fmt.Errorf("query: type %q is class %v, query says %v", q.Type, t.Class, q.Class)
			}
			for _, p := range q.Preds {
				if t.Field(p.Field) == nil {
					return nil, fmt.Errorf("query: type %q has no field %q", q.Type, p.Field)
				}
			}
		}
	}
	if m := e.st.Model(); m != nil && q.OrderBy != "" && q.Type != "" {
		if m.Type(q.Type).Field(q.OrderBy) == nil {
			return nil, fmt.Errorf("query: type %q has no field %q to order by", q.Type, q.OrderBy)
		}
	}
	pl := &Plan{eng: e, q: q, path: fullScan, ixKey: -1}
	if q.Type != "" {
		pl.path = typeScan
		if m := e.st.Model(); m != nil {
			t := m.Type(q.Type)
			for i, p := range q.Preds {
				if p.Op == Eq && t != nil {
					if f := t.Field(p.Field); f != nil && f.Indexed {
						pl.path = indexScan
						pl.ixKey = i
						break
					}
				}
			}
		}
	}
	return pl, nil
}

// Explain renders the plan as a pipeline, e.g.
//
//	IndexScan(jobRequisition.reqID = "REQ001") -> Filter(appID, 1 preds) -> Limit(10)
func (p *Plan) Explain() string {
	var b strings.Builder
	switch p.path {
	case indexScan:
		pr := p.q.Preds[p.ixKey]
		fmt.Fprintf(&b, "IndexScan(%s.%s = %q)", p.q.Type, pr.Field, pr.Value.Text())
	case typeScan:
		fmt.Fprintf(&b, "TypeScan(%s)", p.q.Type)
	default:
		b.WriteString("FullScan")
	}
	residual := len(p.q.Preds)
	if p.path == indexScan {
		residual--
	}
	var filters []string
	if p.q.AppID != "" && p.path != typeScan && p.path != fullScan {
		filters = append(filters, "appID")
	}
	if p.q.Class != provenance.ClassInvalid && p.q.Type == "" {
		filters = append(filters, "class")
	}
	if residual > 0 {
		filters = append(filters, fmt.Sprintf("%d preds", residual))
	}
	if len(filters) > 0 {
		fmt.Fprintf(&b, " -> Filter(%s)", strings.Join(filters, ", "))
	}
	if p.q.Limit > 0 {
		fmt.Fprintf(&b, " -> Limit(%d)", p.q.Limit)
	}
	return b.String()
}

// Indexed reports whether the plan uses a secondary index.
func (p *Plan) Indexed() bool { return p.path == indexScan }

// Run executes the plan, returning clones of the matching nodes. Results
// sort by OrderBy when set (absent values last, ties by ID) and by record
// ID otherwise. The whole plan executes inside one store read view
// (store.ReadTx), so the index probe and the graph resolution always see
// the same snapshot — an index hit can never dangle against a newer or
// older graph.
func (p *Plan) Run() ([]*provenance.Node, error) {
	var out []*provenance.Node
	collect := func(n *provenance.Node) bool {
		for _, pr := range p.q.Preds {
			if !pr.Matches(n) {
				return false
			}
		}
		out = append(out, n.Clone())
		return true
	}
	// Early limiting is only sound when no ordering is requested.
	earlyLimit := p.q.Limit
	if p.q.OrderBy != "" {
		earlyLimit = 0
	}
	err := p.eng.st.ReadTx(func(tx store.ReadTx) error {
		if p.path == indexScan {
			pr := p.q.Preds[p.ixKey]
			ids, ok := tx.LookupByAttr(p.q.Type, pr.Field, pr.Value)
			if ok {
				g := tx.Graph()
				for _, id := range ids {
					n := g.Node(id)
					if n == nil || (p.q.AppID != "" && n.AppID != p.q.AppID) {
						continue
					}
					collect(n)
					if earlyLimit > 0 && len(out) >= earlyLimit {
						break
					}
				}
				return nil
			}
			// Index disappeared (e.g. DisableIndexes); fall back to scan.
		}
		p.scan(tx.Graph(), earlyLimit, &out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.finish(out), nil
}

// finish applies ordering and the post-sort limit.
func (p *Plan) finish(out []*provenance.Node) []*provenance.Node {
	if p.q.OrderBy == "" {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	} else {
		field := p.q.OrderBy
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i].Attr(field), out[j].Attr(field)
			switch {
			case a.IsZero() && b.IsZero():
				return out[i].ID < out[j].ID
			case a.IsZero():
				return false // absent values always last
			case b.IsZero():
				return true
			}
			c, err := a.Compare(b)
			if err != nil || c == 0 {
				return out[i].ID < out[j].ID
			}
			if p.q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if p.q.Limit > 0 && len(out) > p.q.Limit {
		out = out[:p.q.Limit]
	}
	return out
}

func (p *Plan) scan(g *provenance.Graph, earlyLimit int, out *[]*provenance.Node) {
	// Both branches are index-backed: NodesByType reads the trace's type
	// posting list directly, and Nodes routes class/type filters through
	// the same per-shard postings (scanning only under the
	// DisableRuleIndexes ablation).
	var cands []*provenance.Node
	if p.q.Type != "" && p.q.Class == provenance.ClassInvalid {
		cands = g.NodesByType(p.q.AppID, p.q.Type)
	} else {
		cands = g.Nodes(provenance.NodeFilter{Class: p.q.Class, Type: p.q.Type, AppID: p.q.AppID})
	}
	for _, n := range cands {
		ok := true
		for _, pr := range p.q.Preds {
			if !pr.Matches(n) {
				ok = false
				break
			}
		}
		if ok {
			*out = append(*out, n.Clone())
			if earlyLimit > 0 && len(*out) >= earlyLimit {
				return
			}
		}
	}
}

// Run is a convenience: plan and execute in one call.
func (e *Engine) Run(q Query) ([]*provenance.Node, error) {
	pl, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return pl.Run()
}
