package controls

import (
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
)

// The window tracker maintains sliding-window state for the windowed
// ("is within <d> of") predicates of the deployed controls, fed from the
// same change-feed deltas that drive discrimination. The predicate
// itself is clock-free — it compares recorded timestamps, so verdicts
// are reproducible — which leaves one observability gap: a trace whose
// anchor event happened but whose target never arrives sits at
// Indeterminate forever, and no store write will ever re-check it. The
// tracker closes that gap: it watches each window's anchor timestamp as
// commits stream past, and Checker.Tick re-marks traces whose deadline
// has passed with no target recorded, so the engine re-surfaces their
// (still indeterminate, now actionable) outcomes to observers.

// WindowStats summarizes sliding-window state across traces.
type WindowStats struct {
	// Specs is the number of windowed predicates across deployed controls.
	Specs int
	// Open counts windows whose anchor was seen and whose target has not
	// arrived, with the deadline still in the future.
	Open int
	// Expired counts windows whose deadline passed with no target.
	Expired int
	// Resolved counts windows whose target arrived (inside the window or
	// not — the control's verdict says which).
	Resolved int
}

// trackedWindow is one windowed predicate of one deployed control.
type trackedWindow struct {
	controlID string
	spec      rules.WindowSpec
}

// windowState is one trace's progress through one tracked window.
type windowState struct {
	anchorAt time.Time
	targetAt time.Time
	expired  bool
	resolved bool
}

type traceWindows struct {
	states []windowState // parallel to windowTracker.specs
}

type windowTracker struct {
	reg *Registry

	mu     sync.Mutex
	built  bool
	gen    uint64
	specs  []trackedWindow
	traces map[string]*traceWindows
}

func newWindowTracker(reg *Registry) *windowTracker {
	return &windowTracker{reg: reg, traces: make(map[string]*traceWindows)}
}

// rebuildLocked refreshes the spec list when the deployed control set
// moved. Per-trace state is keyed by spec index, so a redeploy resets it;
// anchors are re-learned from subsequent commits.
func (t *windowTracker) rebuildLocked() {
	gen := t.reg.Gen()
	if t.built && gen == t.gen {
		return
	}
	t.built = true
	t.gen = gen
	t.specs = t.specs[:0]
	for _, cp := range t.reg.List() {
		w, ok := cp.compiled.(interface{ Windows() []rules.WindowSpec })
		if !ok {
			continue
		}
		for _, sp := range w.Windows() {
			t.specs = append(t.specs, trackedWindow{controlID: cp.ID, spec: sp})
		}
	}
	t.traces = make(map[string]*traceWindows)
}

// observe folds one change-feed event into the window state: O(specs)
// per commit, no graph access.
func (t *windowTracker) observe(ev store.Event) {
	if ev.Node == nil || ev.Node.AppID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuildLocked()
	if len(t.specs) == 0 {
		return
	}
	tw := t.traces[ev.Node.AppID]
	if tw == nil {
		tw = &traceWindows{states: make([]windowState, len(t.specs))}
		t.traces[ev.Node.AppID] = tw
	}
	for i := range t.specs {
		sp := &t.specs[i].spec
		st := &tw.states[i]
		if ts, ok := windowTime(ev.Node, sp.Anchor, sp.AnchorAny); ok && ts.After(st.anchorAt) {
			st.anchorAt = ts
		}
		if ts, ok := windowTime(ev.Node, sp.Target, sp.TargetAny); ok && ts.After(st.targetAt) {
			st.targetAt = ts
		}
		if !st.resolved && !st.anchorAt.IsZero() && !st.targetAt.IsZero() {
			st.resolved = true
			st.expired = false // late target: the verdict, not the clock, judges it
		}
	}
}

// windowTime extracts the timestamp one window side reads from a node,
// if the node carries one. An any-side (statically unbounded sources)
// accepts the latest KindTime attribute of any node.
func windowTime(n *provenance.Node, refs []rules.TimeRef, any bool) (time.Time, bool) {
	if any {
		var best time.Time
		ok := false
		for _, v := range n.Attrs {
			if v.Kind() == provenance.KindTime && !v.IsZero() && v.TimeVal().After(best) {
				best = v.TimeVal()
				ok = true
			}
		}
		return best, ok
	}
	for i := range refs {
		if refs[i].Type != n.Type {
			continue
		}
		if v := n.Attr(refs[i].Field); v.Kind() == provenance.KindTime && !v.IsZero() {
			return v.TimeVal(), true
		}
	}
	return time.Time{}, false
}

// expire marks windows whose deadline passed with no target and returns
// the traces that newly expired — the re-check list for Checker.Tick.
func (t *windowTracker) expire(now time.Time) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for app, tw := range t.traces {
		hit := false
		for i := range tw.states {
			st := &tw.states[i]
			if st.resolved || st.expired || st.anchorAt.IsZero() {
				continue
			}
			if now.Sub(st.anchorAt) > t.specs[i].spec.Window {
				st.expired = true
				hit = true
			}
		}
		if hit {
			out = append(out, app)
		}
	}
	return out
}

// stats snapshots the tracker.
func (t *windowTracker) stats() WindowStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := WindowStats{Specs: len(t.specs)}
	for _, tw := range t.traces {
		for i := range tw.states {
			st := &tw.states[i]
			switch {
			case st.resolved:
				s.Resolved++
			case st.expired:
				s.Expired++
			case !st.anchorAt.IsZero():
				s.Open++
			}
		}
	}
	return s
}
