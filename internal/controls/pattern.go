package controls

import (
	"fmt"
	"sort"

	"repro/internal/provenance"
	"repro/internal/rules"
)

// Evaluator is anything the registry can deploy as an internal control.
// *rules.Control (compiled business-vocabulary rules) is the primary
// implementation; PatternControl is the direct subgraph form.
type Evaluator interface {
	// Evaluate runs the control on one trace of the graph.
	Evaluate(g *provenance.Graph, appID string) *rules.Result
	// Text renders the control's source for listings.
	Text() string
}

// PatternControl is an internal control expressed directly as a graph
// pattern — the paper's Section II-C formulation: "a business control
// point is a sub graph of the provenance graph. ... The internal control
// is satisfied if all the specified edges exist."
//
// The Subject pattern var anchors applicability: when no node matches the
// subject's constraints the control is NotApplicable; when the subject
// matches but the full pattern does not embed, the control is Violated.
type PatternControl struct {
	// Pattern is the subgraph to embed.
	Pattern *provenance.Pattern
	// Subject is the pattern var whose presence makes the control
	// applicable. Must be declared in Pattern.
	Subject string
	// Source is a human-readable description for listings.
	Source string
}

// NewPatternControl validates and wraps a pattern as a control.
func NewPatternControl(p *provenance.Pattern, subject, source string) (*PatternControl, error) {
	if p == nil {
		return nil, fmt.Errorf("controls: nil pattern")
	}
	found := false
	for _, v := range p.Vars() {
		if v == subject {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("controls: subject %q is not a pattern var", subject)
	}
	return &PatternControl{Pattern: p, Subject: subject, Source: source}, nil
}

// Text implements Evaluator.
func (pc *PatternControl) Text() string {
	if pc.Source != "" {
		return pc.Source
	}
	return pc.Pattern.String()
}

// Evaluate implements Evaluator: two-phase matching. First the subject var
// alone (applicability), then the full pattern (satisfaction). Bindings of
// a satisfied control list the matched subgraph nodes, so materialization
// draws the same Fig 2 links as rule controls.
func (pc *PatternControl) Evaluate(g *provenance.Graph, appID string) *rules.Result {
	res := &rules.Result{AppID: appID, Bindings: make(map[string][]string)}

	candidates := pc.subjectCandidates(g, appID)
	if len(candidates) == 0 {
		res.Verdict = rules.NotApplicable
		res.Notes = append(res.Notes, fmt.Sprintf("no candidate for pattern subject %q in trace %s",
			pc.Subject, appID))
		return res
	}
	matches := pc.Pattern.FindMatches(g, appID, 1)
	if len(matches) == 0 {
		res.Verdict = rules.Violated
		res.Notes = append(res.Notes,
			"the control-point subgraph does not embed: a required vertex or edge is missing")
		for _, c := range candidates {
			res.Bindings[pc.Subject] = append(res.Bindings[pc.Subject], c.ID)
		}
		sort.Strings(res.Bindings[pc.Subject])
		return res
	}
	res.Verdict = rules.Satisfied
	m := matches[0]
	for _, v := range pc.Pattern.Vars() {
		if n := m[v]; n != nil {
			res.Bindings[v] = []string{n.ID}
		}
	}
	return res
}

// subjectCandidates lists trace nodes satisfying the subject var's own
// constraints (ignoring edges to other vars).
func (pc *PatternControl) subjectCandidates(g *provenance.Graph, appID string) []*provenance.Node {
	pn := pc.Pattern.NodeVar(pc.Subject)
	if pn == nil {
		return nil
	}
	var out []*provenance.Node
	for _, n := range g.Nodes(provenance.NodeFilter{Class: pn.Class, Type: pn.Type, AppID: appID}) {
		if pn.Where == nil || pn.Where(n) {
			out = append(out, n)
		}
	}
	return out
}
