package controls

import (
	"strings"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rules"
)

// gmPattern is the paper's Section II-C control as a direct subgraph: a
// new-position requisition must have an approval edge.
func gmPattern(t testing.TB) *provenance.Pattern {
	t.Helper()
	p := provenance.NewPattern()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.AddNode(&provenance.PatternNode{Var: "req", Class: provenance.ClassData,
		Type: "jobRequisition",
		Where: func(n *provenance.Node) bool {
			return n.Attr("positionType").Str() == "new"
		}}))
	must(p.AddNode(&provenance.PatternNode{Var: "apprv", Class: provenance.ClassData,
		Type: "approvalStatus"}))
	must(p.AddEdge(&provenance.PatternEdge{From: "apprv", Type: "approvalOf", To: "req"}))
	return p
}

func TestPatternControlVerdicts(t *testing.T) {
	f := newFixture(t, false)
	pc, err := NewPatternControl(gmPattern(t), "req", "new requisition needs an approvalOf edge")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.DeployEvaluator("gm-subgraph", "GM approval (subgraph form)", pc, ""); err != nil {
		t.Fatal(err)
	}

	f.addTrace(t, "A1", true, true)   // new + approved: satisfied
	f.addTrace(t, "A2", true, false)  // new, no approval: violated
	f.addTrace(t, "A3", false, false) // existing: subject predicate fails -> not applicable

	want := map[string]rules.Verdict{
		"A1": rules.Satisfied,
		"A2": rules.Violated,
		"A3": rules.NotApplicable,
	}
	for app, wantV := range want {
		outcomes, err := reg.Check(app)
		if err != nil {
			t.Fatal(err)
		}
		if len(outcomes) != 1 {
			t.Fatalf("%s: outcomes = %d", app, len(outcomes))
		}
		got := outcomes[0].Result
		if got.Verdict != wantV {
			t.Errorf("%s: verdict = %v, want %v (notes %v)", app, got.Verdict, wantV, got.Notes)
		}
		if wantV == rules.Satisfied {
			if ids := got.Bindings["req"]; len(ids) != 1 || ids[0] != "A1-req" {
				t.Errorf("%s: bindings = %v", app, got.Bindings)
			}
			if ids := got.Bindings["apprv"]; len(ids) != 1 {
				t.Errorf("%s: approval binding = %v", app, got.Bindings)
			}
		}
		if wantV == rules.Violated {
			if ids := got.Bindings["req"]; len(ids) != 1 {
				t.Errorf("%s: violated bindings = %v", app, got.Bindings)
			}
			if len(got.Notes) == 0 || !strings.Contains(got.Notes[0], "does not embed") {
				t.Errorf("%s: notes = %v", app, got.Notes)
			}
		}
	}
}

func TestPatternControlMaterializes(t *testing.T) {
	f := newFixture(t, true)
	pc, err := NewPatternControl(gmPattern(t), "req", "")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(f.st, f.vocab, Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.DeployEvaluator("gm-subgraph", "subgraph", pc, ""); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)
	if _, err := reg.Check("A1"); err != nil {
		t.Fatal(err)
	}
	cp := f.st.Node("cp-gm-subgraph-A1")
	if cp == nil || cp.Attr("status").Str() != "satisfied" {
		t.Fatalf("materialized pattern control = %v", cp)
	}
	// Fig 2: the control links to both matched vertices.
	err = f.st.View(func(g *provenance.Graph) error {
		for _, tgt := range []string{"A1-req", "A1-ap"} {
			if !g.HasEdge(cp.ID, ChecksRelation, tgt) {
				t.Errorf("checks edge to %s missing", tgt)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPatternControlValidation(t *testing.T) {
	if _, err := NewPatternControl(nil, "x", ""); err == nil {
		t.Error("nil pattern accepted")
	}
	p := gmPattern(t)
	if _, err := NewPatternControl(p, "ghost", ""); err == nil {
		t.Error("unknown subject accepted")
	}
	pc, err := NewPatternControl(p, "req", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pc.Text(), "pattern{") {
		t.Errorf("default text = %q", pc.Text())
	}
	pc2, _ := NewPatternControl(p, "req", "described")
	if pc2.Text() != "described" {
		t.Errorf("source text = %q", pc2.Text())
	}
	f := newFixture(t, false)
	reg, _ := NewRegistry(f.st, f.vocab, Options{})
	if _, err := reg.DeployEvaluator("x", "n", nil, ""); err == nil {
		t.Error("nil evaluator accepted")
	}
	if _, err := reg.DeployEvaluator("", "n", pc, ""); err == nil {
		t.Error("empty ID accepted")
	}
}
