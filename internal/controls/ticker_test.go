package controls

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/xom"
)

// reviewFixture builds a store and vocabulary for the windowed-predicate
// tests: a submission whose review must be decided within 48 hours.
type reviewFixture struct {
	st    *store.Store
	vocab *bom.Vocabulary
}

func newReviewFixture(t testing.TB) *reviewFixture {
	t.Helper()
	m := provenance.NewModel("review")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassData}))
	must(m.AddField("submission", &provenance.FieldDef{Name: "submittedAt", Kind: provenance.KindTime}))
	must(m.AddType(&provenance.TypeDef{Name: "review", Class: provenance.ClassData}))
	must(m.AddField("review", &provenance.FieldDef{Name: "decidedAt", Kind: provenance.KindTime}))
	must(m.AddRelation(&provenance.RelationDef{Name: "reviewOf", SourceType: "review", TargetType: "submission"}))
	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		MemberLabels: map[string]string{
			"submission.submittedAt":     "submission time",
			"review.decidedAt":           "decision time",
			"submission.reviewOfInverse": "review",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &reviewFixture{st: st, vocab: vocab}
}

const reviewDeadlineControl = `
definitions
  set 'the sub' to a submission ;
if
  the decision time of the review of 'the sub'
  is within 2 days of the submission time of 'the sub'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "review decided outside the 48-hour window" ;
`

func (f *reviewFixture) submit(t testing.TB, app string, at time.Time) {
	t.Helper()
	if err := f.st.PutNode(&provenance.Node{ID: app + "-sub", Class: provenance.ClassData,
		Type: "submission", AppID: app,
		Attrs: map[string]provenance.Value{"submittedAt": provenance.Time(at)}}); err != nil {
		t.Fatal(err)
	}
}

// waitUntil polls cond with the engine quiesced-ish cadence tests need
// for counters updated outside the quiescence barrier.
func waitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTickerFakeClock drives the wall-clock ticker from an injected
// channel — a fake clock — and asserts the full expiry path: an anchored
// window with no target does nothing while the fake clock is inside the
// window, expires exactly once when it passes the deadline, and the
// expiry re-marks the trace so its (still indeterminate, now actionable)
// outcome re-surfaces to the result callback.
func TestTickerFakeClock(t *testing.T) {
	f := newReviewFixture(t)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("deadline", "review deadline", reviewDeadlineControl); err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	ch := NewCheckerOpts(reg, func(out []*Outcome) {
		for _, o := range out {
			if o.Result.AppID == "A1" {
				delivered.Add(1)
			}
		}
	}, CheckerOptions{Workers: 2})
	ch.Start()
	defer ch.Stop()

	ticks := make(chan time.Time)
	if !ch.runTicker(ticks, nil) {
		t.Fatal("ticker failed to install")
	}
	if ch.runTicker(ticks, nil) {
		t.Fatal("second ticker installed alongside the first")
	}
	defer ch.StopTicker()

	base := time.Date(2011, 4, 11, 9, 0, 0, 0, time.UTC)
	f.submit(t, "A1", base)
	ch.WaitFor(f.st.Stats().Seq)
	waitUntil(t, "initial outcome", func() bool { return delivered.Load() >= 1 })
	if got := ch.Latest()[0].Result.Verdict; got != rules.Indeterminate {
		t.Fatalf("verdict before expiry = %v, want Indeterminate", got)
	}
	if st := ch.Stats(); st.WindowsOpen != 1 {
		t.Fatalf("windows open = %d, want 1 (stats %+v)", st.WindowsOpen, st)
	}
	before := delivered.Load()

	// Inside the window: the tick lands, nothing expires, nothing
	// re-surfaces.
	ticks <- base.Add(47 * time.Hour)
	waitUntil(t, "first tick", func() bool { return ch.Stats().TickerTicks == 1 })
	if st := ch.Stats(); st.TickerExpired != 0 || st.WindowsExpired != 0 {
		t.Fatalf("window expired inside its deadline: %+v", st)
	}

	// Past the deadline: the window expires and the trace re-checks.
	ticks <- base.Add(49 * time.Hour)
	waitUntil(t, "expiry tick", func() bool { return ch.Stats().TickerTicks == 2 })
	waitUntil(t, "re-surfaced outcome", func() bool { return delivered.Load() > before })
	st := ch.Stats()
	if st.TickerExpired != 1 || st.WindowsExpired != 1 || st.WindowsOpen != 0 {
		t.Fatalf("expiry not tracked: %+v", st)
	}

	// Expiry is edge-triggered: a later tick must not re-expire.
	ticks <- base.Add(90 * time.Hour)
	waitUntil(t, "third tick", func() bool { return ch.Stats().TickerTicks == 3 })
	if st := ch.Stats(); st.TickerExpired != 1 {
		t.Fatalf("window expired twice: %+v", st)
	}

	ch.StopTicker()
	ch.StopTicker() // idempotent
	// A fresh driver installs after a stop; exercise the wall-clock entry
	// point too.
	ch.StartTicker(time.Millisecond)
	waitUntil(t, "wall-clock ticks", func() bool { return ch.Stats().TickerTicks > 3 })
	ch.StopTicker()
	ch.StartTicker(0) // non-positive interval: a no-op, StopTicker still safe
	ch.StopTicker()
}

// TestCheckGraphAsOf evaluates deployed controls against detached
// graphs — the point-in-time audit path — and verifies the live result
// cache is left untouched.
func TestCheckGraphAsOf(t *testing.T) {
	f := newReviewFixture(t)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("deadline", "review deadline", reviewDeadlineControl); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CheckGraph("A1", nil); err == nil {
		t.Fatal("nil graph accepted")
	}

	base := time.Date(2011, 4, 11, 9, 0, 0, 0, time.UTC)
	mk := func(decided time.Time) *provenance.Graph {
		g := provenance.NewGraph()
		if err := g.AddNode(&provenance.Node{ID: "A1-sub", Class: provenance.ClassData,
			Type: "submission", AppID: "A1",
			Attrs: map[string]provenance.Value{"submittedAt": provenance.Time(base)}}); err != nil {
			t.Fatal(err)
		}
		if decided.IsZero() {
			return g
		}
		if err := g.AddNode(&provenance.Node{ID: "A1-rev", Class: provenance.ClassData,
			Type: "review", AppID: "A1",
			Attrs: map[string]provenance.Value{"decidedAt": provenance.Time(decided)}}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(&provenance.Edge{ID: "A1-e", Type: "reviewOf", AppID: "A1",
			Source: "A1-rev", Target: "A1-sub"}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	for _, tc := range []struct {
		name    string
		decided time.Time
		want    rules.Verdict
	}{
		{"before the review", time.Time{}, rules.Indeterminate},
		{"decided in time", base.Add(20 * time.Hour), rules.Satisfied},
		{"decided late", base.Add(72 * time.Hour), rules.Violated},
	} {
		out, err := reg.CheckGraph("A1", mk(tc.decided))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(out) != 1 || out[0].ControlID != "deadline" {
			t.Fatalf("%s: outcomes = %+v", tc.name, out)
		}
		if got := out[0].Result.Verdict; got != tc.want {
			t.Fatalf("%s: verdict = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Historical evaluation must not pollute the live per-trace cache.
	if cs := reg.CacheStats(); cs.Entries != 0 {
		t.Fatalf("CheckGraph populated the live cache: %+v", cs)
	}
}
