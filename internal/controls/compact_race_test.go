package controls

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/store"
)

// TestCompactConcurrentWithChecker runs log compaction in a loop while
// parallel writers ingest traces and the continuous checker re-evaluates
// them from the change feed. Under -race this is the durability layer's
// liveness gate: Compact swaps the active log and rewrites the snapshot
// mid-stream, and none of that may lose a feed event, serve a stale
// cached verdict, or wedge WaitFor quiescence.
func TestCompactConcurrentWithChecker(t *testing.T) {
	f := newFixtureOpts(t, false, store.Options{Dir: t.TempDir()})
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	var verdicts sync.Map
	ch := NewCheckerOpts(reg, func(out []*Outcome) {
		for _, o := range out {
			if o.ControlID == "gm-approval" {
				verdicts.Store(o.Result.AppID, o.Result.Verdict)
			}
		}
	}, CheckerOptions{Workers: 4})
	ch.Start()
	defer ch.Stop()

	const writers = 4
	const perWriter = 25
	const compactions = 15
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				app := fmt.Sprintf("C%d-%02d", w, i)
				if err := putTrace(f, app, true, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactions; i++ {
			if err := f.st.Compact(); err != nil {
				t.Errorf("compaction %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	ch.WaitFor(f.st.Stats().Seq)

	// No lost events: the dispatcher consumed the entire change feed, and
	// quiescence left nothing queued.
	st := ch.Stats()
	if got, want := st.EventsSeen, f.st.Stats().Seq; got != want {
		t.Fatalf("EventsSeen = %d, want %d (full change feed)", got, want)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth after quiescence = %d", st.QueueDepth)
	}
	if st.Errors != 0 {
		t.Fatalf("engine errors: %d (last: %s)", st.Errors, st.LastError)
	}
	if got := f.st.Durability().Compactions; got != compactions {
		t.Fatalf("Compactions = %d, want %d", got, compactions)
	}

	// No stale cache hits: the engine's final verdict, the cached Check
	// answer, and a cache-free re-evaluation must all agree per trace.
	fresh, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			app := fmt.Sprintf("C%d-%02d", w, i)
			want := rules.Violated
			if i%2 == 0 {
				want = rules.Satisfied
			}
			got, ok := verdicts.Load(app)
			if !ok {
				t.Fatalf("trace %s never checked", app)
			}
			if got != want {
				t.Fatalf("trace %s engine verdict = %v, want %v", app, got, want)
			}
			cached, err := reg.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			uncached, err := fresh.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			if cached[0].Result.Verdict != want || uncached[0].Result.Verdict != want {
				t.Fatalf("trace %s: cached=%v fresh=%v, want %v",
					app, cached[0].Result.Verdict, uncached[0].Result.Verdict, want)
			}
		}
	}
}
