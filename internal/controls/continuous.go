package controls

import (
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/tenant"
)

// Checker runs continuous compliance checking (the paper's future-work
// item, experiment E6): it subscribes to the store's change feed and
// re-evaluates the registered controls for every trace a new record
// touches.
//
// The engine is sharded: a dispatcher goroutine routes each change-feed
// event to one of CheckerOptions.Workers workers by hashing the trace ID,
// so checks of the same trace always run on the same worker in order
// (per-trace ordering preserved) while different traces check in parallel.
// Each worker keeps a dirty set — a burst of N events on one trace
// collapses into a single re-check of the final state instead of N — and
// the registry's result cache skips traces whose version has not moved.
// Its own materialized control nodes and checks edges are filtered out of
// the feed to avoid feedback.
type Checker struct {
	reg      *Registry
	onResult func([]*Outcome)
	opts     CheckerOptions
	windows  *windowTracker

	mu      sync.Mutex
	cond    *sync.Cond // broadcast whenever pending/lastSeq move
	running bool
	sub     *store.Subscription
	done    chan struct{} // closed when the dispatcher exits
	workers []*ckWorker
	wg      *sync.WaitGroup
	latest  []*Outcome
	pending int    // dirty traces queued or being checked
	lastSeq uint64 // highest feed sequence the dispatcher has routed
	startAt time.Time
	busy    time.Duration // accumulated worker check time since Start

	tickerStop chan struct{} // non-nil while a ticker driver runs
	tickerDone chan struct{}

	stats         CheckerStats
	traceErrs     map[string]string
	tenantChecks  map[string]uint64
	tenantPending map[string]int
}

// CheckerOptions tunes the continuous engine.
type CheckerOptions struct {
	// Workers is the number of shard workers. Traces hash onto workers,
	// so this bounds cross-trace parallelism; per-trace order is always
	// serial. Zero or negative means GOMAXPROCS.
	Workers int
	// DisableFairShare reverts every worker to one shared FIFO across
	// tenants: a noisy tenant's backlog then delays everyone behind it
	// (ablation D14, experiment E17). With fair share on (the default),
	// each worker keeps per-tenant queues and serves them by stride
	// scheduling weighted with TenantWeight.
	DisableFairShare bool
	// TenantOf maps a trace ID to its tenant; nil uses the trace-ID
	// namespace prefix (tenant.Owner).
	TenantOf func(appID string) string
	// TenantWeight returns a tenant's fair-share weight; nil (or values
	// < 1) means weight 1.
	TenantWeight func(tenantID string) int
	// EvalDelay is a synthetic flat per-re-check evaluation cost — the
	// experiment device model for expensive control portfolios (large
	// vocabularies, cross-trace predicates, remote evaluators), the same
	// role slowfs plays for storage in E16. It lets E17 make checking the
	// contended resource on hardware where real checks are microseconds.
	// Zero (production) adds nothing.
	EvalDelay time.Duration
}

// CheckerStats is a snapshot of the engine's counters. All counters are
// cumulative across Start/Stop cycles.
type CheckerStats struct {
	// Workers is the configured shard count (resolved, never zero).
	Workers int
	// EventsSeen counts change-feed events the dispatcher consumed,
	// including filtered self-writes.
	EventsSeen uint64
	// ChecksRun counts trace re-checks executed by the workers.
	ChecksRun uint64
	// Coalesced counts events that were absorbed into an already-pending
	// re-check of the same trace instead of scheduling another one.
	Coalesced uint64
	// Errors counts failed re-checks (reg.Check returned an error).
	Errors uint64
	// CacheHits / CacheMisses mirror the registry's incremental result
	// cache counters (shared with batch CheckAll calls). A cache hit is a
	// re-check that probed the trace version and found it unchanged —
	// distinct from a delta skip, which never probes at all.
	CacheHits   uint64
	CacheMisses uint64
	// DeltaChecks / DeltaSkips / DeltaPartials / DeltaFallbacks mirror
	// the registry's delta-discrimination counters: skips were answered
	// without touching the graph (no version probe, no allocation),
	// partials re-evaluated only the affected controls, fallbacks
	// degraded to a full re-check. DeltaSkipRatio is skips/checks.
	DeltaChecks    uint64
	DeltaSkips     uint64
	DeltaPartials  uint64
	DeltaFallbacks uint64
	DeltaSkipRatio float64
	// ControlsEvaluated / ControlsSkipped count per-control work on the
	// delta path: skipped controls kept their cached verdict because the
	// write set provably could not affect them.
	ControlsEvaluated uint64
	ControlsSkipped   uint64
	// WindowsOpen / WindowsExpired / WindowsResolved summarize sliding-
	// window state across traces (see WindowStats).
	WindowsOpen     int
	WindowsExpired  int
	WindowsResolved int
	// TickerTicks counts wall-clock ticks delivered by the background
	// ticker driver (StartTicker), and TickerExpired the traces those
	// ticks re-marked for a re-check because a window deadline passed.
	TickerTicks   uint64
	TickerExpired uint64
	// BindingHits / BindingMisses mirror the registry's cross-control
	// binding cache, and BindingReuseRatio is hits/(hits+misses): how
	// often a control's binder candidates were served by a set another
	// control already computed on the same trace version.
	BindingHits       uint64
	BindingMisses     uint64
	BindingReuseRatio float64
	// QueueDepth is the number of dirty traces awaiting or undergoing a
	// re-check right now.
	QueueDepth int
	// TenantChecks counts re-checks per tenant, and TenantPending the
	// dirty traces queued or in flight per tenant right now — the
	// fair-share visibility surface (and what the cluster router's
	// scatter merge folds per tenant).
	TenantChecks  map[string]uint64
	TenantPending map[string]int
	// FairShare is false under the DisableFairShare ablation.
	FairShare bool
	// LastSeq is the highest change-feed sequence the dispatcher has
	// routed — compared against the store's commit sequence it tells an
	// observer (the /stats endpoint, the provbench harness) how far
	// continuous checking lags ingestion.
	LastSeq uint64
	// FeedDepth is the change-feed backlog behind the dispatcher, and
	// FeedMaxDepth its high-water mark — the backpressure signals.
	FeedDepth    int
	FeedMaxDepth int
	// Utilization is the fraction of worker capacity spent checking since
	// Start (1.0 = all workers busy the whole time). Zero when stopped.
	Utilization float64
	// LastError is the most recent re-check error, empty when none.
	LastError string
	// TraceErrors maps trace ID to its most recent re-check error; a
	// subsequent successful re-check clears the trace's entry.
	TraceErrors map[string]string
}

// ckWorker is one shard: per-tenant FIFOs of dirty traces, each trace
// carrying the write set accumulated while it waited. A nil write set
// means "anything may have changed" (a manual MarkDirty kick) and forces
// a full re-check.
//
// With fair share on, the worker serves its tenant queues by stride
// scheduling: each tenant holds a pass value, the non-empty queue with
// the lowest pass is served next, and serving advances the pass by
// 1/weight. A tenant with a 10,000-trace backlog and a tenant with one
// dirty trace therefore alternate (weighted) instead of the single
// trace waiting behind the backlog — per-tenant detection latency stays
// bounded by the tenant's own load. Per-trace order is untouched: a
// trace still lives in exactly one queue of exactly one worker.
//
// With fair share off (the E17 ablation) queueKey maps every trace to
// one shared queue, which is byte-for-byte the old single-FIFO behavior.
type ckWorker struct {
	queueKey func(appID string) string
	weightOf func(tenantID string) int

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]string
	pass   map[string]float64
	dirty  map[string]*store.WriteSet
	closed bool
}

func newCkWorker(queueKey func(string) string, weightOf func(string) int) *ckWorker {
	w := &ckWorker{
		queueKey: queueKey,
		weightOf: weightOf,
		queues:   make(map[string][]string),
		pass:     make(map[string]float64),
		dirty:    make(map[string]*store.WriteSet),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// mark flags a trace dirty, taking ownership of ws (nil = full). It
// reports whether the trace was newly dirty; when it was already
// pending, the write sets merge losslessly under the worker lock — the
// coalesced re-check covers the union of both deltas (or degrades to
// full across a version gap, never silently narrower).
func (w *ckWorker) mark(app string, ws *store.WriteSet) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	if pending, ok := w.dirty[app]; ok {
		if pending != nil {
			if ws == nil {
				w.dirty[app] = nil
			} else {
				pending.Merge(ws)
			}
		}
		return false
	}
	w.dirty[app] = ws
	tn := w.queueKey(app)
	if len(w.queues[tn]) == 0 {
		// Reactivation forfeits idle credit: a tenant quiet for an hour
		// must not bank an hour of scheduling priority and then starve
		// everyone else — it rejoins at the head of the current round.
		if min, ok := w.minActivePassLocked(); ok && w.pass[tn] < min {
			w.pass[tn] = min
		}
	}
	w.queues[tn] = append(w.queues[tn], app)
	w.cond.Signal()
	return true
}

// minActivePassLocked returns the lowest pass among tenants with queued
// work (false when every queue is empty).
func (w *ckWorker) minActivePassLocked() (float64, bool) {
	min, found := 0.0, false
	for tn, q := range w.queues {
		if len(q) == 0 {
			continue
		}
		if p := w.pass[tn]; !found || p < min {
			min, found = p, true
		}
	}
	return min, found
}

// next blocks until a dirty trace is available and claims it, returning
// the trace with its accumulated write set. The last result is false
// once the worker is closed and drained. Claiming removes the trace from
// the dirty set, so events arriving during the re-check re-mark it with
// a fresh delta — the final state of a trace is never lost to
// coalescing.
func (w *ckWorker) next() (string, *store.WriteSet, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.closed {
		if tn, ok := w.pickLocked(); ok {
			return w.popLocked(tn)
		}
		w.cond.Wait()
	}
	if tn, ok := w.pickLocked(); ok {
		return w.popLocked(tn)
	}
	return "", nil, false
}

// pickLocked chooses the next tenant queue to serve: lowest pass wins,
// ties break by tenant ID for determinism.
func (w *ckWorker) pickLocked() (string, bool) {
	best, found := "", false
	for tn, q := range w.queues {
		if len(q) == 0 {
			continue
		}
		if !found || w.pass[tn] < w.pass[best] ||
			(w.pass[tn] == w.pass[best] && tn < best) {
			best, found = tn, true
		}
	}
	return best, found
}

func (w *ckWorker) popLocked(tn string) (string, *store.WriteSet, bool) {
	q := w.queues[tn]
	app := q[0]
	q = q[1:]
	if len(q) == 0 {
		delete(w.queues, tn) // let idle tenants vacate the scan
	} else {
		w.queues[tn] = q
	}
	weight := 1
	if w.weightOf != nil {
		if v := w.weightOf(tn); v > 0 {
			weight = v
		}
	}
	w.pass[tn] += 1.0 / float64(weight)
	ws := w.dirty[app]
	delete(w.dirty, app)
	return app, ws, true
}

// close stops the worker after it drains its queues.
func (w *ckWorker) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// NewChecker builds a continuous checker over a registry with default
// options. onResult, when non-nil, receives the outcomes of every
// re-check (the dashboard hook); it runs on worker goroutines, one trace
// at a time per worker.
func NewChecker(reg *Registry, onResult func([]*Outcome)) *Checker {
	return NewCheckerOpts(reg, onResult, CheckerOptions{})
}

// NewCheckerOpts builds a continuous checker with explicit options.
func NewCheckerOpts(reg *Registry, onResult func([]*Outcome), opts CheckerOptions) *Checker {
	c := &Checker{
		reg: reg, onResult: onResult, opts: opts,
		traceErrs:     make(map[string]string),
		tenantChecks:  make(map[string]uint64),
		tenantPending: make(map[string]int),
	}
	c.windows = newWindowTracker(reg)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// tenantOf resolves a trace's tenant for stats attribution and (with
// fair share on) queue selection.
func (c *Checker) tenantOf(appID string) string {
	if c.opts.TenantOf != nil {
		return c.opts.TenantOf(appID)
	}
	return tenant.Owner(appID)
}

// newWorker builds one shard worker under the configured scheduling
// policy.
func (c *Checker) newWorker() *ckWorker {
	if c.opts.DisableFairShare {
		// One shared queue: every trace maps to the same key, which is
		// exactly the pre-tenancy FIFO.
		return newCkWorker(func(string) string { return "" }, nil)
	}
	return newCkWorker(c.tenantOf, c.opts.TenantWeight)
}

// Start begins consuming the change feed. It is idempotent while running,
// safe to call concurrently, and safe to call again after Stop — the
// engine restarts cleanly on a fresh subscription.
func (c *Checker) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	n := c.opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.running = true
	c.stats.Workers = n
	c.sub = c.reg.st.Subscribe()
	// Events committed before this subscription are invisible, so the
	// quiescence watermark starts at the store's current sequence.
	c.lastSeq = c.reg.st.Stats().Seq
	c.startAt = time.Now()
	c.busy = 0
	c.done = make(chan struct{})
	c.workers = make([]*ckWorker, n)
	c.wg = &sync.WaitGroup{}
	for i := range c.workers {
		c.workers[i] = c.newWorker()
		c.wg.Add(1)
		go c.runWorker(c.workers[i])
	}
	go c.dispatch(c.sub, c.workers, c.done)
}

// dispatch routes feed events to shard workers until the feed closes,
// then closes the workers so they drain and exit.
func (c *Checker) dispatch(sub *store.Subscription, workers []*ckWorker, done chan struct{}) {
	defer close(done)
	for ev := range sub.C() {
		routed := false
		fresh := false
		app := ev.AppID()
		if app != "" && !c.isOwnWrite(ev) {
			c.windows.observe(ev)
			routed = true
			ws := store.NewWriteSet()
			ws.AddEvent(ev)
			fresh = workers[traceShard(app, len(workers))].mark(app, ws)
		}
		c.mu.Lock()
		c.stats.EventsSeen++
		if routed {
			if fresh {
				c.pending++
				c.tenantPending[c.tenantOf(app)]++
			} else {
				c.stats.Coalesced++
			}
		}
		if ev.Seq > c.lastSeq {
			c.lastSeq = ev.Seq
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	for _, w := range workers {
		w.close()
	}
}

// runWorker re-checks dirty traces until the worker is closed and
// drained.
func (c *Checker) runWorker(w *ckWorker) {
	defer c.wg.Done()
	for {
		app, ws, ok := w.next()
		if !ok {
			return
		}
		start := time.Now()
		outcomes, skipped, err := c.reg.CheckDelta(app, ws)
		if d := c.opts.EvalDelay; d > 0 {
			time.Sleep(d)
		}
		elapsed := time.Since(start)

		c.mu.Lock()
		c.stats.ChecksRun++
		c.tenantChecks[c.tenantOf(app)]++
		c.busy += elapsed
		if err != nil {
			c.stats.Errors++
			c.stats.LastError = err.Error()
			c.traceErrs[app] = err.Error()
		} else {
			delete(c.traceErrs, app)
			if !skipped {
				c.latest = outcomes
			}
		}
		cb := c.onResult
		c.mu.Unlock()

		// A skipped check proved nothing changed: observers already hold
		// the exact outcomes, so there is nothing to deliver.
		if err == nil && !skipped && cb != nil {
			cb(outcomes)
		}

		c.mu.Lock()
		c.pending--
		tn := c.tenantOf(app)
		if c.tenantPending[tn]--; c.tenantPending[tn] <= 0 {
			delete(c.tenantPending, tn)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// traceShard hashes a trace ID onto a worker index.
func traceShard(appID string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(appID))
	return int(h.Sum32() % uint32(n))
}

// isOwnWrite filters materialization records out of the feed.
func (c *Checker) isOwnWrite(ev store.Event) bool {
	if ev.Node != nil && ev.Node.Type == ControlTypeName {
		return true
	}
	if ev.Edge != nil && ev.Edge.Type == ChecksRelation {
		return true
	}
	return false
}

// Stop ends continuous checking and drains the dispatcher and every
// worker. Idempotent; Start may be called again afterwards.
func (c *Checker) Stop() {
	c.mu.Lock()
	if !c.running || c.sub == nil {
		c.mu.Unlock()
		return
	}
	sub, done, wg := c.sub, c.done, c.wg
	c.sub = nil // claimed: a concurrent Stop returns above
	c.mu.Unlock()

	sub.Cancel() // feed closes after delivering queued events
	<-done       // dispatcher exited and closed the workers
	wg.Wait()    // workers drained their queues

	c.mu.Lock()
	c.running = false
	c.done = nil
	c.workers = nil
	c.wg = nil
	c.cond.Broadcast()
	c.mu.Unlock()
}

// MarkDirty schedules a full re-check of one trace exactly as if a
// change-feed event had touched it, without requiring a store write: the
// manual kick for out-of-band changes (vocabulary edits, evaluator
// hot-swaps) and the hook benchmarks use to drive the engine with a
// synthetic event stream. No-op while the engine is stopped.
func (c *Checker) MarkDirty(appID string) {
	c.markDirty(appID, nil)
}

// MarkDirtyDelta schedules a delta-driven re-check of one trace carrying
// an explicit write set; the checker takes ownership of ws (it may merge
// later deltas into it while the trace waits). A nil ws is equivalent to
// MarkDirty. No-op while the engine is stopped.
func (c *Checker) MarkDirtyDelta(appID string, ws *store.WriteSet) {
	c.markDirty(appID, ws)
}

func (c *Checker) markDirty(appID string, ws *store.WriteSet) {
	c.mu.Lock()
	if !c.running || len(c.workers) == 0 {
		c.mu.Unlock()
		return
	}
	workers := c.workers
	c.mu.Unlock()
	fresh := workers[traceShard(appID, len(workers))].mark(appID, ws)
	c.mu.Lock()
	c.stats.EventsSeen++
	if fresh {
		c.pending++
		c.tenantPending[c.tenantOf(appID)]++
	} else {
		c.stats.Coalesced++
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Tick advances wall-clock window tracking: traces holding a window
// whose deadline newly passed without its target event are re-marked for
// a re-check, so their outcomes re-surface to observers. Returns how
// many traces expired. Callers (the daemon, tests) own the cadence; the
// engine never consults the clock on its own, keeping verdicts
// reproducible.
func (c *Checker) Tick(now time.Time) int {
	expired := c.windows.expire(now)
	for _, app := range expired {
		c.MarkDirty(app)
	}
	return len(expired)
}

// StartTicker starts a background driver that calls Tick with the wall
// clock every interval — the daemon's cadence for surfacing expired
// windows without a triggering store write. Idempotent while a driver
// runs; a non-positive interval is a no-op. The driver is independent of
// Start/Stop (Tick on a stopped engine finds no workers and marks
// nothing), so the two lifecycles may be managed separately.
func (c *Checker) StartTicker(interval time.Duration) {
	if interval <= 0 {
		return
	}
	tk := time.NewTicker(interval)
	if !c.runTicker(tk.C, tk.Stop) {
		tk.Stop()
	}
}

// runTicker installs an arbitrary tick source — StartTicker hands it a
// time.Ticker, tests inject a channel they feed from a fake clock — and
// reports whether it was installed (false: a driver is already running).
// cleanup, when non-nil, runs as the driver goroutine exits.
func (c *Checker) runTicker(ticks <-chan time.Time, cleanup func()) bool {
	c.mu.Lock()
	if c.tickerStop != nil {
		c.mu.Unlock()
		return false
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.tickerStop, c.tickerDone = stop, done
	c.mu.Unlock()
	go func() {
		defer close(done)
		if cleanup != nil {
			defer cleanup()
		}
		for {
			select {
			case now := <-ticks:
				n := c.Tick(now)
				c.mu.Lock()
				c.stats.TickerTicks++
				c.stats.TickerExpired += uint64(n)
				c.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
	return true
}

// StopTicker stops the ticker driver and waits for it to exit.
// Idempotent; a no-op when no driver is running.
func (c *Checker) StopTicker() {
	c.mu.Lock()
	stop, done := c.tickerStop, c.tickerDone
	c.tickerStop, c.tickerDone = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// WaitFor blocks until the engine has consumed every change-feed event up
// to seq (a store sequence number, e.g. Store.Stats().Seq after a batch
// of writes) and no re-check is queued or in flight — the quiescence
// barrier tests and benchmarks use. Returns immediately when stopped.
func (c *Checker) WaitFor(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.running && (c.lastSeq < seq || c.pending > 0) {
		c.cond.Wait()
	}
}

// WaitTenant blocks until the dispatcher has routed the change feed past
// seq and the given tenant has no re-check queued or in flight — the
// per-tenant quiescence barrier experiment E17 measures detection lag
// with. Unlike WaitFor it does NOT wait for other tenants' backlogs,
// which is exactly what makes fair-share isolation observable: a quiet
// tenant's barrier clears as soon as its own traces are checked, however
// deep a noisy neighbour's queue is. Returns immediately when stopped.
func (c *Checker) WaitTenant(tenantID string, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.running && (c.lastSeq < seq || c.tenantPending[tenantID] > 0) {
		c.cond.Wait()
	}
}

// Checked reports how many re-checks have run.
func (c *Checker) Checked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.stats.ChecksRun)
}

// Latest returns the outcomes of the most recent successful re-check.
func (c *Checker) Latest() []*Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// Stats returns a snapshot of the engine counters.
func (c *Checker) Stats() CheckerStats {
	cache := c.reg.CacheStats()
	bind := c.reg.BindingStats()
	delta := c.reg.DeltaStats()
	win := c.windows.stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.CacheHits = cache.Hits
	s.CacheMisses = cache.Misses
	s.BindingHits = bind.Hits
	s.BindingMisses = bind.Misses
	s.BindingReuseRatio = bind.ReuseRatio()
	s.DeltaChecks = delta.Checks
	s.DeltaSkips = delta.Skips
	s.DeltaPartials = delta.Partials
	s.DeltaFallbacks = delta.Fallbacks
	s.DeltaSkipRatio = delta.SkipRatio()
	s.ControlsEvaluated = delta.ControlsEvaluated
	s.ControlsSkipped = delta.ControlsSkipped
	s.WindowsOpen = win.Open
	s.WindowsExpired = win.Expired
	s.WindowsResolved = win.Resolved
	s.QueueDepth = c.pending
	s.LastSeq = c.lastSeq
	if c.running && c.sub != nil {
		s.FeedDepth = c.sub.Depth()
		s.FeedMaxDepth = c.sub.MaxDepth()
		if elapsed := time.Since(c.startAt); elapsed > 0 && s.Workers > 0 {
			s.Utilization = float64(c.busy) / (float64(elapsed) * float64(s.Workers))
		}
	}
	s.TraceErrors = make(map[string]string, len(c.traceErrs))
	for k, v := range c.traceErrs {
		s.TraceErrors[k] = v
	}
	s.FairShare = !c.opts.DisableFairShare
	s.TenantChecks = make(map[string]uint64, len(c.tenantChecks))
	for k, v := range c.tenantChecks {
		s.TenantChecks[k] = v
	}
	s.TenantPending = make(map[string]int, len(c.tenantPending))
	for k, v := range c.tenantPending {
		s.TenantPending[k] = v
	}
	return s
}
