package controls

import (
	"sync"

	"repro/internal/store"
)

// Checker runs continuous compliance checking (the paper's future-work
// item, experiment E6): it subscribes to the store's change feed and
// re-evaluates the registered controls for every trace a new record
// touches. Its own materialized control nodes and checks edges are
// filtered out to avoid feedback.
type Checker struct {
	reg *Registry

	mu       sync.Mutex
	outcomes []*Outcome
	checked  int
	onResult func([]*Outcome)

	sub  *store.Subscription
	done chan struct{}
}

// NewChecker builds a continuous checker over a registry. onResult, when
// non-nil, receives the outcomes of every re-check (the dashboard hook).
func NewChecker(reg *Registry, onResult func([]*Outcome)) *Checker {
	return &Checker{reg: reg, onResult: onResult}
}

// Start begins consuming the change feed. Call Stop to end.
func (c *Checker) Start() {
	if c.sub != nil {
		return
	}
	c.sub = c.reg.st.Subscribe()
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		for ev := range c.sub.C() {
			if c.isOwnWrite(ev) {
				continue
			}
			app := ev.AppID()
			if app == "" {
				continue
			}
			outcomes, err := c.reg.Check(app)
			if err != nil {
				continue // best-effort; the next event retries the trace
			}
			c.mu.Lock()
			c.checked++
			c.outcomes = outcomes
			cb := c.onResult
			c.mu.Unlock()
			if cb != nil {
				cb(outcomes)
			}
		}
	}()
}

// isOwnWrite filters materialization records out of the feed.
func (c *Checker) isOwnWrite(ev store.Event) bool {
	if ev.Node != nil && ev.Node.Type == ControlTypeName {
		return true
	}
	if ev.Edge != nil && ev.Edge.Type == ChecksRelation {
		return true
	}
	return false
}

// Stop ends continuous checking and drains the worker.
func (c *Checker) Stop() {
	if c.sub == nil {
		return
	}
	c.sub.Cancel()
	<-c.done
	c.sub = nil
	c.done = nil
}

// Checked reports how many re-checks have run.
func (c *Checker) Checked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checked
}

// Latest returns the outcomes of the most recent re-check.
func (c *Checker) Latest() []*Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcomes
}
