package controls

import (
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Delta-driven checking. Check re-evaluates every deployed control
// whenever a trace's version moved; CheckDelta instead consumes the
// commits' write set and runs the Rete-style discrimination step each
// control's compiled footprint supports: a commit that matches no binder
// type probe, passes no access-plan prefilter in either its pre- or
// post-image, touches no navigated node type and adds no navigated edge
// provably cannot change the control's verdict, bindings or alerts, so
// the cached outcome stands — without even a version probe against the
// store.
//
// Soundness hinges on the cache entry's version and the write set's
// interval fitting together: an entry valid at version V plus a delta
// covering (Base, Max] with Base <= V proves the entry saw every commit
// the delta does not carry. Anything else — no entry, older generation,
// a version gap, a degraded (full) set — falls back to a whole-trace
// Check. Discrimination is one-sided by construction: false positives
// cost one wasted re-evaluation; false negatives are never acceptable,
// and the equivalence property test plus the discrimination fuzz target
// enforce that.

// footprinted is the optional Evaluator extension exposing a compile-time
// data-dependency summary; *rules.Control implements it. Evaluators
// without one (subgraph pattern controls) are conservatively treated as
// affected by every write.
type footprinted interface {
	Footprint() *rules.Footprint
}

// DeltaStats summarizes delta-driven checking. Skips are answered
// entirely from the discrimination step — no graph access, no version
// probe — which is what distinguishes them from the result cache's hits
// (a probe that found the version unchanged).
type DeltaStats struct {
	// Enabled is false under the DisableDeltaEval ablation (or with the
	// result cache off, which delta checking builds on).
	Enabled bool
	// Checks counts CheckDelta calls that took the delta path.
	Checks uint64
	// Skips counts delta checks answered without touching the graph:
	// the write set was already covered, or it affected no control.
	Skips uint64
	// Partials counts delta checks that re-evaluated only the affected
	// subset of controls.
	Partials uint64
	// Fallbacks counts delta checks that degraded to a full Check (nil
	// or full write set, cold cache, generation bump, version gap).
	Fallbacks uint64
	// ControlsEvaluated and ControlsSkipped count per-control work across
	// skip and partial paths: their ratio is the discrimination win E14
	// reports.
	ControlsEvaluated uint64
	ControlsSkipped   uint64
}

// SkipRatio is Skips/Checks: the fraction of delta checks that never
// touched the graph.
func (s DeltaStats) SkipRatio() float64 {
	if s.Checks == 0 {
		return 0
	}
	return float64(s.Skips) / float64(s.Checks)
}

// DeltaStats returns a snapshot of the delta-checking counters.
func (r *Registry) DeltaStats() DeltaStats {
	return DeltaStats{
		Enabled:           !r.opts.DisableDeltaEval && !r.opts.DisableCache,
		Checks:            r.deltaChecks.Load(),
		Skips:             r.deltaSkips.Load(),
		Partials:          r.deltaPartials.Load(),
		Fallbacks:         r.deltaFallbacks.Load(),
		ControlsEvaluated: r.ctrlsEvaluated.Load(),
		ControlsSkipped:   r.ctrlsSkipped.Load(),
	}
}

// deltaAffects runs one control's discrimination against a write set.
// A control carrying a shadow candidate discriminates on the UNION of
// the live and shadow footprints: a commit that only the candidate
// cares about must still re-evaluate, or its divergence would go
// unobserved on exactly the traces where the versions differ.
func deltaAffects(cp *ControlPoint, ws *store.WriteSet) bool {
	if evaluatorAffected(cp.compiled, ws) {
		return true
	}
	return cp.shadow != nil && evaluatorAffected(cp.shadow, ws)
}

func evaluatorAffected(ev Evaluator, ws *store.WriteSet) bool {
	fpr, ok := ev.(footprinted)
	if !ok {
		return true
	}
	fp := fpr.Footprint()
	if fp == nil || fp.Wildcard() {
		return true
	}
	for i := range ws.Nodes {
		nw := &ws.Nodes[i]
		if fp.AffectedByNode(nw.Node, nw.Prev) {
			return true
		}
	}
	for i := range ws.Edges {
		if fp.AffectedByEdge(ws.Edges[i].Edge.Type) {
			return true
		}
	}
	return false
}

// CheckDelta evaluates the deployed controls against one trace given the
// write set of the commits since the trace was last checked. It returns
// (nil, true, nil) when discrimination proves no re-evaluation is needed
// — the previously returned outcomes remain exact, and the skip path
// performs no allocation and no store access. Otherwise it returns the
// full outcome slice in deployment order, re-evaluating only the
// affected controls and splicing cached results in for the rest.
//
// A nil or Full write set, a cold or stale cache entry, or the ablations
// (DisableDeltaEval, DisableCache) degrade to a whole-trace Check —
// CheckDelta is never less correct than Check, only cheaper.
func (r *Registry) CheckDelta(appID string, ws *store.WriteSet) ([]*Outcome, bool, error) {
	if r.opts.DisableDeltaEval || r.opts.DisableCache {
		out, err := r.Check(appID)
		return out, false, err
	}
	r.deltaChecks.Add(1)
	if ws == nil || ws.Full() {
		return r.deltaFallback(appID)
	}

	r.mu.RLock()
	gen := r.gen
	r.mu.RUnlock()

	// Validate the cached entry against the delta's version interval.
	r.cacheMu.Lock()
	e := r.cache[appID]
	if e == nil || e.gen != gen || e.version < ws.Base() {
		r.cacheMu.Unlock()
		return r.deltaFallback(appID)
	}
	if e.version >= ws.Max() {
		// Every commit the delta covers was already evaluated.
		n := len(e.outcomes)
		r.cacheMu.Unlock()
		r.deltaSkips.Add(1)
		r.ctrlsSkipped.Add(uint64(n))
		return nil, true, nil
	}
	prev := e.outcomes
	r.cacheMu.Unlock()

	// Discriminate: which of this tenant's controls can the write set
	// affect? Other tenants' controls never see the trace at all.
	tn := tenant.Owner(appID)
	r.mu.RLock()
	if r.gen != gen {
		r.mu.RUnlock()
		return r.deltaFallback(appID)
	}
	total := 0
	var affected []*ControlPoint
	for _, id := range r.order {
		cp := r.controls[id]
		if cp.Tenant != tn {
			continue
		}
		total++
		if deltaAffects(cp, ws) {
			affected = append(affected, cp)
		}
	}
	r.mu.RUnlock()

	if len(affected) == 0 {
		// Nothing affected: the cached outcomes remain exact through
		// ws.Max(). Advance the entry in place — revalidated under the
		// lock, since a concurrent check may have replaced it.
		r.cacheMu.Lock()
		if cur := r.cache[appID]; cur != nil && cur.gen == gen &&
			cur.version >= ws.Base() && cur.version < ws.Max() {
			cur.version = ws.Max()
		}
		r.cacheMu.Unlock()
		r.deltaSkips.Add(1)
		r.ctrlsSkipped.Add(uint64(total))
		return nil, true, nil
	}
	if len(prev) != total {
		return r.deltaFallback(appID)
	}

	// Partial re-evaluation: only the affected controls touch the graph.
	var version uint64
	evaled := make([]*Outcome, 0, len(affected))
	err := r.st.ViewTrace(appID, func(g *provenance.Graph, v uint64) error {
		version = v
		bindings := r.bindingCacheFor(appID, v)
		for _, cp := range affected {
			res, err := safeEvaluate(cp.ID, cp.compiled, g, appID, bindings)
			if err != nil {
				return err
			}
			r.observeShadow(cp, g, appID, res, bindings)
			evaled = append(evaled, &Outcome{
				ControlID: cp.ID, Tenant: cp.Tenant, Name: cp.Name, Version: cp.Version, Result: res,
			})
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	r.deltaPartials.Add(1)
	r.ctrlsEvaluated.Add(uint64(len(affected)))
	r.ctrlsSkipped.Add(uint64(total - len(affected)))

	// Splice the fresh outcomes over the cached ones, preserving
	// deployment order (prev aligns with r.order at equal generation).
	merged := make([]*Outcome, 0, total)
	ai := 0
	for _, po := range prev {
		if ai < len(affected) && affected[ai].ID == po.ControlID {
			merged = append(merged, evaled[ai])
			ai++
		} else {
			merged = append(merged, po)
		}
	}
	if ai != len(affected) {
		// Cached outcomes no longer align with the deployment order;
		// rather than guess, evaluate everything.
		return r.deltaFallback(appID)
	}

	// The entry is valid through the covered interval, not the (possibly
	// newer) snapshot version: commits in (ws.Max, v] were evaluated past
	// but never discriminated, so a later delta must still surface them.
	storeVer := ws.Max()
	if version < storeVer {
		storeVer = version
	}
	r.cacheMu.Lock()
	if cur := r.cache[appID]; cur == nil || cur.gen != gen || cur.version <= storeVer {
		r.cache[appID] = &cacheEntry{version: storeVer, gen: gen, outcomes: merged}
	}
	r.cacheMu.Unlock()

	if r.opts.Materialize {
		lock := &r.matMu[traceStripe(appID)]
		lock.Lock()
		defer lock.Unlock()
		for _, o := range evaled {
			if err := r.materialize(o); err != nil {
				return merged, false, err
			}
		}
	}
	return merged, false, nil
}

// deltaFallback is the degraded path: count it, run a full Check.
func (r *Registry) deltaFallback(appID string) ([]*Outcome, bool, error) {
	r.deltaFallbacks.Add(1)
	out, err := r.Check(appID)
	return out, false, err
}
