package controls

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/xom"
)

// fixture bundles the store and vocabulary for the mini hiring model.
type fixture struct {
	st    *store.Store
	vocab *bom.Vocabulary
}

func newFixture(t testing.TB, materializable bool) *fixture {
	t.Helper()
	return newFixtureOpts(t, materializable, store.Options{})
}

// newFixtureOpts is newFixture with caller-supplied store options (minus
// Model, which the fixture owns) — e.g. a Dir for durability tests.
func newFixtureOpts(t testing.TB, materializable bool, sopts store.Options) *fixture {
	t.Helper()
	m := provenance.NewModel("hiring")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}))
	must(m.AddRelation(&provenance.RelationDef{Name: "approvalOf", SourceType: "approvalStatus", TargetType: "jobRequisition"}))
	if materializable {
		must(DeclareModel(m))
	}
	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{"jobRequisition": "job requisition"},
		MemberLabels: map[string]string{
			"jobRequisition.positionType":      "position type",
			"jobRequisition.approvalOfInverse": "approval",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sopts.Model = m
	st, err := store.Open(sopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &fixture{st: st, vocab: vocab}
}

func (f *fixture) addTrace(t testing.TB, app string, newPosition, withApproval bool) {
	t.Helper()
	req := &provenance.Node{ID: app + "-req", Class: provenance.ClassData,
		Type: "jobRequisition", AppID: app, Timestamp: time.Unix(100, 0).UTC(),
		Attrs: map[string]provenance.Value{
			"reqID":        provenance.String("REQ-" + app),
			"positionType": provenance.String(map[bool]string{true: "new", false: "existing"}[newPosition]),
		}}
	if err := f.st.PutNode(req); err != nil {
		t.Fatal(err)
	}
	if withApproval {
		ap := &provenance.Node{ID: app + "-ap", Class: provenance.ClassData,
			Type: "approvalStatus", AppID: app,
			Attrs: map[string]provenance.Value{"approved": provenance.Bool(true)}}
		if err := f.st.PutNode(ap); err != nil {
			t.Fatal(err)
		}
		e := &provenance.Edge{ID: app + "-e", Type: "approvalOf", AppID: app,
			Source: app + "-ap", Target: app + "-req"}
		if err := f.st.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
}

const gmControl = `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is not "new"
  or the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "general manager approval missing" ;
`

func TestRegistryDeployAndCheck(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := reg.Deploy("gm-approval", "GM approval for new positions", gmControl)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != 1 {
		t.Fatalf("version = %d", cp.Version)
	}
	f.addTrace(t, "A1", true, true)
	f.addTrace(t, "A2", true, false)
	f.addTrace(t, "A3", false, false)

	outcomes, err := reg.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	byApp := map[string]rules.Verdict{}
	for _, o := range outcomes {
		byApp[o.Result.AppID] = o.Result.Verdict
	}
	if byApp["A1"] != rules.Satisfied || byApp["A2"] != rules.Violated || byApp["A3"] != rules.Satisfied {
		t.Fatalf("verdicts = %v", byApp)
	}
}

func TestRegistryRedeployBumpsVersion(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("c1", "v1", gmControl); err != nil {
		t.Fatal(err)
	}
	cp, err := reg.Deploy("c1", "", gmControl)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != 2 || cp.Name != "v1" {
		t.Fatalf("redeploy = %+v", cp)
	}
	if got := len(reg.List()); got != 1 {
		t.Fatalf("List = %d", got)
	}
	if reg.Get("c1") == nil || reg.Get("ghost") != nil {
		t.Fatal("Get misbehaves")
	}
}

func TestRegistryDeployRejectsBadRule(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("bad", "x", "if nonsense then garbage"); err == nil {
		t.Fatal("bad rule deployed")
	}
	if _, err := reg.Deploy("", "x", gmControl); err == nil {
		t.Fatal("empty ID accepted")
	}
	if len(reg.List()) != 0 {
		t.Fatal("failed deploy left residue")
	}
}

func TestRegistryRemove(t *testing.T) {
	f := newFixture(t, false)
	reg, _ := NewRegistry(f.st, f.vocab, Options{})
	if _, err := reg.Deploy("c1", "x", gmControl); err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("c1"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if len(reg.List()) != 0 {
		t.Fatal("control not removed")
	}
}

func TestMaterializeFig2Subgraph(t *testing.T) {
	f := newFixture(t, true)
	reg, err := NewRegistry(f.st, f.vocab, Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)
	if _, err := reg.Check("A1"); err != nil {
		t.Fatal(err)
	}
	cp := f.st.Node("cp-gm-approval-A1")
	if cp == nil {
		t.Fatal("control point node not materialized")
	}
	if cp.Class != provenance.ClassCustom || cp.Attr("status").Str() != "satisfied" {
		t.Fatalf("control node = %v", cp)
	}
	err = f.st.View(func(g *provenance.Graph) error {
		if !g.HasEdge("cp-gm-approval-A1", ChecksRelation, "A1-req") {
			return fmt.Errorf("checks edge to requisition missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Re-check after a state change: status updates in place, edges are
	// not duplicated.
	f.addTrace(t, "A2", true, false)
	if _, err := reg.Check("A2"); err != nil {
		t.Fatal(err)
	}
	if got := f.st.Node("cp-gm-approval-A2").Attr("status").Str(); got != "violated" {
		t.Fatalf("A2 status = %q", got)
	}
	before := f.st.Stats().Edges
	if _, err := reg.Check("A1"); err != nil {
		t.Fatal(err)
	}
	if f.st.Stats().Edges != before {
		t.Fatal("re-check duplicated checks edges")
	}
}

func TestMaterializeRequiresDeclaredModel(t *testing.T) {
	f := newFixture(t, false)
	if _, err := NewRegistry(f.st, f.vocab, Options{Materialize: true}); err == nil {
		t.Fatal("materializing registry accepted model without controlPoint type")
	}
	if !strings.Contains(fmt.Sprint(func() error {
		_, err := NewRegistry(f.st, f.vocab, Options{Materialize: true})
		return err
	}()), "DeclareModel") {
		t.Error("error does not point at DeclareModel")
	}
}

func TestNewRegistryValidation(t *testing.T) {
	f := newFixture(t, false)
	if _, err := NewRegistry(nil, f.vocab, Options{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewRegistry(f.st, nil, Options{}); err == nil {
		t.Error("nil vocabulary accepted")
	}
}

func TestContinuousChecker(t *testing.T) {
	f := newFixture(t, true)
	reg, err := NewRegistry(f.st, f.vocab, Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	var mu = make(chan []*Outcome, 64)
	ch := NewChecker(reg, func(o []*Outcome) { mu <- o })
	ch.Start()
	defer ch.Stop()

	// A new-position requisition arrives without approval: first re-check
	// says violated.
	f.addTrace(t, "A1", true, false)
	waitFor(t, mu, func(o []*Outcome) bool {
		return len(o) == 1 && o[0].Result.AppID == "A1" && o[0].Result.Verdict == rules.Violated
	})
	// The approval record arrives later (out-of-band capture): the next
	// re-check flips the control to satisfied — continuous compliance.
	ap := &provenance.Node{ID: "A1-ap", Class: provenance.ClassData,
		Type: "approvalStatus", AppID: "A1",
		Attrs: map[string]provenance.Value{"approved": provenance.Bool(true)}}
	if err := f.st.PutNode(ap); err != nil {
		t.Fatal(err)
	}
	e := &provenance.Edge{ID: "A1-e", Type: "approvalOf", AppID: "A1",
		Source: "A1-ap", Target: "A1-req"}
	if err := f.st.PutEdge(e); err != nil {
		t.Fatal(err)
	}
	waitFor(t, mu, func(o []*Outcome) bool {
		return len(o) == 1 && o[0].Result.Verdict == rules.Satisfied
	})
	if ch.Checked() == 0 {
		t.Fatal("Checked counter stuck at zero")
	}
	if got := ch.Latest(); len(got) == 0 {
		t.Fatal("Latest empty")
	}
	// The checker's own materialization writes must not re-trigger it
	// forever: after draining, the count stabilizes.
	ch.Stop()
	ch.Stop() // idempotent
}

func waitFor(t *testing.T, ch chan []*Outcome, ok func([]*Outcome) bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case o := <-ch:
			if ok(o) {
				return
			}
		case <-deadline:
			t.Fatal("condition never reached")
		}
	}
}

func BenchmarkRegistryCheck(b *testing.B) {
	f := newFixture(b, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.addTrace(b, fmt.Sprintf("A%03d", i), i%2 == 0, i%3 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Check("A050"); err != nil {
			b.Fatal(err)
		}
	}
}
