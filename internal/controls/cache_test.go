package controls

import (
	"fmt"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rules"
)

// TestResultCacheTable drives the incremental result cache through every
// invalidation path: a re-check is skipped while the trace version is
// unchanged, and re-run after any node write, node update, edge write, or
// control deployment change.
func TestResultCacheTable(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)  // satisfied
	f.addTrace(t, "A2", true, false) // violated

	addNode := func(id, app string) func(*testing.T) {
		return func(t *testing.T) {
			ap := &provenance.Node{ID: id, Class: provenance.ClassData,
				Type: "approvalStatus", AppID: app,
				Attrs: map[string]provenance.Value{"approved": provenance.Bool(false)}}
			if err := f.st.PutNode(ap); err != nil {
				t.Fatal(err)
			}
		}
	}
	steps := []struct {
		name    string
		mutate  func(*testing.T) // runs before the check; nil = no change
		wantHit bool
	}{
		{"first check misses", nil, false},
		{"unchanged trace hits", nil, true},
		{"still unchanged, hits again", nil, true},
		{"node write to the trace re-runs", addNode("A1-ap2", "A1"), false},
		{"then caches again", nil, true},
		{"node update to the trace re-runs", func(t *testing.T) {
			ap := &provenance.Node{ID: "A1-ap2", Class: provenance.ClassData,
				Type: "approvalStatus", AppID: "A1",
				Attrs: map[string]provenance.Value{"approved": provenance.Bool(true)}}
			if err := f.st.UpdateNode(ap); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"edge write to the trace re-runs", func(t *testing.T) {
			e := &provenance.Edge{ID: "A1-e2", Type: "approvalOf", AppID: "A1",
				Source: "A1-ap2", Target: "A1-req"}
			if err := f.st.PutEdge(e); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"write to another trace still hits", addNode("A2-ap2", "A2"), true},
		{"redeploying a control re-runs", func(t *testing.T) {
			if _, err := reg.Deploy("gm-approval", "GM approval v2", gmControl); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"deploying another control re-runs", func(t *testing.T) {
			if _, err := reg.Deploy("aux", "aux", gmControl); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"removing a control re-runs", func(t *testing.T) {
			if err := reg.Remove("aux"); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"stable again afterwards", nil, true},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			if step.mutate != nil {
				step.mutate(t)
			}
			before := reg.CacheStats()
			out, err := reg.Check("A1")
			if err != nil {
				t.Fatal(err)
			}
			after := reg.CacheStats()
			gotHit := after.Hits == before.Hits+1
			gotMiss := after.Misses == before.Misses+1
			if gotHit == gotMiss {
				t.Fatalf("cache counters moved oddly: %+v -> %+v", before, after)
			}
			if gotHit != step.wantHit {
				t.Fatalf("hit = %v, want %v (%+v -> %+v)", gotHit, step.wantHit, before, after)
			}
			// Hit or miss, the answer must be the truth.
			if len(out) == 0 || out[0].Result.Verdict != rules.Satisfied {
				t.Fatalf("outcomes = %+v", out)
			}
		})
	}
}

// TestResultCacheDisabled checks the ablation switch: with DisableCache
// every check re-evaluates and the hit counter never moves.
func TestResultCacheDisabled(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)
	for i := 0; i < 3; i++ {
		if _, err := reg.Check("A1"); err != nil {
			t.Fatal(err)
		}
	}
	if st := reg.CacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("cache active despite DisableCache: %+v", st)
	}
}

// TestResultCacheAgreesWithFresh compares cached answers against a
// cache-free registry over the same store for a spread of traces.
func TestResultCacheAgreesWithFresh(t *testing.T) {
	f := newFixture(t, false)
	cachedReg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	freshReg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []*Registry{cachedReg, freshReg} {
		if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		f.addTrace(t, fmt.Sprintf("T%02d", i), i%3 != 0, i%2 == 0)
	}
	for round := 0; round < 2; round++ { // second round exercises hits
		for i := 0; i < 12; i++ {
			app := fmt.Sprintf("T%02d", i)
			got, err := cachedReg.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			want, err := freshReg.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || got[0].Result.Verdict != want[0].Result.Verdict {
				t.Fatalf("round %d trace %s: cached %v, fresh %v", round, app, got[0].Result.Verdict, want[0].Result.Verdict)
			}
		}
	}
	if st := cachedReg.CacheStats(); st.Hits == 0 {
		t.Fatalf("second round produced no cache hits: %+v", st)
	}
}

// TestCheckAllParallelMatchesSerial runs the fan-out CheckAll against the
// serial path on the same store and requires identical ordered outcomes.
func TestCheckAllParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, false)
	serial, err := NewRegistry(f.st, f.vocab, Options{CheckWorkers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRegistry(f.st, f.vocab, Options{CheckWorkers: 4, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []*Registry{serial, par} {
		if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Deploy("second", "second control", gmControl); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		f.addTrace(t, fmt.Sprintf("T%02d", i), i%2 == 0, i%3 == 0)
	}
	want, err := serial.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel returned %d outcomes, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ControlID != want[i].ControlID ||
			got[i].Result.AppID != want[i].Result.AppID ||
			got[i].Result.Verdict != want[i].Result.Verdict {
			t.Fatalf("outcome %d: parallel (%s,%s,%v), serial (%s,%s,%v)", i,
				got[i].ControlID, got[i].Result.AppID, got[i].Result.Verdict,
				want[i].ControlID, want[i].Result.AppID, want[i].Result.Verdict)
		}
	}
}
