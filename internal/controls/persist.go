package controls

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/rules"
)

// persistedControl is the on-disk form of one deployed control. Only
// text-based (rule) controls persist; pattern controls are built in Go and
// belong to the embedding program. A shadow candidate persists alongside
// its live version so a restart does not silently abort a rollout.
type persistedControl struct {
	ID            string `json:"id"`
	Tenant        string `json:"tenant,omitempty"`
	Name          string `json:"name"`
	Text          string `json:"text"`
	Version       int    `json:"version"`
	ShadowText    string `json:"shadowText,omitempty"`
	ShadowVersion int    `json:"shadowVersion,omitempty"`
}

// SaveTo writes every text-deployed control to path atomically, so a
// restarted server can restore the control set the business users built
// up — deployment is durable without touching application code.
func (r *Registry) SaveTo(path string) error {
	r.mu.RLock()
	var out []persistedControl
	for _, id := range r.order {
		cp := r.controls[id]
		if _, ok := cp.compiled.(*PatternControl); ok {
			continue
		}
		out = append(out, persistedControl{
			ID: cp.ID, Tenant: cp.Tenant, Name: cp.Name, Text: cp.Text, Version: cp.Version,
			ShadowText: cp.shadowText, ShadowVersion: cp.shadowVersion,
		})
	}
	r.mu.RUnlock()

	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("controls: save: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("controls: save: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("controls: save: %v", err)
	}
	return nil
}

// LoadFrom deploys every control recorded at path, recompiling each text
// against the current vocabulary. Existing IDs are redeployed (their
// version advances past the stored one); a missing file is not an error.
// It returns the number of controls restored.
func (r *Registry) LoadFrom(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("controls: load: %v", err)
	}
	var in []persistedControl
	if err := json.Unmarshal(raw, &in); err != nil {
		return 0, fmt.Errorf("controls: load: %v", err)
	}
	restored := 0
	for _, pc := range in {
		// pc.ID is the registry key (already tenant-qualified); compile
		// and install it directly under its recorded tenant.
		compiled, err := rules.Compile(pc.Text, r.vocab)
		if err != nil {
			return restored, fmt.Errorf("controls: load %s: %v", pc.ID, err)
		}
		cp, err := r.deployEvaluator(pc.Tenant, pc.ID, pc.Name, compiled, pc.Text)
		if err != nil {
			return restored, fmt.Errorf("controls: load %s: %v", pc.ID, err)
		}
		// Preserve monotone versions across restarts: a control that was
		// at version 5 must not restart at 1.
		r.mu.Lock()
		if cp.Version < pc.Version {
			cp.Version = pc.Version
		}
		r.mu.Unlock()
		if pc.ShadowText != "" {
			scp, err := r.DeployShadow(pc.ID, pc.ShadowText)
			if err != nil {
				return restored, fmt.Errorf("controls: load shadow %s: %v", pc.ID, err)
			}
			r.mu.Lock()
			if scp.shadowVersion < pc.ShadowVersion {
				scp.shadowVersion = pc.ShadowVersion
			}
			r.mu.Unlock()
		}
		restored++
	}
	return restored, nil
}
