package controls

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/rules"
)

// putTrace writes one trace without going through testing.T fatal paths,
// so concurrent writers can report failures with t.Error.
func putTrace(f *fixture, app string, newPosition, withApproval bool) error {
	req := &provenance.Node{ID: app + "-req", Class: provenance.ClassData,
		Type: "jobRequisition", AppID: app, Timestamp: time.Unix(100, 0).UTC(),
		Attrs: map[string]provenance.Value{
			"reqID":        provenance.String("REQ-" + app),
			"positionType": provenance.String(map[bool]string{true: "new", false: "existing"}[newPosition]),
		}}
	if err := f.st.PutNode(req); err != nil {
		return err
	}
	if !withApproval {
		return nil
	}
	ap := &provenance.Node{ID: app + "-ap", Class: provenance.ClassData,
		Type: "approvalStatus", AppID: app,
		Attrs: map[string]provenance.Value{"approved": provenance.Bool(true)}}
	if err := f.st.PutNode(ap); err != nil {
		return err
	}
	return f.st.PutEdge(&provenance.Edge{ID: app + "-e", Type: "approvalOf", AppID: app,
		Source: app + "-ap", Target: app + "-req"})
}

// TestEngineStressConcurrent hammers the sharded engine with parallel
// writers across many traces plus Deploy/Remove churn, then asserts the
// final flagged state of every trace is exactly the state a fresh serial
// check computes — coalescing must never lose the final state. Run under
// -race this is the engine's soundness gate.
func TestEngineStressConcurrent(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}

	// The callback records the latest verdict per trace. Per-trace
	// ordering is guaranteed by sharding, so last write wins is the final
	// engine opinion of that trace.
	var verdicts sync.Map // appID -> rules.Verdict
	ch := NewCheckerOpts(reg, func(out []*Outcome) {
		for _, o := range out {
			if o.ControlID == "gm-approval" {
				verdicts.Store(o.Result.AppID, o.Result.Verdict)
			}
		}
	}, CheckerOptions{Workers: 4})
	ch.Start()
	defer ch.Stop()

	const writers = 4
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				app := fmt.Sprintf("S%d-%02d", w, i)
				// Odd traces lack the approval: the control is violated.
				if err := putTrace(f, app, true, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Deploy/Remove churn while checks are running: the registry
	// generation must stay consistent with the cache under concurrency.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := reg.Deploy("aux", "aux control", gmControl); err != nil {
				t.Error(err)
				return
			}
			if err := reg.Remove("aux"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	ch.WaitFor(f.st.Stats().Seq)

	// Every trace's final engine verdict equals the fresh serial verdict,
	// and each violation is flagged exactly once (one trace, one final
	// violated verdict).
	violations := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			app := fmt.Sprintf("S%d-%02d", w, i)
			want := rules.Violated
			if i%2 == 0 {
				want = rules.Satisfied
			}
			got, ok := verdicts.Load(app)
			if !ok {
				t.Fatalf("trace %s never checked", app)
			}
			if got != want {
				t.Fatalf("trace %s final verdict = %v, want %v", app, got, want)
			}
			fresh, err := reg.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			if fresh[0].Result.Verdict != want {
				t.Fatalf("serial re-check of %s = %v, want %v", app, fresh[0].Result.Verdict, want)
			}
			if got == rules.Violated {
				violations++
			}
		}
	}
	if wantV := writers * perWriter / 2; violations != wantV {
		t.Fatalf("flagged %d violations, want exactly %d", violations, wantV)
	}

	st := ch.Stats()
	if st.ChecksRun < writers*perWriter {
		t.Fatalf("ChecksRun = %d, want >= %d (each trace at least once)", st.ChecksRun, writers*perWriter)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth after quiescence = %d", st.QueueDepth)
	}
	if st.Errors != 0 {
		t.Fatalf("engine errors: %d (last: %s)", st.Errors, st.LastError)
	}
	if st.Workers != 4 {
		t.Fatalf("Workers = %d", st.Workers)
	}
}

// TestCoalescingCollapsesBurst blocks the single worker inside its first
// callback, fires a burst of events at the same trace, and verifies the
// burst collapses into exactly one further re-check.
func TestCoalescingCollapsesBurst(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	ch := NewCheckerOpts(reg, func([]*Outcome) {
		once.Do(func() {
			close(first)
			<-block
		})
	}, CheckerOptions{Workers: 1})
	ch.Start()
	defer ch.Stop()

	f.addTrace(t, "A1", true, false) // one event: the requisition node
	<-first                          // worker is now parked in the callback

	// Five updates to the same trace while the worker is busy.
	for i := 0; i < 5; i++ {
		req := &provenance.Node{ID: "A1-req", Class: provenance.ClassData,
			Type: "jobRequisition", AppID: "A1", Timestamp: time.Unix(100, 0).UTC(),
			Attrs: map[string]provenance.Value{
				"reqID":        provenance.String(fmt.Sprintf("REQ-A1-%d", i)),
				"positionType": provenance.String("new"),
			}}
		if err := f.st.UpdateNode(req); err != nil {
			t.Fatal(err)
		}
	}
	// Ensure the dispatcher routed the whole burst before releasing the
	// worker, so every burst event had the chance to coalesce.
	deadline := time.Now().Add(5 * time.Second)
	for ch.Stats().EventsSeen < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher saw %d events, want 6", ch.Stats().EventsSeen)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	ch.WaitFor(f.st.Stats().Seq)

	st := ch.Stats()
	if st.ChecksRun != 2 {
		t.Fatalf("ChecksRun = %d, want 2 (initial + one coalesced re-check)", st.ChecksRun)
	}
	if st.Coalesced != 4 {
		t.Fatalf("Coalesced = %d, want 4 (burst of 5 minus the one that marked dirty)", st.Coalesced)
	}
	if st.EventsSeen != 6 {
		t.Fatalf("EventsSeen = %d, want 6", st.EventsSeen)
	}
}

// TestCheckerRestartLifecycle proves Stop/Start cycles cleanly: the
// engine resubscribes, keeps counting, tolerates concurrent Start calls,
// and leaks no goroutines.
func TestCheckerRestartLifecycle(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm-approval", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ch := NewCheckerOpts(reg, nil, CheckerOptions{Workers: 2})
	// Concurrent Start calls must collapse into one engine.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch.Start()
		}()
	}
	wg.Wait()

	f.addTrace(t, "A1", true, false)
	ch.WaitFor(f.st.Stats().Seq)
	if ch.Checked() == 0 {
		t.Fatal("no checks after first Start")
	}
	ch.Stop()
	ch.Stop() // idempotent
	afterFirst := ch.Checked()

	// Writes while stopped are not observed (the subscription is gone)...
	f.addTrace(t, "A2", true, true)
	// ...but a restart picks up new events cleanly.
	ch.Start()
	f.addTrace(t, "A3", true, false)
	ch.WaitFor(f.st.Stats().Seq)
	if got := ch.Checked(); got <= afterFirst {
		t.Fatalf("Checked after restart = %d, want > %d", got, afterFirst)
	}
	if got := ch.Latest(); len(got) == 0 {
		t.Fatal("Latest empty after restart")
	}
	ch.Stop()

	// All engine goroutines (dispatcher, workers, subscription pumps)
	// must be gone. Allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d (leak after Stop)", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckerErrorAccounting forces re-check failures and verifies they
// are counted and retained per trace instead of silently dropped, and
// that a later successful re-check clears the trace's error.
func TestCheckerErrorAccounting(t *testing.T) {
	f := newFixture(t, false)
	// Cache off: the second check of the broken trace must actually
	// re-run the evaluator after it is fixed, not replay a cached result.
	reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	failing.Store(true)
	if _, err := reg.DeployEvaluator("flaky", "flaky control", evalFunc(func(g *provenance.Graph, appID string) *rules.Result {
		if failing.Load() {
			panic("evaluator exploded")
		}
		return &rules.Result{AppID: appID, Verdict: rules.Satisfied}
	}), "flaky"); err != nil {
		t.Fatal(err)
	}
	ch := NewCheckerOpts(reg, nil, CheckerOptions{Workers: 1})
	ch.Start()
	defer ch.Stop()

	f.addTrace(t, "A1", true, false)
	ch.WaitFor(f.st.Stats().Seq)
	st := ch.Stats()
	if st.Errors == 0 {
		t.Fatal("failed re-check not counted")
	}
	if st.LastError == "" || !strings.Contains(st.LastError, "exploded") {
		t.Fatalf("LastError = %q", st.LastError)
	}
	if msg := st.TraceErrors["A1"]; !strings.Contains(msg, "exploded") {
		t.Fatalf("TraceErrors[A1] = %q", msg)
	}

	// Fix the control; the next event on the trace clears its error.
	failing.Store(false)
	errsBefore := st.Errors
	f.addTrace(t, "A1b", true, true) // unrelated trace, checks fine
	req := &provenance.Node{ID: "A1-req2", Class: provenance.ClassData,
		Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{"reqID": provenance.String("REQ-A1-2")}}
	if err := f.st.PutNode(req); err != nil {
		t.Fatal(err)
	}
	ch.WaitFor(f.st.Stats().Seq)
	st = ch.Stats()
	if st.Errors != errsBefore {
		t.Fatalf("Errors moved after fix: %d -> %d", errsBefore, st.Errors)
	}
	if _, stuck := st.TraceErrors["A1"]; stuck {
		t.Fatal("TraceErrors[A1] not cleared by successful re-check")
	}
	if ch.Latest() == nil {
		t.Fatal("Latest empty after successful re-check")
	}
}

// evalFunc adapts a function to the Evaluator interface for tests.
type evalFunc func(g *provenance.Graph, appID string) *rules.Result

func (f evalFunc) Evaluate(g *provenance.Graph, appID string) *rules.Result { return f(g, appID) }
func (f evalFunc) Text() string                                             { return "test evaluator" }
