package controls

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/tenant"
)

// strictControl diverges from gmControl: it demands the approval even
// for existing positions, so traces without one flip from Satisfied to
// Violated — the shadow-divergence fixture.
const strictControl = `
definitions
  set 'the request' to a job requisition ;
if
  the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "approval missing" ;
`

// TestTenantControlScoping pins namespacing: a control deployed inside
// one tenant only ever evaluates that tenant's traces, and a trace only
// ever meets its own tenant's controls.
func TestTenantControlScoping(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm", "default GM", gmControl); err != nil {
		t.Fatal(err)
	}
	acme, err := reg.DeployTenant("acme", "gm", "acme GM", strictControl)
	if err != nil {
		t.Fatal(err)
	}
	if acme.ID != "acme::gm" || acme.Tenant != "acme" {
		t.Fatalf("acme control = %q tenant %q", acme.ID, acme.Tenant)
	}
	// Same bare ID, two namespaces, no collision.
	if reg.GetTenant("acme", "gm") == nil || reg.Get("gm") == nil {
		t.Fatal("lookup by tenant failed")
	}
	if got := len(reg.ListTenant("acme")); got != 1 {
		t.Fatalf("acme controls = %d", got)
	}

	// One trace per tenant: the default trace lacks an approval on an
	// existing position (default control satisfied, strict would violate).
	if err := putTrace(f, "JR-1", false, false); err != nil {
		t.Fatal(err)
	}
	if err := putTrace(f, "acme::JR-1", false, false); err != nil {
		t.Fatal(err)
	}

	out, err := reg.Check("JR-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ControlID != "gm" || out[0].Tenant != tenant.DefaultID {
		t.Fatalf("default trace outcomes = %+v", out)
	}
	if out[0].Result.Verdict != rules.Satisfied {
		t.Fatalf("default verdict = %v", out[0].Result.Verdict)
	}

	out, err = reg.Check("acme::JR-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ControlID != "acme::gm" || out[0].Tenant != "acme" {
		t.Fatalf("acme trace outcomes = %+v", out)
	}
	if out[0].Result.Verdict != rules.Violated {
		t.Fatalf("acme verdict = %v (strict control should violate)", out[0].Result.Verdict)
	}

	// An unknown tenant's trace meets no controls at all.
	if out, err := reg.Check("ghost::JR-9"); err != nil || len(out) != 0 {
		t.Fatalf("ghost tenant outcomes = %v, %v", out, err)
	}
}

// TestShadowDivergenceAndPromote pins the rollout lifecycle: a shadow
// candidate accrues divergence without changing live verdicts, Promote
// swaps it in atomically, Rollback discards it.
func TestShadowDivergenceAndPromote(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	// Existing position without approval: live Satisfied, strict Violated.
	if err := putTrace(f, "JR-1", false, false); err != nil {
		t.Fatal(err)
	}
	// New position with approval: both Satisfied (no divergence).
	if err := putTrace(f, "JR-2", true, true); err != nil {
		t.Fatal(err)
	}

	cp, err := reg.DeployShadow("gm", strictControl)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.HasShadow() || cp.ShadowVersion() != 2 || cp.ShadowText() != strictControl {
		t.Fatalf("shadow state = has=%v v=%d", cp.HasShadow(), cp.ShadowVersion())
	}

	for _, app := range []string{"JR-1", "JR-2"} {
		out, err := reg.Check(app)
		if err != nil {
			t.Fatal(err)
		}
		// Live verdicts are untouched by the shadow.
		if out[0].Version != 1 || out[0].Result.Verdict != rules.Satisfied {
			t.Fatalf("%s live outcome = v%d %v", app, out[0].Version, out[0].Result.Verdict)
		}
	}
	st := reg.ShadowStats()
	if st.Controls != 1 || st.Checks != 2 || st.Divergences != 1 {
		t.Fatalf("shadow stats = %+v", st)
	}
	if len(st.Samples) != 1 || st.Samples[0].AppID != "JR-1" ||
		st.Samples[0].Live != "satisfied" || st.Samples[0].Shadow != "violated" {
		t.Fatalf("shadow sample = %+v", st.Samples)
	}
	if st.ByControl["gm"] != 1 {
		t.Fatalf("byControl = %+v", st.ByControl)
	}

	// Promote: the strict version goes live at the shadow version.
	live, err := reg.Promote("gm")
	if err != nil {
		t.Fatal(err)
	}
	if live.Version != 2 || live.HasShadow() || live.Text != strictControl {
		t.Fatalf("promoted = v%d shadow=%v", live.Version, live.HasShadow())
	}
	out, err := reg.Check("JR-1")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Version != 2 || out[0].Result.Verdict != rules.Violated {
		t.Fatalf("post-promote outcome = v%d %v", out[0].Version, out[0].Result.Verdict)
	}
	if _, err := reg.Promote("gm"); err == nil {
		t.Fatal("promote without shadow should error")
	}

	// Rollback: candidate discarded, live untouched.
	if _, err := reg.DeployShadow("gm", gmControl); err != nil {
		t.Fatal(err)
	}
	rb, err := reg.Rollback("gm")
	if err != nil {
		t.Fatal(err)
	}
	if rb.HasShadow() || rb.Version != 2 {
		t.Fatalf("rollback = v%d shadow=%v", rb.Version, rb.HasShadow())
	}
	if _, err := reg.Rollback("gm"); err == nil {
		t.Fatal("rollback without shadow should error")
	}
}

// TestPromoteAtomicity hammers Check while shadow deploy/promote cycles
// run: every single evaluation must see exactly one live version of the
// control — one outcome, carrying a version that was live at some
// moment — never zero outcomes and never two.
func TestPromoteAtomicity(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("gm", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	if err := putTrace(f, "JR-1", true, true); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var maxPromoted atomic.Int64
	maxPromoted.Store(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := reg.DeployShadow("gm", strictControl); err != nil {
				t.Error(err)
				return
			}
			cp, err := reg.Promote("gm")
			if err != nil {
				t.Error(err)
				return
			}
			maxPromoted.Store(int64(cp.Version))
		}
		stop.Store(true)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				out, err := reg.Check("JR-1")
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) != 1 {
					t.Errorf("check saw %d outcomes for one control", len(out))
					return
				}
				v := out[0].Version
				if v < 1 || int64(v) > maxPromoted.Load()+1 {
					t.Errorf("check saw version %d outside the live range", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cp := reg.Get("gm"); cp.Version != 51 {
		t.Fatalf("final version = %d, want 51", cp.Version)
	}
}

// slowEval is a deliberately slow Evaluator: it makes checker backlogs
// persist long enough for scheduling order to be observable.
type slowEval struct{ d time.Duration }

func (s slowEval) Evaluate(g *provenance.Graph, appID string) *rules.Result {
	time.Sleep(s.d)
	return &rules.Result{AppID: appID, Verdict: rules.Satisfied}
}

func (s slowEval) Text() string { return "slow" }

// TestCkWorkerFairShare pins stride scheduling at the queue level: a
// quiet tenant's single dirty trace does not wait behind a noisy
// tenant's backlog, and weights bias service proportionally.
func TestCkWorkerFairShare(t *testing.T) {
	w := newCkWorker(tenant.Owner, func(tn string) int {
		if tn == "heavy" {
			return 3
		}
		return 1
	})
	for i := 0; i < 50; i++ {
		w.mark(fmt.Sprintf("noisy::T-%03d", i), nil)
	}
	w.mark("quiet::T-0", nil)
	// The quiet trace must surface within the first few claims despite 50
	// queued ahead of it.
	pos := -1
	for i := 0; i < 51; i++ {
		app, _, ok := w.next()
		if !ok {
			t.Fatal("worker drained early")
		}
		if app == "quiet::T-0" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 3 {
		t.Fatalf("quiet trace served at position %d, want <= 3", pos)
	}

	// Weighted service: tenant "heavy" (weight 3) gets ~3x the claims of
	// tenant "light" (weight 1) while both stay backlogged.
	w2 := newCkWorker(tenant.Owner, func(tn string) int {
		if tn == "heavy" {
			return 3
		}
		return 1
	})
	for i := 0; i < 40; i++ {
		w2.mark(fmt.Sprintf("heavy::T-%03d", i), nil)
		w2.mark(fmt.Sprintf("light::T-%03d", i), nil)
	}
	heavy := 0
	for i := 0; i < 20; i++ {
		app, _, _ := w2.next()
		if tenant.Owner(app) == "heavy" {
			heavy++
		}
	}
	if heavy < 13 || heavy > 17 {
		t.Fatalf("heavy claims in first 20 = %d, want ~15", heavy)
	}

	// Ablation: one shared FIFO serves strictly in arrival order.
	w3 := newCkWorker(func(string) string { return "" }, nil)
	for i := 0; i < 10; i++ {
		w3.mark(fmt.Sprintf("noisy::T-%03d", i), nil)
	}
	w3.mark("quiet::T-0", nil)
	for i := 0; i < 10; i++ {
		app, _, _ := w3.next()
		if app != fmt.Sprintf("noisy::T-%03d", i) {
			t.Fatalf("FIFO order broken at %d: %s", i, app)
		}
	}
}

// TestFairShareQuietTenantLatency is the two-tenant stress the CI race
// step runs: a noisy tenant floods the (single-worker) checker with a
// large backlog of slow re-checks; a quiet tenant's trace marked
// afterwards must still be served almost immediately under fair share —
// and demonstrably NOT under the DisableFairShare ablation.
func TestFairShareQuietTenantLatency(t *testing.T) {
	run := func(disable bool) int {
		f := newFixture(t, false)
		reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.deployEvaluator(tenant.DefaultID, "slow-noisy", "slow", slowEval{200 * time.Microsecond}, "slow"); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.deployEvaluator("quiet", "slow-quiet", "slow", slowEval{200 * time.Microsecond}, "slow"); err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		var order []string
		ch := NewCheckerOpts(reg, nil, CheckerOptions{Workers: 1, DisableFairShare: disable})
		// Observe claim order through the registry callback-free path: wrap
		// onResult instead.
		ch.onResult = func(out []*Outcome) {
			if len(out) == 0 {
				return
			}
			mu.Lock()
			order = append(order, out[0].Result.AppID)
			mu.Unlock()
		}
		ch.Start()
		defer ch.Stop()

		const backlog = 120
		for i := 0; i < backlog; i++ {
			ch.MarkDirty(fmt.Sprintf("JR-%04d", i))
		}
		ch.MarkDirty("quiet::T-1")
		ch.WaitFor(0)

		mu.Lock()
		defer mu.Unlock()
		for i, app := range order {
			if app == "quiet::T-1" {
				return i
			}
		}
		t.Fatal("quiet trace never checked")
		return -1
	}

	fair := run(false)
	unfair := run(true)
	// Fair share: the quiet trace rides in near the front regardless of
	// the backlog. Ablation: it waits behind (most of) the backlog. The
	// loose bounds keep the assertion robust to how many noisy checks
	// complete before the quiet mark lands.
	if fair > 30 {
		t.Errorf("fair share served quiet tenant at position %d, want near front", fair)
	}
	if unfair < 60 {
		t.Errorf("ablation served quiet tenant at position %d, want near back", unfair)
	}
}
