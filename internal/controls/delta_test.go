package controls

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/tenant"
)

// prefilteredControl binds only new-position requisitions through a
// hoisted equality prefilter, so writes that never match "new" in either
// image are provably unable to affect it.
const prefilteredControl = `
definitions
  set 'the request' to a job requisition where the position type of this is "new" ;
if
  the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "new position lacks approval" ;
`

// positionControl reads only the requisition's own attribute — approval
// writes cannot affect it.
const positionControl = `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is "existing"
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`

// comparable projects an outcome slice onto the fields the delta cache
// freezes: per control, the verdict, alerts and bindings for the trace.
func comparable(out []*Outcome) []any {
	c := make([]any, 0, len(out))
	for _, o := range out {
		c = append(c, struct {
			ControlID string
			AppID     string
			Verdict   rules.Verdict
			Alerts    []string
			Bindings  map[string][]string
		}{o.ControlID, o.Result.AppID, o.Result.Verdict, o.Result.Alerts, o.Result.Bindings})
	}
	return c
}

// TestDeltaEquivalenceProperty is the delta-vs-full equivalence harness:
// a randomized commit sequence (inserts, updates, edges, a mid-stream
// redeploy) runs against two registries over the same store. The delta
// registry consumes each commit's write set through CheckDelta; the
// reference registry re-evaluates from scratch. After every checked
// commit the outcomes must be identical — a skip means the previously
// returned outcomes still hold exactly. Runs under -race in CI.
func TestDeltaEquivalenceProperty(t *testing.T) {
	f := newFixture(t, false)
	delta, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	deployBoth := func(id, text string) {
		t.Helper()
		if _, err := delta.Deploy(id, id, text); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Deploy(id, id, text); err != nil {
			t.Fatal(err)
		}
	}
	deployBoth("c-gm", gmControl)
	deployBoth("c-pref", prefilteredControl)
	deployBoth("c-pos", positionControl)

	sub := f.st.Subscribe()
	defer sub.Cancel()

	rng := rand.New(rand.NewSource(7))
	apps := []string{"A", "B", "C"}
	posTypes := []string{"new", "existing", "backfill"}

	// Per-trace bookkeeping: node IDs for update/edge ops, the pending
	// write set since the last delta check, and the last outcomes the
	// delta path returned (what an observer would still be holding when a
	// check skips).
	reqs := map[string][]string{}
	aps := map[string][]string{}   // approvals without an edge yet
	wired := map[string][]string{} // approvals already wired to a requisition
	pending := map[string]*store.WriteSet{}
	last := map[string][]*Outcome{}

	seq := 0
	mutate := func(app string) bool {
		switch op := rng.Intn(5); {
		case op == 0 || len(reqs[app]) == 0:
			seq++
			id := fmt.Sprintf("%s-req%d", app, seq)
			if err := f.st.PutNode(&provenance.Node{ID: id, Class: provenance.ClassData,
				Type: "jobRequisition", AppID: app, Attrs: map[string]provenance.Value{
					"reqID":        provenance.String("REQ-" + id),
					"positionType": provenance.String(posTypes[rng.Intn(len(posTypes))]),
				}}); err != nil {
				t.Fatal(err)
			}
			reqs[app] = append(reqs[app], id)
		case op == 1:
			id := reqs[app][rng.Intn(len(reqs[app]))]
			if err := f.st.UpdateNode(&provenance.Node{ID: id, Class: provenance.ClassData,
				Type: "jobRequisition", AppID: app, Attrs: map[string]provenance.Value{
					"reqID":        provenance.String("REQ-" + id),
					"positionType": provenance.String(posTypes[rng.Intn(len(posTypes))]),
				}}); err != nil {
				t.Fatal(err)
			}
		case op == 2:
			seq++
			id := fmt.Sprintf("%s-ap%d", app, seq)
			if err := f.st.PutNode(&provenance.Node{ID: id, Class: provenance.ClassData,
				Type: "approvalStatus", AppID: app, Attrs: map[string]provenance.Value{
					"approved": provenance.Bool(rng.Intn(2) == 0)}}); err != nil {
				t.Fatal(err)
			}
			aps[app] = append(aps[app], id)
		case op == 3 && len(aps[app])+len(wired[app]) > 0:
			all := append(append([]string{}, aps[app]...), wired[app]...)
			id := all[rng.Intn(len(all))]
			if err := f.st.UpdateNode(&provenance.Node{ID: id, Class: provenance.ClassData,
				Type: "approvalStatus", AppID: app, Attrs: map[string]provenance.Value{
					"approved": provenance.Bool(rng.Intn(2) == 0)}}); err != nil {
				t.Fatal(err)
			}
		case op == 4 && len(aps[app]) > 0:
			i := rng.Intn(len(aps[app]))
			ap := aps[app][i]
			req := reqs[app][rng.Intn(len(reqs[app]))]
			if err := f.st.PutEdge(&provenance.Edge{ID: "e-" + ap, Type: "approvalOf",
				AppID: app, Source: ap, Target: req}); err != nil {
				t.Fatal(err)
			}
			aps[app] = append(aps[app][:i], aps[app][i+1:]...)
			wired[app] = append(wired[app], ap)
		default:
			return false // op not applicable to this trace's state yet
		}
		return true
	}

	checkOne := func(app string) {
		t.Helper()
		ws := pending[app]
		out, skipped, err := delta.CheckDelta(app, ws)
		if err != nil {
			t.Fatalf("CheckDelta(%s): %v", app, err)
		}
		pending[app] = nil // consumed: the next event starts a fresh delta
		if !skipped {
			last[app] = out
		}
		want, err := ref.Check(app)
		if err != nil {
			t.Fatalf("reference Check(%s): %v", app, err)
		}
		if got := last[app]; !reflect.DeepEqual(comparable(got), comparable(want)) {
			t.Fatalf("delta and full evaluation diverged on %s (skipped=%v):\n got %+v\nwant %+v",
				app, skipped, comparable(got), comparable(want))
		}
	}

	for i := 0; i < 500; i++ {
		app := apps[rng.Intn(len(apps))]
		if !mutate(app) {
			continue
		}
		ev := <-sub.C()
		if ev.AppID() != app {
			t.Fatalf("event for %q after a write to %q", ev.AppID(), app)
		}
		if pending[app] == nil {
			pending[app] = store.NewWriteSet()
		}
		pending[app].AddEvent(ev)

		if rng.Intn(3) == 0 {
			checkOne(apps[rng.Intn(len(apps))])
		}
		if i == 250 {
			// Mid-stream redeploy: the generation bump must invalidate
			// every cached entry on both sides identically.
			deployBoth("c-pos", positionControl)
		}
	}
	for _, app := range apps {
		checkOne(app)
	}

	ds := delta.DeltaStats()
	if !ds.Enabled || ds.Checks == 0 {
		t.Fatalf("delta path never exercised: %+v", ds)
	}
	if ds.Skips == 0 || ds.Partials == 0 || ds.Fallbacks == 0 {
		t.Fatalf("property run did not cover skip+partial+fallback paths: %+v", ds)
	}
}

// TestDeltaSkipNoAllocs gates the no-affected-controls fast path: a write
// set that provably cannot affect any deployed control must be dismissed
// without a single allocation (and without touching the store).
func TestDeltaSkipNoAllocs(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("c-pref", "prefiltered", prefilteredControl); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)
	if _, _, err := reg.CheckDelta("A1", nil); err != nil { // warm the cache (counted fallback)
		t.Fatal(err)
	}

	// An update that fails the position-type prefilter in both images
	// cannot enter the binder's candidate set, so no control is affected.
	v := f.st.TraceVersion("A1")
	mk := func(pos string) *provenance.Node {
		return &provenance.Node{ID: "A1-req", Class: provenance.ClassData,
			Type: "jobRequisition", AppID: "A1", Attrs: map[string]provenance.Value{
				"reqID":        provenance.String("REQ-A1"),
				"positionType": provenance.String(pos),
			}}
	}
	ws := store.NewWriteSet()
	ws.AddEvent(store.Event{Kind: store.EventNodeUpdate, TraceVersion: v + 1,
		Node: mk("backfill"), Prev: mk("existing")})

	allocs := testing.AllocsPerRun(200, func() {
		out, skipped, err := reg.CheckDelta("A1", ws)
		if err != nil || !skipped || out != nil {
			t.Fatalf("skip path = (%v, %v, %v)", out, skipped, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unaffected-delta fast path allocates: %v allocs/op", allocs)
	}
	ds := reg.DeltaStats()
	if ds.Skips == 0 || ds.ControlsSkipped == 0 {
		t.Fatalf("skips not counted: %+v", ds)
	}
}

// TestCkWorkerMergesWriteSets pins the dirty-set coalescing contract:
// overlapping write sets merge losslessly, a version gap degrades to
// full, and a manual full kick (nil) absorbs later deltas.
func TestCkWorkerMergesWriteSets(t *testing.T) {
	mkWS := func(versions ...uint64) *store.WriteSet {
		ws := store.NewWriteSet()
		for _, v := range versions {
			ws.AddEvent(store.Event{Kind: store.EventNode, TraceVersion: v,
				Node: &provenance.Node{ID: fmt.Sprintf("n%d", v), Type: "t", AppID: "A"}})
		}
		return ws
	}

	w := newCkWorker(tenant.Owner, nil)
	if !w.mark("A", mkWS(3, 4)) {
		t.Fatal("first mark not fresh")
	}
	if w.mark("A", mkWS(5)) {
		t.Fatal("coalesced mark reported fresh")
	}
	app, ws, ok := w.next()
	if !ok || app != "A" {
		t.Fatalf("next = %q, %v", app, ok)
	}
	if ws.Full() || ws.Base() != 2 || ws.Max() != 5 || len(ws.Nodes) != 3 {
		t.Fatalf("merged set = full=%v (%d,%d] %d nodes", ws.Full(), ws.Base(), ws.Max(), len(ws.Nodes))
	}

	// A gap between the pending delta and the new one must not claim
	// contiguous coverage.
	w.mark("B", mkWS(3))
	w.mark("B", mkWS(9))
	if _, ws, _ = w.next(); !ws.Full() {
		t.Fatal("gap merge did not degrade to full")
	}

	// nil = manual full kick; later deltas cannot narrow it.
	w.mark("C", nil)
	w.mark("C", mkWS(12))
	if _, ws, _ = w.next(); ws != nil {
		t.Fatalf("full kick narrowed to %+v", ws)
	}

	// Claiming removes the trace from the dirty set: re-marking after
	// next() is fresh again.
	w.mark("A", mkWS(6))
	if _, _, ok = w.next(); !ok {
		t.Fatal("worker drained early")
	}
	if !w.mark("A", mkWS(7)) {
		t.Fatal("re-mark after claim not fresh")
	}
	w.close()
	if _, _, ok = w.next(); !ok { // drains the queued trace first
		t.Fatal("close dropped a queued trace")
	}
	if _, _, ok = w.next(); ok {
		t.Fatal("closed worker still yields traces")
	}
}

// TestDeltaConcurrentMarkDirtyAndRestart hammers the checker with
// concurrent overlapping MarkDirtyDelta calls, live store writes and
// Stop/Start cycles, then verifies no trace ends with a stale verdict and
// no re-check errored. Run under -race this doubles as the engine's
// coalescing race test.
func TestDeltaConcurrentMarkDirtyAndRestart(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("c-gm", "gm", gmControl); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("c-pref", "prefiltered", prefilteredControl); err != nil {
		t.Fatal(err)
	}

	apps := make([]string, 8)
	for i := range apps {
		apps[i] = fmt.Sprintf("T%d", i)
		f.addTrace(t, apps[i], i%2 == 0, i%3 == 0)
	}

	var obsMu sync.Mutex
	latest := map[string][]*Outcome{}
	ch := NewCheckerOpts(reg, func(out []*Outcome) {
		if len(out) == 0 {
			return
		}
		obsMu.Lock()
		latest[out[0].Result.AppID] = out
		obsMu.Unlock()
	}, CheckerOptions{Workers: 4})
	ch.Start()

	var wg sync.WaitGroup
	// Markers: overlapping delta kicks for the same traces from several
	// goroutines at once.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				app := apps[rng.Intn(len(apps))]
				v := f.st.TraceVersion(app)
				ws := store.NewWriteSet()
				ws.AddEvent(store.Event{Kind: store.EventNodeUpdate, TraceVersion: v,
					Node: &provenance.Node{ID: app + "-req", Type: "jobRequisition", AppID: app,
						Attrs: map[string]provenance.Value{"positionType": provenance.String("new")}}})
				ch.MarkDirtyDelta(app, ws)
			}
		}(g)
	}
	// Writer: live store commits flow through the dispatcher concurrently
	// with the manual kicks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			app := apps[rng.Intn(len(apps))]
			pos := []string{"new", "existing"}[rng.Intn(2)]
			if err := f.st.UpdateNode(&provenance.Node{ID: app + "-req", Class: provenance.ClassData,
				Type: "jobRequisition", AppID: app, Attrs: map[string]provenance.Value{
					"reqID":        provenance.String("REQ-" + app),
					"positionType": provenance.String(pos),
				}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Restarter: the engine stops and restarts underneath the markers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			ch.Stop()
			ch.Start()
		}
	}()
	wg.Wait()

	// Marks landing in a stopped window are documented no-ops and store
	// events from that window are unsubscribed, so close the run with one
	// guaranteed full re-check per trace on a running engine.
	ch.Start()
	for _, app := range apps {
		ch.MarkDirty(app)
	}
	ch.WaitFor(f.st.Stats().Seq)
	stats := ch.Stats()
	ch.Stop()

	if stats.Errors > 0 {
		t.Fatalf("re-check errors: %d (last: %s)", stats.Errors, stats.LastError)
	}
	ref, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Deploy("c-gm", "gm", gmControl); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Deploy("c-pref", "prefiltered", prefilteredControl); err != nil {
		t.Fatal(err)
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	for _, app := range apps {
		want, err := ref.Check(app)
		if err != nil {
			t.Fatal(err)
		}
		got := latest[app]
		if got == nil {
			t.Fatalf("trace %s never reached the observer", app)
		}
		if !reflect.DeepEqual(comparable(got), comparable(want)) {
			t.Fatalf("trace %s stale after concurrent marks + restarts:\n got %+v\nwant %+v",
				app, comparable(got), comparable(want))
		}
	}
}
