package controls

import (
	"fmt"

	"repro/internal/provenance"
	"repro/internal/rules"
)

// Shadow-mode rollout: a business user edits a control, but instead of
// replacing the live version — instantly changing verdicts for every
// trace — the new text deploys as a shadow candidate. The candidate is
// evaluated on the same snapshots and deltas as the live version, its
// verdicts are compared and the divergence counted (with a bounded
// sample log), and nothing is delivered or alerted. Once the divergence
// profile looks right, Promote swaps the candidate in atomically;
// Rollback discards it. This extends the paper's E8 "change a control
// without touching code" story into a safe-rollout story.
//
// Atomicity is structural, the same copy-on-write discipline Deploy
// uses: every mutation builds a NEW *ControlPoint and replaces the map
// entry under the registry lock, while Check snapshots the control list
// under RLock. Any single evaluation therefore sees exactly one version
// of each control — never zero, never two — and a promotion is one
// pointer swap, not a window.

// shadowSampleCap bounds the divergence sample log.
const shadowSampleCap = 16

// ShadowSample is one recorded live/shadow verdict divergence.
type ShadowSample struct {
	ControlID string `json:"controlId"`
	AppID     string `json:"appId"`
	Live      string `json:"live"`
	Shadow    string `json:"shadow"`
	// Seq orders samples by observation; the log keeps the newest
	// shadowSampleCap of them.
	Seq uint64 `json:"seq"`
}

// ShadowStats summarizes shadow-mode evaluation across the registry.
type ShadowStats struct {
	// Controls is the number of controls currently carrying a shadow
	// candidate.
	Controls int `json:"controls"`
	// Checks counts shadow evaluations (one per live evaluation of a
	// shadowed control).
	Checks uint64 `json:"checks"`
	// Divergences counts evaluations whose shadow verdict differed from
	// the live one.
	Divergences uint64 `json:"divergences"`
	// ByControl breaks divergences down per control ID.
	ByControl map[string]uint64 `json:"byControl,omitempty"`
	// Samples is the newest divergence sample log, oldest first.
	Samples []ShadowSample `json:"samples,omitempty"`
}

// DeployShadow compiles text and attaches it as the shadow candidate of
// an existing control (registry key). The live version keeps answering;
// the candidate only accrues divergence. Redeploying a shadow replaces
// the previous candidate.
func (r *Registry) DeployShadow(key, text string) (*ControlPoint, error) {
	compiled, err := rules.Compile(text, r.vocab)
	if err != nil {
		return nil, fmt.Errorf("controls: shadow %s: %v", key, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.controls[key]
	if prev == nil {
		return nil, fmt.Errorf("controls: unknown control %s", key)
	}
	cp := *prev
	cp.shadow = compiled
	cp.shadowText = text
	cp.shadowVersion = prev.Version + 1
	r.controls[key] = &cp
	// Bump the generation so cached traces re-evaluate and the shadow
	// starts observing immediately, not only on the next write.
	r.gen++
	return &cp, nil
}

// Promote atomically makes the shadow candidate the live version. The
// swap is one copy-on-write map replacement under the registry lock:
// checks snapshotting before it evaluate only the old live version,
// checks after it only the new one.
func (r *Registry) Promote(key string) (*ControlPoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.controls[key]
	if prev == nil {
		return nil, fmt.Errorf("controls: unknown control %s", key)
	}
	if prev.shadow == nil {
		return nil, fmt.Errorf("controls: %s has no shadow version to promote", key)
	}
	cp := &ControlPoint{
		ID: prev.ID, Tenant: prev.Tenant, Name: prev.Name,
		Text: prev.shadowText, Version: prev.shadowVersion, compiled: prev.shadow,
	}
	r.controls[key] = cp
	r.gen++ // cached results predate the new live version
	return cp, nil
}

// Rollback discards the shadow candidate, keeping the live version as
// is. Live verdicts are untouched, so cached results stay valid and no
// generation bump (re-evaluation storm) is needed.
func (r *Registry) Rollback(key string) (*ControlPoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.controls[key]
	if prev == nil {
		return nil, fmt.Errorf("controls: unknown control %s", key)
	}
	if prev.shadow == nil {
		return nil, fmt.Errorf("controls: %s has no shadow version to roll back", key)
	}
	cp := *prev
	cp.shadow = nil
	cp.shadowText = ""
	cp.shadowVersion = 0
	r.controls[key] = &cp
	return &cp, nil
}

// observeShadow evaluates a control's shadow candidate (if any) on the
// same graph snapshot its live version just evaluated, and records the
// verdict divergence. The shadow outcome never leaves this function: it
// is counted and sampled, not delivered — shadow mode must be unable to
// alert.
func (r *Registry) observeShadow(cp *ControlPoint, g *provenance.Graph, appID string, live *rules.Result, bindings *rules.BindingCache) {
	if cp.shadow == nil || live == nil {
		return
	}
	res, err := safeEvaluate(cp.ID, cp.shadow, g, appID, bindings)
	shadowVerdict := ""
	if err != nil {
		shadowVerdict = "error: " + err.Error()
	} else {
		shadowVerdict = res.Verdict.String()
	}
	diverged := err != nil || res.Verdict != live.Verdict

	r.shadowMu.Lock()
	defer r.shadowMu.Unlock()
	r.shadowChecks++
	if !diverged {
		return
	}
	r.shadowDiverged++
	r.shadowByCtrl[cp.ID]++
	r.shadowSeq++
	r.shadowSamples = append(r.shadowSamples, ShadowSample{
		ControlID: cp.ID, AppID: appID,
		Live: live.Verdict.String(), Shadow: shadowVerdict,
		Seq: r.shadowSeq,
	})
	if len(r.shadowSamples) > shadowSampleCap {
		r.shadowSamples = r.shadowSamples[len(r.shadowSamples)-shadowSampleCap:]
	}
}

// ShadowStats snapshots the divergence counters and sample log.
func (r *Registry) ShadowStats() ShadowStats {
	r.mu.RLock()
	n := 0
	for _, cp := range r.controls {
		if cp.shadow != nil {
			n++
		}
	}
	r.mu.RUnlock()

	r.shadowMu.Lock()
	defer r.shadowMu.Unlock()
	st := ShadowStats{
		Controls:    n,
		Checks:      r.shadowChecks,
		Divergences: r.shadowDiverged,
	}
	if len(r.shadowByCtrl) > 0 {
		st.ByControl = make(map[string]uint64, len(r.shadowByCtrl))
		for k, v := range r.shadowByCtrl {
			st.ByControl[k] = v
		}
	}
	st.Samples = append([]ShadowSample(nil), r.shadowSamples...)
	return st
}
