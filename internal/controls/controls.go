// Package controls manages internal control points over the provenance
// store: deployment of rule texts authored in business vocabulary, batch
// and continuous compliance checking, and materialization of each control
// as a Custom node linked to the data nodes it governs — exactly Fig 2 of
// the paper, where "the internal control is created during the execution
// of the traces as a custom node and connected to the Job Requisition,
// Approval Status and the Candidate List data nodes".
package controls

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/tenant"
)

// ControlTypeName is the custom node type materialized control points use.
const ControlTypeName = "controlPoint"

// ChecksRelation is the edge type linking a control point to the records
// it verified.
const ChecksRelation = "checks"

// DeclareModel adds the control-point type and checks relation to a data
// model, so stores validate materialized control nodes. Call it while
// building the model, before opening the store.
func DeclareModel(m *provenance.Model) error {
	if err := m.AddType(&provenance.TypeDef{
		Name: ControlTypeName, Class: provenance.ClassCustom,
		Doc: "materialized internal control point (Fig 2)",
	}); err != nil {
		return err
	}
	for _, f := range []*provenance.FieldDef{
		{Name: "controlID", Kind: provenance.KindString, Indexed: true},
		{Name: "status", Kind: provenance.KindString},
		{Name: "version", Kind: provenance.KindInt},
	} {
		if err := m.AddField(ControlTypeName, f); err != nil {
			return err
		}
	}
	return m.AddRelation(&provenance.RelationDef{
		Name: ChecksRelation, SourceType: ControlTypeName,
		Doc: "control point verifies record",
	})
}

// ControlPoint is one deployed internal control.
type ControlPoint struct {
	// ID is the stable registry key — tenant-qualified ("acme::ctl-1")
	// for every tenant but the default one.
	ID string
	// Tenant is the owning namespace. Controls only ever evaluate traces
	// of their own tenant.
	Tenant string
	// Name is the human-readable title.
	Name string
	// Text is the rule source in business vocabulary.
	Text string
	// Version increments on every redeployment — the paper's requirement
	// that business people test different controls "without requiring the
	// application code to be modified" makes redeployment a first-class
	// operation.
	Version int

	compiled Evaluator

	// shadow, when non-nil, is a candidate version evaluated on the same
	// snapshots as the live evaluator; its verdicts are only compared
	// (divergence counting), never delivered or alerted.
	shadow        Evaluator
	shadowText    string
	shadowVersion int
}

// HasShadow reports whether a candidate version is deployed in shadow
// mode alongside the live one.
func (cp *ControlPoint) HasShadow() bool { return cp != nil && cp.shadow != nil }

// ShadowVersion is the version the shadow candidate would take on
// promotion (0 when no shadow is deployed).
func (cp *ControlPoint) ShadowVersion() int {
	if cp == nil || cp.shadow == nil {
		return 0
	}
	return cp.shadowVersion
}

// ShadowText is the shadow candidate's rule source ("" when none).
func (cp *ControlPoint) ShadowText() string {
	if cp == nil || cp.shadow == nil {
		return ""
	}
	return cp.shadowText
}

// Outcome pairs a control with its evaluation result on one trace.
type Outcome struct {
	ControlID string
	Tenant    string
	Name      string
	Version   int
	Result    *rules.Result
}

// Options configures a registry.
type Options struct {
	// Materialize controls whether Check writes control-point custom nodes
	// and checks edges into the store (Fig 2). Off, checking is read-only.
	Materialize bool
	// DisableCache turns off the incremental result cache. On (the
	// default), Check skips re-evaluation entirely when neither the trace
	// nor the deployed control set changed since the last check.
	DisableCache bool
	// CheckWorkers is the fan-out width CheckAll uses across traces.
	// Zero or negative means GOMAXPROCS.
	CheckWorkers int
	// DisableBindingReuse turns off the cross-control binding cache: each
	// control then recomputes its binder candidate sets from scratch, as
	// before the rule planner existed. Part of the E11 ablation.
	DisableBindingReuse bool
	// DisableDeltaEval turns off delta-driven checking: CheckDelta then
	// ignores its write set and re-evaluates the whole trace, as before
	// footprint discrimination existed. The E14 ablation.
	DisableDeltaEval bool
}

// matStripes is the number of per-trace materialization locks; traces
// hash onto stripes so concurrent checks of different traces materialize
// in parallel while two checks of the same trace never interleave their
// read-modify-write of the Fig-2 subgraph.
const matStripes = 64

// CacheStats summarizes the incremental result cache.
type CacheStats struct {
	// Hits counts Check calls answered from cache without re-evaluation.
	Hits uint64
	// Misses counts Check calls that had to re-evaluate the trace.
	Misses uint64
	// Entries is the number of traces with a cached result.
	Entries int
}

// cacheEntry is one cached per-trace result: the outcomes of evaluating
// every deployed control at one (trace version, registry generation).
type cacheEntry struct {
	version  uint64 // store trace version at evaluation time
	gen      uint64 // registry generation at evaluation time
	outcomes []*Outcome
}

// Registry holds the deployed control points of one store.
type Registry struct {
	st    *store.Store
	vocab *bom.Vocabulary
	opts  Options

	mu       sync.RWMutex
	controls map[string]*ControlPoint
	order    []string
	matSeq   int
	gen      uint64 // bumped on every Deploy/Remove; invalidates the cache

	cacheMu     sync.Mutex
	cache       map[string]*cacheEntry // appID -> last evaluation
	cacheHits   uint64
	cacheMisses uint64

	// Cross-control binding reuse: one rules.BindingCache per trace,
	// keyed by the store's per-trace version counter — the same counter
	// the result cache keys on, so both invalidate together on any write
	// to the trace. Unlike the result cache, binding caches survive
	// Deploy/Remove: candidate sets depend only on trace content.
	bindMu       sync.Mutex
	bindings     map[string]*traceBindings // appID -> current-version cache
	bindCounters rules.BindingCounters

	// Delta-discrimination counters (see delta.go).
	deltaChecks    atomic.Uint64
	deltaSkips     atomic.Uint64
	deltaPartials  atomic.Uint64
	deltaFallbacks atomic.Uint64
	ctrlsEvaluated atomic.Uint64
	ctrlsSkipped   atomic.Uint64

	// Shadow-rollout divergence accounting (see shadow.go).
	shadowMu       sync.Mutex
	shadowChecks   uint64
	shadowDiverged uint64
	shadowByCtrl   map[string]uint64
	shadowSamples  []ShadowSample
	shadowSeq      uint64

	matMu [matStripes]sync.Mutex
}

// traceBindings pins one trace's binding cache to the trace version it
// was populated from.
type traceBindings struct {
	version uint64
	cache   *rules.BindingCache
}

// NewRegistry builds an empty registry over the store and vocabulary.
func NewRegistry(st *store.Store, vocab *bom.Vocabulary, opts Options) (*Registry, error) {
	if st == nil {
		return nil, fmt.Errorf("controls: nil store")
	}
	if vocab == nil {
		return nil, fmt.Errorf("controls: nil vocabulary")
	}
	if opts.Materialize {
		if m := st.Model(); m != nil && m.Type(ControlTypeName) == nil {
			return nil, fmt.Errorf("controls: model lacks %s; call DeclareModel when building it", ControlTypeName)
		}
	}
	return &Registry{
		st: st, vocab: vocab, opts: opts,
		controls:     make(map[string]*ControlPoint),
		cache:        make(map[string]*cacheEntry),
		bindings:     make(map[string]*traceBindings),
		shadowByCtrl: make(map[string]uint64),
	}, nil
}

// regKey builds the registry key of a control: the bare ID within the
// default tenant, the tenant-qualified ID everywhere else — so two
// tenants may each own a "ctl-approval" without colliding.
func regKey(tenantID, id string) string {
	if tenantID == "" || tenantID == tenant.DefaultID {
		return id
	}
	return tenant.Qualify(tenantID, id)
}

// Deploy compiles and registers a control in the default tenant.
// Deploying an existing ID replaces its rule text and bumps the version
// — no application code is touched, the central claim of the paper
// (experiment E8).
func (r *Registry) Deploy(id, name, text string) (*ControlPoint, error) {
	return r.DeployTenant(tenant.DefaultID, id, name, text)
}

// DeployTenant compiles and registers a control inside one tenant's
// namespace. id is the tenant-local control ID; the registry key is
// tenant-qualified so namespaces never collide.
func (r *Registry) DeployTenant(tenantID, id, name, text string) (*ControlPoint, error) {
	if id == "" {
		return nil, fmt.Errorf("controls: empty control ID")
	}
	compiled, err := rules.Compile(text, r.vocab)
	if err != nil {
		return nil, fmt.Errorf("controls: %s: %v", id, err)
	}
	return r.deployEvaluator(tenantID, regKey(tenantID, id), name, compiled, text)
}

// DeployEvaluator registers any Evaluator — compiled rule controls and
// subgraph PatternControls alike — under the registry's versioning, in
// the default tenant.
func (r *Registry) DeployEvaluator(id, name string, ev Evaluator, text string) (*ControlPoint, error) {
	return r.deployEvaluator(tenant.DefaultID, id, name, ev, text)
}

func (r *Registry) deployEvaluator(tenantID, key, name string, ev Evaluator, text string) (*ControlPoint, error) {
	if key == "" {
		return nil, fmt.Errorf("controls: empty control ID")
	}
	if ev == nil {
		return nil, fmt.Errorf("controls: nil evaluator")
	}
	if tenantID == "" {
		tenantID = tenant.DefaultID
	}
	if text == "" {
		text = ev.Text()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.controls[key]
	cp := &ControlPoint{ID: key, Tenant: tenantID, Name: name, Text: text, Version: 1, compiled: ev}
	if prev != nil {
		if prev.Tenant != tenantID {
			return nil, fmt.Errorf("controls: %s belongs to tenant %s", key, prev.Tenant)
		}
		cp.Version = prev.Version + 1
		if cp.Name == "" {
			cp.Name = prev.Name
		}
		// A live redeploy supersedes any shadow candidate: the candidate
		// was diffed against a version that no longer exists.
	} else {
		r.order = append(r.order, key)
	}
	r.controls[key] = cp
	r.gen++ // cached results predate this control set
	return cp, nil
}

// Remove deletes a control from the registry by its registry key.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.controls[id]; !ok {
		return fmt.Errorf("controls: unknown control %s", id)
	}
	delete(r.controls, id)
	for i, cid := range r.order {
		if cid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.gen++ // cached results predate this control set
	return nil
}

// RemoveTenant deletes a tenant-local control by its bare ID.
func (r *Registry) RemoveTenant(tenantID, id string) error {
	return r.Remove(regKey(tenantID, id))
}

// Gen returns the registry generation: it bumps on every Deploy or
// Remove, so an observer caching anything derived from the deployed
// control set (the checker's window tracker) can detect staleness.
func (r *Registry) Gen() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Get returns a deployed control, or nil.
func (r *Registry) Get(id string) *ControlPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.controls[id]
}

// GetTenant returns a tenant-local control by its bare ID, or nil.
func (r *Registry) GetTenant(tenantID, id string) *ControlPoint {
	return r.Get(regKey(tenantID, id))
}

// List returns the deployed controls in deployment order, across every
// tenant.
func (r *Registry) List() []*ControlPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ControlPoint, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.controls[id])
	}
	return out
}

// ListTenant returns one tenant's controls in deployment order.
func (r *Registry) ListTenant(tenantID string) []*ControlPoint {
	if tenantID == "" {
		tenantID = tenant.DefaultID
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*ControlPoint
	for _, id := range r.order {
		if cp := r.controls[id]; cp.Tenant == tenantID {
			out = append(out, cp)
		}
	}
	return out
}

// controlsFor snapshots one tenant's controls in deployment order along
// with the current generation — the per-check view. A trace only ever
// meets its own tenant's controls, which (with tenant-prefixed trace
// IDs) makes cross-tenant verdicts impossible by construction.
func (r *Registry) controlsFor(appID string) ([]*ControlPoint, uint64) {
	tn := tenant.Owner(appID)
	r.mu.RLock()
	defer r.mu.RUnlock()
	cps := make([]*ControlPoint, 0, len(r.order))
	for _, id := range r.order {
		if cp := r.controls[id]; cp.Tenant == tn {
			cps = append(cps, cp)
		}
	}
	return cps, r.gen
}

// Check evaluates every deployed control against one trace, materializing
// outcomes when configured. Outcomes are ordered by deployment order.
// Evaluation reads an immutable store snapshot (store.ViewTrace), so
// checks never contend with writers and always see a prefix-consistent
// commit boundary of the trace.
//
// Results are cached per trace, keyed by (trace version, registry
// generation): when neither the trace nor the deployed control set has
// changed since the last evaluation, the cached outcomes are returned
// without touching the graph. Any node or edge write to the trace bumps
// its store version and forces a re-check; any Deploy or Remove bumps the
// registry generation and invalidates everything.
func (r *Registry) Check(appID string) ([]*Outcome, error) {
	cps, gen := r.controlsFor(appID)

	if !r.opts.DisableCache {
		if out, ok := r.cached(appID, gen); ok {
			return out, nil
		}
	}

	var version uint64
	outcomes := make([]*Outcome, 0, len(cps))
	err := r.st.ViewTrace(appID, func(g *provenance.Graph, v uint64) error {
		version = v
		bindings := r.bindingCacheFor(appID, v)
		for _, cp := range cps {
			res, err := safeEvaluate(cp.ID, cp.compiled, g, appID, bindings)
			if err != nil {
				return err
			}
			r.observeShadow(cp, g, appID, res, bindings)
			outcomes = append(outcomes, &Outcome{
				ControlID: cp.ID, Tenant: cp.Tenant, Name: cp.Name, Version: cp.Version, Result: res,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !r.opts.DisableCache {
		r.remember(appID, gen, version, outcomes)
	}
	if r.opts.Materialize {
		// Serialize materialization per trace: the read-modify-write of the
		// Fig-2 subgraph is not atomic, and two interleaved checks of the
		// same trace could otherwise double-insert checks edges.
		lock := &r.matMu[traceStripe(appID)]
		lock.Lock()
		defer lock.Unlock()
		for _, o := range outcomes {
			if err := r.materialize(o); err != nil {
				return outcomes, err
			}
		}
	}
	return outcomes, nil
}

// CheckGraph evaluates every deployed control against a caller-supplied
// trace graph — the point-in-time audit path: pair it with
// store.TraceAsOf to ask "what would today's controls have said at
// commit N?". Nothing is cached or materialized: the graph is not the
// live trace, so its outcomes must not shadow the incremental result
// cache, and writing control nodes for a historical reading would
// corrupt the present. Cross-control binding reuse still applies within
// the call via a throwaway cache.
func (r *Registry) CheckGraph(appID string, g *provenance.Graph) ([]*Outcome, error) {
	if g == nil {
		return nil, fmt.Errorf("controls: nil graph")
	}
	cps, _ := r.controlsFor(appID)

	var bindings *rules.BindingCache
	if !r.opts.DisableBindingReuse {
		bindings = rules.NewBindingCache(&r.bindCounters)
	}
	outcomes := make([]*Outcome, 0, len(cps))
	for _, cp := range cps {
		// No shadow observation here: this is the as-of audit path, and a
		// historical reading must not pollute live divergence counters.
		res, err := safeEvaluate(cp.ID, cp.compiled, g, appID, bindings)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, &Outcome{
			ControlID: cp.ID, Tenant: cp.Tenant, Name: cp.Name, Version: cp.Version, Result: res,
		})
	}
	return outcomes, nil
}

// safeEvaluate runs one evaluator, converting a panic into an error: a
// misbehaving control must surface in the checker's error stats, not take
// down the continuous engine (or the daemon hosting it). Evaluators that
// support shared bindings (compiled rule controls) receive the trace's
// binding cache; others evaluate standalone.
func safeEvaluate(id string, ev Evaluator, g *provenance.Graph, appID string, bindings *rules.BindingCache) (res *rules.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("controls: %s panicked evaluating %s: %v", id, appID, p)
		}
	}()
	if se, ok := ev.(sharedEvaluator); ok && bindings != nil {
		return se.EvaluateWith(g, appID, bindings), nil
	}
	return ev.Evaluate(g, appID), nil
}

// sharedEvaluator is the optional Evaluator extension for cross-control
// binding reuse; *rules.Control implements it.
type sharedEvaluator interface {
	EvaluateWith(g *provenance.Graph, appID string, cache *rules.BindingCache) *rules.Result
}

// bindingCacheFor returns the binding cache for one trace at one version,
// creating or replacing it when the trace moved. Nil when reuse is
// disabled. Concurrent checks of the same trace at the same version share
// one cache; a check racing a newer version simply repopulates.
func (r *Registry) bindingCacheFor(appID string, version uint64) *rules.BindingCache {
	if r.opts.DisableBindingReuse {
		return nil
	}
	r.bindMu.Lock()
	defer r.bindMu.Unlock()
	if tb := r.bindings[appID]; tb != nil && tb.version == version {
		return tb.cache
	}
	tb := &traceBindings{version: version, cache: rules.NewBindingCache(&r.bindCounters)}
	r.bindings[appID] = tb
	return tb.cache
}

// BindingStats summarizes cross-control binding reuse.
type BindingStats struct {
	// Enabled is false under the DisableBindingReuse ablation.
	Enabled bool
	// Hits counts binder candidate sets served from a shared cache;
	// Misses counts the computations that populated one.
	Hits   uint64
	Misses uint64
	// Traces is the number of traces holding a live binding cache;
	// Entries sums their memoized candidate sets.
	Traces  int
	Entries int
}

// ReuseRatio is Hits/(Hits+Misses): the fraction of binder evaluations
// answered by a shared candidate set.
func (s BindingStats) ReuseRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BindingStats returns a snapshot of the binding-reuse counters.
func (r *Registry) BindingStats() BindingStats {
	st := BindingStats{
		Enabled: !r.opts.DisableBindingReuse,
		Hits:    r.bindCounters.Hits.Load(),
		Misses:  r.bindCounters.Misses.Load(),
	}
	r.bindMu.Lock()
	defer r.bindMu.Unlock()
	st.Traces = len(r.bindings)
	for _, tb := range r.bindings {
		st.Entries += tb.cache.Len()
	}
	return st
}

// Plans returns the binder access plans of every deployed control that
// exposes them (compiled rule controls), keyed by control ID.
func (r *Registry) Plans() map[string][]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][]string)
	for id, cp := range r.controls {
		if p, ok := cp.compiled.(interface{ PlanSummaries() []string }); ok {
			if s := p.PlanSummaries(); len(s) > 0 {
				out[id] = s
			}
		}
	}
	return out
}

// cached returns the memoized outcomes for a trace when they are still
// current: same registry generation and same store trace version.
func (r *Registry) cached(appID string, gen uint64) ([]*Outcome, bool) {
	ver := r.st.TraceVersion(appID)
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	e := r.cache[appID]
	if e == nil || e.gen != gen || e.version != ver {
		r.cacheMisses++
		return nil, false
	}
	r.cacheHits++
	// Copy the slice header so callers appending to the result do not
	// alias the cache.
	return append([]*Outcome(nil), e.outcomes...), true
}

// remember stores a trace's outcomes, never replacing a newer entry with
// an older one (two concurrent checks may finish out of order).
func (r *Registry) remember(appID string, gen, version uint64, outcomes []*Outcome) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if e := r.cache[appID]; e != nil && e.gen == gen && e.version > version {
		return
	}
	r.cache[appID] = &cacheEntry{version: version, gen: gen, outcomes: outcomes}
}

// CacheStats returns a snapshot of the incremental result cache counters.
func (r *Registry) CacheStats() CacheStats {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return CacheStats{Hits: r.cacheHits, Misses: r.cacheMisses, Entries: len(r.cache)}
}

// traceStripe hashes a trace ID onto a materialization lock stripe.
func traceStripe(appID string) int {
	h := fnv.New32a()
	h.Write([]byte(appID))
	return int(h.Sum32() % matStripes)
}

// CheckAll evaluates every control against every trace, fanning out
// across Options.CheckWorkers goroutines (GOMAXPROCS by default).
// Outcomes keep the deterministic serial order — traces sorted, controls
// in deployment order — regardless of which worker checked what.
func (r *Registry) CheckAll() ([]*Outcome, error) {
	apps := r.st.AppIDs()
	workers := r.opts.CheckWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers <= 1 {
		var out []*Outcome
		for _, app := range apps {
			res, err := r.Check(app)
			if err != nil {
				return out, err
			}
			out = append(out, res...)
		}
		return out, nil
	}

	results := make([][]*Outcome, len(apps))
	errs := make([]error, len(apps))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(apps) {
					return
				}
				results[i], errs[i] = r.Check(apps[i])
			}
		}()
	}
	wg.Wait()

	var out []*Outcome
	var firstErr error
	for i := range apps {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		out = append(out, results[i]...)
	}
	return out, firstErr
}

// materialize writes the Fig-2 subgraph for one outcome: a controlPoint
// custom node carrying the verdict, plus checks edges to every node the
// control's definitions bound.
func (r *Registry) materialize(o *Outcome) error {
	nodeID := fmt.Sprintf("cp-%s-%s", o.ControlID, o.Result.AppID)
	node := &provenance.Node{
		ID: nodeID, Class: provenance.ClassCustom, Type: ControlTypeName,
		AppID: o.Result.AppID,
		Attrs: map[string]provenance.Value{
			"controlID": provenance.String(o.ControlID),
			"status":    provenance.String(o.Result.Verdict.String()),
			"version":   provenance.Int(int64(o.Version)),
		},
	}
	// Skip the write when the materialized node already carries exactly
	// this verdict: re-checks of unchanged traces then leave the store
	// untouched, which keeps the trace version stable and lets the result
	// cache converge instead of invalidating itself with its own writes.
	if prev := r.st.Node(nodeID); prev != nil {
		if sameControlAttrs(prev, node) {
			// fall through to edge reconciliation only
		} else if err := r.st.UpdateNode(node); err != nil {
			return fmt.Errorf("controls: materialize %s: %v", nodeID, err)
		}
	} else {
		if err := r.st.PutNode(node); err != nil {
			return fmt.Errorf("controls: materialize %s: %v", nodeID, err)
		}
	}
	// Link to every bound node, skipping edges that already exist.
	var targets []string
	for _, ids := range o.Result.Bindings {
		targets = append(targets, ids...)
	}
	sort.Strings(targets)
	var missing []string
	if err := r.st.View(func(g *provenance.Graph) error {
		for _, tgt := range targets {
			if tgt != nodeID && g.Node(tgt) != nil && !g.HasEdge(nodeID, ChecksRelation, tgt) {
				missing = append(missing, tgt)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for _, tgt := range missing {
		r.mu.Lock()
		r.matSeq++
		edgeID := fmt.Sprintf("cpe-%d", r.matSeq)
		r.mu.Unlock()
		e := &provenance.Edge{
			ID: edgeID, Type: ChecksRelation, AppID: o.Result.AppID,
			Source: nodeID, Target: tgt,
		}
		if err := r.st.PutEdge(e); err != nil {
			return fmt.Errorf("controls: linking %s -> %s: %v", nodeID, tgt, err)
		}
	}
	return nil
}

// sameControlAttrs reports whether a materialized control node already
// carries the attributes the new outcome would write.
func sameControlAttrs(prev, next *provenance.Node) bool {
	if len(prev.Attrs) != len(next.Attrs) {
		return false
	}
	for k, v := range next.Attrs {
		if !prev.Attr(k).Equal(v) {
			return false
		}
	}
	return true
}
