// Package controls manages internal control points over the provenance
// store: deployment of rule texts authored in business vocabulary, batch
// and continuous compliance checking, and materialization of each control
// as a Custom node linked to the data nodes it governs — exactly Fig 2 of
// the paper, where "the internal control is created during the execution
// of the traces as a custom node and connected to the Job Requisition,
// Approval Status and the Candidate List data nodes".
package controls

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
)

// ControlTypeName is the custom node type materialized control points use.
const ControlTypeName = "controlPoint"

// ChecksRelation is the edge type linking a control point to the records
// it verified.
const ChecksRelation = "checks"

// DeclareModel adds the control-point type and checks relation to a data
// model, so stores validate materialized control nodes. Call it while
// building the model, before opening the store.
func DeclareModel(m *provenance.Model) error {
	if err := m.AddType(&provenance.TypeDef{
		Name: ControlTypeName, Class: provenance.ClassCustom,
		Doc: "materialized internal control point (Fig 2)",
	}); err != nil {
		return err
	}
	for _, f := range []*provenance.FieldDef{
		{Name: "controlID", Kind: provenance.KindString, Indexed: true},
		{Name: "status", Kind: provenance.KindString},
		{Name: "version", Kind: provenance.KindInt},
	} {
		if err := m.AddField(ControlTypeName, f); err != nil {
			return err
		}
	}
	return m.AddRelation(&provenance.RelationDef{
		Name: ChecksRelation, SourceType: ControlTypeName,
		Doc: "control point verifies record",
	})
}

// ControlPoint is one deployed internal control.
type ControlPoint struct {
	// ID is the stable registry key.
	ID string
	// Name is the human-readable title.
	Name string
	// Text is the rule source in business vocabulary.
	Text string
	// Version increments on every redeployment — the paper's requirement
	// that business people test different controls "without requiring the
	// application code to be modified" makes redeployment a first-class
	// operation.
	Version int

	compiled Evaluator
}

// Outcome pairs a control with its evaluation result on one trace.
type Outcome struct {
	ControlID string
	Name      string
	Version   int
	Result    *rules.Result
}

// Options configures a registry.
type Options struct {
	// Materialize controls whether Check writes control-point custom nodes
	// and checks edges into the store (Fig 2). Off, checking is read-only.
	Materialize bool
}

// Registry holds the deployed control points of one store.
type Registry struct {
	st    *store.Store
	vocab *bom.Vocabulary
	opts  Options

	mu       sync.RWMutex
	controls map[string]*ControlPoint
	order    []string
	matSeq   int
}

// NewRegistry builds an empty registry over the store and vocabulary.
func NewRegistry(st *store.Store, vocab *bom.Vocabulary, opts Options) (*Registry, error) {
	if st == nil {
		return nil, fmt.Errorf("controls: nil store")
	}
	if vocab == nil {
		return nil, fmt.Errorf("controls: nil vocabulary")
	}
	if opts.Materialize {
		if m := st.Model(); m != nil && m.Type(ControlTypeName) == nil {
			return nil, fmt.Errorf("controls: model lacks %s; call DeclareModel when building it", ControlTypeName)
		}
	}
	return &Registry{
		st: st, vocab: vocab, opts: opts,
		controls: make(map[string]*ControlPoint),
	}, nil
}

// Deploy compiles and registers a control. Deploying an existing ID
// replaces its rule text and bumps the version — no application code is
// touched, the central claim of the paper (experiment E8).
func (r *Registry) Deploy(id, name, text string) (*ControlPoint, error) {
	if id == "" {
		return nil, fmt.Errorf("controls: empty control ID")
	}
	compiled, err := rules.Compile(text, r.vocab)
	if err != nil {
		return nil, fmt.Errorf("controls: %s: %v", id, err)
	}
	return r.DeployEvaluator(id, name, compiled, text)
}

// DeployEvaluator registers any Evaluator — compiled rule controls and
// subgraph PatternControls alike — under the registry's versioning.
func (r *Registry) DeployEvaluator(id, name string, ev Evaluator, text string) (*ControlPoint, error) {
	if id == "" {
		return nil, fmt.Errorf("controls: empty control ID")
	}
	if ev == nil {
		return nil, fmt.Errorf("controls: nil evaluator")
	}
	if text == "" {
		text = ev.Text()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.controls[id]
	cp := &ControlPoint{ID: id, Name: name, Text: text, Version: 1, compiled: ev}
	if prev != nil {
		cp.Version = prev.Version + 1
		if cp.Name == "" {
			cp.Name = prev.Name
		}
	} else {
		r.order = append(r.order, id)
	}
	r.controls[id] = cp
	return cp, nil
}

// Remove deletes a control from the registry.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.controls[id]; !ok {
		return fmt.Errorf("controls: unknown control %s", id)
	}
	delete(r.controls, id)
	for i, cid := range r.order {
		if cid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns a deployed control, or nil.
func (r *Registry) Get(id string) *ControlPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.controls[id]
}

// List returns the deployed controls in deployment order.
func (r *Registry) List() []*ControlPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ControlPoint, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.controls[id])
	}
	return out
}

// Check evaluates every deployed control against one trace, materializing
// outcomes when configured. Outcomes are ordered by deployment order.
func (r *Registry) Check(appID string) ([]*Outcome, error) {
	r.mu.RLock()
	cps := make([]*ControlPoint, 0, len(r.order))
	for _, id := range r.order {
		cps = append(cps, r.controls[id])
	}
	r.mu.RUnlock()

	outcomes := make([]*Outcome, 0, len(cps))
	err := r.st.View(func(g *provenance.Graph) error {
		for _, cp := range cps {
			res := cp.compiled.Evaluate(g, appID)
			outcomes = append(outcomes, &Outcome{
				ControlID: cp.ID, Name: cp.Name, Version: cp.Version, Result: res,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.opts.Materialize {
		for _, o := range outcomes {
			if err := r.materialize(o); err != nil {
				return outcomes, err
			}
		}
	}
	return outcomes, nil
}

// CheckAll evaluates every control against every trace.
func (r *Registry) CheckAll() ([]*Outcome, error) {
	var out []*Outcome
	for _, app := range r.st.AppIDs() {
		res, err := r.Check(app)
		if err != nil {
			return out, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// materialize writes the Fig-2 subgraph for one outcome: a controlPoint
// custom node carrying the verdict, plus checks edges to every node the
// control's definitions bound.
func (r *Registry) materialize(o *Outcome) error {
	nodeID := fmt.Sprintf("cp-%s-%s", o.ControlID, o.Result.AppID)
	node := &provenance.Node{
		ID: nodeID, Class: provenance.ClassCustom, Type: ControlTypeName,
		AppID: o.Result.AppID,
		Attrs: map[string]provenance.Value{
			"controlID": provenance.String(o.ControlID),
			"status":    provenance.String(o.Result.Verdict.String()),
			"version":   provenance.Int(int64(o.Version)),
		},
	}
	exists := r.st.Node(nodeID) != nil
	if exists {
		if err := r.st.UpdateNode(node); err != nil {
			return fmt.Errorf("controls: materialize %s: %v", nodeID, err)
		}
	} else {
		if err := r.st.PutNode(node); err != nil {
			return fmt.Errorf("controls: materialize %s: %v", nodeID, err)
		}
	}
	// Link to every bound node, skipping edges that already exist.
	var targets []string
	for _, ids := range o.Result.Bindings {
		targets = append(targets, ids...)
	}
	sort.Strings(targets)
	var missing []string
	if err := r.st.View(func(g *provenance.Graph) error {
		for _, tgt := range targets {
			if tgt != nodeID && g.Node(tgt) != nil && !g.HasEdge(nodeID, ChecksRelation, tgt) {
				missing = append(missing, tgt)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for _, tgt := range missing {
		r.mu.Lock()
		r.matSeq++
		edgeID := fmt.Sprintf("cpe-%d", r.matSeq)
		r.mu.Unlock()
		e := &provenance.Edge{
			ID: edgeID, Type: ChecksRelation, AppID: o.Result.AppID,
			Source: nodeID, Target: tgt,
		}
		if err := r.st.PutEdge(e); err != nil {
			return fmt.Errorf("controls: linking %s -> %s: %v", nodeID, tgt, err)
		}
	}
	return nil
}
