package controls

import (
	"testing"

	"repro/internal/provenance"
)

// TestBindingReuseAcrossControls checks cross-control binding reuse: N
// controls binding the same (concept, where) fingerprint on one trace
// version compute the candidate set once, and a write to the trace bumps
// the version and invalidates the shared set together with the result
// cache.
func TestBindingReuseAcrossControls(t *testing.T) {
	f := newFixture(t, false)
	// The result cache is disabled so every Check reaches the evaluator
	// and the binding cache's own hit/miss accounting is observable.
	reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	const nControls = 3
	for _, id := range []string{"c1", "c2", "c3"} {
		if _, err := reg.Deploy(id, "GM approval "+id, gmControl); err != nil {
			t.Fatal(err)
		}
	}
	f.addTrace(t, "A1", true, true)

	check := func() {
		t.Helper()
		out, err := reg.Check("A1")
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != nControls {
			t.Fatalf("outcomes = %d, want %d", len(out), nControls)
		}
	}

	check()
	st := reg.BindingStats()
	if !st.Enabled {
		t.Fatal("binding reuse disabled by default")
	}
	// gmControl has one shareable binder; the first control misses, the
	// other two replay the shared candidate set.
	if st.Misses != 1 || st.Hits != nControls-1 {
		t.Fatalf("first check: %d hits / %d misses, want %d / 1", st.Hits, st.Misses, nControls-1)
	}

	// Same trace version: the cache survives and every binder hits.
	check()
	st = reg.BindingStats()
	if st.Misses != 1 || st.Hits != 2*nControls-1 {
		t.Fatalf("second check: %d hits / %d misses, want %d / 1", st.Hits, st.Misses, 2*nControls-1)
	}

	// A write bumps the trace version: the shared set is recomputed.
	if err := f.st.PutNode(&provenance.Node{ID: "A1-extra", Class: provenance.ClassData,
		Type: "approvalStatus", AppID: "A1",
		Attrs: map[string]provenance.Value{"approved": provenance.Bool(true)}}); err != nil {
		t.Fatal(err)
	}
	check()
	st = reg.BindingStats()
	if st.Misses != 2 || st.Hits != 3*nControls-2 {
		t.Fatalf("post-write check: %d hits / %d misses, want %d / 2", st.Hits, st.Misses, 3*nControls-2)
	}
	if st.Traces != 1 || st.Entries == 0 {
		t.Fatalf("stats = %+v, want one live trace cache with entries", st)
	}
	if r := st.ReuseRatio(); r <= 0.5 {
		t.Fatalf("reuse ratio = %.3f, want > 0.5", r)
	}
}

// TestBindingReuseDisabled checks the E11 ablation switch: with
// DisableBindingReuse no cache is created and the counters never move.
func TestBindingReuseDisabled(t *testing.T) {
	f := newFixture(t, false)
	reg, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true, DisableBindingReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Deploy("c1", "GM approval", gmControl); err != nil {
		t.Fatal(err)
	}
	f.addTrace(t, "A1", true, true)
	for i := 0; i < 3; i++ {
		if _, err := reg.Check("A1"); err != nil {
			t.Fatal(err)
		}
	}
	st := reg.BindingStats()
	if st.Enabled || st.Hits != 0 || st.Misses != 0 || st.Traces != 0 {
		t.Fatalf("binding cache active despite DisableBindingReuse: %+v", st)
	}
}

// TestBindingReuseAgreesWithFresh compares verdicts from a reusing
// registry against a reuse-free one across traces and repeated rounds.
func TestBindingReuseAgreesWithFresh(t *testing.T) {
	f := newFixture(t, false)
	shared, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRegistry(f.st, f.vocab, Options{DisableCache: true, DisableBindingReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []*Registry{shared, fresh} {
		if _, err := reg.Deploy("c1", "GM approval", gmControl); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Deploy("c2", "GM approval again", gmControl); err != nil {
			t.Fatal(err)
		}
	}
	apps := []string{"T0", "T1", "T2", "T3"}
	for i, app := range apps {
		f.addTrace(t, app, i%2 == 0, i%3 == 0)
	}
	for round := 0; round < 2; round++ {
		for _, app := range apps {
			got, err := shared.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Check(app)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trace %s: %d vs %d outcomes", app, len(got), len(want))
			}
			for i := range want {
				if got[i].Result.Verdict != want[i].Result.Verdict {
					t.Fatalf("round %d trace %s control %s: shared %v, fresh %v", round, app,
						want[i].ControlID, got[i].Result.Verdict, want[i].Result.Verdict)
				}
			}
		}
	}
	if st := shared.BindingStats(); st.Hits == 0 {
		t.Fatalf("no binding reuse observed: %+v", st)
	}
}
