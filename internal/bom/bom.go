// Package bom implements the business object model and verbalization of
// Section II-D: the XOM generated from the provenance data model is mapped
// to a vocabulary of business phrases, so business users can author
// internal controls "by using familiar business terms".
//
// Each XOM class is verbalized as a concept noun ("job requisition");
// each field and method as a navigation or action phrase ("{requisition
// ID} of {this}"); each relation accessor as a navigation to another
// concept ("{submitter} of {this}"). The Business Action Language parser
// (package bal) matches phrases with longest-match semantics against this
// vocabulary, and the rule compiler (package rules) resolves matched
// phrases back to the XOM members recorded here — the BOM-to-XOM mapping.
package bom

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"repro/internal/provenance"
	"repro/internal/xom"
)

// EntryKind distinguishes the member kinds a phrase can bind.
type EntryKind int

const (
	// Attribute binds a typed field getter (navigation phrase).
	Attribute EntryKind = iota + 1
	// MethodCall binds a registered XOM method (action phrase).
	MethodCall
	// RelationNav binds a graph navigation to another concept.
	RelationNav
)

// String names the entry kind as the paper's BOM files do.
func (k EntryKind) String() string {
	switch k {
	case Attribute:
		return "phrase.navigation"
	case MethodCall:
		return "phrase.action"
	case RelationNav:
		return "phrase.relation"
	default:
		return "phrase.invalid"
	}
}

// Concept verbalizes one XOM class as a business noun.
type Concept struct {
	// Label is the business noun ("job requisition"), normalized to
	// lower-case single-spaced tokens.
	Label string
	// Class is the XOM class the concept verbalizes.
	Class *xom.Class
}

// Entry verbalizes one class member as a business phrase.
type Entry struct {
	// Phrase is the verbalized member ("requisition id"), normalized.
	Phrase string
	// Concept owns the member: the phrase is only valid applied to an
	// expression of this concept's class.
	Concept *Concept
	// Kind tells which member pointer is set.
	Kind EntryKind
	// Field is set for Attribute entries.
	Field *xom.Field
	// Method is set for MethodCall entries.
	Method *xom.Method
	// Relation is set for RelationNav entries.
	Relation *xom.Relation
	// ResultKind is the value kind produced by Attribute and MethodCall
	// entries.
	ResultKind provenance.Kind
	// ResultConcept is the concept reached by RelationNav entries (nil
	// when the relation target is unconstrained).
	ResultConcept *Concept
}

// Verbalization renders the entry in the paper's BOM notation, e.g.
//
//	mycompany.jobRequisition.reqID#phrase.navigation = {requisition id} of {this}
func (e *Entry) Verbalization() string {
	member := ""
	switch e.Kind {
	case Attribute:
		member = e.Field.Name
	case MethodCall:
		member = e.Method.Name
	case RelationNav:
		member = e.Relation.Name
	}
	return fmt.Sprintf("%s.%s#%s = {%s} of {this}", e.Concept.Class.Name, member, e.Kind, e.Phrase)
}

// Options customizes verbalization. Auto-generated labels come from
// camel-case splitting ("jobRequisition" -> "job requisition"); overrides
// supply the business wording the paper shows ("managerGen" -> "general
// manager").
type Options struct {
	// ConceptLabels overrides class labels, keyed by class name.
	ConceptLabels map[string]string
	// MemberLabels overrides member phrases, keyed by "class.member".
	MemberLabels map[string]string
	// SkipMembers suppresses verbalization of members, keyed by
	// "class.member" (e.g. internal correlation keys business users should
	// not see).
	SkipMembers map[string]bool
}

// Vocabulary is the set of terms and phrases attached to the elements of
// the BOM, indexed for longest-match lookup by the BAL parser.
type Vocabulary struct {
	om       *xom.ObjectModel
	concepts map[string]*Concept // normalized label -> concept
	byClass  map[string]*Concept // class name -> concept
	entries  map[string][]*Entry // normalized phrase -> entries
	order    []*Entry

	// phrase token sequences bucketed by first token, longest first, for
	// the longest-match scan (design decision D2).
	phraseIdx  map[string][][]string
	conceptIdx map[string][][]string
}

// Verbalize builds the vocabulary for an object model.
func Verbalize(om *xom.ObjectModel, opts Options) (*Vocabulary, error) {
	if om == nil {
		return nil, fmt.Errorf("bom: nil object model")
	}
	v := &Vocabulary{
		om:         om,
		concepts:   make(map[string]*Concept),
		byClass:    make(map[string]*Concept),
		entries:    make(map[string][]*Entry),
		phraseIdx:  make(map[string][][]string),
		conceptIdx: make(map[string][][]string),
	}
	for _, c := range om.Classes() {
		label := opts.ConceptLabels[c.Name]
		if label == "" {
			if t := om.Model().Type(c.Name); t != nil && t.Label != "" {
				label = t.Label
			} else {
				label = CamelSplit(c.Name)
			}
		}
		if err := v.AddConcept(label, c); err != nil {
			return nil, err
		}
	}
	for _, c := range om.Classes() {
		concept := v.byClass[c.Name]
		modelType := om.Model().Type(c.Name)
		for _, f := range c.Fields() {
			key := c.Name + "." + f.Name
			if opts.SkipMembers[key] {
				continue
			}
			phrase := opts.MemberLabels[key]
			if phrase == "" && modelType != nil {
				if fd := modelType.Field(f.Name); fd != nil && fd.Label != "" {
					phrase = fd.Label
				}
			}
			if phrase == "" {
				phrase = CamelSplit(f.Name)
			}
			if err := v.AddEntry(&Entry{
				Phrase: phrase, Concept: concept, Kind: Attribute,
				Field: f, ResultKind: f.Kind,
			}); err != nil {
				return nil, err
			}
		}
		for _, m := range c.Methods() {
			key := c.Name + "." + m.Name
			if opts.SkipMembers[key] {
				continue
			}
			phrase := opts.MemberLabels[key]
			if phrase == "" {
				phrase = CamelSplit(strings.TrimPrefix(m.Name, "get"))
			}
			if err := v.AddEntry(&Entry{
				Phrase: phrase, Concept: concept, Kind: MethodCall,
				Method: m, ResultKind: m.Kind,
			}); err != nil {
				return nil, err
			}
		}
		for _, r := range c.Relations() {
			key := c.Name + "." + r.Name
			if opts.SkipMembers[key] {
				continue
			}
			phrase := opts.MemberLabels[key]
			if phrase == "" {
				if rd := om.Model().Relation(r.EdgeType); rd != nil {
					if r.Dir == provenance.Out && rd.Label != "" {
						phrase = rd.Label
					} else if r.Dir == provenance.In && rd.InverseLabel != "" {
						phrase = rd.InverseLabel
					}
				}
			}
			if phrase == "" {
				phrase = CamelSplit(r.Name)
			}
			var result *Concept
			if r.TargetType != "" {
				result = v.byClass[r.TargetType]
			}
			if err := v.AddEntry(&Entry{
				Phrase: phrase, Concept: concept, Kind: RelationNav,
				Relation: r, ResultConcept: result,
			}); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// AddConcept registers a concept label for a class. Labels are normalized;
// duplicates and empty labels are rejected.
func (v *Vocabulary) AddConcept(label string, c *xom.Class) error {
	norm := Normalize(label)
	if norm == "" {
		return fmt.Errorf("bom: empty concept label for class %s", c.Name)
	}
	if _, ok := v.concepts[norm]; ok {
		return fmt.Errorf("bom: duplicate concept label %q", norm)
	}
	if _, ok := v.byClass[c.Name]; ok {
		return fmt.Errorf("bom: class %s already has a concept", c.Name)
	}
	concept := &Concept{Label: norm, Class: c}
	v.concepts[norm] = concept
	v.byClass[c.Name] = concept
	addToIdx(v.conceptIdx, strings.Fields(norm))
	return nil
}

// AddEntry registers a phrase entry. The same phrase may appear on several
// concepts (e.g. "requisition id" on both the requisition and its
// approval); resolution disambiguates by the operand's class.
func (v *Vocabulary) AddEntry(e *Entry) error {
	norm := Normalize(e.Phrase)
	if norm == "" {
		return fmt.Errorf("bom: empty phrase on concept %q", e.Concept.Label)
	}
	e.Phrase = norm
	for _, prev := range v.entries[norm] {
		if prev.Concept == e.Concept {
			return fmt.Errorf("bom: concept %q already verbalizes phrase %q", e.Concept.Label, norm)
		}
	}
	v.entries[norm] = append(v.entries[norm], e)
	v.order = append(v.order, e)
	addToIdx(v.phraseIdx, strings.Fields(norm))
	return nil
}

func addToIdx(idx map[string][][]string, tokens []string) {
	if len(tokens) == 0 {
		return
	}
	head := tokens[0]
	bucket := idx[head]
	for _, seq := range bucket {
		if equalTokens(seq, tokens) {
			return
		}
	}
	bucket = append(bucket, tokens)
	// Longest first so the scan is a straight longest-match.
	sort.Slice(bucket, func(i, j int) bool { return len(bucket[i]) > len(bucket[j]) })
	idx[head] = bucket
}

func equalTokens(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MatchPhrase finds the longest member phrase starting at tokens[0],
// returning the normalized phrase and the number of tokens consumed.
// ok is false when no phrase starts there.
func (v *Vocabulary) MatchPhrase(tokens []string) (phrase string, consumed int, ok bool) {
	return matchIdx(v.phraseIdx, tokens)
}

// PhraseMatch is one candidate phrase match.
type PhraseMatch struct {
	Phrase string
	N      int // tokens consumed
}

// MatchPhrases returns every member phrase starting at tokens[0], longest
// first. The parser needs all candidates because the grammatical "of"
// after the phrase disambiguates: a vocabulary phrase that itself ends in
// "of" ("approval of") must lose to the shorter phrase + keyword reading
// when only the latter parses.
func (v *Vocabulary) MatchPhrases(tokens []string) []PhraseMatch {
	if len(tokens) == 0 {
		return nil
	}
	var out []PhraseMatch
	for _, seq := range v.phraseIdx[tokens[0]] {
		if len(seq) > len(tokens) {
			continue
		}
		if equalTokens(seq, tokens[:len(seq)]) {
			out = append(out, PhraseMatch{Phrase: strings.Join(seq, " "), N: len(seq)})
		}
	}
	return out
}

// MatchConcept finds the longest concept label starting at tokens[0] and
// returns the concept and tokens consumed.
func (v *Vocabulary) MatchConcept(tokens []string) (*Concept, int, bool) {
	label, n, ok := matchIdx(v.conceptIdx, tokens)
	if !ok {
		return nil, 0, false
	}
	return v.concepts[label], n, true
}

// MatchConceptLabel is MatchConcept returning just the label; it satisfies
// the parser's vocabulary interface (package bal) without exposing the
// concept type there.
func (v *Vocabulary) MatchConceptLabel(tokens []string) (string, int, bool) {
	c, n, ok := v.MatchConcept(tokens)
	if !ok {
		return "", 0, false
	}
	return c.Label, n, true
}

func matchIdx(idx map[string][][]string, tokens []string) (string, int, bool) {
	if len(tokens) == 0 {
		return "", 0, false
	}
	for _, seq := range idx[tokens[0]] {
		if len(seq) > len(tokens) {
			continue
		}
		if equalTokens(seq, tokens[:len(seq)]) {
			return strings.Join(seq, " "), len(seq), true
		}
	}
	return "", 0, false
}

// Concept returns the concept with the given (normalized) label, or nil.
func (v *Vocabulary) Concept(label string) *Concept {
	return v.concepts[Normalize(label)]
}

// ConceptFor returns the concept verbalizing a class name, or nil.
func (v *Vocabulary) ConceptFor(className string) *Concept {
	return v.byClass[className]
}

// Resolve finds the entry for a phrase applied to an expression of the
// given class. It reports an error when the phrase is unknown for that
// class, naming the concepts that do verbalize it — the rule editor's
// "did you mean" diagnostics build on this.
func (v *Vocabulary) Resolve(phrase string, class *xom.Class) (*Entry, error) {
	norm := Normalize(phrase)
	candidates := v.entries[norm]
	if len(candidates) == 0 {
		return nil, fmt.Errorf("bom: unknown phrase %q", norm)
	}
	for _, e := range candidates {
		if e.Concept.Class == class {
			return e, nil
		}
	}
	var owners []string
	for _, e := range candidates {
		owners = append(owners, e.Concept.Label)
	}
	sort.Strings(owners)
	className := "<nil>"
	if class != nil {
		className = class.Name
	}
	return nil, fmt.Errorf("bom: phrase %q is not defined for %s (defined for: %s)",
		norm, className, strings.Join(owners, ", "))
}

// Entries returns every entry in verbalization order.
func (v *Vocabulary) Entries() []*Entry { return append([]*Entry(nil), v.order...) }

// Size reports the number of phrase entries.
func (v *Vocabulary) Size() int { return len(v.order) }

// Dump renders the whole BOM in the paper's notation, sorted, for
// documentation and golden tests.
func (v *Vocabulary) Dump() []string {
	var out []string
	for label, c := range v.concepts {
		out = append(out, fmt.Sprintf("%s#concept.label = %s", c.Class.Name, label))
	}
	for _, e := range v.order {
		out = append(out, e.Verbalization())
	}
	sort.Strings(out)
	return out
}

// Normalize lower-cases and single-spaces a phrase.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// CamelSplit converts a camel-case identifier into a spaced lower-case
// phrase: "jobRequisition" -> "job requisition", "reqID" -> "req id",
// "HTTPServer" -> "http server".
func CamelSplit(s string) string {
	var words []string
	var cur []rune
	runes := []rune(s)
	prevUpper := false
	flush := func() {
		if len(cur) > 0 {
			words = append(words, string(cur))
			cur = nil
		}
	}
	for i, r := range runes {
		if r == '_' || r == '-' || unicode.IsSpace(r) {
			flush()
			prevUpper = false
			continue
		}
		if unicode.IsUpper(r) && len(cur) > 0 {
			// Split on a lower->upper boundary, and before the last
			// capital of an acronym run followed by lower case
			// ("HTTPServer" -> "http server").
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if !prevUpper || nextLower {
				flush()
			}
		}
		cur = append(cur, unicode.ToLower(r))
		prevUpper = unicode.IsUpper(r)
	}
	flush()
	return strings.Join(words, " ")
}
