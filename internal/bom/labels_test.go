package bom

import (
	"testing"

	"repro/internal/provenance"
	"repro/internal/xom"
)

// labeledOM builds a model that carries its business labels inline — the
// paper's future-work item of "adding business semantic into the
// provenance data model".
func labeledOM(t testing.TB) *xom.ObjectModel {
	t.Helper()
	m := provenance.NewModel("labeled")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{
		Name: "jobRequisition", Class: provenance.ClassData,
		Label: "staffing request",
	}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{
		Name: "reqID", Kind: provenance.KindString, Label: "requisition number",
	}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{
		Name: "dept", Kind: provenance.KindString, // no label: falls back
	}))
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddRelation(&provenance.RelationDef{
		Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition",
		Label: "submitted request", InverseLabel: "requesting employee",
	}))
	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return om
}

func TestModelLabelsDriveVerbalization(t *testing.T) {
	v, err := Verbalize(labeledOM(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Concept label from the model.
	if v.Concept("staffing request") == nil {
		t.Fatal("model concept label not used")
	}
	if v.Concept("job requisition") != nil {
		t.Fatal("camel-split label used despite model label")
	}
	req := v.ConceptFor("jobRequisition").Class
	// Field label from the model.
	if _, err := v.Resolve("requisition number", req); err != nil {
		t.Fatalf("field label: %v", err)
	}
	// Unlabeled field falls back to camel splitting.
	if _, err := v.Resolve("dept", req); err != nil {
		t.Fatalf("fallback label: %v", err)
	}
	// Relation labels, forward and inverse.
	person := v.ConceptFor("person").Class
	fwd, err := v.Resolve("submitted request", person)
	if err != nil {
		t.Fatalf("forward relation label: %v", err)
	}
	if fwd.Kind != RelationNav {
		t.Fatalf("forward entry = %+v", fwd)
	}
	if _, err := v.Resolve("requesting employee", req); err != nil {
		t.Fatalf("inverse relation label: %v", err)
	}
}

func TestOptionsOverrideModelLabels(t *testing.T) {
	v, err := Verbalize(labeledOM(t), Options{
		ConceptLabels: map[string]string{"jobRequisition": "vacancy"},
		MemberLabels:  map[string]string{"jobRequisition.reqID": "ticket"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Concept("vacancy") == nil || v.Concept("staffing request") != nil {
		t.Fatal("options did not override the model concept label")
	}
	req := v.ConceptFor("jobRequisition").Class
	if _, err := v.Resolve("ticket", req); err != nil {
		t.Fatalf("options member override: %v", err)
	}
	if _, err := v.Resolve("requisition number", req); err == nil {
		t.Fatal("model label survived an override")
	}
}
