package bom

import (
	"strings"
	"testing"

	"repro/internal/provenance"
	"repro/internal/xom"
)

func testOM(t testing.TB) *xom.ObjectModel {
	t.Helper()
	m := provenance.NewModel("hiring")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	must(m.AddField("person", &provenance.FieldDef{Name: "manager", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "dept", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}))
	must(m.AddRelation(&provenance.RelationDef{Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "approvalOf", SourceType: "approvalStatus", TargetType: "jobRequisition"}))
	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	must(om.RegisterMethod("jobRequisition",
		xom.LookupTableMethod("getManagerGen", "dept", map[string]string{"dept501": "Jane Smith"})))
	return om
}

func hiringOptions() Options {
	return Options{
		ConceptLabels: map[string]string{
			"jobRequisition": "job requisition",
		},
		MemberLabels: map[string]string{
			"jobRequisition.reqID":              "requisition ID",
			"jobRequisition.positionType":       "position type",
			"jobRequisition.getManagerGen":      "general manager",
			"jobRequisition.submitterOfInverse": "submitter",
			"jobRequisition.approvalOfInverse":  "approval",
		},
	}
}

func testVocab(t testing.TB) *Vocabulary {
	t.Helper()
	v, err := Verbalize(testOM(t), hiringOptions())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCamelSplit(t *testing.T) {
	cases := map[string]string{
		"jobRequisition": "job requisition",
		"reqID":          "req id",
		"positionType":   "position type",
		"HTTPServer":     "http server",
		"getManagerGen":  "get manager gen",
		"simple":         "simple",
		"ABC":            "abc",
		"snake_case":     "snake case",
		"kebab-case":     "kebab case",
		"":               "",
	}
	for in, want := range cases {
		if got := CamelSplit(in); got != want {
			t.Errorf("CamelSplit(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  General   MANAGER "); got != "general manager" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestVerbalizeConcepts(t *testing.T) {
	v := testVocab(t)
	c := v.Concept("job requisition")
	if c == nil || c.Class.Name != "jobRequisition" {
		t.Fatalf("concept = %+v", c)
	}
	// Auto-generated label for the class without an override.
	if v.Concept("approval status") == nil {
		t.Fatal("auto concept label missing")
	}
	if v.ConceptFor("person") == nil {
		t.Fatal("ConceptFor(person) nil")
	}
	if v.Concept("ghost") != nil {
		t.Fatal("ghost concept found")
	}
}

func TestVerbalizeEntries(t *testing.T) {
	v := testVocab(t)
	req := v.ConceptFor("jobRequisition").Class

	// Overridden attribute phrase.
	e, err := v.Resolve("requisition ID", req)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Attribute || e.Field.Name != "reqID" || e.ResultKind != provenance.KindString {
		t.Fatalf("entry = %+v", e)
	}
	// Auto-generated attribute phrase.
	if _, err := v.Resolve("dept", req); err != nil {
		t.Fatalf("auto attribute phrase: %v", err)
	}
	// Method becomes an action phrase.
	gm, err := v.Resolve("general manager", req)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Kind != MethodCall || gm.Method.Name != "getManagerGen" {
		t.Fatalf("method entry = %+v", gm)
	}
	// Relation navigation with result concept.
	sub, err := v.Resolve("submitter", req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind != RelationNav || sub.ResultConcept == nil || sub.ResultConcept.Class.Name != "person" {
		t.Fatalf("relation entry = %+v", sub)
	}
}

func TestResolveDisambiguatesByClass(t *testing.T) {
	// "req id" is auto-verbalized on both jobRequisition (no — overridden)
	// and approvalStatus. Add the same phrase on both manually.
	v := testVocab(t)
	req := v.ConceptFor("jobRequisition")
	apprv := v.ConceptFor("approvalStatus")
	// approvalStatus auto-verbalizes reqID as "req id".
	e, err := v.Resolve("req id", apprv.Class)
	if err != nil {
		t.Fatal(err)
	}
	if e.Concept != apprv {
		t.Fatalf("resolved to wrong concept: %+v", e.Concept)
	}
	// The same phrase does not exist on jobRequisition (overridden there);
	// the error lists who owns it.
	_, err = v.Resolve("req id", req.Class)
	if err == nil {
		t.Fatal("cross-class phrase resolved")
	}
	if !strings.Contains(err.Error(), "approval status") {
		t.Errorf("error lacks owners: %v", err)
	}
	if _, err := v.Resolve("utterly unknown", req.Class); err == nil {
		t.Fatal("unknown phrase resolved")
	}
}

func TestLongestMatchPhrase(t *testing.T) {
	v := testVocab(t)
	// Both "position type" and a single-token phrase could match; the
	// matcher must take the longest.
	req := v.ConceptFor("jobRequisition")
	if err := v.AddEntry(&Entry{Phrase: "position", Concept: req, Kind: Attribute,
		Field: req.Class.Field("dept"), ResultKind: provenance.KindString}); err != nil {
		t.Fatal(err)
	}
	tokens := []string{"position", "type", "of", "this"}
	phrase, n, ok := v.MatchPhrase(tokens)
	if !ok || phrase != "position type" || n != 2 {
		t.Fatalf("MatchPhrase = %q, %d, %v", phrase, n, ok)
	}
	// When only the shorter matches, it is returned.
	phrase, n, ok = v.MatchPhrase([]string{"position", "of"})
	if !ok || phrase != "position" || n != 1 {
		t.Fatalf("MatchPhrase short = %q, %d, %v", phrase, n, ok)
	}
	if _, _, ok := v.MatchPhrase([]string{"zebra"}); ok {
		t.Fatal("matched nonexistent phrase")
	}
	if _, _, ok := v.MatchPhrase(nil); ok {
		t.Fatal("matched empty tokens")
	}
}

func TestLongestMatchConcept(t *testing.T) {
	v := testVocab(t)
	c, n, ok := v.MatchConcept([]string{"job", "requisition", "where"})
	if !ok || c.Class.Name != "jobRequisition" || n != 2 {
		t.Fatalf("MatchConcept = %+v, %d, %v", c, n, ok)
	}
	if _, _, ok := v.MatchConcept([]string{"unicorn"}); ok {
		t.Fatal("matched nonexistent concept")
	}
}

func TestVerbalizeSkipMembers(t *testing.T) {
	opts := hiringOptions()
	opts.SkipMembers = map[string]bool{"approvalStatus.reqID": true}
	v, err := Verbalize(testOM(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Resolve("req id", v.ConceptFor("approvalStatus").Class); err == nil {
		t.Fatal("skipped member verbalized")
	}
}

func TestVerbalizeRejectsDuplicates(t *testing.T) {
	om := testOM(t)
	opts := hiringOptions()
	// Two classes with the same concept label collide.
	opts.ConceptLabels = map[string]string{
		"person":         "entity",
		"jobRequisition": "entity",
	}
	if _, err := Verbalize(om, opts); err == nil {
		t.Fatal("duplicate concept labels accepted")
	}
	// Two members of one class with the same phrase collide.
	opts = hiringOptions()
	opts.MemberLabels["jobRequisition.dept"] = "requisition ID"
	if _, err := Verbalize(testOM(t), opts); err == nil {
		t.Fatal("duplicate member phrase on one concept accepted")
	}
	if _, err := Verbalize(nil, Options{}); err == nil {
		t.Fatal("nil object model accepted")
	}
}

func TestDumpNotation(t *testing.T) {
	v := testVocab(t)
	dump := strings.Join(v.Dump(), "\n")
	for _, want := range []string{
		"jobRequisition#concept.label = job requisition",
		"jobRequisition.reqID#phrase.navigation = {requisition id} of {this}",
		"jobRequisition.getManagerGen#phrase.action = {general manager} of {this}",
		"jobRequisition.submitterOfInverse#phrase.relation = {submitter} of {this}",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q\n%s", want, dump)
		}
	}
}

func TestSizeAndEntries(t *testing.T) {
	v := testVocab(t)
	if v.Size() == 0 || len(v.Entries()) != v.Size() {
		t.Fatalf("Size = %d, Entries = %d", v.Size(), len(v.Entries()))
	}
}

func BenchmarkMatchPhrase(b *testing.B) {
	v, err := Verbalize(testOM(b), hiringOptions())
	if err != nil {
		b.Fatal(err)
	}
	tokens := []string{"position", "type", "of", "this"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := v.MatchPhrase(tokens); !ok {
			b.Fatal("no match")
		}
	}
}
