package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/events"
)

// Clock is the recorder's time source; tests substitute a fake to drive
// backoff schedules deterministically.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SendResult is a sender's verdict on one delivery attempt that reached
// the server.
type SendResult struct {
	// State is the batch's ack state: StateApplied is terminal;
	// StatePending means admitted, poll again with the same key.
	State State
	// Token addresses the server-side ack for polling (async admission
	// only; empty on synchronous protocols, which are terminal anyway).
	Token string
	// Overloaded marks an admission-control rejection; retry later.
	Overloaded bool
	// RetryAfter is the server's backoff hint (overload only).
	RetryAfter time.Duration
	// EventErrors lists per-event terminal failures (applied only).
	EventErrors []EventErr
}

// Sender delivers one keyed batch attempt. Transport failures return an
// error; server verdicts (including overload) return a SendResult.
// Redelivering with the same key must be safe — the gateway dedups.
type Sender interface {
	Send(key string, evs []events.AppEvent) (SendResult, error)
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(key string, evs []events.AppEvent) (SendResult, error)

func (f SenderFunc) Send(key string, evs []events.AppEvent) (SendResult, error) {
	return f(key, evs)
}

// RecorderConfig tunes the client.
type RecorderConfig struct {
	// MaxBatch caps events per delivered batch.
	MaxBatch int
	// FlushInterval bounds how long a non-full batch waits for company
	// before being sent, and paces ack polling for admitted batches.
	FlushInterval time.Duration
	// SpoolLimit bounds the in-memory spool (events). Record fails with
	// ErrSpoolFull beyond it — backpressure surfaces at the source
	// instead of growing memory without bound.
	SpoolLimit int
	// BaseBackoff/MaxBackoff bound the exponential retry schedule.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads retries: each delay is scaled by a uniform factor in
	// [1-Jitter, 1+Jitter] so synchronized clients don't retry in phase.
	Jitter float64
	// Seed makes the jitter sequence reproducible; 0 derives one from the
	// wall clock.
	Seed int64
	// KeyPrefix namespaces this recorder's idempotency keys; defaults to
	// a random prefix so independent recorders never collide.
	KeyPrefix string
	// Clock substitutes the time source (tests); nil means real time.
	Clock Clock
}

func (c *RecorderConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 25 * time.Millisecond
	}
	if c.SpoolLimit <= 0 {
		c.SpoolLimit = 8192
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
}

// ErrSpoolFull rejects Record calls when the spool is at SpoolLimit.
var ErrSpoolFull = errors.New("ingest: recorder spool full")

// ErrRecorderClosed rejects Record calls after Close.
var ErrRecorderClosed = errors.New("ingest: recorder closed")

// SpoolStats snapshots the recorder's counters.
type SpoolStats struct {
	// Enqueued/Dropped count Record calls accepted into / rejected by the
	// spool.
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	// BatchesSent counts delivery attempts; Applied counts batches
	// confirmed terminal.
	BatchesSent uint64 `json:"batchesSent"`
	Applied     uint64 `json:"applied"`
	// Retries counts re-sends after overload or transport failure;
	// Overloads and TransportErrors split them by cause. Polls counts
	// pending-state re-sends (admitted, awaiting the flush).
	Retries         uint64 `json:"retries"`
	Overloads       uint64 `json:"overloads"`
	TransportErrors uint64 `json:"transportErrors"`
	Polls           uint64 `json:"polls"`
	// EventErrors counts events the server terminally rejected.
	EventErrors uint64 `json:"eventErrors"`
	// SpoolDepth is the current spool size.
	SpoolDepth int `json:"spoolDepth"`
}

// Recorder is the client half of the gateway: a spooling, retrying
// at-least-once event shipper. Record never blocks on the network — events
// enter an in-memory spool and a background loop cuts batches, delivers
// them under fresh idempotency keys, and retries with exponential backoff
// plus jitter (honoring server Retry-After hints) until each batch is
// applied. Close flushes the spool before returning.
type Recorder struct {
	cfg   RecorderConfig
	send  Sender
	clock Clock
	rng   *rand.Rand // loop goroutine only

	mu      sync.Mutex
	spool   []events.AppEvent
	closing bool
	seq     uint64
	stats   SpoolStats
	evErrs  []EventErr

	wake    chan struct{}
	closeCh chan struct{}
	done    chan struct{}
}

// NewRecorder starts the delivery loop.
func NewRecorder(cfg RecorderConfig, send Sender) *Recorder {
	cfg.fill()
	r := &Recorder{
		cfg:     cfg,
		send:    send,
		clock:   cfg.Clock,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		wake:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if r.cfg.KeyPrefix == "" {
		r.cfg.KeyPrefix = fmt.Sprintf("rc-%08x", r.rng.Uint32())
	}
	go r.run()
	return r
}

// Record spools one event for asynchronous delivery.
func (r *Recorder) Record(ev events.AppEvent) error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		return ErrRecorderClosed
	}
	if len(r.spool) >= r.cfg.SpoolLimit {
		r.stats.Dropped++
		r.mu.Unlock()
		return ErrSpoolFull
	}
	r.spool = append(r.spool, ev)
	r.stats.Enqueued++
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return nil
}

// Close stops accepting events, delivers everything spooled, and returns
// once the last batch is applied.
func (r *Recorder) Close() error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closing = true
	r.mu.Unlock()
	close(r.closeCh)
	<-r.done
	return nil
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() SpoolStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.SpoolDepth = len(r.spool)
	return st
}

// EventErrors drains the terminal per-event rejections collected so far.
func (r *Recorder) EventErrors() []EventErr {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.evErrs
	r.evErrs = nil
	return out
}

func (r *Recorder) run() {
	defer close(r.done)
	for {
		r.mu.Lock()
		n := len(r.spool)
		closing := r.closing
		r.mu.Unlock()
		if n == 0 {
			if closing {
				return
			}
			select {
			case <-r.wake:
			case <-r.closeCh:
			}
			continue
		}
		// Undersized batch: wait one flush interval for company unless
		// closing (then drain as fast as possible).
		if n < r.cfg.MaxBatch && !closing {
			select {
			case <-r.clock.After(r.cfg.FlushInterval):
			case <-r.closeCh:
			}
		}
		r.mu.Lock()
		take := len(r.spool)
		if take > r.cfg.MaxBatch {
			take = r.cfg.MaxBatch
		}
		batch := make([]events.AppEvent, take)
		copy(batch, r.spool)
		r.spool = r.spool[:copy(r.spool, r.spool[take:])]
		r.seq++
		key := fmt.Sprintf("%s-%d", r.cfg.KeyPrefix, r.seq)
		r.mu.Unlock()
		r.deliver(key, batch)
	}
}

// deliver retries one batch under one idempotency key until applied.
func (r *Recorder) deliver(key string, batch []events.AppEvent) {
	attempt := 0
	for {
		r.mu.Lock()
		r.stats.BatchesSent++
		r.mu.Unlock()
		res, err := r.send.Send(key, batch)
		switch {
		case err != nil:
			r.count(func(s *SpoolStats) { s.TransportErrors++; s.Retries++ })
			r.sleep(r.backoff(attempt, 0))
			attempt++
		case res.Overloaded:
			r.count(func(s *SpoolStats) { s.Overloads++; s.Retries++ })
			r.sleep(r.backoff(attempt, res.RetryAfter))
			attempt++
		case res.State == StateApplied:
			r.mu.Lock()
			r.stats.Applied++
			r.stats.EventErrors += uint64(len(res.EventErrors))
			r.evErrs = append(r.evErrs, res.EventErrors...)
			r.mu.Unlock()
			return
		default: // pending: admitted; poll the same key until applied
			attempt = 0
			r.count(func(s *SpoolStats) { s.Polls++ })
			r.sleep(r.cfg.FlushInterval)
		}
	}
}

func (r *Recorder) count(fn func(*SpoolStats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// backoff computes the attempt's delay: exponential from BaseBackoff,
// capped at MaxBackoff, jittered by ±Jitter, floored at the server's
// Retry-After hint.
func (r *Recorder) backoff(attempt int, floor time.Duration) time.Duration {
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	jittered := time.Duration(float64(d) * (1 - r.cfg.Jitter + 2*r.cfg.Jitter*r.rng.Float64()))
	if jittered < floor {
		jittered = floor
	}
	return jittered
}

func (r *Recorder) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-r.clock.After(d)
}
