package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
)

// fakeClock auto-advances: After records the requested duration and fires
// immediately, so retry loops run at full speed while the test inspects
// the exact delays the recorder asked for.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	fire := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- fire
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// scriptSender replays a fixed sequence of verdicts, then applies.
type scriptSender struct {
	mu    sync.Mutex
	steps []func() (SendResult, error)
	calls []string // key per attempt
}

func (s *scriptSender) Send(key string, evs []events.AppEvent) (SendResult, error) {
	s.mu.Lock()
	s.calls = append(s.calls, key)
	var step func() (SendResult, error)
	if len(s.steps) > 0 {
		step = s.steps[0]
		s.steps = s.steps[1:]
	}
	s.mu.Unlock()
	if step == nil {
		return SendResult{State: StateApplied}, nil
	}
	return step()
}

func overloaded(after time.Duration) func() (SendResult, error) {
	return func() (SendResult, error) {
		return SendResult{Overloaded: true, RetryAfter: after}, nil
	}
}

func transportDown() (SendResult, error) { return SendResult{}, errors.New("connection refused") }

func pending() (SendResult, error) { return SendResult{State: StatePending}, nil }

func recorderConfig(clock Clock) RecorderConfig {
	return RecorderConfig{
		MaxBatch: 4, FlushInterval: 10 * time.Millisecond, SpoolLimit: 64,
		BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		Jitter: 0.2, Seed: 42, KeyPrefix: "t", Clock: clock,
	}
}

// TestRecorderBackoffSchedule drives one batch through overloads, a
// transport failure and a pending poll, asserting every delay the
// recorder chose: exponential growth, jitter bounds, the server's
// Retry-After floor, and the flush-interval poll cadence.
func TestRecorderBackoffSchedule(t *testing.T) {
	clock := newFakeClock()
	sender := &scriptSender{steps: []func() (SendResult, error){
		overloaded(0),                      // attempt 0: backoff ~100ms
		overloaded(500 * time.Millisecond), // attempt 1: ~200ms floored to 500ms
		transportDown,                      // attempt 2: ~400ms
		pending,                            // admitted: poll at FlushInterval
	}}
	r := NewRecorder(recorderConfig(clock), sender)
	if err := r.Record(ev("A", "0")); err != nil {
		t.Fatal(err)
	}
	// Wait for delivery before Close so the schedule is complete (Close
	// during delivery would skip the flush wait).
	for deadline := time.Now().Add(5 * time.Second); r.Stats().Applied == 0; {
		if time.Now().After(deadline) {
			t.Fatal("batch never applied")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	sleeps := clock.recorded()
	// First recorded sleep is the undersized-batch flush wait; drop it.
	if len(sleeps) < 5 {
		t.Fatalf("recorded %d sleeps: %v", len(sleeps), sleeps)
	}
	if sleeps[0] != 10*time.Millisecond {
		t.Fatalf("flush wait = %v, want 10ms", sleeps[0])
	}
	within := func(d, base time.Duration) bool {
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		return d >= lo && d <= hi
	}
	if !within(sleeps[1], 100*time.Millisecond) {
		t.Fatalf("backoff(0) = %v, want 100ms ±20%%", sleeps[1])
	}
	if sleeps[2] != 500*time.Millisecond {
		t.Fatalf("backoff(1) = %v, want exactly the 500ms Retry-After floor", sleeps[2])
	}
	if !within(sleeps[3], 400*time.Millisecond) {
		t.Fatalf("backoff(2) = %v, want 400ms ±20%%", sleeps[3])
	}
	if sleeps[4] != 10*time.Millisecond {
		t.Fatalf("pending poll = %v, want FlushInterval", sleeps[4])
	}
	// Every attempt redelivered under the SAME idempotency key.
	for i, key := range sender.calls {
		if key != sender.calls[0] {
			t.Fatalf("attempt %d used key %q, first used %q", i, key, sender.calls[0])
		}
	}
	st := r.Stats()
	if st.Overloads != 2 || st.TransportErrors != 1 || st.Polls != 1 || st.Applied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRecorderBackoffBounds samples the raw schedule: exponential within
// jitter bounds, capped at MaxBackoff, floored at Retry-After, and — with
// a fixed seed — reproducible.
func TestRecorderBackoffBounds(t *testing.T) {
	mk := func(seed int64) *Recorder {
		cfg := recorderConfig(newFakeClock())
		cfg.Seed = seed
		return NewRecorder(cfg, &scriptSender{})
	}
	r := mk(7)
	defer r.Close()
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > time.Second || want <= 0 {
			want = time.Second // MaxBackoff cap
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(attempt, 0)
			lo := time.Duration(float64(want) * 0.8)
			hi := time.Duration(float64(want) * 1.2)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	if d := r.backoff(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("floor ignored: %v", d)
	}
	a, b := mk(7), mk(7)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 20; i++ {
		if da, db := a.backoff(i%6, 0), b.backoff(i%6, 0); da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
	}
}

// TestRecorderFlushOnClose: everything recorded before Close is delivered
// by the time Close returns, in order, under distinct batch keys.
func TestRecorderFlushOnClose(t *testing.T) {
	var mu sync.Mutex
	var got []string
	keys := map[string]bool{}
	sender := SenderFunc(func(key string, evs []events.AppEvent) (SendResult, error) {
		mu.Lock()
		defer mu.Unlock()
		keys[key] = true
		for _, e := range evs {
			got = append(got, e.Payload["seq"])
		}
		return SendResult{State: StateApplied}, nil
	})
	r := NewRecorder(recorderConfig(newFakeClock()), sender)
	const n = 10
	for i := 0; i < n; i++ {
		if err := r.Record(ev("A", fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != fmt.Sprintf("%d", i) {
			t.Fatalf("event %d = seq %s (order lost)", i, seq)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("expected multiple batches (MaxBatch=4, %d events), got keys %v", n, keys)
	}
	if err := r.Record(ev("A", "late")); !errors.Is(err, ErrRecorderClosed) {
		t.Fatalf("record after close = %v", err)
	}
}

// TestRecorderSpoolBound: a stalled server fills the spool; Record then
// fails fast with ErrSpoolFull instead of growing memory.
func TestRecorderSpoolBound(t *testing.T) {
	release := make(chan struct{})
	sender := SenderFunc(func(key string, evs []events.AppEvent) (SendResult, error) {
		<-release
		return SendResult{State: StateApplied}, nil
	})
	cfg := recorderConfig(newFakeClock())
	cfg.SpoolLimit = 8
	cfg.MaxBatch = 2
	r := NewRecorder(cfg, sender)
	// The loop takes up to MaxBatch events out of the spool before
	// blocking in Send, so overfill by more than SpoolLimit+MaxBatch.
	full := 0
	for i := 0; i < cfg.SpoolLimit+cfg.MaxBatch+8; i++ {
		if err := r.Record(ev("A", fmt.Sprintf("%d", i))); errors.Is(err, ErrSpoolFull) {
			full++
		}
	}
	if full == 0 {
		t.Fatal("spool never filled")
	}
	st := r.Stats()
	if st.Dropped != uint64(full) || st.SpoolDepth > cfg.SpoolLimit {
		t.Fatalf("stats = %+v (rejected %d)", st, full)
	}
	close(release)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
