package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
)

// collectSink records every flushed run; optionally gated so tests can
// hold the pipeline busy and fill the admission queues.
type collectSink struct {
	mu   sync.Mutex
	runs [][]events.KeyedEvent
	gate chan struct{} // non-nil: each flush waits for one token
	fail func(kevs []events.KeyedEvent) error
}

func (c *collectSink) sink(kevs []events.KeyedEvent) error {
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	run := make([]events.KeyedEvent, len(kevs))
	copy(run, kevs)
	c.runs = append(c.runs, run)
	c.mu.Unlock()
	if c.fail != nil {
		return c.fail(kevs)
	}
	return nil
}

func (c *collectSink) events() []events.KeyedEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []events.KeyedEvent
	for _, run := range c.runs {
		out = append(out, run...)
	}
	return out
}

func ev(app, seq string) events.AppEvent {
	return events.AppEvent{
		Source: "t", Type: "e", AppID: app,
		Payload: map[string]string{"seq": seq},
	}
}

func drain(t *testing.T, g *Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

func TestGatewayOfferAppliesBatch(t *testing.T) {
	cs := &collectSink{}
	g, err := New(Config{Shards: 2, QueueDepth: 64, MaxBatch: 8}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	st, err := g.Offer("k1", []events.AppEvent{ev("A", "0"), ev("B", "1"), ev("A", "2")})
	if err != nil {
		t.Fatal(err)
	}
	if st.Token == "" || st.Key != "k1" || st.Events != 3 {
		t.Fatalf("ack = %+v", st)
	}
	drain(t, g)
	got := cs.events()
	if len(got) != 3 {
		t.Fatalf("sink saw %d events, want 3", len(got))
	}
	for _, kev := range got {
		if kev.Key != "k1" {
			t.Fatalf("event key = %q, want k1", kev.Key)
		}
	}
	ack, ok := g.Ack(st.Token)
	if !ok || ack.State != StateApplied {
		t.Fatalf("ack by token = %+v ok=%v", ack, ok)
	}
	if s := g.Stats(); s.AdmittedBatches != 1 || s.AdmittedEvents != 3 || s.AppliedBatches != 1 || s.QueuedEvents != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGatewayDedupByKey(t *testing.T) {
	cs := &collectSink{}
	g, err := New(Config{Shards: 1, QueueDepth: 64, MaxBatch: 8}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	batch := []events.AppEvent{ev("A", "0")}
	first, err := g.Offer("dup", batch)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, g)
	again, err := g.Offer("dup", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Token != first.Token || again.State != StateApplied {
		t.Fatalf("redelivery ack = %+v", again)
	}
	drain(t, g)
	if got := len(cs.events()); got != 1 {
		t.Fatalf("sink saw %d events after redelivery, want 1", got)
	}
	if s := g.Stats(); s.DedupedBatches != 1 {
		t.Fatalf("DedupedBatches = %d", s.DedupedBatches)
	}
}

func TestGatewayOverloadRejectsWholeBatch(t *testing.T) {
	cs := &collectSink{gate: make(chan struct{})}
	g, err := New(Config{Shards: 1, QueueDepth: 4, MaxBatch: 2, RetryAfter: 123 * time.Millisecond}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue while the sink is gated shut. The worker takes some
	// events into its coalescing buffer, so offer until rejection.
	admitted := 0
	var oe *OverloadError
	for i := 0; i < 100; i++ {
		_, err := g.Offer(fmt.Sprintf("k%d", i), []events.AppEvent{ev("A", "0"), ev("A", "1")})
		if err == nil {
			admitted++
			continue
		}
		if !errors.As(err, &oe) {
			t.Fatalf("offer %d: %v, want *OverloadError", i, err)
		}
		break
	}
	if oe == nil {
		t.Fatal("queue never filled")
	}
	if oe.RetryAfter != 123*time.Millisecond {
		t.Fatalf("RetryAfter = %v", oe.RetryAfter)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted before overload")
	}
	// Partial admission must not happen: a rejected batch reserves nothing,
	// so the same rejection repeats while the queue stays full.
	if _, err := g.Offer("again", []events.AppEvent{ev("A", "2"), ev("A", "3")}); !errors.As(err, &oe) {
		t.Fatalf("second offer = %v, want *OverloadError", err)
	}
	stats := g.Stats()
	if stats.RejectedBatches != 2 {
		t.Fatalf("RejectedBatches = %d", stats.RejectedBatches)
	}
	// Open the gate; the backlog flushes and admission recovers.
	close(cs.gate)
	drain(t, g)
	if _, err := g.Offer("after", []events.AppEvent{ev("A", "9")}); err != nil {
		t.Fatalf("offer after recovery: %v", err)
	}
	drain(t, g)
	g.Close()
	if got, want := len(cs.events()), admitted*2+1; got != want {
		t.Fatalf("sink saw %d events, want %d", got, want)
	}
}

func TestGatewayPerEventErrorsSurviveAsyncPath(t *testing.T) {
	// The sink rejects every event whose seq payload is "bad", reporting
	// positions in the COALESCED run; the ack must translate them back to
	// the client batch's own indices.
	cs := &collectSink{}
	cs.fail = func(kevs []events.KeyedEvent) error {
		var failed []events.EventError
		for i, kev := range kevs {
			if kev.Event.Payload["seq"] == "bad" {
				failed = append(failed, events.EventError{Index: i, Err: errors.New("rejected")})
			}
		}
		if failed == nil {
			return nil
		}
		return &events.BatchError{Failed: failed, Total: len(kevs)}
	}
	g, err := New(Config{Shards: 2, QueueDepth: 64, MaxBatch: 16}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Indices 1 and 3 are bad; events spread over both shards.
	st, err := g.Offer("k", []events.AppEvent{
		ev("A", "ok"), ev("B", "bad"), ev("A", "ok"), ev("A", "bad"), ev("B", "ok"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, g)
	ack, ok := g.Ack(st.Token)
	if !ok || ack.State != StateApplied {
		t.Fatalf("ack = %+v ok=%v", ack, ok)
	}
	if len(ack.EventErrors) != 2 || ack.EventErrors[0].Index != 1 || ack.EventErrors[1].Index != 3 {
		t.Fatalf("event errors = %+v, want indices 1 and 3", ack.EventErrors)
	}
}

func TestGatewayDrainFlushesBacklogAndStopsAdmission(t *testing.T) {
	cs := &collectSink{}
	g, err := New(Config{Shards: 2, QueueDepth: 256, MaxBatch: 8}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := g.Offer(fmt.Sprintf("k%d", i), []events.AppEvent{ev("A", "0"), ev("B", "1")}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := len(cs.events()); got != 40 {
		t.Fatalf("drained %d events, want 40", got)
	}
	if _, err := g.Offer("late", []events.AppEvent{ev("A", "9")}); !errors.Is(err, ErrDraining) {
		t.Fatalf("offer while draining = %v, want ErrDraining", err)
	}
	if !g.Stats().Draining {
		t.Fatal("stats not draining")
	}
	g.Close()
}

func TestGatewayJournalAnswersRedeliveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cs := &collectSink{}
	g, err := New(Config{Shards: 1, QueueDepth: 64, MaxBatch: 8, Dir: dir}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Offer("persisted", []events.AppEvent{ev("A", "0")}); err != nil {
		t.Fatal(err)
	}
	drain(t, g)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(Config{Shards: 1, QueueDepth: 64, MaxBatch: 8, Dir: dir}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st, err := re.Offer("persisted", []events.AppEvent{ev("A", "0")})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deduped || st.State != StateApplied {
		t.Fatalf("post-restart redelivery ack = %+v, want deduped applied", st)
	}
	drain(t, re)
	if got := len(cs.events()); got != 1 {
		t.Fatalf("sink saw %d events across restart, want 1", got)
	}
}

func TestGatewayDedupWindowEviction(t *testing.T) {
	cs := &collectSink{}
	g, err := New(Config{Shards: 1, QueueDepth: 64, MaxBatch: 8, DedupWindow: 2}, cs.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, key := range []string{"k1", "k2", "k3"} {
		if _, err := g.Offer(key, []events.AppEvent{ev("A", key)}); err != nil {
			t.Fatal(err)
		}
		drain(t, g)
	}
	// k1 fell out of the window: redelivery re-runs the sink (safe — the
	// pipeline dedups by record ID) instead of answering from the table.
	st, err := g.Offer("k1", []events.AppEvent{ev("A", "k1")})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deduped {
		t.Fatal("evicted key still deduped")
	}
	drain(t, g)
	if got := len(cs.events()); got != 4 {
		t.Fatalf("sink saw %d events, want 4", got)
	}
}

// TestGatewayOverloadStress hammers the gateway from many writers at well
// past capacity and asserts the two load-shedding invariants: queued
// memory never exceeds Shards*QueueDepth events, and every ADMITTED event
// is delivered to the sink exactly once, in per-trace admission order.
// Run under -race this doubles as the concurrency check.
func TestGatewayOverloadStress(t *testing.T) {
	const (
		writers   = 8
		perWriter = 400
		batchSize = 4
	)
	type seen struct {
		mu   sync.Mutex
		last map[string]int // trace -> last seq delivered
		n    int
	}
	sn := &seen{last: make(map[string]int)}
	sink := func(kevs []events.KeyedEvent) error {
		sn.mu.Lock()
		defer sn.mu.Unlock()
		for _, kev := range kevs {
			app := kev.Event.AppID
			var seq int
			fmt.Sscanf(kev.Event.Payload["seq"], "%d", &seq)
			if last, ok := sn.last[app]; ok && seq <= last {
				return fmt.Errorf("trace %s: seq %d after %d (order violated or duplicate)", app, seq, last)
			}
			sn.last[app] = seq
			sn.n++
		}
		return nil
	}
	g, err := New(Config{Shards: 4, QueueDepth: 32, MaxBatch: 16}, sink)
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(4 * 32)

	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := fmt.Sprintf("T%d", w) // one trace per writer: total order
			seq := 0
			for i := 0; i < perWriter; i++ {
				batch := make([]events.AppEvent, batchSize)
				for j := range batch {
					batch[j] = ev(trace, fmt.Sprintf("%d", seq+j))
				}
				_, err := g.Offer(fmt.Sprintf("w%d-b%d", w, i), batch)
				var oe *OverloadError
				switch {
				case err == nil:
					admitted.Add(int64(batchSize))
					seq += batchSize
				case errors.As(err, &oe):
					rejected.Add(1)
					// Shed: the whole batch was refused; drop it (the
					// recorder client would retry; here we move on).
				default:
					t.Errorf("offer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	drain(t, g)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	stats := g.Stats()
	if stats.MaxQueuedEvents > bound {
		t.Fatalf("queued events peaked at %d, bound %d", stats.MaxQueuedEvents, bound)
	}
	if rejected.Load() == 0 {
		t.Fatal("overload never triggered — raise the load")
	}
	if int64(sn.n) != admitted.Load() {
		t.Fatalf("sink saw %d events, admitted %d (loss or duplication)", sn.n, admitted.Load())
	}
	if stats.AdmittedEvents != uint64(admitted.Load()) || stats.FlushedEvents != stats.AdmittedEvents {
		t.Fatalf("stats admitted=%d flushed=%d, want %d", stats.AdmittedEvents, stats.FlushedEvents, admitted.Load())
	}
}
