package ingest

import (
	"errors"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/tenant"
)

// newQuotaGateway builds a gateway whose admission consults a tenant
// registry under a fake clock.
func newQuotaGateway(t *testing.T, reg *tenant.Registry) (*Gateway, *collectSink) {
	t.Helper()
	sink := &collectSink{}
	g, err := New(Config{Shards: 2, QueueDepth: 64, MaxBatch: 16, Quotas: reg}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, sink
}

// TestQuotaRejectsOverRate pins the token bucket at the gateway: a
// tenant over its events/sec rate is rejected with a tenant-naming
// OverloadError and a refill-derived Retry-After, while other tenants
// keep flowing.
func TestQuotaRejectsOverRate(t *testing.T) {
	reg := tenant.NewRegistry()
	now := time.Unix(1000, 0)
	reg.SetClock(func() time.Time { return now })
	if err := reg.Create(tenant.Tenant{ID: "acme", Quota: tenant.Quota{EventsPerSec: 10, Burst: 5}}); err != nil {
		t.Fatal(err)
	}
	g, _ := newQuotaGateway(t, reg)

	batch := func(app string, n int) []events.AppEvent {
		evs := make([]events.AppEvent, n)
		for i := range evs {
			evs[i] = ev(app, "s")
		}
		return evs
	}

	// Burst of 5 admits; the 6th event is over.
	if _, err := g.Offer("", batch("acme::T-1", 5)); err != nil {
		t.Fatal(err)
	}
	_, err := g.Offer("", batch("acme::T-1", 1))
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("expected overload, got %v", err)
	}
	if oe.Tenant != "acme" || oe.RetryAfter <= 0 {
		t.Fatalf("overload = %+v", oe)
	}
	// The deficit is 1 event at 10/sec = 100ms.
	if oe.RetryAfter != 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 100ms", oe.RetryAfter)
	}

	// The default tenant is unlimited and unaffected by acme's rejection.
	if _, err := g.Offer("", batch("JR-1", 50)); err != nil {
		t.Fatal(err)
	}

	// After the hinted backoff the bucket has refilled one token.
	now = now.Add(100 * time.Millisecond)
	if _, err := g.Offer("", batch("acme::T-1", 1)); err != nil {
		t.Fatal(err)
	}

	drain(t, g)
	st := g.Stats()
	if st.TenantAdmittedEvents["acme"] != 6 || st.TenantAdmittedEvents[tenant.DefaultID] != 50 {
		t.Fatalf("tenant admitted = %+v", st.TenantAdmittedEvents)
	}
	if st.TenantRejectedEvents["acme"] != 1 {
		t.Fatalf("tenant rejected = %+v", st.TenantRejectedEvents)
	}
}

// TestQuotaRefundOnMixedBatch pins all-or-nothing admission: when one
// tenant of a mixed batch rejects, tenants already charged get their
// tokens back — the failed batch consumes nobody's budget.
func TestQuotaRefundOnMixedBatch(t *testing.T) {
	reg := tenant.NewRegistry()
	now := time.Unix(1000, 0)
	reg.SetClock(func() time.Time { return now })
	// "aa" sorts before "zz", so aa is charged first and must be refunded
	// when zz rejects.
	if err := reg.Create(tenant.Tenant{ID: "aa", Quota: tenant.Quota{EventsPerSec: 10, Burst: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Create(tenant.Tenant{ID: "zz", Quota: tenant.Quota{EventsPerSec: 10, Burst: 2}}); err != nil {
		t.Fatal(err)
	}
	g, _ := newQuotaGateway(t, reg)

	mixed := []events.AppEvent{
		ev("aa::T-1", "1"), ev("aa::T-1", "2"), ev("aa::T-1", "3"), ev("aa::T-1", "4"),
		ev("zz::T-1", "1"), ev("zz::T-1", "2"), ev("zz::T-1", "3"), // over zz's burst of 2
	}
	_, err := g.Offer("", mixed)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "zz" {
		t.Fatalf("expected zz overload, got %v", err)
	}

	// aa's full burst must still be available: the rejected batch did not
	// consume it.
	if _, err := g.Offer("", []events.AppEvent{
		ev("aa::T-1", "1"), ev("aa::T-1", "2"), ev("aa::T-1", "3"), ev("aa::T-1", "4"),
	}); err != nil {
		t.Fatalf("aa burst not refunded: %v", err)
	}
	drain(t, g)

	stats := reg.Stats()
	if s := stats["aa"]; s.AdmittedEvents != 4 || s.RejectedEvents != 0 {
		t.Fatalf("aa stats = %+v", s)
	}
	if s := stats["zz"]; s.RejectedEvents != 3 {
		t.Fatalf("zz stats = %+v", s)
	}
}

// TestQuotaQueuedBytesReleased pins the byte gauge lifecycle: admitted
// bytes stay charged while queued, block admission at the cap, and drain
// as the sink flushes.
func TestQuotaQueuedBytesReleased(t *testing.T) {
	reg := tenant.NewRegistry()
	one := eventSize(ev("acme::T-1", "s"))
	if err := reg.Create(tenant.Tenant{ID: "acme", Quota: tenant.Quota{MaxQueuedBytes: 2 * one}}); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{gate: make(chan struct{})}
	g, err := New(Config{Shards: 1, QueueDepth: 64, MaxBatch: 16, Quotas: reg}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Two events fill the byte budget while the gated sink holds them.
	if _, err := g.Offer("", []events.AppEvent{ev("acme::T-1", "s"), ev("acme::T-2", "s")}); err != nil {
		t.Fatal(err)
	}
	_, err = g.Offer("", []events.AppEvent{ev("acme::T-3", "s")})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "acme" {
		t.Fatalf("expected byte-cap overload, got %v", err)
	}

	// Release the sink; flushed bytes return to the budget.
	close(sink.gate)
	drain(t, g)
	if _, err := g.Offer("", []events.AppEvent{ev("acme::T-3", "s")}); err != nil {
		t.Fatalf("bytes not released after flush: %v", err)
	}
	drain(t, g)
	if qb := reg.Stats()["acme"].QueuedBytes; qb != 0 {
		t.Fatalf("queued bytes after drain = %d", qb)
	}
}
