// Package ingest is the asynchronous ingestion gateway sitting between
// recorder clients and the provenance store. Recorders in a partially
// managed environment are bursty and unreliable — a form-submit hook, a
// mail gateway, a nightly batch export — so the capture path must absorb
// bursts without losing admitted events and must say "not now" instead of
// silently dropping when it cannot keep up.
//
// The gateway provides:
//
//   - A bounded, sharded admission queue hashed by trace (AppID), so
//     events of one process execution are delivered to the pipeline in
//     admission order while independent traces flow in parallel.
//   - Admission control: when a shard's queue is full the WHOLE client
//     batch is rejected with an Overload error carrying a Retry-After
//     hint. Memory stays bounded; nothing is silently dropped.
//   - Batcher workers that coalesce queued spans into pipeline runs of up
//     to MaxBatch events, sized to ride the store's group-commit window:
//     one coalesced run is one store commit (one flush, one shared fsync).
//   - At-least-once delivery: each client batch carries an idempotency
//     key. Redelivered batches are recognized and answered with the
//     original ack; even after a crash that loses the key table, the
//     pipeline's deterministic record IDs make redelivery harmless.
//   - Ack tokens: admission returns a token the client can poll for the
//     batch's terminal status, including per-event error indices.
package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/tenant"
)

// QuotaProvider is the per-tenant admission authority — normally the
// node's tenant.Registry. Admit charges a batch's events and bytes
// against one tenant and answers with a tenant-specific Retry-After on
// rejection; Refund undoes a charge when the batch is rejected for
// another reason; Release returns queued bytes once spans flush.
type QuotaProvider interface {
	Admit(tenantID string, events int, size int64) (retryAfter time.Duration, ok bool)
	Refund(tenantID string, events int, size int64)
	Release(tenantID string, size int64)
}

// Sink consumes one coalesced run of keyed events — normally
// events.Pipeline.IngestKeyed, optionally wrapped with trace correlation.
// A returned *events.BatchError reports per-position failures; any other
// error fails the whole run.
type Sink func(kevs []events.KeyedEvent) error

// Config sizes the gateway.
type Config struct {
	// Shards is the number of admission queues and batcher workers.
	// Events hash to shards by AppID, preserving per-trace order.
	Shards int
	// QueueDepth bounds each shard's queued events. Admission reserves
	// space for a batch's events up front and rejects the whole batch
	// when the reservation does not fit — the bounded-memory guarantee.
	QueueDepth int
	// MaxBatch caps the events coalesced into one sink run. Sized to the
	// store's group-commit batch so one run rides one commit window.
	MaxBatch int
	// FlushWindow, when positive, lets a worker wait up to this long for
	// more spans before flushing an undersized run. Zero flushes as soon
	// as the queue goes momentarily empty (opportunistic coalescing).
	FlushWindow time.Duration
	// DedupWindow bounds the remembered applied idempotency keys. Older
	// keys are evicted oldest-first; redelivery past the window is still
	// safe (the pipeline absorbs it) but re-runs the sink.
	DedupWindow int
	// RetryAfter is the backoff hint attached to overload rejections.
	RetryAfter time.Duration
	// Dir, when set, persists applied idempotency keys to Dir/ingest.keys
	// so a restarted gateway still answers redeliveries from before the
	// restart without re-running the sink. An optimization, not a
	// correctness requirement — deterministic record IDs already make
	// redelivery idempotent.
	Dir string
	// Quotas, when set, is consulted per tenant before queue space is
	// reserved: every tenant appearing in a batch must admit its share or
	// the whole batch is rejected with that tenant's Retry-After. Nil
	// admits everything (single-tenant deployments pay nothing).
	Quotas QuotaProvider
	// TenantOf maps an event's trace ID to its owning tenant; nil uses
	// tenant.Owner (the "acme::JR-1" prefix convention).
	TenantOf func(appID string) string
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 65536
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
}

// OverloadError rejects a batch the admission queues cannot hold, or
// that a tenant's quota refused.
type OverloadError struct {
	// RetryAfter is the server's backoff hint — tenant-specific (when the
	// bucket refills enough for this batch) for quota rejections.
	RetryAfter time.Duration
	// Tenant names the tenant whose quota rejected the batch; empty for a
	// shared-queue (whole-gateway) overload.
	Tenant string
}

func (e *OverloadError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("ingest: tenant %s over quota, retry after %v", e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("ingest: overloaded, retry after %v", e.RetryAfter)
}

// ErrDraining rejects batches offered to a gateway that is shutting down.
var ErrDraining = errors.New("ingest: gateway draining")

// ErrClosed rejects operations on a closed gateway.
var ErrClosed = errors.New("ingest: gateway closed")

// State is an ack's lifecycle position.
type State string

const (
	// StatePending: admitted, not yet flushed through the sink.
	StatePending State = "pending"
	// StateApplied: flushed; per-event failures (if any) are final.
	StateApplied State = "applied"
)

// EventErr reports one event's terminal ingestion failure, indexed by the
// event's position in the CLIENT batch (not the coalesced run).
type EventErr struct {
	Index int    `json:"index"`
	Err   string `json:"error"`
}

// AckStatus is the externally visible state of one admitted batch.
type AckStatus struct {
	// Token addresses the ack for polling.
	Token string `json:"token"`
	// Key is the batch's idempotency key (server-assigned when the client
	// sent none).
	Key string `json:"key"`
	// State is pending until every span of the batch has been flushed.
	State State `json:"state"`
	// Events is the batch size.
	Events int `json:"events"`
	// Deduped marks a response to a redelivered batch: the work was
	// already admitted (or applied) under the same key.
	Deduped bool `json:"deduped,omitempty"`
	// EventErrors lists per-event terminal failures, in batch order.
	EventErrors []EventErr `json:"eventErrors,omitempty"`
	// Error is a batch-level sink failure message (rare: the pipeline
	// reports per-event errors; this covers wholesale failures).
	Error string `json:"error,omitempty"`
}

// Stats is a point-in-time snapshot of the gateway counters.
type Stats struct {
	AdmittedBatches uint64 `json:"admittedBatches"`
	AdmittedEvents  uint64 `json:"admittedEvents"`
	RejectedBatches uint64 `json:"rejectedBatches"`
	DedupedBatches  uint64 `json:"dedupedBatches"`
	AppliedBatches  uint64 `json:"appliedBatches"`
	Flushes         uint64 `json:"flushes"`
	FlushedEvents   uint64 `json:"flushedEvents"`
	// MaxFlush is the largest coalesced run handed to the sink.
	MaxFlush uint64 `json:"maxFlush"`
	// QueuedEvents / MaxQueuedEvents track admitted-not-yet-flushed
	// events; MaxQueuedEvents never exceeds Shards*QueueDepth.
	QueuedEvents    int64  `json:"queuedEvents"`
	MaxQueuedEvents int64  `json:"maxQueuedEvents"`
	PendingBatches  int64  `json:"pendingBatches"`
	JournalErrors   uint64 `json:"journalErrors"`
	Shards          int    `json:"shards"`
	QueueDepth      int    `json:"queueDepth"`
	MaxBatch        int    `json:"maxBatch"`
	RetryAfterMS    int64  `json:"retryAfterMs"`
	Draining        bool   `json:"draining"`
	// TenantAdmittedEvents / TenantRejectedEvents break admission down per
	// tenant; rejections counted here are quota rejections (shared-queue
	// overloads are not attributable to one tenant).
	TenantAdmittedEvents map[string]uint64 `json:"tenantAdmittedEvents,omitempty"`
	TenantRejectedEvents map[string]uint64 `json:"tenantRejectedEvents,omitempty"`
}

// span is the unit queued on a shard: the slice of one admitted batch's
// events that hashed to the shard, in batch order.
type span struct {
	a    *ack
	kevs []events.KeyedEvent
}

type shard struct {
	ch     chan span
	queued atomic.Int64 // reserved events not yet flushed
}

// ack tracks one admitted batch across the shards it was split over.
type ack struct {
	token  string
	key    string
	events int

	mu        sync.Mutex
	remaining int // spans not yet flushed
	state     State
	failures  []EventErr
	batchErr  string
}

func (a *ack) status(deduped bool) AckStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AckStatus{
		Token: a.token, Key: a.key, State: a.state, Events: a.events,
		Deduped: deduped, Error: a.batchErr,
	}
	if len(a.failures) > 0 {
		st.EventErrors = append([]EventErr(nil), a.failures...)
	}
	return st
}

// finish folds one flushed span into the ack; reports terminal.
func (a *ack) finish(fails []EventErr, batchErr string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.failures = append(a.failures, fails...)
	if batchErr != "" {
		a.batchErr = batchErr
	}
	a.remaining--
	if a.remaining > 0 {
		return false
	}
	sort.Slice(a.failures, func(i, j int) bool { return a.failures[i].Index < a.failures[j].Index })
	a.state = StateApplied
	return true
}

// Gateway is the async ingestion front door. Safe for concurrent use.
type Gateway struct {
	cfg    Config
	sink   Sink
	shards []*shard

	mu         sync.Mutex // admission + ack table + journal + tenant counters
	byToken    map[string]*ack
	byKey      map[string]*ack
	tnAdmitted map[string]uint64
	tnRejected map[string]uint64
	ring       []string // applied keys, eviction order
	tokSeq     uint64
	journal    *bufio.Writer
	journalF   *os.File

	draining atomic.Bool
	closed   atomic.Bool
	stopOnce sync.Once
	killed   chan struct{}
	wg       sync.WaitGroup

	queued    atomic.Int64
	maxQueued atomic.Int64
	pending   atomic.Int64

	admittedBatches atomic.Uint64
	admittedEvents  atomic.Uint64
	rejected        atomic.Uint64
	deduped         atomic.Uint64
	applied         atomic.Uint64
	flushes         atomic.Uint64
	flushedEvents   atomic.Uint64
	maxFlush        atomic.Uint64
	journalErrs     atomic.Uint64
}

// New starts a gateway delivering coalesced runs to sink. When cfg.Dir is
// set, previously journaled applied keys are reloaded (newest DedupWindow
// of them) so pre-restart redeliveries are answered without re-ingesting.
func New(cfg Config, sink Sink) (*Gateway, error) {
	if sink == nil {
		return nil, fmt.Errorf("ingest: nil sink")
	}
	cfg.fill()
	g := &Gateway{
		cfg:        cfg,
		sink:       sink,
		byToken:    make(map[string]*ack),
		byKey:      make(map[string]*ack),
		tnAdmitted: make(map[string]uint64),
		tnRejected: make(map[string]uint64),
		killed:     make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := g.loadJournal(); err != nil {
			return nil, err
		}
	}
	g.shards = make([]*shard, cfg.Shards)
	for i := range g.shards {
		// Capacity QueueDepth spans is always enough: admission reserves
		// event counts, every span holds >= 1 event, so a shard can never
		// owe more than QueueDepth sends. Post-reservation sends never
		// block, which lets Offer enqueue while holding g.mu.
		g.shards[i] = &shard{ch: make(chan span, cfg.QueueDepth)}
	}
	g.wg.Add(len(g.shards))
	for _, sh := range g.shards {
		go g.worker(sh)
	}
	return g, nil
}

// shardOf hashes a trace ID to its shard, pinning each trace's events to
// one worker so per-trace admission order survives coalescing.
func (g *Gateway) shardOf(appID string) int {
	h := fnv.New32a()
	h.Write([]byte(appID))
	return int(h.Sum32() % uint32(len(g.shards)))
}

// tenantOf resolves an event's owning tenant for quota accounting.
func (g *Gateway) tenantOf(appID string) string {
	if g.cfg.TenantOf != nil {
		return g.cfg.TenantOf(appID)
	}
	return tenant.Owner(appID)
}

// eventSize is the admission-accounting size of one event: its string
// fields plus payload, with a small fixed per-event overhead. It is pure,
// so the bytes charged at admission equal the bytes released at flush.
func eventSize(ev events.AppEvent) int64 {
	n := len(ev.Source) + len(ev.Type) + len(ev.AppID) + 48
	for k, v := range ev.Payload {
		n += len(k) + len(v)
	}
	return int64(n)
}

// charge accumulates one tenant's share of a batch.
type charge struct {
	events int
	bytes  int64
}

// Offer admits one client batch. key is the client's idempotency key
// (empty for fire-and-forget clients; the gateway assigns one). On
// success the returned status is the batch's ack — normally pending; for
// a redelivered key, the original batch's current status with Deduped
// set. A full shard rejects the whole batch with *OverloadError and no
// partial admission.
func (g *Gateway) Offer(key string, evs []events.AppEvent) (AckStatus, error) {
	if g.closed.Load() {
		return AckStatus{}, ErrClosed
	}
	if g.draining.Load() {
		return AckStatus{}, ErrDraining
	}
	if len(evs) == 0 {
		return AckStatus{}, fmt.Errorf("ingest: empty batch")
	}

	// Split into per-shard spans preserving batch order within each shard,
	// and total up each tenant's share for quota admission.
	spans := make(map[int][]events.KeyedEvent)
	order := make([]int, 0, len(g.shards))
	charges := make(map[string]*charge)
	tenants := []string{}
	for i, ev := range evs {
		si := g.shardOf(ev.AppID)
		if _, ok := spans[si]; !ok {
			order = append(order, si)
		}
		spans[si] = append(spans[si], events.KeyedEvent{Event: ev, Index: i})
		if g.cfg.Quotas != nil {
			tn := g.tenantOf(ev.AppID)
			c := charges[tn]
			if c == nil {
				c = &charge{}
				charges[tn] = c
				tenants = append(tenants, tn)
			}
			c.events++
			c.bytes += eventSize(ev)
		}
	}
	sort.Ints(order)
	sort.Strings(tenants)

	g.mu.Lock()
	if g.closed.Load() {
		g.mu.Unlock()
		return AckStatus{}, ErrClosed
	}
	if g.draining.Load() {
		g.mu.Unlock()
		return AckStatus{}, ErrDraining
	}
	if key != "" {
		if a, ok := g.byKey[key]; ok {
			g.mu.Unlock()
			g.deduped.Add(1)
			return a.status(true), nil
		}
	}
	// Charge every tenant's quota before reserving queue space. Admission
	// is all-or-nothing: the first tenant to reject fails the whole batch
	// with its own Retry-After, and tenants already charged are refunded —
	// a rejected batch must not consume anyone's budget.
	if g.cfg.Quotas != nil {
		for i, tn := range tenants {
			c := charges[tn]
			ra, ok := g.cfg.Quotas.Admit(tn, c.events, c.bytes)
			if !ok {
				for _, prev := range tenants[:i] {
					pc := charges[prev]
					g.cfg.Quotas.Refund(prev, pc.events, pc.bytes)
				}
				g.tnRejected[tn] += uint64(c.events)
				g.mu.Unlock()
				g.rejected.Add(1)
				return AckStatus{}, &OverloadError{RetryAfter: ra, Tenant: tn}
			}
		}
	}
	// Reserve queue space for every span before enqueueing anything; on
	// any full shard roll the reservation back and reject the whole batch.
	for i, si := range order {
		sh := g.shards[si]
		n := int64(len(spans[si]))
		if sh.queued.Load()+n > int64(g.cfg.QueueDepth) {
			for _, prev := range order[:i] {
				g.shards[prev].queued.Add(-int64(len(spans[prev])))
			}
			if g.cfg.Quotas != nil {
				for _, tn := range tenants {
					c := charges[tn]
					g.cfg.Quotas.Refund(tn, c.events, c.bytes)
				}
			}
			g.mu.Unlock()
			g.rejected.Add(1)
			return AckStatus{}, &OverloadError{RetryAfter: g.cfg.RetryAfter}
		}
		sh.queued.Add(n)
	}
	g.tokSeq++
	token := fmt.Sprintf("ak-%d", g.tokSeq)
	if key == "" {
		key = token
	}
	a := &ack{token: token, key: key, events: len(evs), remaining: len(order), state: StatePending}
	g.byToken[token] = a
	g.byKey[key] = a
	// Count the batch as in flight BEFORE the first span is visible to a
	// worker, so WaitIdle can never observe a just-admitted batch as idle.
	total := int64(len(evs))
	g.admittedBatches.Add(1)
	g.admittedEvents.Add(uint64(total))
	for tn, c := range charges {
		g.tnAdmitted[tn] += uint64(c.events)
	}
	g.pending.Add(1)
	for now := g.queued.Add(total); ; {
		max := g.maxQueued.Load()
		if now <= max || g.maxQueued.CompareAndSwap(max, now) {
			break
		}
	}
	for _, si := range order {
		kevs := spans[si]
		for j := range kevs {
			kevs[j].Key = key
		}
		g.shards[si].ch <- span{a: a, kevs: kevs} // never blocks: reserved
	}
	g.mu.Unlock()
	return a.status(false), nil
}

// Ack returns the status of an admitted batch by its token.
func (g *Gateway) Ack(token string) (AckStatus, bool) {
	g.mu.Lock()
	a, ok := g.byToken[token]
	g.mu.Unlock()
	if !ok {
		return AckStatus{}, false
	}
	return a.status(false), true
}

func (g *Gateway) worker(sh *shard) {
	defer g.wg.Done()
	for {
		var first span
		var ok bool
		select {
		case first, ok = <-sh.ch:
			if !ok {
				return
			}
		case <-g.killed:
			return
		}
		run := []span{first}
		n := len(first.kevs)
		closed := false
	greedy:
		for n < g.cfg.MaxBatch {
			select {
			case next, more := <-sh.ch:
				if !more {
					closed = true
					break greedy
				}
				run = append(run, next)
				n += len(next.kevs)
			default:
				break greedy
			}
		}
		if !closed && g.cfg.FlushWindow > 0 && n < g.cfg.MaxBatch {
			timer := time.NewTimer(g.cfg.FlushWindow)
		window:
			for n < g.cfg.MaxBatch {
				select {
				case next, more := <-sh.ch:
					if !more {
						closed = true
						break window
					}
					run = append(run, next)
					n += len(next.kevs)
				case <-timer.C:
					break window
				case <-g.killed:
					timer.Stop()
					return // crash simulation: queued work is lost
				}
			}
			timer.Stop()
		}
		select {
		case <-g.killed:
			return
		default:
		}
		g.flush(sh, run)
		if closed {
			return
		}
	}
}

// flush hands one coalesced run to the sink and settles every span's ack,
// mapping sink failure positions back to each client batch's own indices.
func (g *Gateway) flush(sh *shard, run []span) {
	total := 0
	for _, sp := range run {
		total += len(sp.kevs)
	}
	kevs := make([]events.KeyedEvent, 0, total)
	offs := make([]int, len(run))
	for i, sp := range run {
		offs[i] = len(kevs)
		kevs = append(kevs, sp.kevs...)
	}
	err := g.sink(kevs)

	// Flushed bytes leave each tenant's queued-bytes budget. eventSize is
	// pure, so this releases exactly what admission charged.
	if g.cfg.Quotas != nil {
		rel := make(map[string]int64)
		for _, kev := range kevs {
			rel[g.tenantOf(kev.Event.AppID)] += eventSize(kev.Event)
		}
		for tn, sz := range rel {
			g.cfg.Quotas.Release(tn, sz)
		}
	}

	var be *events.BatchError
	perPos := map[int]string{}
	batchErr := ""
	if errors.As(err, &be) {
		for _, fe := range be.Failed {
			perPos[fe.Index] = fe.Err.Error()
		}
	} else if err != nil {
		batchErr = err.Error()
	}

	sh.queued.Add(int64(-total))
	g.queued.Add(int64(-total))
	g.flushes.Add(1)
	g.flushedEvents.Add(uint64(total))
	for {
		max := g.maxFlush.Load()
		if uint64(total) <= max || g.maxFlush.CompareAndSwap(max, uint64(total)) {
			break
		}
	}

	for i, sp := range run {
		var fails []EventErr
		for j, kev := range sp.kevs {
			if msg, ok := perPos[offs[i]+j]; ok {
				fails = append(fails, EventErr{Index: kev.Index, Err: msg})
			}
		}
		if sp.a.finish(fails, batchErr) {
			g.finalize(sp.a)
		}
	}
}

// finalize records a terminally applied batch: journal its key, install
// it in the dedup window, evict past the window.
func (g *Gateway) finalize(a *ack) {
	g.applied.Add(1)
	g.pending.Add(-1)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ring = append(g.ring, a.key)
	if g.journal != nil {
		if err := g.writeJournalLocked(a.key); err != nil {
			g.journalErrs.Add(1)
		}
	}
	for len(g.ring) > g.cfg.DedupWindow {
		old := g.ring[0]
		g.ring = g.ring[1:]
		if ev, ok := g.byKey[old]; ok {
			delete(g.byKey, old)
			delete(g.byToken, ev.token)
		}
	}
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	var tnAdm, tnRej map[string]uint64
	g.mu.Lock()
	if len(g.tnAdmitted) > 0 {
		tnAdm = make(map[string]uint64, len(g.tnAdmitted))
		for k, v := range g.tnAdmitted {
			tnAdm[k] = v
		}
	}
	if len(g.tnRejected) > 0 {
		tnRej = make(map[string]uint64, len(g.tnRejected))
		for k, v := range g.tnRejected {
			tnRej[k] = v
		}
	}
	g.mu.Unlock()
	return Stats{
		TenantAdmittedEvents: tnAdm,
		TenantRejectedEvents: tnRej,
		AdmittedBatches:      g.admittedBatches.Load(),
		AdmittedEvents:       g.admittedEvents.Load(),
		RejectedBatches:      g.rejected.Load(),
		DedupedBatches:       g.deduped.Load(),
		AppliedBatches:       g.applied.Load(),
		Flushes:              g.flushes.Load(),
		FlushedEvents:        g.flushedEvents.Load(),
		MaxFlush:             g.maxFlush.Load(),
		QueuedEvents:         g.queued.Load(),
		MaxQueuedEvents:      g.maxQueued.Load(),
		PendingBatches:       g.pending.Load(),
		JournalErrors:        g.journalErrs.Load(),
		Shards:               g.cfg.Shards,
		QueueDepth:           g.cfg.QueueDepth,
		MaxBatch:             g.cfg.MaxBatch,
		RetryAfterMS:         g.cfg.RetryAfter.Milliseconds(),
		Draining:             g.draining.Load(),
	}
}

// WaitIdle blocks until every admitted batch has been flushed (or ctx
// expires). New admissions during the wait extend it.
func (g *Gateway) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if g.pending.Load() == 0 && g.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Drain stops admission (new Offers fail with ErrDraining), waits for the
// queued backlog to flush, then stops the workers. On ctx expiry the
// workers keep flushing in the background — admitted events are never
// abandoned by a graceful shutdown — but Drain returns the ctx error.
func (g *Gateway) Drain(ctx context.Context) error {
	g.draining.Store(true)
	err := g.WaitIdle(ctx)
	g.stopOnce.Do(func() {
		for _, sh := range g.shards {
			close(sh.ch) // workers flush the remaining buffered spans
		}
	})
	if err != nil {
		return err
	}
	g.wg.Wait()
	return nil
}

// Close drains (bounded) and releases the journal. Idempotent.
func (g *Gateway) Close() error {
	if g.closed.Swap(true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := g.Drain(ctx)
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return errors.Join(err, g.closeJournalLocked())
}

// kill simulates a crash: workers stop where they stand, queued and
// in-flight work is lost, the journal is abandoned mid-write. Test hook
// for the redelivery-after-crash property.
func (g *Gateway) kill() {
	g.closed.Store(true)
	close(g.killed)
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closeJournalLocked()
}

// --- applied-key journal -------------------------------------------------

type journalLine struct {
	Key string `json:"key"`
}

func (g *Gateway) journalPath() string { return filepath.Join(g.cfg.Dir, "ingest.keys") }

// loadJournal reloads applied keys from a previous run, keeps the newest
// DedupWindow of them, compacts the file, and reopens it for appending.
// Corrupt trailing lines (a crash mid-append) are tolerated and dropped.
func (g *Gateway) loadJournal() error {
	path := g.journalPath()
	keys := []string{}
	if data, err := os.ReadFile(path); err == nil {
		start := 0
		for i := 0; i <= len(data); i++ {
			if i < len(data) && data[i] != '\n' {
				continue
			}
			line := data[start:i]
			start = i + 1
			if len(line) == 0 {
				continue
			}
			var jl journalLine
			if json.Unmarshal(line, &jl) != nil || jl.Key == "" {
				continue
			}
			keys = append(keys, jl.Key)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("ingest: read journal: %v", err)
	}
	if len(keys) > g.cfg.DedupWindow {
		keys = keys[len(keys)-g.cfg.DedupWindow:]
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: compact journal: %v", err)
	}
	w := bufio.NewWriter(f)
	for i, key := range keys {
		line, _ := json.Marshal(journalLine{Key: key})
		w.Write(line)
		w.WriteByte('\n')
		a := &ack{token: fmt.Sprintf("ak-r%d", i), key: key, state: StateApplied}
		g.byKey[key] = a
		g.byToken[a.token] = a
		g.ring = append(g.ring, key)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: compact journal: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ingest: compact journal: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ingest: compact journal: %v", err)
	}
	jf, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: open journal: %v", err)
	}
	g.journalF = jf
	g.journal = bufio.NewWriter(jf)
	return nil
}

func (g *Gateway) writeJournalLocked(key string) error {
	line, err := json.Marshal(journalLine{Key: key})
	if err != nil {
		return err
	}
	if _, err := g.journal.Write(line); err != nil {
		return err
	}
	if err := g.journal.WriteByte('\n'); err != nil {
		return err
	}
	return g.journal.Flush()
}

func (g *Gateway) closeJournalLocked() error {
	if g.journalF == nil {
		return nil
	}
	err := g.journal.Flush()
	if cerr := g.journalF.Close(); err == nil {
		err = cerr
	}
	g.journal, g.journalF = nil, nil
	return err
}
