package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/provenance"
	"repro/internal/store"
)

func propModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("prop")
	if err := m.AddType(&provenance.TypeDef{Name: "step", Class: provenance.ClassTask}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddField("step", &provenance.FieldDef{Name: "seq", Kind: provenance.KindString}); err != nil {
		t.Fatal(err)
	}
	return m
}

func propPipeline(t testing.TB) (*store.Store, *events.Pipeline) {
	t.Helper()
	st, err := store.Open(store.Options{Model: propModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	// No IDKey: record IDs derive from (batch key, index) — the property
	// under test is that this makes redelivery invisible.
	p, err := events.NewPipeline(st, &events.Mapping{
		Name: "step-recorder", EventType: "step",
		NodeType: "step", Class: provenance.ClassTask,
		Fields: []events.FieldMapping{{PayloadKey: "seq", Attr: "seq", Kind: provenance.KindString}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, p
}

func stepEvent(app, seq string) events.AppEvent {
	return events.AppEvent{Type: "step", AppID: app, Payload: map[string]string{"seq": seq}}
}

// TestDedupPropertyRetriesAndCrashes is the at-least-once property test:
// a client redelivers batches at random (spurious retries) while the
// gateway randomly crashes (kill: queued work lost, journal abandoned)
// and restarts over the SAME store. Whatever the interleaving, at the
// end — after redelivering every batch the client never saw applied —
// the store holds each event exactly once: no loss, no duplication.
func TestDedupPropertyRetriesAndCrashes(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(round)))
			st, p := propPipeline(t)
			dir := t.TempDir()

			mk := func() *Gateway {
				g, err := New(Config{
					Shards: 2, QueueDepth: 128, MaxBatch: 8,
					DedupWindow: 16, // small: force some dedup past the table
					Dir:         dir,
				}, p.IngestKeyed)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
			g := mk()

			const batches = 40
			applied := make([]bool, batches) // client saw a terminal ack
			batchOf := func(i int) []events.AppEvent {
				n := 1 + (i % 3)
				evs := make([]events.AppEvent, n)
				for j := range evs {
					evs[j] = stepEvent(fmt.Sprintf("T%d", i%5), fmt.Sprintf("%d-%d", i, j))
				}
				return evs
			}
			offer := func(i int) {
				stt, err := g.Offer(fmt.Sprintf("b%d", i), batchOf(i))
				var oe *OverloadError
				switch {
				case errors.As(err, &oe) || errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed):
					return // client will retry later
				case err != nil:
					t.Fatalf("offer b%d: %v", i, err)
				}
				if stt.State == StateApplied {
					applied[i] = true
				}
			}

			for i := 0; i < batches; i++ {
				offer(i)
				// Spurious retry of a random earlier batch ~half the time.
				if rng.Intn(2) == 0 {
					offer(rng.Intn(i + 1))
				}
				// Occasionally the gateway crashes and restarts: queued
				// work vanishes, acks are lost, the dedup table reloads
				// only what the journal captured.
				if rng.Intn(10) == 0 {
					g.kill()
					g = mk()
				}
			}

			// Recovery: the client redelivers every batch it never saw
			// applied until each one is, restarting through crashes.
			for pass := 0; pass < 100; pass++ {
				done := true
				for i := 0; i < batches; i++ {
					if applied[i] {
						continue
					}
					done = false
					offer(i)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := g.WaitIdle(ctx)
				cancel()
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				// Re-check acks after the flush settles.
				for i := 0; i < batches; i++ {
					if !applied[i] {
						offer(i)
					}
				}
				if done {
					break
				}
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			for i, ok := range applied {
				if !ok {
					t.Fatalf("batch %d never applied", i)
				}
			}

			// Exactly once: every event present, under its deterministic
			// ID, and the store holds nothing else.
			want := 0
			for i := 0; i < batches; i++ {
				for j := range batchOf(i) {
					want++
					id := fmt.Sprintf("PE-b%d-%d", i, j)
					n := st.Node(id)
					if n == nil {
						t.Fatalf("event %s lost", id)
					}
					if got := n.Attr("seq").Str(); got != fmt.Sprintf("%d-%d", i, j) {
						t.Fatalf("event %s content = %q", id, got)
					}
				}
			}
			if got := st.Stats().Nodes; got != want {
				t.Fatalf("store holds %d nodes, want %d (duplicates)", got, want)
			}
			pst := p.Stats()
			if pst.Recorded != want {
				t.Fatalf("pipeline recorded %d, want %d", pst.Recorded, want)
			}
			if pst.Errors != 0 {
				t.Fatalf("pipeline errors = %d", pst.Errors)
			}
		})
	}
}
