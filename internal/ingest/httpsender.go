package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/events"
)

// HTTPSender delivers recorder batches to a provd /events endpoint,
// speaking both the async gateway protocol (202 ack, 429 Retry-After,
// 503 draining) and the legacy synchronous protocol (200 / 422).
type HTTPSender struct {
	// Base is the server base URL, e.g. "http://localhost:8080".
	Base string
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client
}

type wireEvent struct {
	Source    string            `json:"source"`
	Type      string            `json:"type"`
	AppID     string            `json:"appId"`
	Timestamp time.Time         `json:"timestamp"`
	Payload   map[string]string `json:"payload"`
}

// wireAck mirrors the server's ack/error JSON across the response shapes.
type wireAck struct {
	Token        string `json:"token"`
	State        string `json:"state"`
	RetryAfterMS int64  `json:"retryAfterMs"`
	Error        string `json:"error"`
	EventErrors  []struct {
		Index int    `json:"index"`
		Error string `json:"error"`
	} `json:"eventErrors"`
}

func (a *wireAck) eventErrs() []EventErr {
	if len(a.EventErrors) == 0 {
		return nil
	}
	out := make([]EventErr, len(a.EventErrors))
	for i, e := range a.EventErrors {
		out[i] = EventErr{Index: e.Index, Err: e.Error}
	}
	return out
}

// Send posts one keyed batch. The idempotency key travels in the
// Ingest-Key header; redelivery with the same key is safe server-side.
func (h *HTTPSender) Send(key string, evs []events.AppEvent) (SendResult, error) {
	wire := make([]wireEvent, len(evs))
	for i, ev := range evs {
		wire[i] = wireEvent{
			Source: ev.Source, Type: ev.Type, AppID: ev.AppID,
			Timestamp: ev.Timestamp, Payload: ev.Payload,
		}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return SendResult{}, err
	}
	req, err := http.NewRequest(http.MethodPost, h.Base+"/events", bytes.NewReader(body))
	if err != nil {
		return SendResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Ingest-Key", key)
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return SendResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return SendResult{}, err
	}
	var ack wireAck
	_ = json.Unmarshal(data, &ack) // some shapes (200 stats) won't parse; fine

	switch resp.StatusCode {
	case http.StatusAccepted:
		st := StatePending
		if State(ack.State) == StateApplied {
			st = StateApplied
		}
		return SendResult{State: st, Token: ack.Token, EventErrors: ack.eventErrs()}, nil
	case http.StatusOK:
		// Legacy synchronous server: recorded before responding.
		return SendResult{State: StateApplied}, nil
	case http.StatusUnprocessableEntity:
		// Synchronous per-event rejections: terminal — the rest of the
		// batch IS recorded, so retrying would duplicate it.
		return SendResult{State: StateApplied, EventErrors: ack.eventErrs()}, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return SendResult{Overloaded: true, RetryAfter: retryAfterOf(resp, &ack)}, nil
	default:
		return SendResult{}, fmt.Errorf("ingest: server %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
}

// retryAfterOf reads the server backoff hint: the standard Retry-After
// header (seconds) when present, else the JSON retryAfterMs field.
func retryAfterOf(resp *http.Response, ack *wireAck) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	if ack.RetryAfterMS > 0 {
		return time.Duration(ack.RetryAfterMS) * time.Millisecond
	}
	return 0
}
