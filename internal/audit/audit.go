// Package audit renders compliance evidence for human auditors. The paper
// motivates internal control points as the automated replacement for
// manual audits ("traditionally, auditors are used to check the status and
// the effectiveness of internal controls; however, this is a costly and
// time consuming approach"); this package closes the loop by generating
// the artifact an auditor would actually sign off on: per-control KPIs,
// each violation with the provenance records that evidence it, and every
// indeterminate decision with the reason the evidence is missing.
package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/controls"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/store"
)

// Report is a structured compliance report over a set of outcomes.
type Report struct {
	// Domain names the audited process.
	Domain string
	// Sections holds one entry per control, sorted by control ID.
	Sections []*Section
	// Traces counts distinct traces covered.
	Traces int
}

// Section is one control's audit evidence.
type Section struct {
	ControlID string
	Name      string
	Text      string

	Satisfied     int
	Violated      int
	Indeterminate int
	NotApplicable int

	// Violations lists each violated trace with its alerts and the
	// records the control bound (the evidence subgraph).
	Violations []Finding
	// Indeterminates lists each undecidable trace with the missing-
	// evidence notes.
	Indeterminates []Finding
}

// Finding is one trace-level entry.
type Finding struct {
	AppID    string
	Alerts   []string
	Notes    []string
	Evidence []Evidence
}

// Evidence is one bound provenance record.
type Evidence struct {
	Var    string
	NodeID string
	Type   string
	Attrs  string
}

// Build assembles a report from outcomes, resolving evidence records
// against the store. maxFindings caps the per-control finding lists
// (0 = 20).
func Build(domain string, st *store.Store, outcomes []*controls.Outcome, maxFindings int) (*Report, error) {
	if maxFindings <= 0 {
		maxFindings = 20
	}
	sections := make(map[string]*Section)
	traces := make(map[string]bool)
	var order []string
	for _, o := range outcomes {
		if o == nil || o.Result == nil {
			continue
		}
		traces[o.Result.AppID] = true
		sec := sections[o.ControlID]
		if sec == nil {
			sec = &Section{ControlID: o.ControlID, Name: o.Name}
			sections[o.ControlID] = sec
			order = append(order, o.ControlID)
		}
		switch o.Result.Verdict {
		case rules.Satisfied:
			sec.Satisfied++
		case rules.Violated:
			sec.Violated++
			if len(sec.Violations) < maxFindings {
				f, err := buildFinding(st, o)
				if err != nil {
					return nil, err
				}
				sec.Violations = append(sec.Violations, f)
			}
		case rules.Indeterminate:
			sec.Indeterminate++
			if len(sec.Indeterminates) < maxFindings {
				f, err := buildFinding(st, o)
				if err != nil {
					return nil, err
				}
				sec.Indeterminates = append(sec.Indeterminates, f)
			}
		case rules.NotApplicable:
			sec.NotApplicable++
		}
	}
	sort.Strings(order)
	rep := &Report{Domain: domain, Traces: len(traces)}
	for _, id := range order {
		rep.Sections = append(rep.Sections, sections[id])
	}
	return rep, nil
}

// buildFinding resolves one outcome's evidence against the store.
func buildFinding(st *store.Store, o *controls.Outcome) (Finding, error) {
	f := Finding{
		AppID:  o.Result.AppID,
		Alerts: append([]string(nil), o.Result.Alerts...),
		Notes:  append([]string(nil), o.Result.Notes...),
	}
	var vars []string
	for v := range o.Result.Bindings {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	err := st.View(func(g *provenance.Graph) error {
		for _, v := range vars {
			for _, id := range o.Result.Bindings[v] {
				n := g.Node(id)
				if n == nil {
					continue
				}
				f.Evidence = append(f.Evidence, Evidence{
					Var: v, NodeID: n.ID, Type: n.Type, Attrs: attrSummary(n),
				})
			}
		}
		return nil
	})
	return f, err
}

func attrSummary(n *provenance.Node) string {
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		if !n.Attrs[k].IsZero() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := n.Attrs[k].Text()
		if len(v) > 32 {
			v = v[:29] + "..."
		}
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ", ")
}

// WriteText renders the report as plain text suitable for an audit file.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("COMPLIANCE AUDIT REPORT — domain %q, %d traces\n", r.Domain, r.Traces); err != nil {
		return err
	}
	for _, sec := range r.Sections {
		total := sec.Satisfied + sec.Violated + sec.Indeterminate + sec.NotApplicable
		if err := p("\n### control %s — %s\n", sec.ControlID, sec.Name); err != nil {
			return err
		}
		if err := p("    satisfied %d / violated %d / indeterminate %d / not-applicable %d (of %d)\n",
			sec.Satisfied, sec.Violated, sec.Indeterminate, sec.NotApplicable, total); err != nil {
			return err
		}
		if len(sec.Violations) > 0 {
			if err := p("  violations (showing %d of %d):\n", len(sec.Violations), sec.Violated); err != nil {
				return err
			}
			for _, f := range sec.Violations {
				if err := writeFinding(w, f); err != nil {
					return err
				}
			}
		}
		if len(sec.Indeterminates) > 0 {
			if err := p("  undecidable — evidence not captured (showing %d of %d):\n",
				len(sec.Indeterminates), sec.Indeterminate); err != nil {
				return err
			}
			for _, f := range sec.Indeterminates {
				if err := writeFinding(w, f); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeFinding(w io.Writer, f Finding) error {
	if _, err := fmt.Fprintf(w, "    - trace %s\n", f.AppID); err != nil {
		return err
	}
	for _, a := range f.Alerts {
		if _, err := fmt.Fprintf(w, "        alert: %s\n", a); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "        note:  %s\n", n); err != nil {
			return err
		}
	}
	for _, e := range f.Evidence {
		if _, err := fmt.Fprintf(w, "        evidence %s = %s (%s) %s\n",
			e.Var, e.NodeID, e.Type, e.Attrs); err != nil {
			return err
		}
	}
	return nil
}
