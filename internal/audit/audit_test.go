package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

func builtReport(t *testing.T, traces int, visibility float64, maxFindings int) *audit.Report {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	res := d.Simulate(workload.SimOptions{
		Seed: 15, Traces: traces, ViolationRate: 0.4, Visibility: visibility,
	})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Build(d.Name, sys.Store, outcomes, maxFindings)
	if err != nil {
		t.Fatal(err)
	}
	// Keep ground truth handy for assertions.
	t.Cleanup(func() {})
	wantViolated := 0
	for _, tr := range res.Truth {
		if tr.Violation {
			wantViolated++
		}
	}
	total := 0
	for _, sec := range rep.Sections {
		total += sec.Violated
	}
	if visibility == 1.0 && total != wantViolated {
		t.Fatalf("report violations = %d, truth = %d", total, wantViolated)
	}
	return rep
}

func TestBuildReportStructure(t *testing.T) {
	rep := builtReport(t, 60, 1.0, 0)
	if rep.Domain != "hiring" || rep.Traces != 60 {
		t.Fatalf("report header = %q, %d", rep.Domain, rep.Traces)
	}
	if len(rep.Sections) != 4 {
		t.Fatalf("sections = %d", len(rep.Sections))
	}
	for i := 1; i < len(rep.Sections); i++ {
		if rep.Sections[i-1].ControlID >= rep.Sections[i].ControlID {
			t.Fatal("sections not sorted")
		}
	}
	for _, sec := range rep.Sections {
		if sec.Satisfied+sec.Violated+sec.Indeterminate+sec.NotApplicable != 60 {
			t.Fatalf("section %s does not cover all traces", sec.ControlID)
		}
		for _, f := range sec.Violations {
			if len(f.Evidence) == 0 {
				t.Fatalf("violation in %s lacks evidence: %+v", sec.ControlID, f)
			}
			if f.Evidence[0].Type == "" || f.Evidence[0].Attrs == "" {
				t.Fatalf("evidence not resolved: %+v", f.Evidence[0])
			}
		}
	}
}

func TestReportFindingsCap(t *testing.T) {
	rep := builtReport(t, 200, 1.0, 3)
	for _, sec := range rep.Sections {
		if len(sec.Violations) > 3 {
			t.Fatalf("cap not applied: %d findings", len(sec.Violations))
		}
		if sec.Violated > 3 && len(sec.Violations) != 3 {
			t.Fatalf("cap mis-applied: %d of %d", len(sec.Violations), sec.Violated)
		}
	}
}

func TestReportIndeterminatesCarryNotes(t *testing.T) {
	// Claims at reduced visibility produces indeterminate estimate-bound
	// decisions whose notes explain the missing evidence.
	d, err := workload.Claims()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 19, Traces: 150, ViolationRate: 0.25, Visibility: 0.7})
	if err := sys.Ingest(res.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		t.Fatal(err)
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	indet := 0
	for _, o := range outcomes {
		if o.Result.Verdict == rules.Indeterminate {
			indet++
		}
	}
	if indet == 0 {
		t.Skip("no indeterminates at this seed")
	}
	rep, err := audit.Build(d.Name, sys.Store, outcomes, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sec := range rep.Sections {
		for _, f := range sec.Indeterminates {
			found = true
			if len(f.Notes) == 0 {
				t.Fatalf("indeterminate finding lacks notes: %+v", f)
			}
		}
	}
	if !found {
		t.Fatal("indeterminates not surfaced in the report")
	}
}

func TestWriteText(t *testing.T) {
	rep := builtReport(t, 40, 1.0, 5)
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`COMPLIANCE AUDIT REPORT — domain "hiring", 40 traces`,
		"### control four-eyes",
		"### control gm-approval",
		"### control no-reject-proceed",
		"satisfied",
		"evidence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
}
