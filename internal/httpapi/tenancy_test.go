package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// doT issues a request under a tenant scope (X-Tenant header).
func doT(t *testing.T, s *Server, tenant, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(raw)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// reqEvents builds a minimal hiring trace: a requisition (optionally
// approved). Record IDs embed app, so traces with distinct bare names
// never collide even across tenants.
func reqEvents(app, ptype string, approved bool) []eventJSON {
	evs := []eventJSON{{
		Source: "lombardi", Type: "requisition.submitted", AppID: app,
		Payload: map[string]string{"recordId": app + "-req", "req": "REQ-" + app, "ptype": ptype},
	}}
	if approved {
		evs = append(evs, eventJSON{
			Source: "mail", Type: "approval.recorded", AppID: app,
			Payload: map[string]string{"recordId": app + "-apprv", "req": "REQ-" + app, "approved": "true"},
		})
	}
	return evs
}

func ingestT(t *testing.T, s *Server, tenant string, evs []eventJSON) {
	t.Helper()
	rec, body := doT(t, s, tenant, http.MethodPost, "/events", evs)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest (%s): %d %s", tenant, rec.Code, body)
	}
	var ack struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Token == "" {
		t.Fatalf("admission ack: %v (%s)", err, body)
	}
	awaitApplied(t, s, ack.Token)
}

// TestTenantScopedAPI drives the full tenancy surface over HTTP: tenant
// creation, scoped ingest, trace/compliance isolation, scoped control
// deployment, and the shadow promote flow.
func TestTenantScopedAPI(t *testing.T) {
	s, d := testServer(t)

	// Unknown tenants are rejected before any data access.
	if rec, _ := doT(t, s, "ghost", http.MethodGet, "/traces", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("ghost tenant -> %d, want 404", rec.Code)
	}

	if rec, body := do(t, s, http.MethodPost, "/tenants", map[string]any{"id": "acme", "name": "Acme", "weight": 2}); rec.Code != http.StatusOK {
		t.Fatalf("create tenant: %d %s", rec.Code, body)
	}
	var tenants []tenantJSON
	if _, body := do(t, s, http.MethodGet, "/tenants", nil); json.Unmarshal(body, &tenants) != nil || len(tenants) != 2 {
		t.Fatalf("tenants list = %s", body)
	}

	// One trace per tenant: the bare names differ so provenance record IDs
	// stay unique, but both are "new position without approval".
	ingestT(t, s, "", reqEvents("D-1", "new", false))
	ingestT(t, s, "acme", reqEvents("A-1", "new", false))

	// The unscoped (operator) view sees the qualified IDs; the acme view
	// sees only its own bare ID.
	var apps []string
	_, body := do(t, s, http.MethodGet, "/traces", nil)
	if json.Unmarshal(body, &apps) != nil || !reflect.DeepEqual(apps, []string{"D-1", "acme::A-1"}) {
		t.Fatalf("global traces = %s", body)
	}
	_, body = doT(t, s, "acme", http.MethodGet, "/traces", nil)
	if json.Unmarshal(body, &apps) != nil || !reflect.DeepEqual(apps, []string{"A-1"}) {
		t.Fatalf("acme traces = %s", body)
	}

	// The domain's default controls do not apply to acme's trace — acme
	// has no controls yet, so its compliance view is empty.
	var outs []outcomeJSON
	_, body = doT(t, s, "acme", http.MethodGet, "/compliance", nil)
	if json.Unmarshal(body, &outs) != nil || len(outs) != 0 {
		t.Fatalf("acme compliance before deploy = %s", body)
	}

	// Deploy the same control text inside acme's namespace; it sees only
	// acme's trace.
	gm := d.Controls[0]
	rec, body := doT(t, s, "acme", http.MethodPost, "/controls",
		map[string]string{"id": gm.ID, "name": gm.Name, "text": gm.Text})
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy acme control: %d %s", rec.Code, body)
	}
	var cj controlJSON
	if json.Unmarshal(body, &cj) != nil || cj.ID != gm.ID || cj.Tenant != "acme" {
		t.Fatalf("deployed control = %s", body)
	}
	_, body = doT(t, s, "acme", http.MethodGet, "/compliance", nil)
	if err := json.Unmarshal(body, &outs); err != nil || len(outs) == 0 {
		t.Fatalf("acme compliance = %s", body)
	}
	for _, o := range outs {
		if o.AppID != "A-1" || o.Control != gm.ID {
			t.Fatalf("acme outcome leaked scope: %+v", o)
		}
	}
	// The default tenant's compliance view is symmetric: no acme traces.
	_, body = doT(t, s, "default", http.MethodGet, "/compliance", nil)
	if err := json.Unmarshal(body, &outs); err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.AppID != "D-1" {
			t.Fatalf("default outcome leaked scope: %+v", o)
		}
	}

	// Shadow flow: attach a candidate (same text — mechanics, not
	// divergence), promote it, and verify the version advanced.
	rec, body = doT(t, s, "acme", http.MethodPost, "/controls",
		map[string]any{"id": gm.ID, "text": gm.Text, "shadow": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy shadow: %d %s", rec.Code, body)
	}
	if json.Unmarshal(body, &cj) != nil || !cj.Shadow || cj.ShadowVersion != 2 {
		t.Fatalf("shadow control = %s", body)
	}
	rec, body = doT(t, s, "acme", http.MethodPost, "/controls/"+gm.ID+"/promote", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", rec.Code, body)
	}
	cj = controlJSON{}
	if json.Unmarshal(body, &cj) != nil || cj.Version != 2 || cj.Shadow {
		t.Fatalf("promoted control = %s", body)
	}
	// A second promote has no candidate left.
	if rec, _ = doT(t, s, "acme", http.MethodPost, "/controls/"+gm.ID+"/promote", nil); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("re-promote -> %d, want 422", rec.Code)
	}
}

// TestTenantQuota429 pins the quota path over HTTP: a tenant over its
// admission rate gets 429 with a Retry-After header and the tenant named
// in the body.
func TestTenantQuota429(t *testing.T) {
	s, _ := testServer(t)
	if rec, body := do(t, s, http.MethodPost, "/tenants", map[string]any{
		"id": "tiny", "quota": map[string]any{"eventsPerSec": 1.0, "burst": 1},
	}); rec.Code != http.StatusOK {
		t.Fatalf("create tenant: %d %s", rec.Code, body)
	}

	// Two events against a burst of 1: rejected atomically.
	rec, body := doT(t, s, "tiny", http.MethodPost, "/events", reqEvents("T-1", "new", true))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota ingest -> %d %s, want 429", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var resp struct {
		Tenant       string `json:"tenant"`
		RetryAfterMS int64  `json:"retryAfterMs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.Tenant != "tiny" || resp.RetryAfterMS <= 0 {
		t.Fatalf("429 body = %s", body)
	}

	// A single event fits the burst.
	ingestT(t, s, "tiny", reqEvents("T-2", "existing", false)[:1])
	var apps []string
	if _, body := doT(t, s, "tiny", http.MethodGet, "/traces", nil); json.Unmarshal(body, &apps) != nil || len(apps) != 1 || apps[0] != "T-2" {
		t.Fatalf("tiny traces = %s", body)
	}
}

// TestTenantScopedIngestKey holds the idempotency-key namespace apart:
// two tenants reusing the same client-chosen Ingest-Key — and the same
// bare trace and record names — must each get their own admission, not
// a dedup hit answering one tenant's batch with the other's ack state.
func TestTenantScopedIngestKey(t *testing.T) {
	s, _ := testServer(t)
	for _, tn := range []string{"acme", "beta"} {
		if rec, body := do(t, s, http.MethodPost, "/tenants", map[string]any{"id": tn}); rec.Code != http.StatusOK {
			t.Fatalf("create tenant %s: %d %s", tn, rec.Code, body)
		}
	}
	tokens := make(map[string]string)
	for _, tn := range []string{"acme", "beta"} {
		raw, err := json.Marshal(reqEvents("T-1", "new", true))
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(raw))
		req.Header.Set("X-Tenant", tn)
		req.Header.Set("Ingest-Key", "batch-1") // deliberately shared
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("ingest (%s): %d %s", tn, rec.Code, rec.Body.String())
		}
		var ack struct {
			Token string `json:"token"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil || ack.Token == "" {
			t.Fatalf("ack (%s): %v (%s)", tn, err, rec.Body.String())
		}
		tokens[tn] = ack.Token
	}
	if tokens["acme"] == tokens["beta"] {
		t.Fatalf("shared Ingest-Key deduped across tenants (token %s)", tokens["acme"])
	}
	for _, tn := range []string{"acme", "beta"} {
		awaitApplied(t, s, tokens[tn])
		var apps []string
		if _, body := doT(t, s, tn, http.MethodGet, "/traces", nil); json.Unmarshal(body, &apps) != nil ||
			len(apps) != 1 || apps[0] != "T-1" {
			t.Fatalf("%s traces = %v", tn, apps)
		}
	}
	// The same tenant re-sending its key IS a dedup hit (the recorder's
	// retry path): same token, no second admission.
	raw, _ := json.Marshal(reqEvents("T-1", "new", true))
	req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(raw))
	req.Header.Set("X-Tenant", "acme")
	req.Header.Set("Ingest-Key", "batch-1")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var ack struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil || ack.Token != tokens["acme"] {
		t.Fatalf("same-tenant retry token = %q, want %q (%s)", ack.Token, tokens["acme"], rec.Body.String())
	}
}
