// Package httpapi exposes a core.System over HTTP: the paper's query
// frontend. cmd/provd serves it; cmd/pctl is its client.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"repro/internal/audit"
	"strconv"
	"strings"
	"time"

	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/ingest"
	"repro/internal/provenance"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/viz"
)

// Server wraps a core.System with the HTTP query frontend the paper's
// Section II-A describes: event ingestion, control deployment, compliance
// queries, dashboard KPIs and graph navigation.
type Server struct {
	sys *core.System
	mux *http.ServeMux
	// batch mode needs explicit correlation after ingest.
	continuous bool
}

func NewServer(sys *core.System, continuous bool) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), continuous: continuous}
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/ingest/ack", s.handleIngestAck)
	s.mux.HandleFunc("/ingest/stats", s.handleIngestStats)
	s.mux.HandleFunc("/controls", s.handleControls)
	s.mux.HandleFunc("/controls/", s.handleControlAction)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/compliance", s.handleCompliance)
	s.mux.HandleFunc("/dashboard", s.handleDashboard)
	s.mux.HandleFunc("/violations", s.handleViolations)
	s.mux.HandleFunc("/graph", s.handleGraph)
	s.mux.HandleFunc("/graph.dot", s.handleGraphDOT)
	s.mux.HandleFunc("/rows", s.handleRows)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/segments", s.handleSegments)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/report", s.handleReport)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/handoff/export", s.handleHandoffExport)
	s.mux.HandleFunc("/handoff/import", s.handleHandoffImport)
	s.mux.HandleFunc("/handoff/release", s.handleHandoffRelease)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tenantScope resolves the optional X-Tenant request header. An empty
// header is the legacy single-tenant view — no qualification, no
// filtering — so every pre-tenancy client keeps working. A set header
// scopes the request to that tenant's namespace: incoming trace IDs are
// qualified under it, outgoing IDs are filtered to it, and an unknown
// tenant is rejected before any data access. ok=false means the handler
// has already replied.
func (s *Server) tenantScope(w http.ResponseWriter, r *http.Request) (tn string, ok bool) {
	tn = r.Header.Get("X-Tenant")
	if tn == "" {
		return "", true
	}
	if !tenant.ValidID(tn) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid tenant %q", tn))
		return "", false
	}
	if tn != tenant.DefaultID && !s.sys.Tenants.Exists(tn) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", tn))
		return "", false
	}
	return tn, true
}

// qualifyScoped qualifies a client-supplied trace or control name under
// the request scope. Scoped requests (explicit X-Tenant, including
// "default") may only use bare names: under the default tenant Qualify
// is the identity mapping, so a smuggled qualified name would read or
// write another tenant's key space. The operator view (no header)
// passes qualified names through untouched. ok=false means the handler
// has already replied.
func qualifyScoped(w http.ResponseWriter, tn, name string) (string, bool) {
	if tn != "" && !tenant.IsBare(name) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("%q: a tenant-scoped request must use bare names", name))
		return "", false
	}
	return tenant.Qualify(tn, name), true
}

// scopedID strips the scope's namespace prefix for display: inside a
// tenant-scoped request the tenant sees its own bare IDs, never the
// qualified form that would leak the namespacing scheme.
func scopedID(tn, id string) string {
	if tn == "" {
		return id
	}
	if owner, bare := tenant.Split(id); owner == tn {
		return bare
	}
	return id
}

// inScope reports whether a qualified ID belongs to the scope. The empty
// scope (legacy view) sees everything.
func inScope(tn, id string) bool {
	return tn == "" || tenant.Owner(id) == tn
}

// eventJSON is the wire form of an application event.
type eventJSON struct {
	Source    string            `json:"source"`
	Type      string            `json:"type"`
	AppID     string            `json:"appId"`
	Timestamp time.Time         `json:"timestamp"`
	Payload   map[string]string `json:"payload"`
}

// maxEventBody caps one /events request body. Ingest buffers the decoded
// batch in memory, so an unbounded body is an easy memory DoS.
const maxEventBody = 8 << 20

// eventErrJSON is the wire form of one rejected event in a batch.
type eventErrJSON struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// handleEvents ingests a JSON array of application events (POST).
//
// With the async gateway enabled the batch is ADMITTED, not ingested:
// the response is 202 with an ack (token + idempotency key) the client
// can poll at /ingest/ack, 429 with a Retry-After hint when admission
// queues are full, or 503 while draining. An Ingest-Key request header
// carries the client's idempotency key; redelivering under the same key
// returns the original batch's ack instead of ingesting twice. ?sync=1
// forces the legacy synchronous path.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxEventBody)
	var evs []eventJSON
	if err := json.NewDecoder(r.Body).Decode(&evs); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	batch := make([]events.AppEvent, len(evs))
	for i, e := range evs {
		// Qualifying here — before admission — is what makes tenancy
		// end-to-end: every row, trace and verdict downstream carries
		// the namespace, and a tenant cannot name another's traces.
		app, ok := qualifyScoped(w, tn, e.AppID)
		if !ok {
			return
		}
		batch[i] = events.AppEvent{
			Source: e.Source, Type: e.Type, AppID: app,
			Timestamp: e.Timestamp, Payload: e.Payload,
		}
	}
	if s.sys.Gateway != nil && r.URL.Query().Get("sync") == "" {
		s.admitAsync(w, r, tn, batch)
		return
	}
	if err := s.sys.Ingest(batch); err != nil {
		// Ingestion is not transactional: a batch error names the rejected
		// events while the rest stay recorded, so surface each one.
		var be *events.BatchError
		if errors.As(err, &be) {
			out := make([]eventErrJSON, len(be.Failed))
			for i, fe := range be.Failed {
				out[i] = eventErrJSON{Index: fe.Index, Error: fe.Err.Error()}
			}
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error":       be.Error(),
				"eventErrors": out,
			})
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !s.continuous {
		if err := s.sys.CorrelateAll(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.sys.Pipeline.Stats())
}

// admitAsync offers one batch to the ingestion gateway and maps its
// verdict onto HTTP: 202 admitted (or deduped), 429 overloaded with a
// Retry-After hint, 503 draining.
func (s *Server) admitAsync(w http.ResponseWriter, r *http.Request, tn string, batch []events.AppEvent) {
	// Idempotency keys are client-chosen, so they namespace like trace
	// IDs: without this, one tenant's key dedups — and answers with the
	// ack state of — another tenant's batch.
	key := tenant.Qualify(tn, r.Header.Get("Ingest-Key"))
	st, err := s.sys.Gateway.Offer(key, batch)
	if err == nil {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	var oe *ingest.OverloadError
	switch {
	case errors.As(err, &oe):
		secs := int(oe.RetryAfter / time.Second)
		if oe.RetryAfter%time.Second != 0 {
			secs++ // Retry-After is whole seconds; round up
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body := map[string]any{
			"error":        err.Error(),
			"retryAfterMs": oe.RetryAfter.Milliseconds(),
		}
		if oe.Tenant != "" {
			// A quota rejection is tenant-specific: name the tenant so a
			// shared client pool can back off one namespace, not all.
			body["tenant"] = oe.Tenant
		}
		writeJSON(w, http.StatusTooManyRequests, body)
	case errors.Is(err, ingest.ErrDraining), errors.Is(err, ingest.ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// handleIngestAck reports an admitted batch's status by ack token —
// including the per-event error indices once the batch is applied.
func (s *Server) handleIngestAck(w http.ResponseWriter, r *http.Request) {
	if s.sys.Gateway == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("async ingest disabled"))
		return
	}
	token := r.URL.Query().Get("token")
	if token == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("token parameter required"))
		return
	}
	st, ok := s.sys.Gateway.Ack(token)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown ack token %q", token))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleIngestStats returns the gateway counters.
func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	if s.sys.Gateway == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Gateway.Stats())
}

// controlJSON is the wire form of a control deployment. Shadow=true on
// POST deploys the text as the shadow candidate of an existing control
// instead of replacing its live version.
type controlJSON struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Text    string `json:"text,omitempty"`
	Version int    `json:"version,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Shadow  bool   `json:"shadow,omitempty"`
	// ShadowVersion reports the attached candidate's version (responses).
	ShadowVersion int `json:"shadowVersion,omitempty"`
}

func controlToJSON(tn string, cp *controls.ControlPoint) controlJSON {
	return controlJSON{
		ID: scopedID(tn, cp.ID), Name: cp.Name, Text: cp.Text,
		Version: cp.Version, Tenant: cp.Tenant,
		Shadow: cp.HasShadow(), ShadowVersion: cp.ShadowVersion(),
	}
}

// handleControls deploys (POST) or lists (GET) internal controls within
// the request's tenant scope.
func (s *Server) handleControls(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodPost:
		var c controlJSON
		if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		key, kok := qualifyScoped(w, tn, c.ID)
		if !kok {
			return
		}
		var cp *controls.ControlPoint
		var err error
		if c.Shadow {
			cp, err = s.sys.DeployShadowControl(key, c.Text)
		} else if tn == "" {
			cp, err = s.sys.DeployControl(c.ID, c.Name, c.Text)
		} else {
			cp, err = s.sys.DeployControlTenant(tn, c.ID, c.Name, c.Text)
		}
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, controlToJSON(tn, cp))
	case http.MethodDelete:
		id, ok := qualifyScoped(w, tn, r.URL.Query().Get("id"))
		if !ok {
			return
		}
		if err := s.sys.RemoveControl(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": scopedID(tn, id)})
	case http.MethodGet:
		var list []*controls.ControlPoint
		if tn == "" {
			list = s.sys.Registry.List()
		} else {
			list = s.sys.Registry.ListTenant(tn)
		}
		var out []controlJSON
		for _, cp := range list {
			out = append(out, controlToJSON(tn, cp))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET, POST or DELETE"))
	}
}

// handleControlAction routes POST /controls/{id}/promote and
// /controls/{id}/rollback — the shadow-rollout levers. The swap happens
// inside the control registry under its lock: no evaluation ever sees
// zero or two live versions of the control.
func (s *Server) handleControlAction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/controls/")
	i := strings.LastIndex(rest, "/")
	if i <= 0 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("want /controls/{id}/promote or /controls/{id}/rollback"))
		return
	}
	key, kok := qualifyScoped(w, tn, rest[:i])
	if !kok {
		return
	}
	action := rest[i+1:]
	var cp *controls.ControlPoint
	var err error
	switch action {
	case "promote":
		cp, err = s.sys.PromoteControl(key)
	case "rollback":
		cp, err = s.sys.RollbackControl(key)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown control action %q", action))
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, controlToJSON(tn, cp))
}

// tenantJSON is the wire form of one tenant with its admission counters.
type tenantJSON struct {
	tenant.Tenant
	Stats tenant.AdmissionStats `json:"stats"`
}

// handleTenants lists tenants (GET) or creates/updates one (POST — an
// upsert, so the same call adjusts an existing tenant's quota or weight).
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		stats := s.sys.Tenants.Stats()
		out := []tenantJSON{}
		for _, t := range s.sys.Tenants.List() {
			out = append(out, tenantJSON{Tenant: t, Stats: stats[t.ID]})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var t tenant.Tenant
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.sys.CreateTenant(t); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		created, _ := s.sys.Tenants.Get(t.ID)
		writeJSON(w, http.StatusOK, created)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST"))
	}
}

// outcomeJSON is the wire form of one compliance outcome.
type outcomeJSON struct {
	Control string              `json:"control"`
	AppID   string              `json:"appId"`
	Verdict string              `json:"verdict"`
	Alerts  []string            `json:"alerts,omitempty"`
	Notes   []string            `json:"notes,omitempty"`
	Binds   map[string][]string `json:"bindings,omitempty"`
}

// asOfParam parses the optional ?asof= store sequence. ok is false when
// the parameter is present but malformed (the handler has replied).
func asOfParam(w http.ResponseWriter, r *http.Request) (seq uint64, present, ok bool) {
	raw := r.URL.Query().Get("asof")
	if raw == "" {
		return 0, false, true
	}
	seq, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("asof: %v", err))
		return 0, true, false
	}
	return seq, true, true
}

// handleCompliance checks one trace (?app=) or all traces. With ?asof=N
// the named trace is read at store sequence N (a sealed segment or the
// live state, whichever held it then) and today's deployed controls are
// evaluated against that historical graph — the audit question "what
// would the verdicts have been at commit N?". As-of outcomes are not
// recorded on the dashboard: historical readings must not move live KPIs.
func (s *Server) handleCompliance(w http.ResponseWriter, r *http.Request) {
	tn, tok := s.tenantScope(w, r)
	if !tok {
		return
	}
	app, aok := qualifyScoped(w, tn, r.URL.Query().Get("app"))
	if !aok {
		return
	}
	asof, asofSet, ok := asOfParam(w, r)
	if !ok {
		return
	}
	var err error
	var outcomes []outcomeJSON
	appendOutcomes := func(app string) error {
		var res []*controls.Outcome
		var err error
		if asofSet {
			g, _, gerr := s.sys.Store.TraceAsOf(app, asof)
			if gerr != nil {
				return gerr
			}
			res, err = s.sys.Registry.CheckGraph(app, g)
		} else {
			res, err = s.sys.Check(app)
		}
		if err != nil {
			return err
		}
		for _, o := range res {
			outcomes = append(outcomes, outcomeJSON{
				Control: scopedID(tn, o.ControlID), AppID: scopedID(tn, o.Result.AppID),
				Verdict: o.Result.Verdict.String(),
				Alerts:  o.Result.Alerts, Notes: o.Result.Notes,
				Binds: o.Result.Bindings,
			})
		}
		return nil
	}
	if app != "" {
		err = appendOutcomes(app)
	} else if asofSet {
		err = fmt.Errorf("asof requires the app parameter")
		writeErr(w, http.StatusBadRequest, err)
		return
	} else {
		for _, a := range s.sys.Store.AppIDs() {
			if !inScope(tn, a) {
				continue
			}
			if err = appendOutcomes(a); err != nil {
				break
			}
		}
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, outcomes)
}

// handleDashboard returns the KPI snapshot.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Board.Snapshot())
}

// handleViolations returns the most recent violation feed entries,
// scoped to the request's tenant when one is set.
func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	all := s.sys.Board.RecentViolations(n)
	if tn == "" {
		writeJSON(w, http.StatusOK, all)
		return
	}
	out := all[:0]
	for _, v := range all {
		if !inScope(tn, v.AppID) {
			continue
		}
		v.AppID = scopedID(tn, v.AppID)
		v.ControlID = scopedID(tn, v.ControlID)
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, out)
}

// graphJSON is the wire form of one trace subgraph.
type graphJSON struct {
	AppID string     `json:"appId"`
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	ID    string            `json:"id"`
	Class string            `json:"class"`
	Type  string            `json:"type"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type edgeJSON struct {
	ID     string `json:"id"`
	Type   string `json:"type"`
	Source string `json:"source"`
	Target string `json:"target"`
}

// handleGraph returns the provenance subgraph of one trace — the query
// frontend that "enables visualization and navigation through the
// provenance graph from the outside". With ?asof=N the trace is read at
// store sequence N, served from whichever tier held it then (sealed
// segment or live state) — the point-in-time audit view.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	app, aok := qualifyScoped(w, tn, r.URL.Query().Get("app"))
	if !aok {
		return
	}
	if app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("app parameter required"))
		return
	}
	asof, asofSet, ok := asOfParam(w, r)
	if !ok {
		return
	}
	out := graphJSON{AppID: app}
	render := func(tr *provenance.Graph) {
		for _, n := range tr.Nodes(provenance.NodeFilter{}) {
			attrs := make(map[string]string, len(n.Attrs))
			for k, v := range n.Attrs {
				attrs[k] = v.Text()
			}
			out.Nodes = append(out.Nodes, nodeJSON{
				ID: n.ID, Class: n.Class.String(), Type: n.Type, Attrs: attrs,
			})
		}
		for _, e := range tr.AllEdges(provenance.EdgeFilter{}) {
			out.Edges = append(out.Edges, edgeJSON{
				ID: e.ID, Type: e.Type, Source: e.Source, Target: e.Target,
			})
		}
	}
	var err error
	if asofSet {
		var g *provenance.Graph
		if g, _, err = s.sys.Store.TraceAsOf(app, asof); err == nil {
			render(g)
		}
	} else {
		// ViewTrace, not View: a demoted trace is served from its sealed
		// segment instead of rendering empty.
		err = s.sys.Store.ViewTrace(app, func(g *provenance.Graph, _ uint64) error {
			render(g.Trace(app))
			return nil
		})
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGraphDOT renders one trace as a Graphviz DOT document (the Fig 2
// visualization).
func (s *Server) handleGraphDOT(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	app, aok := qualifyScoped(w, tn, r.URL.Query().Get("app"))
	if !aok {
		return
	}
	if app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("app parameter required"))
		return
	}
	opts := viz.Options{HideTaskOrder: r.URL.Query().Get("order") == "off"}
	var dot string
	err := s.sys.Store.ViewTrace(app, func(g *provenance.Graph, _ uint64) error {
		dot = viz.TraceDOT(g, app, opts)
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, dot)
}

// handleRows returns the Table-1 rows of one trace.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	app, aok := qualifyScoped(w, tn, r.URL.Query().Get("app"))
	if !aok {
		return
	}
	if app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("app parameter required"))
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Store.RowsForApp(app))
}

// handleQuery runs a typed node query:
// /query?type=jobRequisition&field=reqID&value=REQ-x&kind=string&explain=1
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tn, tok := s.tenantScope(w, r)
	if !tok {
		return
	}
	qapp, aok := qualifyScoped(w, tn, r.URL.Query().Get("app"))
	if !aok {
		return
	}
	q := query.Query{
		Type:    r.URL.Query().Get("type"),
		AppID:   qapp,
		OrderBy: r.URL.Query().Get("order"),
		Desc:    r.URL.Query().Get("desc") != "",
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		q.Limit = n
	}
	if field := r.URL.Query().Get("field"); field != "" {
		kindName := r.URL.Query().Get("kind")
		if kindName == "" {
			kindName = "string"
		}
		kind, err := provenance.ParseKind(kindName)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		v, err := provenance.ParseValue(kind, r.URL.Query().Get("value"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		q.Preds = append(q.Preds, query.Pred{Field: field, Op: query.Eq, Value: v})
	}
	plan, err := s.sys.Query.Plan(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("explain") != "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"plan": plan.Explain(), "indexed": plan.Indexed(),
		})
		return
	}
	nodes, err := plan.Run()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]nodeJSON, 0, len(nodes))
	for _, n := range nodes {
		attrs := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs[k] = v.Text()
		}
		out = append(out, nodeJSON{ID: n.ID, Class: n.Class.String(), Type: n.Type, Attrs: attrs})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReport renders the plain-text compliance audit report: per-control
// tallies plus each violation with its evidence subgraph and each
// undecidable trace with its missing-evidence notes.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("findings"))
	outcomes, err := s.sys.Registry.CheckAll()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.sys.Board.Record(outcomes)
	rep, err := audit.Build(s.sys.Domain.Name, s.sys.Store, outcomes, n)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := rep.WriteText(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		return
	}
}

// handleSegments lists the sealed on-disk segments with their zone maps
// and bloom statistics — the operator's view of the cold tier (`pctl
// segments`).
func (s *Server) handleSegments(w http.ResponseWriter, r *http.Request) {
	segs := s.sys.Store.Segments()
	if segs == nil {
		segs = []store.SegmentInfo{}
	}
	writeJSON(w, http.StatusOK, segs)
}

// handleTraces lists the trace IDs this node holds across both tiers —
// the shard-handoff planner's input (the router asks each shard for its
// traces to compute which ones a ring change moves).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantScope(w, r)
	if !ok {
		return
	}
	apps := []string{}
	for _, a := range s.sys.Store.AppIDs() {
		if inScope(tn, a) {
			apps = append(apps, scopedID(tn, a))
		}
	}
	writeJSON(w, http.StatusOK, apps)
}

// appsRequest is the wire form of a handoff trace list.
type appsRequest struct {
	Apps []string `json:"apps"`
}

// maxHandoffBody caps one /handoff/import stream (segments are bounded
// by the source's log size, but the receiver should not trust that).
const maxHandoffBody = 256 << 20

// handleHandoffExport streams the named traces in the sealed-segment
// wire format (POST {"apps": [...]}). Traces this node no longer holds
// are skipped; the Handoff-Traces/Handoff-Rows/Handoff-Seq response
// headers report what actually shipped (the body is the binary stream,
// so the stats ride in headers). Exports run concurrently with writes —
// the handoff protocol re-exports the tail and the importer dedups.
func (s *Server) handleHandoffExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req appsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("quiesce") != "" && s.sys.Gateway != nil {
		// Tail-phase export: flush the admission queue first so every
		// acked write is in the segment the requester is about to treat
		// as complete. Bounded — a node that cannot go idle in time fails
		// the export, and the caller aborts its handoff instead of
		// releasing traces whose tail it never saw.
		ctx, cancel := context.WithTimeout(r.Context(), 15*time.Second)
		defer cancel()
		if err := s.sys.Gateway.WaitIdle(ctx); err != nil {
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("quiesce: %v", err))
			return
		}
	}
	var buf bytes.Buffer
	st, err := s.sys.Store.ExportTraces(&buf, req.Apps)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Handoff-Traces", strconv.Itoa(st.Traces))
	w.Header().Set("Handoff-Rows", strconv.Itoa(st.Rows))
	w.Header().Set("Handoff-Seq", strconv.FormatUint(st.Seq, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleHandoffImport replays an export stream (POST, raw body) through
// the receiving store's validated write path and reports what landed.
// Records already present are skipped, so redelivery and bulk/tail
// overlap are harmless.
func (s *Server) handleHandoffImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxHandoffBody)
	ins, skip, err := s.sys.Store.ImportSegment(r.Body)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !s.continuous && ins > 0 {
		// Batch mode: re-correlate so imported traces are connected
		// graphs on this node too (continuous mode picks them up from
		// the change feed).
		if err := s.sys.CorrelateAll(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"inserted": ins, "skipped": skip})
}

// handleHandoffRelease commits drop tombstones for traces this node has
// handed off (POST {"apps": [...]}): the final step of a shard move,
// after the target confirmed the import and the ring swapped.
func (s *Server) handleHandoffRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req appsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.sys.Store.DropTraces(req.Apps...); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"dropped": len(req.Apps)})
}

// handleStats returns store, pipeline and continuous-checking statistics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	storeStats := s.sys.Store.Stats()
	var ingestStats any
	if s.sys.Gateway != nil {
		ingestStats = s.sys.Gateway.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingest":      ingestStats,
		"store":       storeStats,
		"durability":  s.sys.Store.Durability(),
		"snapshots":   s.sys.Store.SnapshotCounters(),
		"ruleIndexes": storeStats.RuleIndexes,
		"pipeline":    s.sys.Pipeline.Stats(),
		"correlate":   s.sys.Correlator.Stats(),
		"checker":     s.sys.Checker.Stats(),
		"cache":       s.sys.Registry.CacheStats(),
		"tiering":     storeStats.Tiering,
		"bindings":    s.sys.Registry.BindingStats(),
		"delta":       s.sys.Registry.DeltaStats(),
		"plans":       s.sys.Registry.Plans(),
		"tenants":     s.sys.Tenants.Stats(),
		"shadow":      s.sys.Registry.ShadowStats(),
		"domain":      s.sys.Domain.Name,
		"traces":      len(s.sys.Store.AppIDs()),
		"seq":         storeStats.Seq,
	})
}
