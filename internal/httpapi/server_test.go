package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func testServer(t *testing.T) (*Server, *workload.Domain) {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return NewServer(sys, false), d
}

func do(t *testing.T, s *Server, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(raw)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func ingestSim(t *testing.T, s *Server, d *workload.Domain, traces int) *workload.SimResult {
	t.Helper()
	res := d.Simulate(workload.SimOptions{Seed: 3, Traces: traces, ViolationRate: 0.4, Visibility: 1.0})
	var evs []eventJSON
	for _, ev := range res.Events {
		evs = append(evs, eventJSON{
			Source: ev.Source, Type: ev.Type, AppID: ev.AppID,
			Timestamp: ev.Timestamp, Payload: ev.Payload,
		})
	}
	rec, body := do(t, s, http.MethodPost, "/events", evs)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", rec.Code, body)
	}
	var ack struct {
		Token string `json:"token"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Token == "" {
		t.Fatalf("admission ack: %v (%s)", err, body)
	}
	awaitApplied(t, s, ack.Token)
	return res
}

// awaitApplied polls /ingest/ack until the admitted batch is applied —
// the async analogue of the old synchronous 200.
func awaitApplied(t *testing.T, s *Server, token string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, body := do(t, s, http.MethodGet, "/ingest/ack?token="+token, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("ack poll: %d %s", rec.Code, body)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "applied" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s never applied", token)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerIngestAndCompliance(t *testing.T) {
	s, d := testServer(t)
	res := ingestSim(t, s, d, 10)

	rec, body := do(t, s, http.MethodGet, "/compliance", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("compliance: %d %s", rec.Code, body)
	}
	var outcomes []outcomeJSON
	if err := json.Unmarshal(body, &outcomes); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 10*len(d.Controls) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	// Verdicts agree with ground truth.
	for _, o := range outcomes {
		truth := res.Truth[o.AppID]
		want := "satisfied"
		if truth.Violation && truth.ControlID == o.Control {
			want = "violated"
		}
		if o.Verdict != want {
			t.Errorf("%s/%s verdict = %s, want %s", o.AppID, o.Control, o.Verdict, want)
		}
	}

	// Single-trace query.
	app := outcomes[0].AppID
	rec, body = do(t, s, http.MethodGet, "/compliance?app="+app, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("compliance one: %d", rec.Code)
	}
	if err := json.Unmarshal(body, &outcomes); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(d.Controls) {
		t.Fatalf("one-trace outcomes = %d", len(outcomes))
	}
}

func TestServerControlsCRUD(t *testing.T) {
	s, d := testServer(t)
	rec, body := do(t, s, http.MethodGet, "/controls", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	var list []controlJSON
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(d.Controls) {
		t.Fatalf("controls = %d", len(list))
	}

	newCtl := controlJSON{ID: "extra", Name: "Extra", Text: `
definitions
  set 'r' to a job requisition ;
if 'r' exists then the internal control is satisfied ;
`}
	rec, body = do(t, s, http.MethodPost, "/controls", newCtl)
	if rec.Code != http.StatusOK {
		t.Fatalf("deploy: %d %s", rec.Code, body)
	}
	var got controlJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.ID != "extra" {
		t.Fatalf("deployed = %+v", got)
	}

	bad := controlJSON{ID: "bad", Text: "if nonsense"}
	rec, _ = do(t, s, http.MethodPost, "/controls", bad)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad control status = %d", rec.Code)
	}

	rec, _ = do(t, s, http.MethodDelete, "/controls?id=extra", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec, _ = do(t, s, http.MethodDelete, "/controls?id=extra", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", rec.Code)
	}
}

func TestServerGraphAndRows(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 3)
	app := "hiring-000000"

	rec, body := do(t, s, http.MethodGet, "/graph?app="+app, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("graph: %d %s", rec.Code, body)
	}
	var g graphJSON
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatalf("graph empty: %d nodes, %d edges", len(g.Nodes), len(g.Edges))
	}

	rec, body = do(t, s, http.MethodGet, "/rows?app="+app, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rows: %d", rec.Code)
	}
	if !strings.Contains(string(body), "ps:jobRequisition") {
		t.Fatalf("rows lack Table-1 XML: %s", body)
	}

	rec, _ = do(t, s, http.MethodGet, "/graph", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("graph without app: %d", rec.Code)
	}
}

func TestServerQueryAndExplain(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 5)

	rec, body := do(t, s, http.MethodGet,
		"/query?type=jobRequisition&field=reqID&value=REQ-hiring-000002", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, body)
	}
	var nodes []nodeJSON
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Type != "jobRequisition" {
		t.Fatalf("query result = %v", nodes)
	}

	rec, body = do(t, s, http.MethodGet,
		"/query?type=jobRequisition&field=reqID&value=x&explain=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d", rec.Code)
	}
	if !strings.Contains(string(body), "IndexScan") {
		t.Fatalf("explain = %s", body)
	}

	rec, _ = do(t, s, http.MethodGet, "/query?type=ghost", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", rec.Code)
	}
}

func TestServerDashboardAndStats(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 8)
	if rec, body := do(t, s, http.MethodGet, "/compliance", nil); rec.Code != http.StatusOK {
		t.Fatalf("compliance: %d %s", rec.Code, body)
	}

	rec, body := do(t, s, http.MethodGet, "/dashboard", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("dashboard: %d", rec.Code)
	}
	var kpis []map[string]any
	if err := json.Unmarshal(body, &kpis); err != nil {
		t.Fatal(err)
	}
	if len(kpis) != len(d.Controls) {
		t.Fatalf("kpis = %d", len(kpis))
	}

	rec, body = do(t, s, http.MethodGet, "/violations?n=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("violations: %d", rec.Code)
	}

	rec, body = do(t, s, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["domain"] != "hiring" {
		t.Fatalf("stats = %v", stats)
	}
	if seq, ok := stats["seq"].(float64); !ok || seq <= 0 {
		t.Fatalf("stats.seq = %v, want a positive commit sequence", stats["seq"])
	}
}

// TestServerTieringAndAsOf exercises the tiered-storage surface: tiering
// counters in /stats, the /segments listing, and ?asof= point-in-time
// reads on /graph and /compliance served from a sealed segment.
func TestServerTieringAndAsOf(t *testing.T) {
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	s := NewServer(sys, false)
	ingestSim(t, s, d, 3)
	app := "hiring-000000"
	sealSeq := sys.Store.Stats().Seq

	graphIDs := func(path string) []string {
		t.Helper()
		rec, body := do(t, s, http.MethodGet, path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, rec.Code, body)
		}
		var g struct {
			Nodes []struct {
				ID string `json:"id"`
			} `json:"nodes"`
		}
		if err := json.Unmarshal(body, &g); err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(g.Nodes))
		for _, n := range g.Nodes {
			ids = append(ids, n.ID)
		}
		sort.Strings(ids)
		return ids
	}
	verdicts := func(path string) string {
		t.Helper()
		rec, body := do(t, s, http.MethodGet, path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, rec.Code, body)
		}
		var out []outcomeJSON
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, o := range out {
			fmt.Fprintf(&b, "%s=%s;", o.Control, o.Verdict)
		}
		return b.String()
	}

	liveGraph := graphIDs("/graph?app=" + app)
	liveVerdicts := verdicts("/compliance?app=" + app)
	if len(liveGraph) == 0 || liveVerdicts == "" {
		t.Fatalf("empty live reads: %v %q", liveGraph, liveVerdicts)
	}
	if err := sys.Store.DemoteTraces(app); err != nil {
		t.Fatal(err)
	}

	// The demoted trace reads identically at its seal point.
	asof := fmt.Sprintf("&asof=%d", sealSeq)
	if got := graphIDs("/graph?app=" + app + asof); !slicesEqual(got, liveGraph) {
		t.Fatalf("as-of graph = %v, want %v", got, liveGraph)
	}
	if got := verdicts("/compliance?app=" + app + asof); got != liveVerdicts {
		t.Fatalf("as-of verdicts = %q, want %q", got, liveVerdicts)
	}

	// Plain (non-asof) reads are cold-transparent too: the demoted trace
	// renders from its sealed segment instead of coming back empty.
	if got := graphIDs("/graph?app=" + app); !slicesEqual(got, liveGraph) {
		t.Fatalf("cold graph = %v, want %v", got, liveGraph)
	}
	if rec, body := do(t, s, http.MethodGet, "/graph.dot?app="+app, nil); rec.Code != http.StatusOK || !strings.Contains(string(body), app) {
		t.Fatalf("cold graph.dot: %d %.120s", rec.Code, body)
	}

	rec, body := do(t, s, http.MethodGet, "/segments", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("segments: %d %s", rec.Code, body)
	}
	var segs []map[string]any
	if err := json.Unmarshal(body, &segs); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0]["traces"].(float64) != 1 {
		t.Fatalf("segments = %s", body)
	}

	rec, body = do(t, s, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var stats struct {
		Tiering struct {
			Enabled      bool `json:"enabled"`
			Segments     int  `json:"segments"`
			SealedTraces int  `json:"sealed_traces"`
		} `json:"tiering"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Tiering.Enabled || stats.Tiering.Segments != 1 || stats.Tiering.SealedTraces != 1 {
		t.Fatalf("stats.tiering = %+v", stats.Tiering)
	}

	// Malformed and unanswerable as-of requests fail loudly.
	if rec, _ := do(t, s, http.MethodGet, "/graph?app="+app+"&asof=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus asof: %d", rec.Code)
	}
	if rec, _ := do(t, s, http.MethodGet, "/compliance?asof=1", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("asof without app: %d", rec.Code)
	}
	if rec, _ := do(t, s, http.MethodGet, "/graph?app=no-such-trace&asof=1", nil); rec.Code == http.StatusOK {
		t.Fatal("as-of read of an unknown trace succeeded")
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestServerMethodChecks(t *testing.T) {
	s, _ := testServer(t)
	if rec, _ := do(t, s, http.MethodGet, "/events", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /events = %d", rec.Code)
	}
	if rec, _ := do(t, s, http.MethodPut, "/controls", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /controls = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/events", strings.NewReader("not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d", rec.Code)
	}
}

func TestServerGraphDOT(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 2)
	rec, body := do(t, s, http.MethodGet, "/graph.dot?app=hiring-000000", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("graph.dot: %d %s", rec.Code, body)
	}
	if !strings.Contains(string(body), "digraph provenance") {
		t.Fatalf("dot body:\n%s", body)
	}
	if got := rec.Header().Get("Content-Type"); got != "text/vnd.graphviz" {
		t.Errorf("content type = %q", got)
	}
	rec, _ = do(t, s, http.MethodGet, "/graph.dot", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("graph.dot without app: %d", rec.Code)
	}
}

func TestServerReport(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 10)
	rec, body := do(t, s, http.MethodGet, "/report?findings=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("report: %d %s", rec.Code, body)
	}
	out := string(body)
	for _, want := range []string{"COMPLIANCE AUDIT REPORT", "### control gm-approval", "satisfied"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("content type = %q", got)
	}
}

func TestServerQueryOrder(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 5)
	rec, body := do(t, s, http.MethodGet,
		"/query?type=jobRequisition&order=reqID&desc=1&limit=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ordered query: %d %s", rec.Code, body)
	}
	var nodes []nodeJSON
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Attrs["reqID"] < nodes[1].Attrs["reqID"] {
		t.Fatalf("descending order broken: %v", nodes)
	}
}

// TestServerConcurrentRequests exercises the HTTP layer under parallel
// ingest, checks and queries; the race detector guards soundness.
func TestServerConcurrentRequests(t *testing.T) {
	s, d := testServer(t)
	ingestSim(t, s, d, 10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			do(t, s, http.MethodGet, "/compliance", nil)
		}
	}()
	for i := 0; i < 20; i++ {
		do(t, s, http.MethodGet, "/dashboard", nil)
		do(t, s, http.MethodGet, "/stats", nil)
		do(t, s, http.MethodGet, "/query?type=jobRequisition", nil)
	}
	<-done
}

// doRaw posts a raw body, bypassing the JSON-marshalling helper.
func doRaw(t *testing.T, s *Server, path string, body []byte) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// TestServerEventsErrorHandling is the SYNCHRONOUS /events contract
// table (?sync=1, the pre-gateway protocol): malformed JSON is a 400, an
// oversized body is a 413, and a batch with failing events is a 422 that
// names each rejected event by index while the good events in the same
// batch stay recorded. TestServerAsyncIngestContract covers the async
// protocol.
func TestServerEventsErrorHandling(t *testing.T) {
	ts := func(sec int64) time.Time { return time.Unix(sec, 0).UTC() }
	goodReq := eventJSON{Source: "lombardi", Type: "requisition.submitted", AppID: "T1",
		Timestamp: ts(100), Payload: map[string]string{"recordId": "N1", "req": "REQ-1"}}
	noReqKey := eventJSON{Source: "lombardi", Type: "requisition.submitted", AppID: "T2",
		Timestamp: ts(101), Payload: map[string]string{"recordId": "N2"}}
	badCount := eventJSON{Source: "hrdb", Type: "candidates.found", AppID: "T1",
		Timestamp: ts(102), Payload: map[string]string{"recordId": "N3", "req": "REQ-1", "count": "many"}}
	goodApproval := eventJSON{Source: "mail", Type: "approval.recorded", AppID: "T1",
		Timestamp: ts(103), Payload: map[string]string{"recordId": "N4", "req": "REQ-1", "approved": "true"}}

	huge := eventJSON{Source: "lombardi", Type: "requisition.submitted", AppID: "T9",
		Payload: map[string]string{"recordId": "N9", "req": strings.Repeat("x", maxEventBody+1)}}
	hugeRaw, err := json.Marshal([]eventJSON{huge})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		raw         []byte // used when batch is nil
		batch       []eventJSON
		wantCode    int
		wantIndices []int // expected eventErrors indices, nil = no body check
	}{
		{name: "malformed-json", raw: []byte(`{"not": "an array"`), wantCode: http.StatusBadRequest},
		{name: "wrong-shape", raw: []byte(`{"source": "lombardi"}`), wantCode: http.StatusBadRequest},
		{name: "oversized-body", raw: hugeRaw, wantCode: http.StatusRequestEntityTooLarge},
		{name: "clean-batch", batch: []eventJSON{goodReq}, wantCode: http.StatusOK},
		{name: "partial-batch", batch: []eventJSON{goodReq, noReqKey, badCount, goodApproval},
			wantCode: http.StatusUnprocessableEntity, wantIndices: []int{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := testServer(t)
			var rec *httptest.ResponseRecorder
			var body []byte
			if tc.batch != nil {
				rec, body = do(t, s, http.MethodPost, "/events?sync=1", tc.batch)
			} else {
				rec, body = doRaw(t, s, "/events?sync=1", tc.raw)
			}
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body: %s)", rec.Code, tc.wantCode, body)
			}
			if rec.Code != http.StatusOK {
				var errBody struct {
					Error       string `json:"error"`
					EventErrors []struct {
						Index int    `json:"index"`
						Error string `json:"error"`
					} `json:"eventErrors"`
				}
				if err := json.Unmarshal(body, &errBody); err != nil {
					t.Fatalf("error body is not JSON: %v (%s)", err, body)
				}
				if errBody.Error == "" {
					t.Fatalf("error body lacks message: %s", body)
				}
				if tc.wantIndices != nil {
					if len(errBody.EventErrors) != len(tc.wantIndices) {
						t.Fatalf("eventErrors = %s, want indices %v", body, tc.wantIndices)
					}
					for i, want := range tc.wantIndices {
						if errBody.EventErrors[i].Index != want {
							t.Fatalf("eventErrors[%d].index = %d, want %d", i, errBody.EventErrors[i].Index, want)
						}
						if errBody.EventErrors[i].Error == "" {
							t.Fatalf("eventErrors[%d] lacks a message", i)
						}
					}
				}
			}
			if tc.name == "partial-batch" {
				// The good events around the failures are durable.
				for _, id := range []string{"N1", "N4"} {
					if s.sys.Store.Node(id) == nil {
						t.Fatalf("good event %s was not recorded", id)
					}
				}
				if s.sys.Store.Node("N2") != nil || s.sys.Store.Node("N3") != nil {
					t.Fatal("rejected event was recorded anyway")
				}
			}
		})
	}
}

// TestServerStatsSnapshots is the table test for the MVCC counters the
// /stats endpoint serves under "snapshots": live and moving on the
// snapshot read path, present but dead under the -no-snapshots ablation.
func TestServerStatsSnapshots(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"snapshots", false},
		{"mutex-ablation", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := workload.Hiring()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.New(d, core.Config{DisableSnapshots: tc.disable})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			s := NewServer(sys, false)
			ingestSim(t, s, d, 4)
			if rec, body := do(t, s, http.MethodGet, "/compliance", nil); rec.Code != http.StatusOK {
				t.Fatalf("compliance: %d %s", rec.Code, body)
			}

			rec, body := do(t, s, http.MethodGet, "/stats", nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("stats: %d", rec.Code)
			}
			var stats struct {
				Snapshots struct {
					Enabled      bool
					Publishes    uint64
					ReaderLoads  uint64
					CopiedShards uint64
					CopiedNodes  uint64
					CopiedEdges  uint64
				} `json:"snapshots"`
			}
			if err := json.Unmarshal(body, &stats); err != nil {
				t.Fatalf("stats body: %v (%s)", err, body)
			}
			ss := stats.Snapshots
			if ss.Enabled == tc.disable {
				t.Fatalf("snapshots.Enabled = %v with DisableSnapshots = %v", ss.Enabled, tc.disable)
			}
			if tc.disable {
				if ss.Publishes != 0 || ss.ReaderLoads != 0 || ss.CopiedShards != 0 {
					t.Fatalf("ablation counters moved: %+v", ss)
				}
				return
			}
			if ss.Publishes == 0 || ss.ReaderLoads == 0 {
				t.Fatalf("live counters flat after ingest+compliance: %+v", ss)
			}
		})
	}
}

// TestServerAsyncIngestContract is the async /events protocol table: a
// clean batch is a 202 whose ack token reaches "applied"; a redelivered
// idempotency key gets the original ack back with deduped set; a batch
// the admission queues cannot hold is a 429 with a Retry-After header; a
// draining gateway is a 503; per-event rejections survive the async path
// and come back on the ack, indexed by the client batch's own positions.
func TestServerAsyncIngestContract(t *testing.T) {
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{IngestShards: 1, IngestQueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	s := NewServer(sys, false)

	ts := func(sec int64) time.Time { return time.Unix(sec, 0).UTC() }
	goodReq := eventJSON{Source: "lombardi", Type: "requisition.submitted", AppID: "T1",
		Timestamp: ts(100), Payload: map[string]string{"recordId": "N1", "req": "REQ-1"}}
	noReqKey := eventJSON{Source: "lombardi", Type: "requisition.submitted", AppID: "T2",
		Timestamp: ts(101), Payload: map[string]string{"recordId": "N2"}}
	badCount := eventJSON{Source: "hrdb", Type: "candidates.found", AppID: "T1",
		Timestamp: ts(102), Payload: map[string]string{"recordId": "N3", "req": "REQ-1", "count": "many"}}
	goodApproval := eventJSON{Source: "mail", Type: "approval.recorded", AppID: "T1",
		Timestamp: ts(103), Payload: map[string]string{"recordId": "N4", "req": "REQ-1", "approved": "true"}}

	post := func(key string, batch []eventJSON) (*httptest.ResponseRecorder, []byte) {
		t.Helper()
		raw, err := json.Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(raw))
		if key != "" {
			req.Header.Set("Ingest-Key", key)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec, rec.Body.Bytes()
	}
	type ackJSON struct {
		Token       string `json:"token"`
		Key         string `json:"key"`
		State       string `json:"state"`
		Deduped     bool   `json:"deduped"`
		EventErrors []struct {
			Index int    `json:"index"`
			Error string `json:"error"`
		} `json:"eventErrors"`
	}

	// Admission: 202 with a pollable token; the batch applies.
	rec, body := post("batch-1", []eventJSON{goodReq})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("clean batch = %d %s", rec.Code, body)
	}
	var first ackJSON
	if err := json.Unmarshal(body, &first); err != nil || first.Token == "" || first.Key != "batch-1" {
		t.Fatalf("ack = %s (err %v)", body, err)
	}
	awaitApplied(t, s, first.Token)
	if sys.Store.Node("N1") == nil {
		t.Fatal("applied batch not in store")
	}

	// Idempotent redelivery: same key, original ack, nothing re-ingested.
	rec, body = post("batch-1", []eventJSON{goodReq})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("redelivery = %d %s", rec.Code, body)
	}
	var again ackJSON
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Token != first.Token {
		t.Fatalf("redelivery ack = %s, want deduped token %s", body, first.Token)
	}

	// Per-event errors survive the async path: admitted 202, failures
	// reported on the ack by client-batch index (1: missing required
	// field, 2: unparsable int), good neighbors recorded.
	rec, body = post("batch-2", []eventJSON{goodReq, noReqKey, badCount, goodApproval})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("partial batch = %d %s", rec.Code, body)
	}
	var partial ackJSON
	if err := json.Unmarshal(body, &partial); err != nil {
		t.Fatal(err)
	}
	awaitApplied(t, s, partial.Token)
	rec, body = do(t, s, http.MethodGet, "/ingest/ack?token="+partial.Token, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ack poll = %d", rec.Code)
	}
	var final ackJSON
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if len(final.EventErrors) != 2 || final.EventErrors[0].Index != 1 || final.EventErrors[1].Index != 2 {
		t.Fatalf("ack eventErrors = %s, want indices 1 and 2", body)
	}
	for _, e := range final.EventErrors {
		if e.Error == "" {
			t.Fatalf("eventError lacks a message: %s", body)
		}
	}
	if sys.Store.Node("N4") == nil {
		t.Fatal("good event N4 not recorded")
	}
	if sys.Store.Node("N2") != nil || sys.Store.Node("N3") != nil {
		t.Fatal("rejected event recorded anyway")
	}

	// Overload: a batch larger than the whole admission queue can never
	// be reserved — 429, Retry-After header, retryAfterMs body, and no
	// partial admission.
	over := make([]eventJSON, 5) // QueueDepth is 4
	for i := range over {
		e := goodReq
		e.AppID = "T-over"
		e.Payload = map[string]string{"recordId": fmt.Sprintf("OV%d", i), "req": "REQ-OV"}
		over[i] = e
	}
	rec, body = post("batch-over", over)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload = %d %s", rec.Code, body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	var overBody struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retryAfterMs"`
	}
	if err := json.Unmarshal(body, &overBody); err != nil || overBody.Error == "" || overBody.RetryAfterMS <= 0 {
		t.Fatalf("overload body = %s (err %v)", body, err)
	}
	if sys.Store.Node("OV0") != nil {
		t.Fatal("rejected batch partially admitted")
	}

	// Gateway counters on /ingest/stats.
	rec, body = do(t, s, http.MethodGet, "/ingest/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest stats = %d", rec.Code)
	}
	var istats struct {
		AdmittedBatches uint64 `json:"admittedBatches"`
		RejectedBatches uint64 `json:"rejectedBatches"`
		DedupedBatches  uint64 `json:"dedupedBatches"`
	}
	if err := json.Unmarshal(body, &istats); err != nil {
		t.Fatal(err)
	}
	if istats.AdmittedBatches != 2 || istats.RejectedBatches != 1 || istats.DedupedBatches != 1 {
		t.Fatalf("ingest stats = %s", body)
	}

	// Draining: 503 with a Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sys.Gateway.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec, body = post("batch-late", []eventJSON{goodReq})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining = %d %s", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
}
