package httpapi

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// isoOp is one randomized scoped ingest: a trace name shared across
// every tenant AND record IDs shared across tenants — both deliberately
// collide, because both keyspaces are namespaced (trace IDs at the API
// boundary, record-derived node IDs in the event transform). The store
// must keep them apart with no cooperation from the tenants.
type isoOp struct {
	app      string
	approved bool
	ptype    string
}

func isoEvents(i int, op isoOp) []eventJSON {
	rec := fmt.Sprintf("%s-%d", op.app, i)
	evs := []eventJSON{{
		Source: "lombardi", Type: "requisition.submitted", AppID: op.app,
		Payload: map[string]string{"recordId": rec + "-req", "req": "REQ-" + rec, "ptype": op.ptype},
	}}
	if op.approved {
		evs = append(evs, eventJSON{
			Source: "mail", Type: "approval.recorded", AppID: op.app,
			Payload: map[string]string{"recordId": rec + "-apprv", "req": "REQ-" + rec, "approved": "true"},
		})
	}
	return evs
}

// TestTenantIsolationProperty is the randomized isolation property test:
// three tenants (default, acme, beta) concurrently ingest interleaved
// workloads that reuse the SAME bare trace names, while a reader hammers
// the scoped views. Afterwards every scoped read surface — traces,
// compliance, violations, graph — must contain exactly the requesting
// tenant's data: no qualified IDs, no foreign verdicts, no foreign
// provenance, however the goroutines interleaved. Run under -race in CI.
func TestTenantIsolationProperty(t *testing.T) {
	s, d := testServer(t)
	for _, tn := range []string{"acme", "beta"} {
		if rec, body := do(t, s, http.MethodPost, "/tenants", map[string]any{"id": tn}); rec.Code != http.StatusOK {
			t.Fatalf("create tenant %s: %d %s", tn, rec.Code, body)
		}
		// Each tenant deploys the domain's control inside its namespace so
		// scoped compliance views have verdicts to leak (or not).
		gm := d.Controls[0]
		if rec, body := doT(t, s, tn, http.MethodPost, "/controls",
			map[string]string{"id": gm.ID, "name": gm.Name, "text": gm.Text}); rec.Code != http.StatusOK {
			t.Fatalf("deploy control for %s: %d %s", tn, rec.Code, body)
		}
	}

	// Pre-generate each tenant's randomized op list from one seed so the
	// data is reproducible; only the goroutine interleaving varies.
	rng := rand.New(rand.NewSource(42))
	scopes := []string{"", "acme", "beta"}
	ops := make(map[string][]isoOp)
	want := make(map[string]map[string]bool) // scope -> bare trace set
	for _, tn := range scopes {
		want[tn] = make(map[string]bool)
		for i := 0; i < 24; i++ {
			op := isoOp{
				app:      fmt.Sprintf("T-%d", rng.Intn(8)),
				approved: rng.Intn(2) == 0,
				ptype:    []string{"new", "existing"}[rng.Intn(2)],
			}
			ops[tn] = append(ops[tn], op)
			want[tn][op.app] = true
		}
		// Pin op 0 to T-0 so every scope deterministically shares at
		// least one (trace, record ID) pair with every other — the
		// collision the namespacing must absorb — and the per-scope
		// /graph?app=T-0 probes below always have a subject.
		ops[tn][0].app = "T-0"
		want[tn]["T-0"] = true
	}

	var wg sync.WaitGroup
	for _, tn := range scopes {
		wg.Add(1)
		go func(tn string) {
			defer wg.Done()
			for i, op := range ops[tn] {
				ingestT(t, s, tn, isoEvents(i, op))
			}
		}(tn)
	}
	// Reads address the default tenant explicitly: a bare request is the
	// operator view, which legitimately sees every namespace.
	readScope := func(tn string) string {
		if tn == "" {
			return "default"
		}
		return tn
	}
	// A concurrent reader: scoped views must never show a qualified ID,
	// even mid-churn. It has its own WaitGroup — the writers' Wait gates
	// closing stop, which in turn releases the reader.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tn := range scopes {
				var apps []string
				_, body := doT(t, s, readScope(tn), http.MethodGet, "/traces", nil)
				if err := json.Unmarshal(body, &apps); err != nil {
					t.Errorf("traces mid-churn (%s): %v (%s)", tn, err, body)
					return
				}
				for _, a := range apps {
					if strings.Contains(a, "::") {
						t.Errorf("scope %q saw qualified trace %q mid-churn", tn, a)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	setOf := func(list []string) map[string]bool {
		m := make(map[string]bool, len(list))
		for _, v := range list {
			m[v] = true
		}
		return m
	}
	keys := func(m map[string]bool) []string {
		var out []string
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}

	for _, tn := range scopes {
		// Traces: exactly this tenant's bare names, nothing qualified.
		var apps []string
		_, body := doT(t, s, readScope(tn), http.MethodGet, "/traces", nil)
		if err := json.Unmarshal(body, &apps); err != nil {
			t.Fatalf("traces (%s): %v (%s)", tn, err, body)
		}
		if got := setOf(apps); !equalSets(got, want[tn]) {
			t.Fatalf("scope %q traces = %v, want %v", tn, keys(got), keys(want[tn]))
		}

		// Compliance: every outcome names one of the tenant's own traces
		// and a bare control ID.
		var outs []outcomeJSON
		_, body = doT(t, s, readScope(tn), http.MethodGet, "/compliance", nil)
		if err := json.Unmarshal(body, &outs); err != nil {
			t.Fatalf("compliance (%s): %v (%s)", tn, err, body)
		}
		if len(outs) == 0 {
			t.Fatalf("scope %q compliance is empty", tn)
		}
		for _, o := range outs {
			if !want[tn][o.AppID] || strings.Contains(o.AppID, "::") || strings.Contains(o.Control, "::") {
				t.Fatalf("scope %q compliance leaked %+v", tn, o)
			}
		}

		// Violations: same property on the dashboard feed.
		var viols []struct {
			AppID     string `json:"appId"`
			ControlID string `json:"controlId"`
		}
		_, body = doT(t, s, readScope(tn), http.MethodGet, "/violations", nil)
		if err := json.Unmarshal(body, &viols); err != nil {
			t.Fatalf("violations (%s): %v (%s)", tn, err, body)
		}
		for _, v := range viols {
			if !want[tn][v.AppID] || strings.Contains(v.AppID, "::") {
				t.Fatalf("scope %q violations leaked %+v", tn, v)
			}
		}

		// Graph: a tenant's own trace resolves; another tenant's qualified
		// name is unreachable by construction (the scope re-qualifies it
		// into a name that cannot exist).
		var g struct {
			Nodes []nodeJSON `json:"nodes"`
		}
		_, body = doT(t, s, readScope(tn), http.MethodGet, "/graph?app=T-0", nil)
		if err := json.Unmarshal(body, &g); err != nil || len(g.Nodes) == 0 {
			t.Fatalf("scope %q own graph = %v (%s)", tn, err, body)
		}
		for _, other := range scopes {
			if other == tn || other == "" {
				continue
			}
			g.Nodes = nil
			_, body = doT(t, s, readScope(tn), http.MethodGet, "/graph?app="+other+"%3A%3AT-0", nil)
			if err := json.Unmarshal(body, &g); err != nil || len(g.Nodes) != 0 {
				t.Fatalf("scope %q reached %s's trace: %v (%s)", tn, other, err, body)
			}
		}
	}

	// The operator (unscoped) view sees the union, every foreign trace
	// under its qualified name.
	union := make(map[string]bool)
	for tn, set := range want {
		for app := range set {
			if tn == "" {
				union[app] = true
			} else {
				union[tn+"::"+app] = true
			}
		}
	}
	var apps []string
	_, body := do(t, s, http.MethodGet, "/traces", nil)
	if err := json.Unmarshal(body, &apps); err != nil {
		t.Fatal(err)
	}
	if got := setOf(apps); !equalSets(got, union) {
		t.Fatalf("operator traces = %v, want %v", keys(got), keys(union))
	}
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
