package events

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

func testModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "headcount", Kind: provenance.KindInt}))
	must(m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassTask}))
	must(m.AddField("submission", &provenance.FieldDef{Name: "actorEmail", Kind: provenance.KindString}))
	return m
}

func testStore(t testing.TB) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func reqMapping() *Mapping {
	return &Mapping{
		Name: "req-recorder", Source: "lombardi", EventType: "requisition.submitted",
		NodeType: "jobRequisition", Class: provenance.ClassData, IDKey: "recordId",
		Fields: []FieldMapping{
			{PayloadKey: "req", Attr: "reqID", Kind: provenance.KindString, Required: true},
			{PayloadKey: "ptype", Attr: "positionType", Kind: provenance.KindString},
			{PayloadKey: "count", Attr: "headcount", Kind: provenance.KindInt},
		},
	}
}

func taskMapping() *Mapping {
	return &Mapping{
		Name: "task-recorder", EventType: "task.submit",
		NodeType: "submission", Class: provenance.ClassTask,
		Fields: []FieldMapping{
			{PayloadKey: "email", Attr: "actorEmail", Kind: provenance.KindString},
		},
	}
}

func reqEvent() AppEvent {
	return AppEvent{
		Source: "lombardi", Type: "requisition.submitted", AppID: "App01",
		Timestamp: time.Unix(5000, 0).UTC(),
		Payload: map[string]string{
			"recordId": "PE3",
			"req":      "REQ001",
			"ptype":    "new",
			"count":    "2",
			"ssn":      "123-45-6789", // unmapped: must never be captured
		},
	}
}

func TestPipelineRecordsMappedEvent(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping(), taskMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err != nil {
		t.Fatal(err)
	}
	n := st.Node("PE3")
	if n == nil {
		t.Fatal("node not recorded")
	}
	if n.Type != "jobRequisition" || n.AppID != "App01" {
		t.Fatalf("node = %v", n)
	}
	if n.Attr("reqID").Str() != "REQ001" || n.Attr("headcount").IntVal() != 2 {
		t.Fatalf("attrs = %v", n.Attrs)
	}
	if !n.Timestamp.Equal(time.Unix(5000, 0).UTC()) {
		t.Errorf("timestamp = %v", n.Timestamp)
	}
	stats := p.Stats()
	if stats.Ingested != 1 || stats.Recorded != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPipelineRedactsUnmappedPayload(t *testing.T) {
	// "To avoid redundancy and possible exposure of sensitive data,
	// recorder clients do not copy all application data."
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err != nil {
		t.Fatal(err)
	}
	n := st.Node("PE3")
	for attr := range n.Attrs {
		if attr == "ssn" {
			t.Fatal("sensitive unmapped payload captured")
		}
	}
	row, ok := st.Row("PE3")
	if !ok {
		t.Fatal("row missing")
	}
	if strings.Contains(row.XML, "123-45-6789") {
		t.Fatal("sensitive data reached the stored XML")
	}
}

func TestPipelineUnmatchedAndNoTrace(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(AppEvent{Source: "mail", Type: "mail.sent", AppID: "App01"}); err != nil {
		t.Fatal(err)
	}
	ev := reqEvent()
	ev.AppID = ""
	if err := p.Ingest(ev); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats.Unmatched != 1 || stats.NoTrace != 1 || stats.Recorded != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if st.Stats().Nodes != 0 {
		t.Fatal("dropped events reached the store")
	}
}

func TestPipelineMissingFields(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	// Optional field missing: recorded without it.
	ev := reqEvent()
	delete(ev.Payload, "ptype")
	if err := p.Ingest(ev); err != nil {
		t.Fatal(err)
	}
	if n := st.Node("PE3"); !n.Attr("positionType").IsZero() {
		t.Fatal("missing optional field materialized")
	}
	// Required field missing: error, counted.
	ev2 := reqEvent()
	ev2.Payload["recordId"] = "PE4"
	delete(ev2.Payload, "req")
	if err := p.Ingest(ev2); err == nil {
		t.Fatal("missing required field accepted")
	}
	if p.Stats().Errors != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestPipelineBadFieldValue(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	ev := reqEvent()
	ev.Payload["count"] = "two"
	if err := p.Ingest(ev); err == nil {
		t.Fatal("unparseable int accepted")
	}
}

func TestPipelineSequentialIDs(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, taskMapping())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := AppEvent{Source: "x", Type: "task.submit", AppID: "App01",
			Payload: map[string]string{"email": "jdoe@acme.com"}}
		if err := p.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"PE1", "PE2", "PE3"} {
		if st.Node(id) == nil {
			t.Fatalf("expected generated ID %s", id)
		}
	}
}

func TestPipelineDuplicateIDRejected(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err == nil {
		t.Fatal("duplicate record ID accepted")
	}
	if p.Stats().Errors != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestNewPipelineValidatesMappings(t *testing.T) {
	st := testStore(t)
	cases := []*Mapping{
		{Name: "", EventType: "x", NodeType: "jobRequisition", Class: provenance.ClassData},
		{Name: "m", EventType: "", NodeType: "jobRequisition", Class: provenance.ClassData},
		{Name: "m", EventType: "x", NodeType: "ghost", Class: provenance.ClassData},
		{Name: "m", EventType: "x", NodeType: "jobRequisition", Class: provenance.ClassTask},
		{Name: "m", EventType: "x", NodeType: "jobRequisition", Class: provenance.ClassData,
			Fields: []FieldMapping{{PayloadKey: "a", Attr: "ghost", Kind: provenance.KindString}}},
		{Name: "m", EventType: "x", NodeType: "jobRequisition", Class: provenance.ClassData,
			Fields: []FieldMapping{{PayloadKey: "a", Attr: "reqID", Kind: provenance.KindInt}}},
	}
	for i, m := range cases {
		if _, err := NewPipeline(st, m); err == nil {
			t.Errorf("case %d: invalid mapping accepted", i)
		}
	}
	// Overlapping (source, type) pairs are ambiguous.
	if _, err := NewPipeline(st, reqMapping(), reqMapping()); err == nil {
		t.Error("duplicate mapping key accepted")
	}
	if _, err := NewPipeline(nil, reqMapping()); err == nil {
		t.Error("nil store accepted")
	}
}

func TestIngestAllContinuesPastErrors(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	bad := reqEvent()
	bad.Payload["count"] = "NaN-ish"
	good := reqEvent()
	good.Payload["recordId"] = "PE9"
	if err := p.IngestAll([]AppEvent{bad, good}); err == nil {
		t.Fatal("first error not reported")
	}
	if st.Node("PE9") == nil {
		t.Fatal("batch stopped at first error")
	}
}

func TestIngestAllBatchErrorDetails(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	badCount := reqEvent()
	badCount.Payload["count"] = "NaN-ish"
	noReq := reqEvent()
	noReq.Payload["recordId"] = "PE10"
	delete(noReq.Payload, "req")
	good := reqEvent()
	good.Payload["recordId"] = "PE11"

	err = p.IngestAll([]AppEvent{badCount, good, noReq})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("IngestAll error is %T, want *BatchError", err)
	}
	if be.Total != 3 || len(be.Failed) != 2 {
		t.Fatalf("BatchError = %d failed of %d, want 2 of 3", len(be.Failed), be.Total)
	}
	if be.Failed[0].Index != 0 || be.Failed[1].Index != 2 {
		t.Fatalf("failed indices = %d, %d; want 0, 2", be.Failed[0].Index, be.Failed[1].Index)
	}
	if !strings.Contains(be.Failed[1].Err.Error(), "req") {
		t.Fatalf("index-2 error does not name the missing field: %v", be.Failed[1].Err)
	}
	if !strings.Contains(be.Error(), "2 of 3") {
		t.Fatalf("summary message = %q", be.Error())
	}
	if be.Unwrap() != be.Failed[0].Err {
		t.Fatal("Unwrap does not expose the first per-event error")
	}
	if st.Node("PE11") == nil {
		t.Fatal("good event between failures was not recorded")
	}
	// A clean batch reports no error at all — not a typed nil.
	clean := reqEvent()
	clean.Payload["recordId"] = "PE12"
	if err := p.IngestAll([]AppEvent{clean}); err != nil {
		t.Fatalf("clean batch: %v", err)
	}
}

func TestRecorders(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping(), taskMapping())
	if err != nil {
		t.Fatal(err)
	}
	got := p.Recorders()
	if len(got) != 2 || got[0] != "req-recorder" || got[1] != "task-recorder" {
		t.Fatalf("Recorders = %v", got)
	}
}

func BenchmarkPipelineIngest(b *testing.B) {
	st, err := store.Open(store.Options{Model: testModel(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	m := reqMapping()
	m.IDKey = "" // generated IDs so every event is unique
	p, err := NewPipeline(st, m)
	if err != nil {
		b.Fatal(err)
	}
	ev := reqEvent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Ingest(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// kevs builds a keyed run from one batch key.
func kevs(key string, evs ...AppEvent) []KeyedEvent {
	out := make([]KeyedEvent, len(evs))
	for i, ev := range evs {
		out[i] = KeyedEvent{Event: ev, Key: key, Index: i}
	}
	return out
}

func taskEvent(app, email string) AppEvent {
	return AppEvent{Source: "x", Type: "task.submit", AppID: app,
		Timestamp: time.Unix(7000, 0).UTC(),
		Payload:   map[string]string{"email": email}}
}

// TestIngestKeyedDeterministicIDs: events without a mapping ID key get IDs
// derived from (batch key, index), and redelivering the same batch is
// absorbed idempotently — no new records, no error, Duplicates counted.
func TestIngestKeyedDeterministicIDs(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping(), taskMapping())
	if err != nil {
		t.Fatal(err)
	}
	batch := kevs("b1", taskEvent("App01", "a@acme.com"), taskEvent("App01", "b@acme.com"), reqEvent())
	if err := p.IngestKeyed(batch); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"PE-b1-0", "PE-b1-1", "PE3"} {
		if st.Node(id) == nil {
			t.Fatalf("missing record %s", id)
		}
	}
	nodesBefore := st.Stats().Nodes
	// Redelivery: the whole batch again, byte-identical.
	if err := p.IngestKeyed(batch); err != nil {
		t.Fatalf("redelivery rejected: %v", err)
	}
	if got := st.Stats().Nodes; got != nodesBefore {
		t.Fatalf("redelivery grew the store: %d -> %d nodes", nodesBefore, got)
	}
	s := p.Stats()
	if s.Duplicates != 3 {
		t.Fatalf("Duplicates = %d, want 3", s.Duplicates)
	}
	if s.Recorded != 3 {
		t.Fatalf("Recorded = %d, want 3", s.Recorded)
	}
	if rs := s.PerRecorder["task-recorder"]; rs.Recorded != 2 || rs.Duplicates != 2 {
		t.Fatalf("task-recorder stats = %+v", rs)
	}
}

// TestIngestKeyedIDCollision: a duplicate ID carrying DIFFERENT content is
// an error, not a benign redelivery.
func TestIngestKeyedIDCollision(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IngestKeyed(kevs("b1", reqEvent())); err != nil {
		t.Fatal(err)
	}
	changed := reqEvent()
	changed.Payload["ptype"] = "replacement"
	err = p.IngestKeyed(kevs("b2", changed))
	var be *BatchError
	if !errors.As(err, &be) || be.Failed[0].Index != 0 {
		t.Fatalf("collision not reported: %v", err)
	}
	if p.Stats().Duplicates != 0 {
		t.Fatalf("collision miscounted as duplicate: %+v", p.Stats())
	}
}

// TestIngestKeyedPerRecorderStats: transform errors, no-trace drops and
// unmatched events land in the right counters, with per-recorder
// attribution for everything a recorder claimed.
func TestIngestKeyedPerRecorderStats(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping(), taskMapping())
	if err != nil {
		t.Fatal(err)
	}
	missing := reqEvent()
	delete(missing.Payload, "req") // required field
	missing.Payload["recordId"] = "PE9"
	noTrace := taskEvent("", "x@acme.com")
	stranger := AppEvent{Source: "y", Type: "unknown.kind", AppID: "App01"}
	err = p.IngestKeyed(kevs("b1", missing, noTrace, stranger, taskEvent("App01", "ok@acme.com")))
	var be *BatchError
	if !errors.As(err, &be) || len(be.Failed) != 1 || be.Failed[0].Index != 0 {
		t.Fatalf("want one failure at index 0, got %v", err)
	}
	s := p.Stats()
	if s.Ingested != 4 || s.Recorded != 1 || s.Unmatched != 1 || s.NoTrace != 1 || s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if rs := s.PerRecorder["req-recorder"]; rs.TransformErrors != 1 {
		t.Fatalf("req-recorder stats = %+v", rs)
	}
	if rs := s.PerRecorder["task-recorder"]; rs.NoTrace != 1 || rs.Recorded != 1 {
		t.Fatalf("task-recorder stats = %+v", rs)
	}
}

// TestIngestPerRecorderStatsSinglePath: the one-event path attributes
// errors and drops the same way the keyed path does.
func TestIngestPerRecorderStatsSinglePath(t *testing.T) {
	st := testStore(t)
	p, err := NewPipeline(st, reqMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(reqEvent()); err == nil { // duplicate ID: store error
		t.Fatal("duplicate accepted on single path")
	}
	bad := reqEvent()
	bad.Payload["recordId"] = "PE8"
	bad.Payload["count"] = "not-a-number"
	if err := p.Ingest(bad); err == nil {
		t.Fatal("unparsable field accepted")
	}
	rs := p.Stats().PerRecorder["req-recorder"]
	if rs.Recorded != 1 || rs.StoreErrors != 1 || rs.TransformErrors != 1 {
		t.Fatalf("req-recorder stats = %+v", rs)
	}
}
