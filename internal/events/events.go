// Package events implements the capture side of the business provenance
// system (Section II-A of the paper): application events produced by the
// underlying IT systems are processed by recorder clients, transformed
// into provenance events, and recorded in the provenance store.
//
// Recorder clients deliberately do not copy all application data: each
// recorder declares exactly which payload fields are captured, so
// irrelevant or sensitive data never reaches the provenance store.
package events

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
)

// AppEvent is one raw event emitted by an application: a task being
// performed, data being accessed or modified, and so on. Payload carries
// the application's own key/value data; recorders pick the relevant subset.
type AppEvent struct {
	// Source names the emitting system ("lombardi", "hr-db", "mail").
	Source string
	// Type is the event type within the source ("requisition.submitted").
	Type string
	// AppID correlates the event to a process execution trace. Unmanaged
	// activities may emit events without one; those events are dropped and
	// counted (they cannot be placed in any trace).
	AppID string
	// Timestamp is the application-reported event time.
	Timestamp time.Time
	// Payload is the raw application data.
	Payload map[string]string
}

// FieldMapping copies one payload key into one typed provenance attribute.
type FieldMapping struct {
	// PayloadKey is the application payload key to read.
	PayloadKey string
	// Attr is the provenance attribute to write (a field declared in the
	// data model).
	Attr string
	// Kind is the attribute's declared kind; the payload string is parsed
	// accordingly.
	Kind provenance.Kind
	// Required marks fields whose absence makes the event unrecordable.
	// Non-required fields are simply skipped when missing — the partial
	// capture the paper's partially managed setting implies.
	Required bool
}

// Mapping is a declarative recorder client: it matches application events
// by (source, type) and transforms them into one provenance node.
type Mapping struct {
	// Name identifies the recorder in stats and errors.
	Name string
	// Source and EventType select the application events this recorder
	// processes. An empty Source matches any source.
	Source    string
	EventType string
	// NodeType and Class give the provenance record type produced.
	NodeType string
	Class    provenance.Class
	// IDKey is the payload key holding a stable record identifier. When
	// empty the pipeline assigns a sequential ID ("PE<n>").
	IDKey string
	// Fields lists the payload fields to capture. Anything not listed is
	// not copied.
	Fields []FieldMapping
}

// validate checks the mapping declaration against the data model.
func (m *Mapping) validate(model *provenance.Model) error {
	if m.Name == "" {
		return fmt.Errorf("events: mapping with empty name")
	}
	if m.EventType == "" {
		return fmt.Errorf("events: mapping %s matches no event type", m.Name)
	}
	if !m.Class.IsNode() {
		return fmt.Errorf("events: mapping %s has non-node class %v", m.Name, m.Class)
	}
	if model == nil {
		return nil
	}
	t := model.Type(m.NodeType)
	if t == nil {
		return fmt.Errorf("events: mapping %s produces undeclared type %s", m.Name, m.NodeType)
	}
	if t.Class != m.Class {
		return fmt.Errorf("events: mapping %s: type %s is class %v, mapping says %v",
			m.Name, m.NodeType, t.Class, m.Class)
	}
	for _, f := range m.Fields {
		fd := t.Field(f.Attr)
		if fd == nil {
			return fmt.Errorf("events: mapping %s maps undeclared field %s.%s", m.Name, m.NodeType, f.Attr)
		}
		if fd.Kind != f.Kind {
			return fmt.Errorf("events: mapping %s: field %s.%s is %v, mapping says %v",
				m.Name, m.NodeType, f.Attr, fd.Kind, f.Kind)
		}
	}
	return nil
}

// matches reports whether the mapping applies to the event.
func (m *Mapping) matches(ev AppEvent) bool {
	return ev.Type == m.EventType && (m.Source == "" || ev.Source == m.Source)
}

// Stats counts pipeline outcomes.
type Stats struct {
	// Ingested counts every event offered to the pipeline.
	Ingested int
	// Recorded counts events transformed into provenance records.
	Recorded int
	// Unmatched counts events no recorder claimed.
	Unmatched int
	// NoTrace counts events dropped for lack of an AppID.
	NoTrace int
	// Errors counts events whose transformation or storage failed.
	Errors int
}

// Pipeline routes application events through the registered recorder
// clients into the provenance store. It is safe for concurrent use.
type Pipeline struct {
	st       *store.Store
	mappings []*Mapping

	mu    sync.Mutex
	seq   int
	stats Stats
}

// NewPipeline builds a pipeline over the store with the given recorder
// mappings, validating each against the store's data model.
func NewPipeline(st *store.Store, mappings ...*Mapping) (*Pipeline, error) {
	if st == nil {
		return nil, fmt.Errorf("events: nil store")
	}
	seen := make(map[string]bool)
	for _, m := range mappings {
		if err := m.validate(st.Model()); err != nil {
			return nil, err
		}
		key := m.Source + "\x00" + m.EventType
		if seen[key] {
			return nil, fmt.Errorf("events: two mappings match (%s, %s)", m.Source, m.EventType)
		}
		seen[key] = true
	}
	return &Pipeline{st: st, mappings: mappings}, nil
}

// Ingest processes one application event. Unmatched events and events
// without a trace ID are counted, not errors: in a partially managed
// environment both are routine.
func (p *Pipeline) Ingest(ev AppEvent) error {
	p.mu.Lock()
	p.stats.Ingested++
	p.mu.Unlock()

	var m *Mapping
	for _, cand := range p.mappings {
		if cand.matches(ev) {
			m = cand
			break
		}
	}
	if m == nil {
		p.mu.Lock()
		p.stats.Unmatched++
		p.mu.Unlock()
		return nil
	}
	if ev.AppID == "" {
		p.mu.Lock()
		p.stats.NoTrace++
		p.mu.Unlock()
		return nil
	}
	n, err := p.transform(m, ev)
	if err != nil {
		p.mu.Lock()
		p.stats.Errors++
		p.mu.Unlock()
		return fmt.Errorf("events: recorder %s: %v", m.Name, err)
	}
	if err := p.st.PutNode(n); err != nil {
		p.mu.Lock()
		p.stats.Errors++
		p.mu.Unlock()
		return fmt.Errorf("events: recorder %s: %v", m.Name, err)
	}
	p.mu.Lock()
	p.stats.Recorded++
	p.mu.Unlock()
	return nil
}

// EventError records the failure of one event within a batch.
type EventError struct {
	// Index is the event's position in the submitted batch.
	Index int
	// Err is the per-event ingestion failure.
	Err error
}

// BatchError aggregates every per-event failure from one IngestAll call.
// The batch is not transactional: events that succeeded stay recorded.
type BatchError struct {
	// Failed lists the failing events in batch order.
	Failed []EventError
	// Total is the size of the submitted batch.
	Total int
}

func (b *BatchError) Error() string {
	return fmt.Sprintf("events: %d of %d events failed; first (event %d): %v",
		len(b.Failed), b.Total, b.Failed[0].Index, b.Failed[0].Err)
}

// Unwrap exposes the first per-event error for errors.Is/As chains.
func (b *BatchError) Unwrap() error { return b.Failed[0].Err }

// IngestAll processes a batch, continuing past per-event errors. When any
// event fails it returns a *BatchError naming every failing index, so
// callers can surface exactly which events were rejected while the rest
// of the batch stays recorded.
func (p *Pipeline) IngestAll(evs []AppEvent) error {
	var failed []EventError
	for i, ev := range evs {
		if err := p.Ingest(ev); err != nil {
			failed = append(failed, EventError{Index: i, Err: err})
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &BatchError{Failed: failed, Total: len(evs)}
}

// transform builds the provenance node for the event.
func (p *Pipeline) transform(m *Mapping, ev AppEvent) (*provenance.Node, error) {
	id := ""
	if m.IDKey != "" {
		id = ev.Payload[m.IDKey]
		if id == "" {
			return nil, fmt.Errorf("event lacks ID key %q", m.IDKey)
		}
	} else {
		p.mu.Lock()
		p.seq++
		id = fmt.Sprintf("PE%d", p.seq)
		p.mu.Unlock()
	}
	n := &provenance.Node{
		ID: id, Class: m.Class, Type: m.NodeType, AppID: ev.AppID,
		Timestamp: ev.Timestamp,
	}
	for _, f := range m.Fields {
		raw, ok := ev.Payload[f.PayloadKey]
		if !ok {
			if f.Required {
				return nil, fmt.Errorf("event lacks required field %q", f.PayloadKey)
			}
			continue
		}
		v, err := provenance.ParseValue(f.Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("field %q: %v", f.PayloadKey, err)
		}
		n.SetAttr(f.Attr, v)
	}
	return n, nil
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Recorders lists the registered recorder names, sorted.
func (p *Pipeline) Recorders() []string {
	names := make([]string, 0, len(p.mappings))
	for _, m := range p.mappings {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}
