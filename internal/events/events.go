// Package events implements the capture side of the business provenance
// system (Section II-A of the paper): application events produced by the
// underlying IT systems are processed by recorder clients, transformed
// into provenance events, and recorded in the provenance store.
//
// Recorder clients deliberately do not copy all application data: each
// recorder declares exactly which payload fields are captured, so
// irrelevant or sensitive data never reaches the provenance store.
package events

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/tenant"
)

// AppEvent is one raw event emitted by an application: a task being
// performed, data being accessed or modified, and so on. Payload carries
// the application's own key/value data; recorders pick the relevant subset.
type AppEvent struct {
	// Source names the emitting system ("lombardi", "hr-db", "mail").
	Source string
	// Type is the event type within the source ("requisition.submitted").
	Type string
	// AppID correlates the event to a process execution trace. Unmanaged
	// activities may emit events without one; those events are dropped and
	// counted (they cannot be placed in any trace).
	AppID string
	// Timestamp is the application-reported event time.
	Timestamp time.Time
	// Payload is the raw application data.
	Payload map[string]string
}

// FieldMapping copies one payload key into one typed provenance attribute.
type FieldMapping struct {
	// PayloadKey is the application payload key to read.
	PayloadKey string
	// Attr is the provenance attribute to write (a field declared in the
	// data model).
	Attr string
	// Kind is the attribute's declared kind; the payload string is parsed
	// accordingly.
	Kind provenance.Kind
	// Required marks fields whose absence makes the event unrecordable.
	// Non-required fields are simply skipped when missing — the partial
	// capture the paper's partially managed setting implies.
	Required bool
}

// Mapping is a declarative recorder client: it matches application events
// by (source, type) and transforms them into one provenance node.
type Mapping struct {
	// Name identifies the recorder in stats and errors.
	Name string
	// Source and EventType select the application events this recorder
	// processes. An empty Source matches any source.
	Source    string
	EventType string
	// NodeType and Class give the provenance record type produced.
	NodeType string
	Class    provenance.Class
	// IDKey is the payload key holding a stable record identifier. When
	// empty the pipeline assigns a sequential ID ("PE<n>").
	IDKey string
	// Fields lists the payload fields to capture. Anything not listed is
	// not copied.
	Fields []FieldMapping
}

// validate checks the mapping declaration against the data model.
func (m *Mapping) validate(model *provenance.Model) error {
	if m.Name == "" {
		return fmt.Errorf("events: mapping with empty name")
	}
	if m.EventType == "" {
		return fmt.Errorf("events: mapping %s matches no event type", m.Name)
	}
	if !m.Class.IsNode() {
		return fmt.Errorf("events: mapping %s has non-node class %v", m.Name, m.Class)
	}
	if model == nil {
		return nil
	}
	t := model.Type(m.NodeType)
	if t == nil {
		return fmt.Errorf("events: mapping %s produces undeclared type %s", m.Name, m.NodeType)
	}
	if t.Class != m.Class {
		return fmt.Errorf("events: mapping %s: type %s is class %v, mapping says %v",
			m.Name, m.NodeType, t.Class, m.Class)
	}
	for _, f := range m.Fields {
		fd := t.Field(f.Attr)
		if fd == nil {
			return fmt.Errorf("events: mapping %s maps undeclared field %s.%s", m.Name, m.NodeType, f.Attr)
		}
		if fd.Kind != f.Kind {
			return fmt.Errorf("events: mapping %s: field %s.%s is %v, mapping says %v",
				m.Name, m.NodeType, f.Attr, fd.Kind, f.Kind)
		}
	}
	return nil
}

// matches reports whether the mapping applies to the event.
func (m *Mapping) matches(ev AppEvent) bool {
	return ev.Type == m.EventType && (m.Source == "" || ev.Source == m.Source)
}

// RecorderStats counts one recorder client's outcomes, keyed by the
// recorder's name in Stats.PerRecorder.
type RecorderStats struct {
	// Recorded counts events this recorder turned into provenance records.
	Recorded int
	// NoTrace counts events this recorder matched but had to drop for lack
	// of an AppID — the package doc's "dropped and counted" promise, now
	// attributable to the recorder that saw them.
	NoTrace int
	// TransformErrors counts events whose payload-to-record transformation
	// failed (missing required fields, unparsable values).
	TransformErrors int
	// StoreErrors counts records the provenance store rejected.
	StoreErrors int
	// Duplicates counts at-least-once redeliveries absorbed idempotently:
	// the record was already stored with identical content.
	Duplicates int
}

// Stats counts pipeline outcomes.
type Stats struct {
	// Ingested counts every event offered to the pipeline.
	Ingested int
	// Recorded counts events transformed into provenance records.
	Recorded int
	// Unmatched counts events no recorder claimed.
	Unmatched int
	// NoTrace counts events dropped for lack of an AppID.
	NoTrace int
	// Errors counts events whose transformation or storage failed.
	Errors int
	// Duplicates counts redelivered events absorbed idempotently (keyed
	// ingestion only; the single-event path still reports them as errors).
	Duplicates int
	// PerRecorder breaks Recorded/NoTrace/errors/duplicates down by
	// recorder name.
	PerRecorder map[string]RecorderStats
}

// Pipeline routes application events through the registered recorder
// clients into the provenance store. It is safe for concurrent use.
type Pipeline struct {
	st       *store.Store
	mappings []*Mapping

	mu    sync.Mutex
	seq   int
	stats Stats
}

// NewPipeline builds a pipeline over the store with the given recorder
// mappings, validating each against the store's data model.
func NewPipeline(st *store.Store, mappings ...*Mapping) (*Pipeline, error) {
	if st == nil {
		return nil, fmt.Errorf("events: nil store")
	}
	seen := make(map[string]bool)
	for _, m := range mappings {
		if err := m.validate(st.Model()); err != nil {
			return nil, err
		}
		key := m.Source + "\x00" + m.EventType
		if seen[key] {
			return nil, fmt.Errorf("events: two mappings match (%s, %s)", m.Source, m.EventType)
		}
		seen[key] = true
	}
	return &Pipeline{st: st, mappings: mappings}, nil
}

// rec returns the named recorder's mutable counter bucket. Caller holds
// p.mu; the returned pointer must not escape the critical section.
func (p *Pipeline) rec(name string) *RecorderStats {
	if p.stats.PerRecorder == nil {
		p.stats.PerRecorder = make(map[string]RecorderStats)
	}
	rs := p.stats.PerRecorder[name]
	return &rs
}

// bump applies fn to the named recorder's counters under the lock.
func (p *Pipeline) bump(name string, fn func(*RecorderStats)) {
	rs := p.rec(name)
	fn(rs)
	p.stats.PerRecorder[name] = *rs
}

// match finds the recorder claiming the event, counting Ingested and
// Unmatched. A nil return means no recorder matched. Caller holds no lock.
func (p *Pipeline) match(ev AppEvent) *Mapping {
	p.mu.Lock()
	p.stats.Ingested++
	p.mu.Unlock()
	for _, cand := range p.mappings {
		if cand.matches(ev) {
			return cand
		}
	}
	p.mu.Lock()
	p.stats.Unmatched++
	p.mu.Unlock()
	return nil
}

// Ingest processes one application event. Unmatched events and events
// without a trace ID are counted, not errors: in a partially managed
// environment both are routine.
func (p *Pipeline) Ingest(ev AppEvent) error {
	m := p.match(ev)
	if m == nil {
		return nil
	}
	if ev.AppID == "" {
		p.mu.Lock()
		p.stats.NoTrace++
		p.bump(m.Name, func(rs *RecorderStats) { rs.NoTrace++ })
		p.mu.Unlock()
		return nil
	}
	n, err := p.transform(m, ev, "", 0)
	if err != nil {
		p.mu.Lock()
		p.stats.Errors++
		p.bump(m.Name, func(rs *RecorderStats) { rs.TransformErrors++ })
		p.mu.Unlock()
		return fmt.Errorf("events: recorder %s: %v", m.Name, err)
	}
	if err := p.st.PutNode(n); err != nil {
		p.mu.Lock()
		p.stats.Errors++
		p.bump(m.Name, func(rs *RecorderStats) { rs.StoreErrors++ })
		p.mu.Unlock()
		return fmt.Errorf("events: recorder %s: %v", m.Name, err)
	}
	p.mu.Lock()
	p.stats.Recorded++
	p.bump(m.Name, func(rs *RecorderStats) { rs.Recorded++ })
	p.mu.Unlock()
	return nil
}

// EventError records the failure of one event within a batch.
type EventError struct {
	// Index is the event's position in the submitted batch.
	Index int
	// Err is the per-event ingestion failure.
	Err error
}

// BatchError aggregates every per-event failure from one IngestAll call.
// The batch is not transactional: events that succeeded stay recorded.
type BatchError struct {
	// Failed lists the failing events in batch order.
	Failed []EventError
	// Total is the size of the submitted batch.
	Total int
}

func (b *BatchError) Error() string {
	return fmt.Sprintf("events: %d of %d events failed; first (event %d): %v",
		len(b.Failed), b.Total, b.Failed[0].Index, b.Failed[0].Err)
}

// Unwrap exposes the first per-event error for errors.Is/As chains.
func (b *BatchError) Unwrap() error { return b.Failed[0].Err }

// IngestAll processes a batch, continuing past per-event errors. When any
// event fails it returns a *BatchError naming every failing index, so
// callers can surface exactly which events were rejected while the rest
// of the batch stays recorded.
func (p *Pipeline) IngestAll(evs []AppEvent) error {
	var failed []EventError
	for i, ev := range evs {
		if err := p.Ingest(ev); err != nil {
			failed = append(failed, EventError{Index: i, Err: err})
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &BatchError{Failed: failed, Total: len(evs)}
}

// KeyedEvent pairs one application event with its idempotent delivery
// identity: the idempotency key of the client batch that carried it and
// the event's index within that batch. The pair makes the event's derived
// record ID stable across redeliveries.
type KeyedEvent struct {
	Event AppEvent
	// Key is the client batch's idempotency key; empty falls back to the
	// pipeline's sequential ID assignment.
	Key string
	// Index is the event's position within its keyed client batch (not
	// within the coalesced run handed to IngestKeyed).
	Index int
}

// IngestKeyed processes a coalesced run of keyed events — the ingestion
// gateway's unit of work — with at-least-once delivery semantics and one
// store commit for the whole run:
//
//   - Events without a mapping-declared ID key get IDs derived from
//     (batch key, index), so a redelivered batch regenerates identical
//     records.
//   - Records the store rejects as duplicates of byte-identical rows are
//     counted as Duplicates and treated as success: the event is already
//     recorded, which is exactly what at-least-once asks for. A duplicate
//     ID with DIFFERENT content is still an error (an ID collision).
//   - All surviving records are committed through store.PutNodes: one log
//     flush, one shared fsync, one snapshot, regardless of run size.
//
// The returned *BatchError (if any) indexes failures by position in kevs,
// so the gateway can map them back to each client batch's own indices.
func (p *Pipeline) IngestKeyed(kevs []KeyedEvent) error {
	var failed []EventError
	nodes := make([]*provenance.Node, 0, len(kevs))
	names := make([]string, 0, len(kevs)) // recorder per node
	at := make([]int, 0, len(kevs))       // nodes[j] transforms kevs[at[j]]
	for i, kev := range kevs {
		m := p.match(kev.Event)
		if m == nil {
			continue
		}
		if kev.Event.AppID == "" {
			p.mu.Lock()
			p.stats.NoTrace++
			p.bump(m.Name, func(rs *RecorderStats) { rs.NoTrace++ })
			p.mu.Unlock()
			continue
		}
		n, err := p.transform(m, kev.Event, kev.Key, kev.Index)
		if err != nil {
			p.mu.Lock()
			p.stats.Errors++
			p.bump(m.Name, func(rs *RecorderStats) { rs.TransformErrors++ })
			p.mu.Unlock()
			failed = append(failed, EventError{Index: i, Err: fmt.Errorf("events: recorder %s: %v", m.Name, err)})
			continue
		}
		nodes = append(nodes, n)
		names = append(names, m.Name)
		at = append(at, i)
	}
	for j, err := range p.st.PutNodes(nodes) {
		switch {
		case err == nil:
			p.mu.Lock()
			p.stats.Recorded++
			p.bump(names[j], func(rs *RecorderStats) { rs.Recorded++ })
			p.mu.Unlock()
		case errors.Is(err, provenance.ErrDuplicate) && p.sameRow(nodes[j]):
			p.mu.Lock()
			p.stats.Duplicates++
			p.bump(names[j], func(rs *RecorderStats) { rs.Duplicates++ })
			p.mu.Unlock()
		default:
			p.mu.Lock()
			p.stats.Errors++
			p.bump(names[j], func(rs *RecorderStats) { rs.StoreErrors++ })
			p.mu.Unlock()
			failed = append(failed, EventError{Index: at[j], Err: fmt.Errorf("events: recorder %s: %v", names[j], err)})
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
	return &BatchError{Failed: failed, Total: len(kevs)}
}

// sameRow reports whether the store already holds n encoded to the exact
// same Table-1 row — the signature of a redelivered record. Row encoding
// is deterministic (attributes sort), so byte equality is content equality.
func (p *Pipeline) sameRow(n *provenance.Node) bool {
	row, err := store.EncodeNode(n)
	if err != nil {
		return false
	}
	have, ok := p.st.Row(n.ID)
	return ok && have.XML == row.XML
}

// transform builds the provenance node for the event. Events whose
// mapping declares no stable ID key normally receive a sequential ID;
// when the event arrived under a batch idempotency key the ID is derived
// from (key, index) instead, so a redelivered batch regenerates byte-for-
// byte identical records — the property that makes at-least-once delivery
// safe (the store rejects the duplicate, the pipeline recognizes it as
// already recorded).
func (p *Pipeline) transform(m *Mapping, ev AppEvent, key string, index int) (*provenance.Node, error) {
	id := ""
	if m.IDKey != "" {
		id = ev.Payload[m.IDKey]
		if id == "" {
			return nil, fmt.Errorf("event lacks ID key %q", m.IDKey)
		}
		// Record IDs live in one global keyspace (node IDs key the whole
		// store), so they carry the trace's namespace too: without this,
		// two tenants ingesting the same workload collide on record IDs,
		// and a default-tenant payload could alias another tenant's
		// records outright. The default tenant is the identity, but then
		// the separator is reserved — a bare-namespace record must not be
		// able to name a qualified key.
		if own := tenant.Owner(ev.AppID); own != tenant.DefaultID {
			id = tenant.Qualify(own, id)
		} else if !tenant.IsBare(id) {
			return nil, fmt.Errorf("record ID %q: the namespace separator is reserved", id)
		}
	} else if key != "" {
		id = fmt.Sprintf("PE-%s-%d", key, index)
	} else {
		p.mu.Lock()
		p.seq++
		id = fmt.Sprintf("PE%d", p.seq)
		p.mu.Unlock()
	}
	n := &provenance.Node{
		ID: id, Class: m.Class, Type: m.NodeType, AppID: ev.AppID,
		Timestamp: ev.Timestamp,
	}
	for _, f := range m.Fields {
		raw, ok := ev.Payload[f.PayloadKey]
		if !ok {
			if f.Required {
				return nil, fmt.Errorf("event lacks required field %q", f.PayloadKey)
			}
			continue
		}
		v, err := provenance.ParseValue(f.Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("field %q: %v", f.PayloadKey, err)
		}
		n.SetAttr(f.Attr, v)
	}
	return n, nil
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	if p.stats.PerRecorder != nil {
		st.PerRecorder = make(map[string]RecorderStats, len(p.stats.PerRecorder))
		for name, rs := range p.stats.PerRecorder {
			st.PerRecorder[name] = rs
		}
	}
	return st
}

// Recorders lists the registered recorder names, sorted.
func (p *Pipeline) Recorders() []string {
	names := make([]string, 0, len(p.mappings))
	for _, m := range p.mappings {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}
