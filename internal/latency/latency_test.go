package latency

import (
	"testing"
	"time"
)

func TestDigestQuantiles(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ramp1000 := func() []time.Duration {
		s := make([]time.Duration, 1000)
		for i := range s {
			s[i] = ms(i + 1) // 1ms..1000ms
		}
		return s
	}
	cases := []struct {
		name           string
		samples        []time.Duration
		p50, p99, p999 time.Duration
		max, mean      time.Duration
	}{
		{name: "empty"},
		{
			name:    "single",
			samples: []time.Duration{ms(7)},
			p50:     ms(7), p99: ms(7), p999: ms(7), max: ms(7), mean: ms(7),
		},
		{
			name:    "duplicates",
			samples: []time.Duration{ms(5), ms(5), ms(5), ms(5)},
			p50:     ms(5), p99: ms(5), p999: ms(5), max: ms(5), mean: ms(5),
		},
		{
			name:    "ramp-1000",
			samples: ramp1000(),
			// idx = floor((n-1)*q): 499 -> 500ms, 989 -> 990ms, 998 -> 999ms.
			p50: ms(500), p99: ms(990), p999: ms(999),
			max: ms(1000), mean: ms(500), // (1+1000)/2 = 500.5, truncates to 500ms? -> 500500us
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d Digest
			// Insert in reverse to prove ordering doesn't matter.
			for i := len(tc.samples) - 1; i >= 0; i-- {
				d.Add(tc.samples[i])
			}
			if d.Count() != len(tc.samples) {
				t.Fatalf("Count = %d, want %d", d.Count(), len(tc.samples))
			}
			if got := d.P50(); got != tc.p50 {
				t.Errorf("P50 = %v, want %v", got, tc.p50)
			}
			if got := d.P99(); got != tc.p99 {
				t.Errorf("P99 = %v, want %v", got, tc.p99)
			}
			if got := d.P999(); got != tc.p999 {
				t.Errorf("P999 = %v, want %v", got, tc.p999)
			}
			if got := d.Max(); got != tc.max {
				t.Errorf("Max = %v, want %v", got, tc.max)
			}
			if tc.name != "ramp-1000" { // mean truncation checked below
				if got := d.Mean(); got != tc.mean {
					t.Errorf("Mean = %v, want %v", got, tc.mean)
				}
			}
		})
	}
}

func TestDigestMeanTruncates(t *testing.T) {
	var d Digest
	for i := 1; i <= 1000; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if got, want := d.Mean(), 500500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestDigestMergeAndInterleavedAdd(t *testing.T) {
	var a, b Digest
	for i := 1; i <= 50; i++ {
		a.Add(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Add(time.Duration(i) * time.Millisecond)
	}
	// Query before merge, then merge and query again: the digest must
	// re-sort after post-query mutation.
	if got, want := a.Max(), 50*time.Millisecond; got != want {
		t.Fatalf("pre-merge Max = %v, want %v", got, want)
	}
	a.Merge(&b)
	a.Merge(nil) // no-op
	if got, want := a.Count(), 100; got != want {
		t.Fatalf("merged Count = %d, want %d", got, want)
	}
	if got, want := a.P50(), 50*time.Millisecond; got != want {
		t.Errorf("merged P50 = %v, want %v", got, want)
	}
	if got, want := a.Max(), 100*time.Millisecond; got != want {
		t.Errorf("merged Max = %v, want %v", got, want)
	}
}

func TestDigestQuantileClamps(t *testing.T) {
	var d Digest
	d.AddAll([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	if got := d.Quantile(-0.5); got != time.Millisecond {
		t.Errorf("Quantile(-0.5) = %v, want 1ms", got)
	}
	if got := d.Quantile(1.5); got != 2*time.Millisecond {
		t.Errorf("Quantile(1.5) = %v, want 2ms", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var d Digest
	if s := d.Summary(); s != (Summary{}) {
		t.Errorf("empty Summary = %+v, want zero", s)
	}
}
