// Package latency is the shared latency-digest used by every harness
// that reports percentile latencies: the E-series experiments, the
// testing.B benchmarks in bench_test.go, and the provbench open-loop
// load harness. Before it existed each site re-implemented the same
// sorted-index quantile computation; keeping one copy keeps every
// reported p99 comparable across harnesses.
//
// The digest is exact, not approximate: it retains every sample and
// sorts on demand. The harnesses that use it collect at most a few
// million samples per run, where an exact digest is both cheap and
// simpler to reason about than a sketch.
package latency

import (
	"sort"
	"time"
)

// Digest accumulates duration samples and answers quantile queries.
// The zero value is ready to use. Not safe for concurrent use; collect
// per-goroutine and Merge.
type Digest struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (d *Digest) Add(s time.Duration) {
	d.samples = append(d.samples, s)
	d.sorted = false
}

// AddAll records a batch of samples.
func (d *Digest) AddAll(s []time.Duration) {
	d.samples = append(d.samples, s...)
	d.sorted = false
}

// Merge folds another digest's samples into d.
func (d *Digest) Merge(o *Digest) {
	if o == nil {
		return
	}
	d.AddAll(o.samples)
}

// Count reports the number of recorded samples.
func (d *Digest) Count() int { return len(d.samples) }

func (d *Digest) sort() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using the sorted-index
// convention idx = floor((n-1)*q) — the same convention the repo's
// benchmarks have always reported, so numbers stay comparable across
// PRs. An empty digest returns 0; q is clamped to [0, 1].
func (d *Digest) Quantile(q float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	d.sort()
	return d.samples[int(float64(len(d.samples)-1)*q)]
}

// P50 is the median.
func (d *Digest) P50() time.Duration { return d.Quantile(0.50) }

// P99 is the 99th percentile.
func (d *Digest) P99() time.Duration { return d.Quantile(0.99) }

// P999 is the 99.9th percentile.
func (d *Digest) P999() time.Duration { return d.Quantile(0.999) }

// Max returns the largest sample (0 when empty).
func (d *Digest) Max() time.Duration { return d.Quantile(1) }

// Mean returns the arithmetic mean (0 when empty).
func (d *Digest) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range d.samples {
		sum += s
	}
	return sum / time.Duration(len(d.samples))
}

// Summary is a serializable snapshot of the digest's headline
// quantiles, in microseconds for stable machine-readable output.
type Summary struct {
	Count  int   `json:"count"`
	P50US  int64 `json:"p50us"`
	P99US  int64 `json:"p99us"`
	P999US int64 `json:"p999us"`
	MaxUS  int64 `json:"maxUs"`
	MeanUS int64 `json:"meanUs"`
}

// Summary computes the snapshot.
func (d *Digest) Summary() Summary {
	return Summary{
		Count:  d.Count(),
		P50US:  d.P50().Microseconds(),
		P99US:  d.P99().Microseconds(),
		P999US: d.P999().Microseconds(),
		MaxUS:  d.Max().Microseconds(),
		MeanUS: d.Mean().Microseconds(),
	}
}
