package bal

import (
	"fmt"
	"strings"
)

// RuleText is a parsed internal control: the paper's four-part structure
// with definitions, a condition, and the then/else action lists.
type RuleText struct {
	Definitions []*Definition
	If          Cond
	Then        []Action
	Else        []Action
}

// Definition binds a variable in the definitions section:
//
//	set 'the current request' to a job requisition
//	  where the requisition id of this job requisition is "REQ001" ;
//	set 'the general manager' to the manager of 'the hiring manager' ;
type Definition struct {
	// Var is the normalized variable name.
	Var string
	// Binder is set for "a <concept> [where <cond>]" terms; Expr for
	// plain expression terms. Exactly one is non-nil.
	Binder *Binder
	Expr   Expr
	// Pos locates the definition for diagnostics.
	Pos Pos
}

// Binder selects a node of a concept, optionally constrained by a
// condition evaluated with "this" bound to the candidate.
type Binder struct {
	// Concept is the matched concept label ("job requisition").
	Concept string
	// Where is the optional constraint (nil = any instance).
	Where Cond
	// Pos locates the binder.
	Pos Pos
}

// Expr is a value expression.
type Expr interface {
	exprNode()
	// Pos locates the expression.
	Position() Pos
	// String renders the expression in (normalized) business syntax.
	String() string
}

// Lit is a literal: string, number, or boolean.
type Lit struct {
	// Text is the literal's lexical form; Kind distinguishes it.
	Text string
	Kind LitKind
	Pos  Pos
}

// LitKind classifies literals.
type LitKind int

const (
	// LitString is a double-quoted string.
	LitString LitKind = iota + 1
	// LitInt is an integer literal.
	LitInt
	// LitFloat is a decimal literal.
	LitFloat
	// LitBool is true or false.
	LitBool
)

func (*Lit) exprNode() {}

// Position implements Expr.
func (l *Lit) Position() Pos { return l.Pos }

// String implements Expr.
func (l *Lit) String() string {
	if l.Kind == LitString {
		return fmt.Sprintf("%q", l.Text)
	}
	return l.Text
}

// VarRef references a defined variable.
type VarRef struct {
	Name string
	Pos  Pos
}

func (*VarRef) exprNode() {}

// Position implements Expr.
func (v *VarRef) Position() Pos { return v.Pos }

// String implements Expr.
func (v *VarRef) String() string { return "'" + v.Name + "'" }

// This references the candidate instance inside a binder's where clause.
type This struct {
	Pos Pos
}

func (*This) exprNode() {}

// Position implements Expr.
func (t *This) Position() Pos { return t.Pos }

// String implements Expr.
func (t *This) String() string { return "this" }

// Nav is a phrase navigation: "the <phrase> of <expr>". The phrase is
// resolved against the BOM vocabulary at compile time, where the operand's
// concept is known.
type Nav struct {
	// Phrase is the matched (normalized) vocabulary phrase.
	Phrase string
	// Of is the operand expression.
	Of  Expr
	Pos Pos
}

func (*Nav) exprNode() {}

// Position implements Expr.
func (n *Nav) Position() Pos { return n.Pos }

// String implements Expr.
func (n *Nav) String() string { return "the " + n.Phrase + " of " + n.Of.String() }

// Count is "the number of <expr>": the cardinality of a navigation's
// node set (or 0/1 for a scalar's absence/presence).
type Count struct {
	Of  Expr
	Pos Pos
}

func (*Count) exprNode() {}

// Position implements Expr.
func (c *Count) Position() Pos { return c.Pos }

// String implements Expr.
func (c *Count) String() string { return "the number of " + c.Of.String() }

// Binary is an arithmetic expression.
type Binary struct {
	Op   string // + - * /
	L, R Expr
	Pos  Pos
}

func (*Binary) exprNode() {}

// Position implements Expr.
func (b *Binary) Position() Pos { return b.Pos }

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Neg is unary minus.
type Neg struct {
	E   Expr
	Pos Pos
}

func (*Neg) exprNode() {}

// Position implements Expr.
func (n *Neg) Position() Pos { return n.Pos }

// String implements Expr.
func (n *Neg) String() string { return "-" + n.E.String() }

// Cond is a boolean condition.
type Cond interface {
	condNode()
	// Position locates the condition.
	Position() Pos
	// String renders the condition in business syntax.
	String() string
}

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	// OpEq is "is".
	OpEq CmpOp = iota + 1
	// OpNe is "is not".
	OpNe
	// OpLt is "is less than" / "<".
	OpLt
	// OpLe is "is at most" / "<=".
	OpLe
	// OpGt is "is more than" / ">".
	OpGt
	// OpGe is "is at least" / ">=".
	OpGe
)

// String renders the operator in business syntax.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "is"
	case OpNe:
		return "is not"
	case OpLt:
		return "is less than"
	case OpLe:
		return "is at most"
	case OpGt:
		return "is more than"
	case OpGe:
		return "is at least"
	default:
		return "?"
	}
}

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
	Pos  Pos
}

func (*Cmp) condNode() {}

// Position implements Cond.
func (c *Cmp) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Cmp) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// IsNull tests "X is null" / "X is not null".
type IsNull struct {
	E       Expr
	Negated bool
	Pos     Pos
}

func (*IsNull) condNode() {}

// Position implements Cond.
func (c *IsNull) Position() Pos { return c.Pos }

// String implements Cond.
func (c *IsNull) String() string {
	if c.Negated {
		return c.E.String() + " is not null"
	}
	return c.E.String() + " is null"
}

// Exists tests "X exists" / "X does not exist": for navigations and
// binders it asks whether the referenced record was captured at all.
type Exists struct {
	E       Expr
	Negated bool
	Pos     Pos
}

func (*Exists) condNode() {}

// Position implements Cond.
func (c *Exists) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Exists) String() string {
	if c.Negated {
		return c.E.String() + " does not exist"
	}
	return c.E.String() + " exists"
}

// Between tests "X is between A and B" (inclusive).
type Between struct {
	E, Lo, Hi Expr
	Pos       Pos
}

func (*Between) condNode() {}

// Position implements Cond.
func (c *Between) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Between) String() string {
	return c.E.String() + " is between " + c.Lo.String() + " and " + c.Hi.String()
}

// InList tests "X is one of A, B, C".
type InList struct {
	E    Expr
	List []Expr
	Pos  Pos
}

func (*InList) condNode() {}

// Position implements Cond.
func (c *InList) Position() Pos { return c.Pos }

// String implements Cond.
func (c *InList) String() string {
	parts := make([]string, len(c.List))
	for i, e := range c.List {
		parts[i] = e.String()
	}
	return c.E.String() + " is one of " + strings.Join(parts, ", ")
}

// Within is the windowed temporal predicate
// "X is within <amount> <unit> of Y": the absolute distance between two
// captured timestamps is at most the window. Amount is the literal's
// lexical form and Unit the (singular) time unit word; Seconds carries
// the resolved window width.
type Within struct {
	E, Anchor Expr
	Amount    string
	Unit      string
	Seconds   int64
	Pos       Pos
}

func (*Within) condNode() {}

// Position implements Cond.
func (c *Within) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Within) String() string {
	unit := c.Unit
	if c.Amount != "1" {
		unit += "s"
	}
	return c.E.String() + " is within " + c.Amount + " " + unit + " of " + c.Anchor.String()
}

// Contains tests "X contains Y" (substring on strings).
type Contains struct {
	L, R Expr
	Pos  Pos
}

func (*Contains) condNode() {}

// Position implements Cond.
func (c *Contains) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Contains) String() string { return c.L.String() + " contains " + c.R.String() }

// And conjoins conditions.
type And struct {
	L, R Cond
	Pos  Pos
}

func (*And) condNode() {}

// Position implements Cond.
func (c *And) Position() Pos { return c.Pos }

// String implements Cond.
func (c *And) String() string { return "(" + c.L.String() + " and " + c.R.String() + ")" }

// Or disjoins conditions.
type Or struct {
	L, R Cond
	Pos  Pos
}

func (*Or) condNode() {}

// Position implements Cond.
func (c *Or) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Or) String() string { return "(" + c.L.String() + " or " + c.R.String() + ")" }

// Not negates a condition.
type Not struct {
	C   Cond
	Pos Pos
}

func (*Not) condNode() {}

// Position implements Cond.
func (c *Not) Position() Pos { return c.Pos }

// String implements Cond.
func (c *Not) String() string { return "not (" + c.C.String() + ")" }

// Action is a then/else action.
type Action interface {
	actionNode()
	// Position locates the action.
	Position() Pos
	// String renders the action in business syntax.
	String() string
}

// SetStatus declares the control satisfied or not satisfied — the paper's
// "Internal control is satisfied" / "Internal control is not satisfied".
type SetStatus struct {
	Satisfied bool
	Pos       Pos
}

func (*SetStatus) actionNode() {}

// Position implements Action.
func (a *SetStatus) Position() Pos { return a.Pos }

// String implements Action.
func (a *SetStatus) String() string {
	if a.Satisfied {
		return "the internal control is satisfied"
	}
	return "the internal control is not satisfied"
}

// Alert emits a message to the compliance dashboard.
type Alert struct {
	Message Expr
	Pos     Pos
}

func (*Alert) actionNode() {}

// Position implements Action.
func (a *Alert) Position() Pos { return a.Pos }

// String implements Action.
func (a *Alert) String() string { return "add alert " + a.Message.String() }
