package bal

import (
	"math/rand"
	"strconv"
	"testing"
)

// genCond builds a random condition in concrete syntax, for the print/
// reparse fixpoint property below.
func genCond(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return genComparison(rng)
	}
	switch rng.Intn(5) {
	case 0:
		return genComparison(rng)
	case 1:
		return "not " + genCond(rng, depth-1)
	case 2:
		return "(" + genCond(rng, depth-1) + " and " + genCond(rng, depth-1) + ")"
	case 3:
		return "(" + genCond(rng, depth-1) + " or " + genCond(rng, depth-1) + ")"
	default:
		return "(" + genCond(rng, depth-1) + ")"
	}
}

func genComparison(rng *rand.Rand) string {
	lhs := genExpr(rng, 1)
	switch rng.Intn(8) {
	case 0:
		return lhs + " is " + genExpr(rng, 0)
	case 1:
		return lhs + " is not " + genExpr(rng, 0)
	case 2:
		return lhs + " is at least " + genExpr(rng, 0)
	case 3:
		return lhs + " is more than " + genExpr(rng, 0)
	case 4:
		return lhs + " is null"
	case 5:
		return lhs + " exists"
	case 6:
		return lhs + " contains " + genExpr(rng, 0)
	default:
		return lhs + " is one of " + genExpr(rng, 0) + ", " + genExpr(rng, 0)
	}
}

func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return strconv.Itoa(rng.Intn(100))
		case 1:
			return `"s` + strconv.Itoa(rng.Intn(10)) + `"`
		case 2:
			return "'v" + strconv.Itoa(rng.Intn(3)) + "'"
		default:
			return "the headcount of 'v0'"
		}
	}
	switch rng.Intn(3) {
	case 0:
		return genExpr(rng, 0) + " + " + genExpr(rng, 0)
	case 1:
		return "(" + genExpr(rng, 0) + " * " + genExpr(rng, 0) + ")"
	default:
		return genExpr(rng, 0)
	}
}

// TestPrintReparseFixpoint: for random rule conditions, parsing the
// String() rendering of a parsed condition yields the same rendering —
// print∘parse is a fixpoint after one round.
func TestPrintReparseFixpoint(t *testing.T) {
	vocab := hiringVocab()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		src := "if " + genCond(rng, 3) + " then the internal control is satisfied ;"
		rt1, err := Parse(src, vocab)
		if err != nil {
			t.Fatalf("trial %d: generated condition failed to parse: %v\n%s", trial, err, src)
		}
		printed := rt1.If.String()
		rt2, err := Parse("if "+printed+" then the internal control is satisfied ;", vocab)
		if err != nil {
			t.Fatalf("trial %d: printed condition failed to reparse: %v\n%s", trial, err, printed)
		}
		if got := rt2.If.String(); got != printed {
			t.Fatalf("trial %d: print/reparse not a fixpoint:\n 1: %s\n 2: %s", trial, printed, got)
		}
	}
}
