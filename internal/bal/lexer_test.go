package bal

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	res := make([]TokenKind, len(toks))
	for i, t := range toks {
		res[i] = t.Kind
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`set 'The Current  Request' to a job requisition ;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokWord, "set"},
		{TokVar, "the current request"},
		{TokWord, "to"},
		{TokWord, "a"},
		{TokWord, "job"},
		{TokWord, "requisition"},
		{TokPunct, ";"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexStringsAndNumbers(t *testing.T) {
	toks, err := Lex(`"new POSITION" 42 3.14 true`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "new POSITION" {
		t.Errorf("string literal = %v", toks[0])
	}
	if toks[1].Kind != TokNumber || toks[1].Text != "42" {
		t.Errorf("int = %v", toks[1])
	}
	if toks[2].Kind != TokNumber || toks[2].Text != "3.14" {
		t.Errorf("float = %v", toks[2])
	}
	if toks[3].Kind != TokWord || toks[3].Text != "true" {
		t.Errorf("bool word = %v", toks[3])
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`< <= > >= + - * / ( ) , :`)
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"<", "<=", ">", ">=", "+", "-", "*", "/", "(", ")", ",", ":"}
	for i, w := range wantTexts {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("if # this is ignored\nthen")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "if" || toks[1].Text != "then" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("if\n  then")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("if pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("then pos = %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		"'unterminated",
		"\"multi\nline\"",
		"''",
		"@",
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestLexDot(t *testing.T) {
	if toks, err := Lex("2."); err != nil {
		// A stray dot is an unexpected character; either behavior (error
		// or number-then-error) is fine as long as it does not crash. The
		// lexer reports the dot.
		if e, ok := err.(*Error); !ok || e.Pos.Col != 2 {
			t.Errorf("err = %v", err)
		}
	} else if toks[0].Text != "2" {
		t.Errorf("toks = %v", kinds(toks))
	}
}
