package bal

import (
	"strings"
	"testing"
)

// fakeVocab is a minimal vocabulary for parser tests: fixed phrase and
// concept token sequences with longest-match semantics.
type fakeVocab struct {
	phrases  [][]string
	concepts [][]string
}

func (f *fakeVocab) MatchPhrases(tokens []string) []PhraseMatch {
	var out []PhraseMatch
	for n := len(tokens); n > 0; n-- {
		if phrase, k, ok := longest(f.phrases, tokens[:n]); ok && k == n {
			out = append(out, PhraseMatch{Phrase: phrase, N: k})
		}
	}
	return out
}

func (f *fakeVocab) MatchConceptLabel(tokens []string) (string, int, bool) {
	return longest(f.concepts, tokens)
}

func longest(seqs [][]string, tokens []string) (string, int, bool) {
	best := 0
	var bestSeq []string
	for _, seq := range seqs {
		if len(seq) > len(tokens) || len(seq) <= best {
			continue
		}
		match := true
		for i := range seq {
			if seq[i] != tokens[i] {
				match = false
				break
			}
		}
		if match {
			best = len(seq)
			bestSeq = seq
		}
	}
	if best == 0 {
		return "", 0, false
	}
	return strings.Join(bestSeq, " "), best, true
}

func hiringVocab() *fakeVocab {
	return &fakeVocab{
		phrases: [][]string{
			{"requisition", "id"},
			{"position", "type"},
			{"general", "manager"},
			{"manager"},
			{"approval"},
			{"approved"},
			{"submitter"},
			{"headcount"},
		},
		concepts: [][]string{
			{"job", "requisition"},
			{"approval", "status"},
			{"person"},
		},
	}
}

// paperRule is the paper's Section III example control, in this BAL.
const paperRule = `
definitions
  set 'the current request' to a job requisition
    where the requisition id of this job requisition is "REQ001" ;
  set 'the hiring manager' to the submitter of 'the current request' ;
  set 'the general manager' to the manager of 'the hiring manager' ;
if
  the position type of 'the current request' is "new"
  and the approval of 'the current request' is not null
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "missing general manager approval" ;
`

func TestParsePaperRule(t *testing.T) {
	rt, err := Parse(paperRule, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Definitions) != 3 {
		t.Fatalf("definitions = %d", len(rt.Definitions))
	}
	d0 := rt.Definitions[0]
	if d0.Var != "the current request" || d0.Binder == nil || d0.Binder.Concept != "job requisition" {
		t.Fatalf("def0 = %+v", d0)
	}
	where, ok := d0.Binder.Where.(*Cmp)
	if !ok || where.Op != OpEq {
		t.Fatalf("where = %#v", d0.Binder.Where)
	}
	nav, ok := where.L.(*Nav)
	if !ok || nav.Phrase != "requisition id" {
		t.Fatalf("where lhs = %#v", where.L)
	}
	if _, ok := nav.Of.(*This); !ok {
		t.Fatalf("where operand = %#v", nav.Of)
	}
	d1 := rt.Definitions[1]
	if d1.Binder != nil || d1.Expr == nil {
		t.Fatalf("def1 = %+v", d1)
	}
	n1, ok := d1.Expr.(*Nav)
	if !ok || n1.Phrase != "submitter" {
		t.Fatalf("def1 expr = %#v", d1.Expr)
	}
	if v, ok := n1.Of.(*VarRef); !ok || v.Name != "the current request" {
		t.Fatalf("def1 operand = %#v", n1.Of)
	}

	and, ok := rt.If.(*And)
	if !ok {
		t.Fatalf("if = %#v", rt.If)
	}
	if _, ok := and.L.(*Cmp); !ok {
		t.Fatalf("lhs = %#v", and.L)
	}
	isNull, ok := and.R.(*IsNull)
	if !ok || !isNull.Negated {
		t.Fatalf("rhs = %#v", and.R)
	}
	if len(rt.Then) != 1 || len(rt.Else) != 2 {
		t.Fatalf("actions = %d/%d", len(rt.Then), len(rt.Else))
	}
	if s, ok := rt.Then[0].(*SetStatus); !ok || !s.Satisfied {
		t.Fatalf("then = %#v", rt.Then[0])
	}
	if s, ok := rt.Else[0].(*SetStatus); !ok || s.Satisfied {
		t.Fatalf("else0 = %#v", rt.Else[0])
	}
	if a, ok := rt.Else[1].(*Alert); !ok || a.Message.(*Lit).Text != "missing general manager approval" {
		t.Fatalf("else1 = %#v", rt.Else[1])
	}
}

func TestParseLongestPhraseWins(t *testing.T) {
	// "general manager" must match as one phrase, not "manager" inside it;
	// the leading word "general" would otherwise be unparseable.
	src := `if the general manager of 'x' is "Jane" then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	cmp := rt.If.(*Cmp)
	if nav := cmp.L.(*Nav); nav.Phrase != "general manager" {
		t.Fatalf("phrase = %q", nav.Phrase)
	}
}

func TestParseChainedNavigation(t *testing.T) {
	src := `if the manager of the submitter of 'req' is "Jane" then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	outer := rt.If.(*Cmp).L.(*Nav)
	if outer.Phrase != "manager" {
		t.Fatalf("outer = %q", outer.Phrase)
	}
	inner, ok := outer.Of.(*Nav)
	if !ok || inner.Phrase != "submitter" {
		t.Fatalf("inner = %#v", outer.Of)
	}
	if v := inner.Of.(*VarRef); v.Name != "req" {
		t.Fatalf("var = %q", v.Name)
	}
}

func TestParseComparisonForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // String() of the parsed condition
	}{
		{`'x' is 5`, `'x' is 5`},
		{`'x' is not 5`, `'x' is not 5`},
		{`'x' is at least 5`, `'x' is at least 5`},
		{`'x' is at most 5`, `'x' is at most 5`},
		{`'x' is more than 5`, `'x' is more than 5`},
		{`'x' is less than 5`, `'x' is less than 5`},
		{`'x' < 5`, `'x' is less than 5`},
		{`'x' <= 5`, `'x' is at most 5`},
		{`'x' > 5`, `'x' is more than 5`},
		{`'x' >= 5`, `'x' is at least 5`},
		{`'x' is null`, `'x' is null`},
		{`'x' is not null`, `'x' is not null`},
		{`'x' exists`, `'x' exists`},
		{`'x' does not exist`, `'x' does not exist`},
		{`'x' contains "sub"`, `'x' contains "sub"`},
		{`'x' is one of "a", "b", "c"`, `'x' is one of "a", "b", "c"`},
		{`'x' is true`, `'x' is true`},
		{`not 'x' is 5`, `not ('x' is 5)`},
		{`it is not true that 'x' is 5`, `not ('x' is 5)`},
		{`'x' is 1 and 'y' is 2`, `('x' is 1 and 'y' is 2)`},
		{`'x' is 1 or 'y' is 2 and 'z' is 3`, `('x' is 1 or ('y' is 2 and 'z' is 3))`},
		{`('x' is 1 or 'y' is 2) and 'z' is 3`, `(('x' is 1 or 'y' is 2) and 'z' is 3)`},
	}
	for _, c := range cases {
		src := "if " + c.src + " then the internal control is satisfied ;"
		rt, err := Parse(src, hiringVocab())
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got := rt.If.String(); got != c.want {
			t.Errorf("%s parsed as %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	src := `if the headcount of 'x' + 2 * 3 is 10 - -4 then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	cmp := rt.If.(*Cmp)
	if got := cmp.L.String(); got != "(the headcount of 'x' + (2 * 3))" {
		t.Errorf("lhs = %s", got)
	}
	if got := cmp.R.String(); got != "(10 - -4)" {
		t.Errorf("rhs = %s", got)
	}
}

func TestParseParenthesizedExpression(t *testing.T) {
	src := `if (the headcount of 'x' + 1) * 2 is 6 then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.If.(*Cmp).L.String(); got != "((the headcount of 'x' + 1) * 2)" {
		t.Errorf("lhs = %s", got)
	}
}

func TestParseThisWithConceptEcho(t *testing.T) {
	src := `definitions
  set 'r' to a job requisition where the position type of this job requisition is "new" ;
if 'r' exists then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	where := rt.Definitions[0].Binder.Where.(*Cmp)
	if _, ok := where.L.(*Nav).Of.(*This); !ok {
		t.Fatalf("operand = %#v", where.L.(*Nav).Of)
	}
	// Bare "this" works too.
	src2 := `definitions
  set 'r' to a job requisition where the position type of this is "new" ;
if 'r' exists then the internal control is satisfied ;`
	if _, err := Parse(src2, hiringVocab()); err != nil {
		t.Fatal(err)
	}
}

func TestParseBinderWithoutWhere(t *testing.T) {
	src := `definitions
  set 'p' to a person ;
if 'p' exists then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	b := rt.Definitions[0].Binder
	if b == nil || b.Concept != "person" || b.Where != nil {
		t.Fatalf("binder = %+v", b)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{``, `expected "if"`},
		{`if then the internal control is satisfied ;`, "expected an expression"},
		{`if 'x' is 1 then`, "at least one action"},
		{`if 'x' is 1 then the internal control is satisfied ; else`, "at least one action"},
		{`if 'x' then the internal control is satisfied ;`, "expected a comparison"},
		{`if the unicorn of 'x' is 1 then the internal control is satisfied ;`, "unknown business phrase"},
		{`definitions set 'x' to a unicorn ; if 'x' exists then the internal control is satisfied ;`, "unknown business concept"},
		{`definitions set x to a person ; if 'x' exists then the internal control is satisfied ;`, "quoted variable"},
		{`definitions set 'x' to a person if 'x' exists then the internal control is satisfied ;`, `expected ";"`},
		{`if 'x' is 1 then the internal control is satisfied ; trailing`, "expected"},
		{`if 'x' is 1 then the internal control is maybe ;`, `expected "satisfied"`},
		{`if the manager 'x' is 1 then the internal control is satisfied ;`, `expected "of"`},
		{`if ('x' is 1 then the internal control is satisfied ;`, ""},
	}
	for _, c := range cases {
		_, err := Parse(c.src, hiringVocab())
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	src := "if\n  the unicorn of 'x' is 1\nthen the internal control is satisfied ;"
	_, err := Parse(src, hiringVocab())
	if err == nil {
		t.Fatal("parse succeeded")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", e.Pos.Line)
	}
}

func TestParseDefinitionsWithoutKeywordRejected(t *testing.T) {
	src := `set 'x' to a person ; if 'x' exists then the internal control is satisfied ;`
	if _, err := Parse(src, hiringVocab()); err == nil {
		t.Fatal("definitions without the keyword accepted")
	}
}

func BenchmarkParsePaperRule(b *testing.B) {
	v := hiringVocab()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperRule, v); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseCount(t *testing.T) {
	src := `if the number of the approval of 'r' is 1 then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	cmp := rt.If.(*Cmp)
	cnt, ok := cmp.L.(*Count)
	if !ok {
		t.Fatalf("lhs = %#v", cmp.L)
	}
	if nav, ok := cnt.Of.(*Nav); !ok || nav.Phrase != "approval" {
		t.Fatalf("count operand = %#v", cnt.Of)
	}
	if got := cmp.L.String(); got != "the number of the approval of 'r'" {
		t.Errorf("String = %s", got)
	}
}

func TestParseBetween(t *testing.T) {
	src := `if the headcount of 'r' is between 1 and 5 and 'x' is 2 then the internal control is satisfied ;`
	rt, err := Parse(src, hiringVocab())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := rt.If.(*And)
	if !ok {
		t.Fatalf("if = %#v", rt.If)
	}
	btw, ok := and.L.(*Between)
	if !ok {
		t.Fatalf("lhs = %#v", and.L)
	}
	if got := btw.String(); got != "the headcount of 'r' is between 1 and 5" {
		t.Errorf("String = %s", got)
	}
	if _, err := Parse(`if 'x' is between 1 then the internal control is satisfied ;`, hiringVocab()); err == nil {
		t.Error("between without and accepted")
	}
}
