package bal

import (
	"strings"
	"unicode"
)

// Lex tokenizes rule text. Words are lower-cased (the language is case
// insensitive); string and variable literals keep their exact content.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	runes := []rune(src)
	i := 0
	advance := func(n int) {
		for k := 0; k < n && i < len(runes); k++ {
			if runes[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(runes) {
		r := runes[i]
		pos := Pos{line, col}
		switch {
		case unicode.IsSpace(r):
			advance(1)
		case r == '#': // comment to end of line
			for i < len(runes) && runes[i] != '\n' {
				advance(1)
			}
		case r == '"':
			advance(1)
			start := i
			for i < len(runes) && runes[i] != '"' {
				if runes[i] == '\n' {
					return nil, errf(pos, "unterminated string literal")
				}
				advance(1)
			}
			if i >= len(runes) {
				return nil, errf(pos, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: string(runes[start:i]), Pos: pos})
			advance(1) // closing quote
		case r == '\'':
			advance(1)
			start := i
			for i < len(runes) && runes[i] != '\'' {
				if runes[i] == '\n' {
					return nil, errf(pos, "unterminated variable name")
				}
				advance(1)
			}
			if i >= len(runes) {
				return nil, errf(pos, "unterminated variable name")
			}
			name := strings.Join(strings.Fields(strings.ToLower(string(runes[start:i]))), " ")
			if name == "" {
				return nil, errf(pos, "empty variable name")
			}
			toks = append(toks, Token{Kind: TokVar, Text: name, Pos: pos})
			advance(1)
		case unicode.IsDigit(r):
			start := i
			seenDot := false
			for i < len(runes) && (unicode.IsDigit(runes[i]) || (runes[i] == '.' && !seenDot)) {
				if runes[i] == '.' {
					// A dot must be followed by a digit to belong to the
					// number (no trailing-dot numbers).
					if i+1 >= len(runes) || !unicode.IsDigit(runes[i+1]) {
						break
					}
					seenDot = true
				}
				advance(1)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: string(runes[start:i]), Pos: pos})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_' || runes[i] == '-') {
				advance(1)
			}
			toks = append(toks, Token{Kind: TokWord, Text: strings.ToLower(string(runes[start:i])), Pos: pos})
		case r == ';' || r == ':' || r == ',' || r == '(' || r == ')':
			toks = append(toks, Token{Kind: TokPunct, Text: string(r), Pos: pos})
			advance(1)
		case r == '<' || r == '>':
			op := string(r)
			advance(1)
			if i < len(runes) && runes[i] == '=' {
				op += "="
				advance(1)
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: pos})
		case r == '+' || r == '-' || r == '*' || r == '/':
			toks = append(toks, Token{Kind: TokOp, Text: string(r), Pos: pos})
			advance(1)
		default:
			return nil, errf(pos, "unexpected character %q", string(r))
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: Pos{line, col}})
	return toks, nil
}
