// Package bal implements a Business Action Language in the style the
// paper adopts from ILOG JRules: internal controls are written as a
// definitions / if / then / else structure in business vocabulary, with
// "predefined constructs to build business rules and the operators that
// can be used in rule statements to perform arithmetic operations,
// associate or negate conditions, and compare expressions".
//
// The package provides the lexer, the vocabulary-aware recursive-descent
// parser (business phrases are matched against the BOM vocabulary with
// longest-match semantics), and the AST the rule compiler consumes.
package bal

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	// TokEOF ends the token stream.
	TokEOF TokenKind = iota
	// TokWord is a bare word (keyword or vocabulary token).
	TokWord
	// TokString is a double-quoted string literal.
	TokString
	// TokVar is a single-quoted variable name ('the current request').
	TokVar
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokPunct is one of ; : , ( ).
	TokPunct
	// TokOp is an operator: + - * / < > <= >=.
	TokOp
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokWord:
		return "word"
	case TokString:
		return "string"
	case TokVar:
		return "variable"
	case TokNumber:
		return "number"
	case TokPunct:
		return "punctuation"
	case TokOp:
		return "operator"
	default:
		return "invalid"
	}
}

// Pos locates a token in the rule text (1-based).
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token. Text holds the normalized payload: the
// lower-cased word, the unquoted string/variable, or the literal operator.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	case TokVar:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a parse or lex error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
