package bal

import (
	"strconv"
	"strings"
)

// Vocabulary is the phrase matcher the parser consults; implemented by
// *bom.Vocabulary. Phrase matching is longest-match (design decision D2):
// the parser hands the matcher the upcoming word tokens and the matcher
// consumes as many as form the longest known phrase.
type Vocabulary interface {
	// MatchPhrases returns every member phrase starting at tokens[0],
	// longest first. The parser picks the longest candidate that the
	// following grammar (the "of" keyword) accepts.
	MatchPhrases(tokens []string) []PhraseMatch
	// MatchConceptLabel matches a concept noun at tokens[0].
	MatchConceptLabel(tokens []string) (label string, n int, ok bool)
}

// PhraseMatch is one candidate phrase match (mirrors bom.PhraseMatch).
type PhraseMatch struct {
	Phrase string
	N      int
}

// Parse lexes and parses one internal control rule text.
func Parse(src string, vocab Vocabulary) (*RuleText, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, vocab: vocab}
	rt, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// maxPhraseWords bounds the lookahead handed to the phrase matcher.
const maxPhraseWords = 8

type parser struct {
	toks  []Token
	pos   int
	vocab Vocabulary
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// isWord reports whether the current token is the given word.
func (p *parser) isWord(w string) bool {
	t := p.cur()
	return t.Kind == TokWord && t.Text == w
}

// isWords reports whether the upcoming tokens are exactly these words.
func (p *parser) isWords(ws ...string) bool {
	for i, w := range ws {
		t := p.toks[min(p.pos+i, len(p.toks)-1)]
		if t.Kind != TokWord || t.Text != w {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// acceptWord consumes the word if present.
func (p *parser) acceptWord(w string) bool {
	if p.isWord(w) {
		p.pos++
		return true
	}
	return false
}

// acceptWords consumes the exact word sequence if present.
func (p *parser) acceptWords(ws ...string) bool {
	if p.isWords(ws...) {
		p.pos += len(ws)
		return true
	}
	return false
}

// expectWord consumes the word or fails.
func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return errf(p.cur().Pos, "expected %q, found %s", w, p.cur())
	}
	return nil
}

// expectPunct consumes the punctuation or fails.
func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.Kind == TokPunct && t.Text == s {
		p.pos++
		return nil
	}
	return errf(t.Pos, "expected %q, found %s", s, t)
}

// wordsAhead collects up to maxPhraseWords consecutive word tokens
// starting at the current position, for the phrase matcher.
func (p *parser) wordsAhead() []string {
	var ws []string
	for i := p.pos; i < len(p.toks) && len(ws) < maxPhraseWords; i++ {
		if p.toks[i].Kind != TokWord {
			break
		}
		ws = append(ws, p.toks[i].Text)
	}
	return ws
}

// parseRule parses the full definitions/if/then/else structure.
func (p *parser) parseRule() (*RuleText, error) {
	rt := &RuleText{}
	if p.acceptWord("definitions") {
		for !p.isWord("if") {
			if p.cur().Kind == TokEOF {
				return nil, errf(p.cur().Pos, "expected a definition or \"if\"")
			}
			def, err := p.parseDefinition()
			if err != nil {
				return nil, err
			}
			rt.Definitions = append(rt.Definitions, def)
		}
	}
	if err := p.expectWord("if"); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	rt.If = cond
	if err := p.expectWord("then"); err != nil {
		return nil, err
	}
	then, err := p.parseActions()
	if err != nil {
		return nil, err
	}
	if len(then) == 0 {
		return nil, errf(p.cur().Pos, "\"then\" requires at least one action")
	}
	rt.Then = then
	if p.acceptWord("else") {
		els, err := p.parseActions()
		if err != nil {
			return nil, err
		}
		if len(els) == 0 {
			return nil, errf(p.cur().Pos, "\"else\" requires at least one action")
		}
		rt.Else = els
	}
	if p.cur().Kind != TokEOF {
		return nil, errf(p.cur().Pos, "unexpected %s after the rule", p.cur())
	}
	return rt, nil
}

// parseDefinition parses: set VAR to (a CONCEPT [where COND] | EXPR) ;
func (p *parser) parseDefinition() (*Definition, error) {
	start := p.cur().Pos
	if err := p.expectWord("set"); err != nil {
		return nil, err
	}
	v := p.cur()
	if v.Kind != TokVar {
		return nil, errf(v.Pos, "expected a quoted variable name, found %s", v)
	}
	p.pos++
	if err := p.expectWord("to"); err != nil {
		return nil, err
	}
	def := &Definition{Var: v.Text, Pos: start}
	if p.isWord("a") || p.isWord("an") {
		binderPos := p.cur().Pos
		p.pos++
		label, n, ok := p.vocab.MatchConceptLabel(p.wordsAhead())
		if !ok {
			return nil, errf(p.cur().Pos, "unknown business concept at %s", p.cur())
		}
		p.pos += n
		b := &Binder{Concept: label, Pos: binderPos}
		if p.acceptWord("where") {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			b.Where = cond
		}
		def.Binder = b
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		def.Expr = e
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return def, nil
}

// parseCond parses an or-condition (lowest precedence).
func (p *parser) parseCond() (Cond, error) {
	l, err := p.parseAndCond()
	if err != nil {
		return nil, err
	}
	for p.isWord("or") {
		pos := p.cur().Pos
		p.pos++
		r, err := p.parseAndCond()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAndCond() (Cond, error) {
	l, err := p.parseUnaryCond()
	if err != nil {
		return nil, err
	}
	for p.isWord("and") {
		pos := p.cur().Pos
		p.pos++
		r, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseUnaryCond() (Cond, error) {
	if p.isWord("not") || p.isWords("it", "is", "not", "true", "that") {
		pos := p.cur().Pos
		if !p.acceptWords("it", "is", "not", "true", "that") {
			p.pos++ // "not"
		}
		c, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		return &Not{C: c, Pos: pos}, nil
	}
	// Parenthesized condition: "( cond )" — but "(" may also start a
	// parenthesized expression ("(a + b) is ..."). Try the condition
	// parse first and backtrack on failure.
	if t := p.cur(); t.Kind == TokPunct && t.Text == "(" {
		save := p.pos
		p.pos++
		c, err := p.parseCond()
		if err == nil {
			if err := p.expectPunct(")"); err == nil {
				return c, nil
			}
		}
		p.pos = save
	}
	return p.parseComparison()
}

// parseComparison parses EXPR followed by a comparison tail.
func (p *parser) parseComparison() (Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.Kind == TokOp && (t.Text == "<" || t.Text == "<=" || t.Text == ">" || t.Text == ">="):
		p.pos++
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		op := map[string]CmpOp{"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}[t.Text]
		return &Cmp{Op: op, L: l, R: r, Pos: t.Pos}, nil
	case p.isWord("exists"):
		p.pos++
		return &Exists{E: l, Pos: t.Pos}, nil
	case p.isWords("does", "not", "exist"):
		p.pos += 3
		return &Exists{E: l, Negated: true, Pos: t.Pos}, nil
	case p.isWord("contains"):
		p.pos++
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Contains{L: l, R: r, Pos: t.Pos}, nil
	case p.isWord("is"):
		p.pos++
		switch {
		case p.acceptWord("null"):
			return &IsNull{E: l, Pos: t.Pos}, nil
		case p.isWords("not", "null"):
			p.pos += 2
			return &IsNull{E: l, Negated: true, Pos: t.Pos}, nil
		case p.acceptWords("at", "least"):
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpGe, L: l, R: r, Pos: t.Pos}, nil
		case p.acceptWords("at", "most"):
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpLe, L: l, R: r, Pos: t.Pos}, nil
		case p.acceptWords("more", "than"):
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpGt, L: l, R: r, Pos: t.Pos}, nil
		case p.acceptWords("less", "than"):
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpLt, L: l, R: r, Pos: t.Pos}, nil
		case p.acceptWords("one", "of"):
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &InList{E: l, List: list, Pos: t.Pos}, nil
		case p.acceptWord("within"):
			return p.parseWithin(l, t.Pos)
		case p.acceptWord("between"):
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectWord("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Between{E: l, Lo: lo, Hi: hi, Pos: t.Pos}, nil
		case p.acceptWord("not"):
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpNe, L: l, R: r, Pos: t.Pos}, nil
		default:
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: OpEq, L: l, R: r, Pos: t.Pos}, nil
		}
	default:
		return nil, errf(t.Pos, "expected a comparison after %s, found %s", exprSummary(l), t)
	}
}

// withinUnits maps singular time-unit words to their width in seconds.
var withinUnits = map[string]int64{
	"second": 1,
	"minute": 60,
	"hour":   3600,
	"day":    86400,
}

// parseWithin parses the tail of "X is within <amount> <unit> of Y".
// "is within" has been consumed; the amount must be a whole number and
// the unit a second/minute/hour/day word (plural accepted).
func (p *parser) parseWithin(l Expr, pos Pos) (Cond, error) {
	t := p.cur()
	if t.Kind != TokNumber || strings.Contains(t.Text, ".") {
		return nil, errf(t.Pos, "expected a whole number of time units after \"within\", found %s", t)
	}
	amount, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil || amount <= 0 {
		return nil, errf(t.Pos, "window width must be a positive whole number, found %q", t.Text)
	}
	p.pos++
	u := p.cur()
	if u.Kind != TokWord {
		return nil, errf(u.Pos, "expected a time unit (seconds, minutes, hours, days), found %s", u)
	}
	unit := strings.TrimSuffix(u.Text, "s")
	width, ok := withinUnits[unit]
	if !ok {
		return nil, errf(u.Pos, "unknown time unit %q (use seconds, minutes, hours or days)", u.Text)
	}
	p.pos++
	if err := p.expectWord("of"); err != nil {
		return nil, err
	}
	anchor, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Within{
		E: l, Anchor: anchor,
		Amount: t.Text, Unit: unit, Seconds: amount * width,
		Pos: pos,
	}, nil
}

func exprSummary(e Expr) string {
	s := e.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

func (p *parser) parseExprList() ([]Expr, error) {
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if t := p.cur(); t.Kind == TokPunct && t.Text == "," {
			p.pos++
			continue
		}
		return list, nil
	}
}

// parseExpr parses additive arithmetic.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r, Pos: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r, Pos: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp && t.Text == "-" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{E: e, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokString:
		p.pos++
		return &Lit{Text: t.Text, Kind: LitString, Pos: t.Pos}, nil
	case TokNumber:
		p.pos++
		kind := LitInt
		if strings.Contains(t.Text, ".") {
			kind = LitFloat
		}
		return &Lit{Text: t.Text, Kind: kind, Pos: t.Pos}, nil
	case TokVar:
		p.pos++
		return &VarRef{Name: t.Text, Pos: t.Pos}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TokWord:
		switch t.Text {
		case "true", "false":
			p.pos++
			return &Lit{Text: t.Text, Kind: LitBool, Pos: t.Pos}, nil
		case "this":
			p.pos++
			// "this job requisition" repeats the concept for readability;
			// consume the concept label when it follows.
			if _, n, ok := p.vocab.MatchConceptLabel(p.wordsAhead()); ok {
				p.pos += n
			}
			return &This{Pos: t.Pos}, nil
		case "the":
			p.pos++
			// "the number of <expr>" is a reserved counting construct,
			// checked before vocabulary phrases.
			if p.isWords("number", "of") {
				p.pos += 2
				of, err := p.parsePrimary()
				if err != nil {
					return nil, err
				}
				return &Count{Of: of, Pos: t.Pos}, nil
			}
			return p.parseNav(t.Pos)
		}
	}
	return nil, errf(t.Pos, "expected an expression, found %s", t)
}

// parseNav parses "<phrase> of <primary>" after a consumed "the". Among
// the candidate phrase matches it picks the longest one that leaves an
// "of" keyword to consume — so a vocabulary phrase ending in "of" cannot
// swallow the grammatical "of".
func (p *parser) parseNav(start Pos) (Expr, error) {
	matches := p.vocab.MatchPhrases(p.wordsAhead())
	if len(matches) == 0 {
		return nil, errf(p.cur().Pos, "unknown business phrase at %s", p.cur())
	}
	for _, m := range matches {
		after := p.toks[min(p.pos+m.N, len(p.toks)-1)]
		if after.Kind != TokWord || after.Text != "of" {
			continue
		}
		p.pos += m.N + 1 // phrase + "of"
		of, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Nav{Phrase: m.Phrase, Of: of, Pos: start}, nil
	}
	return nil, errf(p.cur().Pos, "expected \"of\" after the phrase %q", matches[0].Phrase)
}

// parseActions parses a semicolon-terminated action list, stopping before
// "else" or end of input.
func (p *parser) parseActions() ([]Action, error) {
	var acts []Action
	for {
		t := p.cur()
		if t.Kind == TokEOF || p.isWord("else") {
			return acts, nil
		}
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		acts = append(acts, a)
	}
}

func (p *parser) parseAction() (Action, error) {
	t := p.cur()
	switch {
	case p.isWord("add"):
		p.pos++
		if err := p.expectWord("alert"); err != nil {
			return nil, err
		}
		msg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Alert{Message: msg, Pos: t.Pos}, nil
	default:
		// [the] internal control is [not] satisfied ;
		p.acceptWord("the")
		if err := p.expectWord("internal"); err != nil {
			return nil, err
		}
		if err := p.expectWord("control"); err != nil {
			return nil, err
		}
		if err := p.expectWord("is"); err != nil {
			return nil, err
		}
		sat := true
		if p.acceptWord("not") {
			sat = false
		}
		if err := p.expectWord("satisfied"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &SetStatus{Satisfied: sat, Pos: t.Pos}, nil
	}
}
