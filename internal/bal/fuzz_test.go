package bal

import "testing"

// FuzzLex hardens the lexer: arbitrary input must lex or fail cleanly.
func FuzzLex(f *testing.F) {
	f.Add(paperRule)
	f.Add(`if 'x' is "str" then the internal control is satisfied ;`)
	f.Add(`"unterminated`)
	f.Add("# comment only")
	f.Add("')(*&^%$")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream does not end with EOF")
		}
	})
}

// FuzzParse hardens the parser: arbitrary input must parse or fail with a
// positioned error, never panic or loop.
func FuzzParse(f *testing.F) {
	f.Add(paperRule)
	f.Add(`if the manager of 'x' is null then the internal control is satisfied ;`)
	f.Add(`definitions set 'x' to a person ; if 'x' exists then the internal control is satisfied ;`)
	f.Add("if then else")
	f.Add("definitions definitions if if")
	vocab := hiringVocab()
	f.Fuzz(func(t *testing.T, src string) {
		rt, err := Parse(src, vocab)
		if err == nil && rt == nil {
			t.Fatal("nil rule without error")
		}
	})
}
