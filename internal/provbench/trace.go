package provbench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/events"
)

// Trace file format: JSON Lines. The first line is a header carrying
// the format version and the originating spec; every following line is
// one scheduled op. The encoding is canonical — struct fields in
// declaration order, payload maps sorted by encoding/json — so the
// same schedule always serializes to identical bytes, which is what
// makes record -> replay a reproducibility tool rather than merely a
// persistence one.

// traceVersion guards against replaying files from a future format.
const traceVersion = 1

type traceHeader struct {
	Provbench int  `json:"provbench"`
	Spec      Spec `json:"spec"`
}

type traceOp struct {
	AtNS   int64        `json:"atNs"`
	Client string       `json:"client"`
	Class  string       `json:"class"`
	Key    string       `json:"key"`
	Events []traceEvent `json:"events"`
}

// traceEvent mirrors the wire shape httpapi speaks, so recorded traces
// double as raw material for any HTTP client.
type traceEvent struct {
	Source    string            `json:"source"`
	Type      string            `json:"type"`
	AppID     string            `json:"appId"`
	Timestamp time.Time         `json:"timestamp"`
	Payload   map[string]string `json:"payload,omitempty"`
}

// WriteTrace records a schedule to w in the trace format.
func WriteTrace(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Provbench: traceVersion, Spec: s.Spec}); err != nil {
		return fmt.Errorf("provbench: write trace header: %v", err)
	}
	for _, op := range s.Ops {
		to := traceOp{
			AtNS: op.At.Nanoseconds(), Client: op.Client, Class: op.Class, Key: op.Key,
			Events: make([]traceEvent, len(op.Events)),
		}
		for i, ev := range op.Events {
			to.Events[i] = traceEvent{
				Source: ev.Source, Type: ev.Type, AppID: ev.AppID,
				Timestamp: ev.Timestamp, Payload: ev.Payload,
			}
		}
		if err := enc.Encode(to); err != nil {
			return fmt.Errorf("provbench: write trace op: %v", err)
		}
	}
	return bw.Flush()
}

// ReadTrace replays a recorded schedule from r.
func ReadTrace(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("provbench: read trace: %v", err)
		}
		return nil, fmt.Errorf("provbench: empty trace file")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Provbench == 0 {
		return nil, fmt.Errorf("provbench: bad trace header (not a provbench trace?)")
	}
	if hdr.Provbench > traceVersion {
		return nil, fmt.Errorf("provbench: trace format v%d is newer than this binary (v%d)", hdr.Provbench, traceVersion)
	}
	sched := &Schedule{Spec: hdr.Spec}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var to traceOp
		if err := json.Unmarshal(sc.Bytes(), &to); err != nil {
			return nil, fmt.Errorf("provbench: trace line %d: %v", line, err)
		}
		op := Op{
			At:     time.Duration(to.AtNS),
			Client: to.Client, Class: to.Class, Key: to.Key,
			Events: make([]events.AppEvent, len(to.Events)),
		}
		for i, ev := range to.Events {
			op.Events[i] = events.AppEvent{
				Source: ev.Source, Type: ev.Type, AppID: ev.AppID,
				Timestamp: ev.Timestamp, Payload: ev.Payload,
			}
		}
		sched.Ops = append(sched.Ops, op)
		sched.Events += len(op.Events)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provbench: read trace: %v", err)
	}
	return sched, nil
}
