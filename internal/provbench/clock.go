package provbench

import (
	"sort"
	"sync"
	"time"
)

// Clock is the harness time source. The open-loop runner paces the
// schedule and measures every latency through it, so tests substitute a
// fake and real runs use the wall clock — no wall-clock sleep ever
// appears in a unit test.
type Clock interface {
	Now() time.Time
	// After fires once d has elapsed. d <= 0 fires immediately.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

func (RealClock) Now() time.Time                         { return time.Now() }
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced clock for tests. Goroutines parked
// in After are released when Advance moves the clock past their
// deadline. Safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
	// auto makes After advance the clock itself instead of parking:
	// virtual time where every wait completes instantly. Single-caller
	// deterministic runs (the inline runner) use this mode.
	auto bool
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// NewVirtualClock starts an auto-advancing fake clock: After(d) moves
// time forward by d and fires immediately. Virtual time for
// deterministic single-goroutine runs.
func NewVirtualClock(start time.Time) *FakeClock { return &FakeClock{now: start, auto: true} }

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if c.auto {
		if d > 0 {
			c.now = c.now.Add(d)
		}
		ch <- c.now
		return ch
	}
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and releases every waiter whose
// deadline has passed, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.waiters, func(i, j int) bool { return c.waiters[i].at.Before(c.waiters[j].at) })
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// Waiters reports how many goroutines are parked in After — tests use
// it to know the runner has reached its next pacing wait before
// advancing.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// NextDeadline reports the earliest parked deadline (zero time when no
// waiters) so tests can advance exactly to it.
func (c *FakeClock) NextDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min time.Time
	for _, w := range c.waiters {
		if min.IsZero() || w.at.Before(min) {
			min = w.at
		}
	}
	return min
}
