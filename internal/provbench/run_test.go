package provbench

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// driveClock advances a FakeClock whenever the runner parks on it,
// always jumping exactly to the earliest pending deadline — virtual
// time with no wall-clock sleeps anywhere.
func driveClock(clk *FakeClock, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if clk.Waiters() > 0 {
			if d := clk.NextDeadline().Sub(clk.Now()); d > 0 {
				clk.Advance(d)
			}
		} else {
			runtime.Gosched()
		}
	}
}

func pacingSpec(process string, shape float64) Spec {
	s := Spec{
		Name:     "pacing",
		Seed:     5,
		Duration: Dur(5 * time.Second),
		Classes: []ClientClass{{
			Name: "only", Domain: "hiring", Clients: 2,
			RatePerSec: 100,
			Arrival:    ArrivalSpec{Process: process, Shape: shape},
			BatchMin:   2, BatchMax: 4,
		}},
	}
	s.fill()
	return s
}

// TestPacingFakeClock drives each arrival process through the runner
// under a fake clock: every op must dispatch exactly at its scheduled
// offset (zero slip), and the schedule's interarrival statistics must
// match the process within tolerance.
func TestPacingFakeClock(t *testing.T) {
	cases := []struct {
		process    string
		shape      float64
		cvLo, cvHi float64
	}{
		{"uniform", 0, 0, 0.01},
		{"poisson", 0, 0.75, 1.25},
		{"gamma", 0.25, 1.5, 2.6},
		{"weibull", 0.5, 1.6, 2.9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.process, func(t *testing.T) {
			sched, err := Generate(pacingSpec(tc.process, tc.shape))
			if err != nil {
				t.Fatal(err)
			}
			// Schedule-level burstiness: per-client interarrival gaps.
			byClient := map[string][]time.Duration{}
			for _, op := range sched.Ops {
				byClient[op.Client] = append(byClient[op.Client], op.At)
			}
			for client, ats := range byClient {
				if len(ats) < 10 {
					continue
				}
				var sum, sumSq float64
				for i := 1; i < len(ats); i++ {
					g := float64(ats[i] - ats[i-1])
					sum += g
					sumSq += g * g
				}
				n := float64(len(ats) - 1)
				mean := sum / n
				variance := sumSq/n - mean*mean
				if variance < 0 {
					variance = 0
				}
				cv := 0.0
				if mean > 0 {
					cv = math.Sqrt(variance) / mean
				}
				if cv < tc.cvLo || cv > tc.cvHi {
					t.Errorf("client %s CV = %.2f, want in [%.2f, %.2f] (n=%d)",
						client, cv, tc.cvLo, tc.cvHi, len(ats))
				}
			}

			clk := NewFakeClock(time.Unix(0, 0))
			stop := make(chan struct{})
			go driveClock(clk, stop)
			defer close(stop)
			target := &NullTarget{}
			rep, err := Run(sched, target, Options{Clock: clk, DrainTimeout: time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if rep.MaxScheduleSlipUS != 0 {
				t.Errorf("max schedule slip = %dus, want 0 under fake clock", rep.MaxScheduleSlipUS)
			}
			if rep.Offered != len(sched.Ops) || target.Offers() != len(sched.Ops) {
				t.Errorf("offered %d / target saw %d, want %d", rep.Offered, target.Offers(), len(sched.Ops))
			}
			if rep.Admitted != len(sched.Ops) || rep.Shed != 0 || rep.Errors != 0 {
				t.Errorf("admitted/shed/errors = %d/%d/%d, want %d/0/0",
					rep.Admitted, rep.Shed, rep.Errors, len(sched.Ops))
			}
		})
	}
}

// TestAckPollingVirtualClock pins the ack-poll pacing: a target that
// applies on the third poll yields an ack latency of exactly two poll
// intervals in virtual time, for every op. Inline + virtual clock
// serializes the run, so the quantiles are exact, not statistical.
func TestAckPollingVirtualClock(t *testing.T) {
	sched, err := Generate(pacingSpec("uniform", 0))
	if err != nil {
		t.Fatal(err)
	}
	clk := NewVirtualClock(time.Unix(0, 0))
	target := &NullTarget{PendingPolls: 3}
	rep, err := Run(sched, target, Options{Clock: clk, AckPoll: 2 * time.Millisecond, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	cr := rep.Classes[0]
	if cr.Ack.Count != rep.Admitted || rep.Admitted == 0 {
		t.Fatalf("ack samples %d, admitted %d", cr.Ack.Count, rep.Admitted)
	}
	if cr.Ack.P50US != 4000 || cr.Ack.P999US != 4000 {
		t.Errorf("ack p50/p999 = %d/%dus, want exactly 4000us (2 polls x 2ms)", cr.Ack.P50US, cr.Ack.P999US)
	}
	if cr.Admit.P999US != 0 {
		t.Errorf("admit p999 = %dus, want 0 (instant offer)", cr.Admit.P999US)
	}
}

// TestOpenLoopOverloadKeepsSchedule is the open-loop invariant under
// total overload: a target that sheds every batch gets exactly one
// offer per scheduled op — no retries, no schedule slip — and the
// sheds are counted.
func TestOpenLoopOverloadKeepsSchedule(t *testing.T) {
	sched, err := Generate(pacingSpec("gamma", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock(time.Unix(0, 0))
	stop := make(chan struct{})
	go driveClock(clk, stop)
	defer close(stop)
	target := &NullTarget{ShedAll: true}
	rep, err := Run(sched, target, Options{Clock: clk, DrainTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxScheduleSlipUS != 0 {
		t.Errorf("max schedule slip = %dus, want 0: sheds must not delay the schedule", rep.MaxScheduleSlipUS)
	}
	if target.Offers() != len(sched.Ops) {
		t.Errorf("target saw %d offers, want exactly %d (no retries)", target.Offers(), len(sched.Ops))
	}
	if rep.Shed != len(sched.Ops) || rep.Admitted != 0 {
		t.Errorf("shed/admitted = %d/%d, want %d/0", rep.Shed, rep.Admitted, len(sched.Ops))
	}
	if rep.EventsAdmitted != 0 {
		t.Errorf("events admitted = %d, want 0", rep.EventsAdmitted)
	}
}

// TestOpenLoopWedgedTargetKeepsSchedule wedges the target completely:
// offers park forever. The dispatcher must still fire every op on
// schedule, and the drain timeout must bound the run with every op
// reported incomplete.
func TestOpenLoopWedgedTargetKeepsSchedule(t *testing.T) {
	sched, err := Generate(pacingSpec("poisson", 0))
	if err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock(time.Unix(0, 0))
	stop := make(chan struct{})
	go driveClock(clk, stop)
	defer close(stop)
	gate := make(chan struct{})
	target := &NullTarget{Gate: gate}
	rep, err := Run(sched, target, Options{Clock: clk, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	close(gate) // release the parked offer goroutines
	if rep.MaxScheduleSlipUS != 0 {
		t.Errorf("max schedule slip = %dus, want 0: a wedged target must not delay the schedule", rep.MaxScheduleSlipUS)
	}
	if rep.Offered != len(sched.Ops) {
		t.Errorf("offered = %d, want %d", rep.Offered, len(sched.Ops))
	}
	if rep.Incomplete != len(sched.Ops) {
		t.Errorf("incomplete = %d, want %d (every op parked past the drain timeout)", rep.Incomplete, len(sched.Ops))
	}
}

func TestRunRejectsEmptySchedule(t *testing.T) {
	if _, err := Run(&Schedule{}, &NullTarget{}, Options{}); err == nil {
		t.Error("empty schedule accepted")
	}
	sched, err := Generate(pacingSpec("uniform", 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sched, &NullTarget{}, Options{DetectEvery: 2}); err == nil {
		t.Error("detection sampling accepted on a target without a sampler")
	}
}
