package provbench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/ingest"
)

// OfferResult is a target's verdict on one dispatched op.
type OfferResult struct {
	// Token addresses the ack when the admission was asynchronous.
	Token string
	// Applied marks a terminal admission (synchronous ingest, or a
	// gateway that had already flushed the batch when it answered).
	Applied bool
	// Shed marks an admission-control rejection (429/Retry-After). The
	// open-loop runner counts it and moves on — it never retries, so
	// overload can not back-pressure the schedule.
	Shed bool
	// RetryAfter is the server's backoff hint on shed.
	RetryAfter time.Duration
}

// Target accepts offered batches. Offer may block (that is the
// latency being measured); the runner dispatches every op on its own
// goroutine so a slow target never delays the arrival schedule.
type Target interface {
	Offer(key string, evs []events.AppEvent) (OfferResult, error)
}

// AckPoller is implemented by targets whose admission is asynchronous:
// the runner polls Applied to measure ack latency.
type AckPoller interface {
	// Applied reports whether the admitted batch has reached its
	// terminal state.
	Applied(token string) (bool, error)
}

// DetectionSampler is implemented by in-process targets that can
// report continuous-checker progress: Seq snapshots the store commit
// sequence and WaitChecked blocks until the checker has consumed the
// change feed up to it. The runner samples detection lag through it.
type DetectionSampler interface {
	Seq() uint64
	WaitChecked(seq uint64)
}

// TenantDetectionSampler narrows the barrier to one tenant: the wait
// clears when the tenant's own traces are checked, regardless of other
// tenants' backlogs. The runner uses it for ops of tenant-scoped classes
// — it is what makes fair-share isolation measurable per class (E17).
type TenantDetectionSampler interface {
	DetectionSampler
	WaitTenantChecked(tenantID string, seq uint64)
}

// GatewayStatser is implemented by targets that can snapshot the
// ingestion gateway counters for the report.
type GatewayStatser interface {
	GatewayStats() (ingest.Stats, bool)
}

// --- in-process target ---------------------------------------------------

// SystemTarget drives a core.System directly: through its async
// ingestion gateway when one is running, or through the synchronous
// pipeline under the -sync-ingest ablation. Unit tests and the E13
// experiment use it; cmd/provbench uses it in in-process mode.
type SystemTarget struct {
	Sys *core.System
}

func (t *SystemTarget) Offer(key string, evs []events.AppEvent) (OfferResult, error) {
	if t.Sys.Gateway == nil {
		// Synchronous ablation: the offer call IS the durable commit,
		// so admission and ack coincide. Per-event rejections are
		// terminal, not offer errors — the rest of the batch is in.
		err := t.Sys.Ingest(evs)
		var be *events.BatchError
		if err != nil && !errors.As(err, &be) {
			return OfferResult{}, err
		}
		return OfferResult{Applied: true}, nil
	}
	st, err := t.Sys.Gateway.Offer(key, evs)
	if err == nil {
		return OfferResult{Token: st.Token, Applied: st.State == ingest.StateApplied}, nil
	}
	var oe *ingest.OverloadError
	if errors.As(err, &oe) {
		return OfferResult{Shed: true, RetryAfter: oe.RetryAfter}, nil
	}
	if errors.Is(err, ingest.ErrDraining) {
		return OfferResult{Shed: true}, nil
	}
	return OfferResult{}, err
}

func (t *SystemTarget) Applied(token string) (bool, error) {
	st, ok := t.Sys.Gateway.Ack(token)
	if !ok {
		return false, fmt.Errorf("provbench: unknown ack token %q", token)
	}
	return st.State == ingest.StateApplied, nil
}

func (t *SystemTarget) Seq() uint64 { return t.Sys.Store.Stats().Seq }

func (t *SystemTarget) WaitChecked(seq uint64) { t.Sys.Checker.WaitFor(seq) }

func (t *SystemTarget) WaitTenantChecked(tenantID string, seq uint64) {
	t.Sys.Checker.WaitTenant(tenantID, seq)
}

func (t *SystemTarget) GatewayStats() (ingest.Stats, bool) {
	if t.Sys.Gateway == nil {
		return ingest.Stats{}, false
	}
	return t.Sys.Gateway.Stats(), true
}

// --- HTTP target ---------------------------------------------------------

// HTTPTarget drives a provd server over its /events protocol and polls
// /ingest/ack, the production-shaped load path.
type HTTPTarget struct {
	// Base is the server base URL, e.g. "http://localhost:8341".
	Base string
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client

	once   sync.Once
	sender *ingest.HTTPSender
}

func (t *HTTPTarget) init() {
	t.once.Do(func() {
		client := t.Client
		if client == nil {
			client = &http.Client{Timeout: 30 * time.Second}
		}
		t.Client = client
		t.sender = &ingest.HTTPSender{Base: t.Base, Client: client}
	})
}

func (t *HTTPTarget) Offer(key string, evs []events.AppEvent) (OfferResult, error) {
	t.init()
	res, err := t.sender.Send(key, evs)
	if err != nil {
		return OfferResult{}, err
	}
	if res.Overloaded {
		return OfferResult{Shed: true, RetryAfter: res.RetryAfter}, nil
	}
	return OfferResult{Token: res.Token, Applied: res.State == ingest.StateApplied}, nil
}

func (t *HTTPTarget) Applied(token string) (bool, error) {
	t.init()
	if token == "" {
		// Synchronous server answered 200/422: terminal at offer time.
		return true, nil
	}
	resp, err := t.Client.Get(t.Base + "/ingest/ack?token=" + token)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("provbench: ack poll: server %d", resp.StatusCode)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return false, err
	}
	return st.State == string(ingest.StateApplied), nil
}

// GatewayStats scrapes /ingest/stats for the report's gateway snapshot.
func (t *HTTPTarget) GatewayStats() (ingest.Stats, bool) {
	t.init()
	resp, err := t.Client.Get(t.Base + "/ingest/stats")
	if err != nil {
		return ingest.Stats{}, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return ingest.Stats{}, false
	}
	var st ingest.Stats
	if err := json.Unmarshal(data, &st); err != nil || st.Shards == 0 {
		return ingest.Stats{}, false
	}
	return st, true
}

// --- null target ---------------------------------------------------------

// NullTarget is a configurable in-memory sink for unit tests and dry
// runs: it can admit instantly, shed everything, or park offers on a
// gate to simulate a wedged server — all without touching a store.
type NullTarget struct {
	// ShedAll rejects every offer with a shed verdict.
	ShedAll bool
	// Gate, when non-nil, blocks every Offer until the channel is
	// closed: the wedged-target mode of the open-loop invariant test.
	Gate chan struct{}
	// PendingPolls > 0 makes admissions asynchronous: each batch
	// reports applied only after that many Applied polls.
	PendingPolls int

	mu      sync.Mutex
	offers  int
	events  int
	sheds   int
	nextTok int
	pending map[string]int
}

func (t *NullTarget) Offer(key string, evs []events.AppEvent) (OfferResult, error) {
	if t.Gate != nil {
		<-t.Gate
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.offers++
	if t.ShedAll {
		t.sheds++
		return OfferResult{Shed: true, RetryAfter: 250 * time.Millisecond}, nil
	}
	t.events += len(evs)
	if t.PendingPolls <= 0 {
		return OfferResult{Applied: true}, nil
	}
	t.nextTok++
	tok := fmt.Sprintf("nt-%d", t.nextTok)
	if t.pending == nil {
		t.pending = make(map[string]int)
	}
	t.pending[tok] = t.PendingPolls
	return OfferResult{Token: tok}, nil
}

func (t *NullTarget) Applied(token string) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	left, ok := t.pending[token]
	if !ok {
		return false, fmt.Errorf("provbench: unknown null ack %q", token)
	}
	left--
	if left <= 0 {
		delete(t.pending, token)
		return true, nil
	}
	t.pending[token] = left
	return false, nil
}

// Offers reports how many offers the target has seen.
func (t *NullTarget) Offers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.offers
}

// EventsSeen reports how many events the target admitted.
func (t *NullTarget) EventsSeen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}
