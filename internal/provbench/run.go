package provbench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
)

// Options tunes a harness run.
type Options struct {
	// Clock paces the schedule and takes every measurement; nil uses
	// the wall clock. Tests inject a FakeClock, deterministic dry runs
	// a virtual one.
	Clock Clock
	// AckPoll is the pending-ack poll interval (default 2ms).
	AckPoll time.Duration
	// AckTimeout abandons polling a batch that never reaches its
	// terminal state (default 30s); such ops count as ack timeouts.
	AckTimeout time.Duration
	// DetectEvery samples detection lag on every Nth admitted op by
	// waiting for the continuous checker to catch up to the store
	// sequence the op produced. 0 disables sampling. Requires a target
	// implementing DetectionSampler.
	DetectEvery int
	// DrainTimeout bounds the wait for in-flight ops once the schedule
	// is exhausted (default 30s); ops still outstanding then count as
	// incomplete.
	DrainTimeout time.Duration
	// Inline executes ops on the dispatcher goroutine instead of
	// fanning out. Combined with a virtual clock and a deterministic
	// target this makes the whole run — measurements included — a pure
	// function of the schedule, which is how byte-identical reports
	// are produced. Never use it against a live target: inline
	// execution closes the loop.
	Inline bool
}

func (o *Options) fill() {
	if o.Clock == nil {
		o.Clock = RealClock{}
	}
	if o.AckPoll <= 0 {
		o.AckPoll = 2 * time.Millisecond
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
}

// classCollector accumulates one SLO class's outcomes. Per-class
// mutexes keep collection contention off the hot dispatch path.
type classCollector struct {
	mu          sync.Mutex
	offered     int
	admitted    int
	shed        int
	errors      int
	ackTimeouts int
	events      int
	lastErr     string
	admit       latency.Digest
	ack         latency.Digest
	detect      latency.Digest
}

type runner struct {
	opts    Options
	target  Target
	poller  AckPoller
	sampler DetectionSampler

	classes   map[string]*classCollector
	completed atomic.Int64
	admitSeq  atomic.Int64
	maxSlipUS atomic.Int64
}

// Run executes the schedule against the target, open-loop: every op is
// dispatched at its scheduled offset regardless of how earlier ops
// fared. Sheds and errors are counted, never retried; a slow target
// accumulates in-flight ops (and measured latency), not schedule
// delay.
func Run(sched *Schedule, target Target, opts Options) (*Report, error) {
	if len(sched.Ops) == 0 {
		return nil, fmt.Errorf("provbench: empty schedule")
	}
	opts.fill()
	r := &runner{opts: opts, target: target, classes: map[string]*classCollector{}}
	r.poller, _ = target.(AckPoller)
	r.sampler, _ = target.(DetectionSampler)
	if opts.DetectEvery > 0 && r.sampler == nil {
		return nil, fmt.Errorf("provbench: detection sampling needs an in-process target")
	}
	for _, op := range sched.Ops {
		if r.classes[op.Class] == nil {
			r.classes[op.Class] = &classCollector{}
		}
	}

	clock := opts.Clock
	start := clock.Now()
	var wg sync.WaitGroup
	for i := range sched.Ops {
		op := &sched.Ops[i]
		deadline := start.Add(op.At)
		if now := clock.Now(); deadline.After(now) {
			<-clock.After(deadline.Sub(now))
		}
		// Slip is how late dispatch fired relative to the schedule —
		// the open-loop invariant: it must stay bounded by clock
		// granularity even when the target sheds or wedges.
		if slip := (clock.Now().Sub(start) - op.At).Microseconds(); slip > r.maxSlipUS.Load() {
			r.maxSlipUS.Store(slip)
		}
		cc := r.classes[op.Class]
		cc.mu.Lock()
		cc.offered++
		cc.mu.Unlock()
		if opts.Inline {
			r.exec(op, cc)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.exec(op, cc)
		}()
	}

	// Inline runs have nothing in flight; skipping the drain wait keeps
	// virtual-time runs free of the auto-advancing drain timer.
	if !opts.Inline {
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-clock.After(opts.DrainTimeout):
		}
	}
	elapsed := clock.Now().Sub(start)
	return r.report(sched, elapsed), nil
}

// exec runs one op end to end: offer, ack poll, detection sample.
func (r *runner) exec(op *Op, cc *classCollector) {
	defer r.completed.Add(1)
	clock := r.opts.Clock
	t0 := clock.Now()
	res, err := r.target.Offer(op.Key, op.Events)
	admitLat := clock.Now().Sub(t0)

	if err != nil {
		cc.mu.Lock()
		cc.errors++
		cc.lastErr = err.Error()
		cc.mu.Unlock()
		return
	}
	if res.Shed {
		cc.mu.Lock()
		cc.shed++
		cc.mu.Unlock()
		return
	}

	applied := res.Applied
	ackLat := admitLat
	timedOut := false
	if !applied && r.poller != nil && res.Token != "" {
		for {
			ok, perr := r.poller.Applied(res.Token)
			if perr != nil || clock.Now().Sub(t0) > r.opts.AckTimeout {
				timedOut = true
				break
			}
			if ok {
				applied = true
				ackLat = clock.Now().Sub(t0)
				break
			}
			<-clock.After(r.opts.AckPoll)
		}
	} else if !applied {
		// No poll path: admission is the only observable state.
		applied = true
	}

	sampledDetect := false
	var detectLat time.Duration
	if applied {
		n := r.admitSeq.Add(1)
		if r.opts.DetectEvery > 0 && (n-1)%int64(r.opts.DetectEvery) == 0 {
			// Wait until the continuous checker has consumed the change
			// feed past this op's commit: offer -> durable -> checked is
			// the detection-lag the compliance story cares about. Ops of
			// tenant-scoped classes wait only for their own tenant's
			// traces, so a noisy neighbour's backlog shows up in ITS
			// class's lag, not everyone's.
			if ts, ok := r.sampler.(TenantDetectionSampler); ok && op.Tenant != "" {
				ts.WaitTenantChecked(op.Tenant, r.sampler.Seq())
			} else {
				r.sampler.WaitChecked(r.sampler.Seq())
			}
			detectLat = clock.Now().Sub(t0)
			sampledDetect = true
		}
	}

	cc.mu.Lock()
	cc.admitted++
	cc.events += len(op.Events)
	cc.admit.Add(admitLat)
	if applied {
		cc.ack.Add(ackLat)
	}
	if timedOut {
		cc.ackTimeouts++
	}
	if sampledDetect {
		cc.detect.Add(detectLat)
	}
	cc.mu.Unlock()
}
