package provbench

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// sampleStats draws n gaps and returns their mean and coefficient of
// variation — the burstiness gauge the processes differ on.
func sampleStats(t *testing.T, a Arrival, n int, seed int64) (mean, cv float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(a.Next(rng))
		sum += g
		sumSq += g * g
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

func TestArrivalMeanAndBurstiness(t *testing.T) {
	const (
		n    = 50000
		mean = 10 * time.Millisecond
	)
	cases := []struct {
		name         string
		spec         ArrivalSpec
		wantCVLo     float64
		wantCVHi     float64
		meanTolerate float64 // relative tolerance on the mean
	}{
		{"uniform", ArrivalSpec{Process: "uniform"}, 0, 0.001, 0.001},
		{"poisson", ArrivalSpec{Process: "poisson"}, 0.95, 1.05, 0.03},
		// Gamma shape 0.25: CV = 1/sqrt(0.25) = 2.
		{"gamma-bursty", ArrivalSpec{Process: "gamma", Shape: 0.25}, 1.85, 2.15, 0.05},
		// Gamma shape 4: CV = 0.5 — smoother than Poisson.
		{"gamma-smooth", ArrivalSpec{Process: "gamma", Shape: 4}, 0.45, 0.55, 0.03},
		// Weibull shape 0.5: CV = sqrt(5) ~ 2.24.
		{"weibull-bursty", ArrivalSpec{Process: "weibull", Shape: 0.5}, 2.0, 2.5, 0.06},
		{"default-is-poisson", ArrivalSpec{}, 0.95, 1.05, 0.03},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewArrival(tc.spec, mean)
			if err != nil {
				t.Fatal(err)
			}
			gotMean, gotCV := sampleStats(t, a, n, 42)
			if rel := math.Abs(gotMean-float64(mean)) / float64(mean); rel > tc.meanTolerate {
				t.Errorf("mean = %v, want %v within %.1f%%", time.Duration(gotMean), mean, tc.meanTolerate*100)
			}
			if gotCV < tc.wantCVLo || gotCV > tc.wantCVHi {
				t.Errorf("CV = %.3f, want in [%.2f, %.2f]", gotCV, tc.wantCVLo, tc.wantCVHi)
			}
		})
	}
}

func TestArrivalDeterministicPerSeed(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Process: "poisson"}, {Process: "gamma", Shape: 0.5}, {Process: "weibull", Shape: 2}, {Process: "uniform"},
	} {
		a, err := NewArrival(spec, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
		for i := 0; i < 100; i++ {
			if g1, g2 := a.Next(r1), a.Next(r2); g1 != g2 {
				t.Fatalf("%s: draw %d diverged with equal seeds: %v vs %v", a.Name(), i, g1, g2)
			}
		}
	}
}

func TestNewArrivalRejectsBadSpecs(t *testing.T) {
	if _, err := NewArrival(ArrivalSpec{Process: "pareto"}, time.Second); err == nil {
		t.Error("unknown process accepted")
	}
	if _, err := NewArrival(ArrivalSpec{}, 0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := NewArrival(ArrivalSpec{Process: "gamma", Shape: -1}, time.Second); err == nil {
		t.Error("negative shape accepted")
	}
}
