package provbench

import (
	"testing"
	"time"

	"repro/internal/core"
)

func systemSpec(seed int64) Spec {
	return DefaultSpec("hiring", seed, 300*time.Millisecond, 200, 4,
		ArrivalSpec{Process: "poisson"})
}

// TestSystemTargetAsync drives a live core.System through its async
// ingestion gateway end to end: admission, ack polling, and detection
// lag sampled against the continuous checker.
func TestSystemTargetAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("live system run")
	}
	ctor, err := domainFor("hiring")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctor()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{
		Dir: t.TempDir(), Continuous: true, IngestQueueDepth: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sched, err := Generate(systemSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sched, &SystemTarget{Sys: sys}, Options{
		AckPoll: time.Millisecond, DetectEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted == 0 {
		t.Fatal("no batches admitted")
	}
	if rep.Errors != 0 {
		t.Errorf("%d offer errors, last: %s", rep.Errors, rep.Classes[0].LastError)
	}
	if rep.Incomplete != 0 {
		t.Errorf("%d ops incomplete after drain", rep.Incomplete)
	}
	cr := rep.Classes[0]
	if cr.Ack.Count == 0 || cr.Ack.P99US < cr.Admit.P50US {
		t.Errorf("ack summary implausible: %+v vs admit %+v", cr.Ack, cr.Admit)
	}
	if cr.Detect.Count == 0 {
		t.Error("detection sampling produced no samples")
	}
	if rep.Gateway == nil {
		t.Fatal("async target reported no gateway stats")
	}
	if int(rep.Gateway.AdmittedBatches) != rep.Admitted {
		t.Errorf("gateway admitted %d batches, report says %d",
			rep.Gateway.AdmittedBatches, rep.Admitted)
	}
}

// TestSystemTargetSyncIngest covers the -sync-ingest ablation: offers
// commit synchronously, so admission and ack coincide and there is no
// gateway to report on.
func TestSystemTargetSyncIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("live system run")
	}
	ctor, err := domainFor("hiring")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctor()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{
		Dir: t.TempDir(), Continuous: true, DisableAsyncIngest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sched, err := Generate(systemSpec(18))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sched, &SystemTarget{Sys: sys}, Options{DetectEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != rep.Offered || rep.Shed != 0 || rep.Errors != 0 {
		t.Errorf("sync ingest: admitted/shed/errors = %d/%d/%d of %d offered",
			rep.Admitted, rep.Shed, rep.Errors, rep.Offered)
	}
	cr := rep.Classes[0]
	if cr.Ack.Count != cr.Admit.Count {
		t.Errorf("sync ingest: ack count %d != admit count %d", cr.Ack.Count, cr.Admit.Count)
	}
	if cr.Detect.Count == 0 {
		t.Error("detection sampling produced no samples")
	}
	if rep.Gateway != nil {
		t.Error("sync target reported gateway stats")
	}
}
