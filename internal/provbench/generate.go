package provbench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/events"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Op is one scheduled request: a client batch offered to the target at
// a fixed offset from the run start. The schedule is open-loop — At
// never depends on how the target handled earlier ops.
type Op struct {
	// At is the dispatch offset from the start of the run.
	At time.Duration
	// Client names the emitting simulated client ("interactive/3").
	Client string
	// Class is the client's SLO class (its ClientClass name).
	Class string
	// Tenant is the class's tenant namespace; empty for bare (default
	// tenant) traffic. The runner uses it to sample per-tenant detection
	// lag when the target supports it.
	Tenant string
	// Key is the batch's deterministic idempotency key.
	Key string
	// Events is the batch payload.
	Events []events.AppEvent
}

// Schedule is a fully materialized workload: every op, pre-generated
// and time-ordered. Materializing up front is what makes runs
// reproducible — generation cost is paid before the clock starts.
type Schedule struct {
	Spec Spec
	Ops  []Op
	// Events is the total event count across ops.
	Events int
}

// domainFor resolves a domain name to its constructor.
func domainFor(name string) (func() (*workload.Domain, error), error) {
	switch name {
	case "hiring":
		return workload.Hiring, nil
	case "procurement":
		return workload.Procurement, nil
	case "claims":
		return workload.Claims, nil
	default:
		return nil, fmt.Errorf("provbench: unknown domain %q (want hiring, procurement or claims)", name)
	}
}

// DomainFor builds the named process domain — the helper cmd/provbench
// and the E13 experiment use to construct the in-process target's
// system from a spec's class domain.
func DomainFor(name string) (*workload.Domain, error) {
	build, err := domainFor(name)
	if err != nil {
		return nil, err
	}
	return build()
}

// Generate materializes the spec into a schedule. It is a pure
// function of the spec: the same spec (including seed) always yields
// an identical schedule; different seeds yield diverging ones.
func Generate(spec Spec) (*Schedule, error) {
	spec.fill()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	horizon := time.Duration(spec.Duration)
	sched := &Schedule{Spec: spec}
	for ci := range spec.Classes {
		class := &spec.Classes[ci]
		pool, err := classEventPool(spec, ci)
		if err != nil {
			return nil, err
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("provbench: class %q generated no events", class.Name)
		}
		cursor := 0
		weights := clientWeights(class.Clients, class.Skew)
		for i := 0; i < class.Clients; i++ {
			rate := class.RatePerSec * weights[i]
			mean := time.Duration(float64(time.Second) / rate)
			arr, err := NewArrival(class.Arrival, mean)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(spec.Seed ^ int64(hash64(fmt.Sprintf("%s/%s/%d", spec.Name, class.Name, i)))))
			client := fmt.Sprintf("%s/%d", class.Name, i)
			for t, opIdx := arr.Next(rng), 0; t <= horizon; t, opIdx = t+arr.Next(rng), opIdx+1 {
				size := class.BatchMin
				if class.BatchMax > class.BatchMin {
					size += rng.Intn(class.BatchMax - class.BatchMin + 1)
				}
				batch, next := takeEvents(pool, cursor, size)
				cursor = next
				batch = qualifyBatch(class.Tenant, batch)
				sched.Ops = append(sched.Ops, Op{
					At:     t,
					Client: client,
					Class:  class.Name,
					Tenant: class.Tenant,
					Key:    fmt.Sprintf("%s-%s-%d-%d", spec.Name, class.Name, i, opIdx),
					Events: batch,
				})
				sched.Events += len(batch)
			}
		}
	}
	// Time order with a deterministic tie-break so the schedule is a
	// pure function of the spec regardless of per-client generation
	// order above.
	sort.SliceStable(sched.Ops, func(i, j int) bool {
		if sched.Ops[i].At != sched.Ops[j].At {
			return sched.Ops[i].At < sched.Ops[j].At
		}
		return sched.Ops[i].Key < sched.Ops[j].Key
	})
	return sched, nil
}

// classEventPool simulates enough domain traffic to feed the class's
// expected op volume. The pool size estimate probes a small simulation
// first (events per trace vary by domain), then runs one final sizing —
// both steps depend only on the spec, so the pool is deterministic.
func classEventPool(spec Spec, ci int) ([]events.AppEvent, error) {
	class := &spec.Classes[ci]
	build, err := domainFor(class.Domain)
	if err != nil {
		return nil, err
	}
	d, err := build()
	if err != nil {
		return nil, err
	}
	seed := spec.Seed ^ int64(hash64("pool/"+class.Name))
	probe := d.Simulate(workload.SimOptions{Seed: seed, Traces: 16, ViolationRate: class.ViolationRate})
	perTrace := len(probe.Events) / 16
	if perTrace == 0 {
		perTrace = 1
	}
	avgBatch := float64(class.BatchMin+class.BatchMax) / 2
	need := int(class.RatePerSec*time.Duration(spec.Duration).Seconds()*avgBatch*1.25) + perTrace
	traces := need/perTrace + 1
	if traces < 16 {
		traces = 16
	}
	res := d.Simulate(workload.SimOptions{Seed: seed, Traces: traces, ViolationRate: class.ViolationRate})
	return res.Events, nil
}

// qualifyBatch rewrites a batch's trace IDs into a tenant's namespace.
// Batches are pool subslices shared across ops, so qualification copies
// rather than mutating in place. Bare (default-tenant) classes keep the
// zero-copy path.
func qualifyBatch(tenantID string, batch []events.AppEvent) []events.AppEvent {
	if tenantID == "" || tenantID == tenant.DefaultID {
		return batch
	}
	out := make([]events.AppEvent, len(batch))
	for i, ev := range batch {
		ev.AppID = tenant.Qualify(tenantID, ev.AppID)
		out[i] = ev
	}
	return out
}

// takeEvents slices n events from the pool starting at cursor, wrapping
// around when the pool is exhausted. Wrapped events repeat earlier
// traffic — the pipeline's deterministic record IDs absorb the
// duplicates, mirroring at-least-once capture.
func takeEvents(pool []events.AppEvent, cursor, n int) ([]events.AppEvent, int) {
	if n > len(pool) {
		n = len(pool)
	}
	if cursor+n <= len(pool) {
		return pool[cursor : cursor+n], cursor + n
	}
	batch := make([]events.AppEvent, 0, n)
	batch = append(batch, pool[cursor:]...)
	rest := n - len(batch)
	batch = append(batch, pool[:rest]...)
	return batch, rest
}

// clientWeights spreads a class's aggregate rate over its clients with
// a power-law skew: weight_i proportional to (i+1)^-skew, normalized to
// sum to 1. Skew 0 is uniform.
func clientWeights(clients int, skew float64) []float64 {
	w := make([]float64, clients)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), skew)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
