package provbench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/latency"
)

// ClassReport is one SLO class's outcome.
type ClassReport struct {
	Class       string `json:"class"`
	Offered     int    `json:"offered"`
	Admitted    int    `json:"admitted"`
	Shed        int    `json:"shed"`
	Errors      int    `json:"errors"`
	AckTimeouts int    `json:"ackTimeouts"`
	// Events counts admitted events.
	Events int `json:"events"`
	// OfferedPerSec is the class's achieved offered rate over the
	// schedule horizon — a property of the schedule, so deterministic.
	OfferedPerSec float64 `json:"offeredPerSec"`
	// Admit, Ack and Detect summarize the three latencies: offer-call
	// duration, offer-to-terminal-ack, and offer-to-checker-caught-up.
	Admit  latency.Summary `json:"admit"`
	Ack    latency.Summary `json:"ack"`
	Detect latency.Summary `json:"detect"`
	// LastError is the most recent offer error, empty when none.
	LastError string `json:"lastError,omitempty"`
}

// Report is one harness run's machine-readable outcome. It carries no
// wall-clock timestamps: under virtual time the whole struct is a pure
// function of the schedule, so two runs of the same seed serialize to
// identical bytes.
type Report struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Duration is the schedule horizon; ElapsedUS the measured run
	// time (dispatch through drain) on the run's clock.
	Duration  Dur   `json:"duration"`
	ElapsedUS int64 `json:"elapsedUs"`

	Offered    int `json:"offered"`
	Admitted   int `json:"admitted"`
	Shed       int `json:"shed"`
	Errors     int `json:"errors"`
	Incomplete int `json:"incomplete"`
	// EventsOffered counts scheduled events, EventsAdmitted the subset
	// the target accepted.
	EventsOffered  int `json:"eventsOffered"`
	EventsAdmitted int `json:"eventsAdmitted"`
	// OfferedPerSec is scheduled ops over the horizon; EventsPerSec is
	// admitted events over measured elapsed time.
	OfferedPerSec float64 `json:"offeredPerSec"`
	EventsPerSec  float64 `json:"eventsPerSec"`
	// MaxScheduleSlipUS is the worst dispatch lateness relative to the
	// schedule — the open-loop fidelity gauge.
	MaxScheduleSlipUS int64 `json:"maxScheduleSlipUs"`

	Classes []ClassReport `json:"classes"`
	// Gateway snapshots the target's ingestion gateway counters when
	// the target exposes them.
	Gateway *ingest.Stats `json:"gateway,omitempty"`
}

// report snapshots the collectors into a Report. Collector locks are
// taken per class, so a report built after a drain timeout (with ops
// still in flight) is internally consistent.
func (r *runner) report(sched *Schedule, elapsed time.Duration) *Report {
	horizon := time.Duration(sched.Spec.Duration)
	if horizon <= 0 {
		// Replayed schedules can carry a zero-duration spec; fall back
		// to the last scheduled offset.
		horizon = sched.Ops[len(sched.Ops)-1].At
		if horizon <= 0 {
			horizon = time.Microsecond
		}
	}
	rep := &Report{
		Name:              sched.Spec.Name,
		Seed:              sched.Spec.Seed,
		Duration:          Dur(horizon),
		ElapsedUS:         elapsed.Microseconds(),
		EventsOffered:     sched.Events,
		MaxScheduleSlipUS: r.maxSlipUS.Load(),
	}
	names := make([]string, 0, len(r.classes))
	for name := range r.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cc := r.classes[name]
		cc.mu.Lock()
		cr := ClassReport{
			Class: name, Offered: cc.offered, Admitted: cc.admitted,
			Shed: cc.shed, Errors: cc.errors, AckTimeouts: cc.ackTimeouts,
			Events:        cc.events,
			OfferedPerSec: float64(cc.offered) / horizon.Seconds(),
			Admit:         cc.admit.Summary(),
			Ack:           cc.ack.Summary(),
			Detect:        cc.detect.Summary(),
			LastError:     cc.lastErr,
		}
		cc.mu.Unlock()
		rep.Classes = append(rep.Classes, cr)
		rep.Offered += cr.Offered
		rep.Admitted += cr.Admitted
		rep.Shed += cr.Shed
		rep.Errors += cr.Errors
		rep.EventsAdmitted += cr.Events
	}
	rep.Incomplete = rep.Offered - int(r.completed.Load())
	rep.OfferedPerSec = float64(rep.Offered) / horizon.Seconds()
	if elapsed > 0 {
		rep.EventsPerSec = float64(rep.EventsAdmitted) / elapsed.Seconds()
	}
	if gs, ok := r.target.(GatewayStatser); ok {
		if st, have := gs.GatewayStats(); have {
			rep.Gateway = &st
		}
	}
	return rep
}

// WriteJSON emits the report as indented JSON. Field order is fixed by
// the struct, so equal reports serialize to equal bytes.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// csvHeader is the stable column set of the CSV report.
var csvHeader = []string{
	"class", "offered", "admitted", "shed", "errors", "ackTimeouts", "events",
	"offeredPerSec",
	"admit_p50_us", "admit_p99_us", "admit_p999_us",
	"ack_p50_us", "ack_p99_us", "ack_p999_us",
	"detect_p50_us", "detect_p99_us", "detect_p999_us",
}

// WriteCSV emits one row per SLO class plus a TOTAL row.
func (rep *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := func(name string, offered, admitted, shed, errs, timeouts, events int,
		rate float64, admit, ack, detect latency.Summary) []string {
		return []string{
			name,
			strconv.Itoa(offered), strconv.Itoa(admitted), strconv.Itoa(shed),
			strconv.Itoa(errs), strconv.Itoa(timeouts), strconv.Itoa(events),
			strconv.FormatFloat(rate, 'f', 2, 64),
			strconv.FormatInt(admit.P50US, 10), strconv.FormatInt(admit.P99US, 10), strconv.FormatInt(admit.P999US, 10),
			strconv.FormatInt(ack.P50US, 10), strconv.FormatInt(ack.P99US, 10), strconv.FormatInt(ack.P999US, 10),
			strconv.FormatInt(detect.P50US, 10), strconv.FormatInt(detect.P99US, 10), strconv.FormatInt(detect.P999US, 10),
		}
	}
	var admitAll, ackAll, detectAll latency.Summary
	for _, c := range rep.Classes {
		if err := cw.Write(row(c.Class, c.Offered, c.Admitted, c.Shed, c.Errors,
			c.AckTimeouts, c.Events, c.OfferedPerSec, c.Admit, c.Ack, c.Detect)); err != nil {
			return err
		}
	}
	// The TOTAL row repeats the counts; cross-class quantiles are not
	// recomputed (mixing SLO classes into one percentile is exactly
	// what per-class reporting exists to avoid), so they print as 0.
	if err := cw.Write(row("TOTAL", rep.Offered, rep.Admitted, rep.Shed, rep.Errors,
		0, rep.EventsAdmitted, rep.OfferedPerSec, admitAll, ackAll, detectAll)); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Render draws the report as aligned human-readable text.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== provbench: %s (seed %d) ==\n", rep.Name, rep.Seed)
	fmt.Fprintf(&b, "horizon %v, elapsed %v, offered %d ops (%.1f/s), admitted %d, shed %d, errors %d, incomplete %d\n",
		time.Duration(rep.Duration), time.Duration(rep.ElapsedUS)*time.Microsecond,
		rep.Offered, rep.OfferedPerSec, rep.Admitted, rep.Shed, rep.Errors, rep.Incomplete)
	fmt.Fprintf(&b, "events: offered %d, admitted %d (%.0f/s); max schedule slip %dus\n",
		rep.EventsOffered, rep.EventsAdmitted, rep.EventsPerSec, rep.MaxScheduleSlipUS)
	fmt.Fprintf(&b, "%-14s %8s %8s %6s %6s  %-24s %-24s %-24s\n",
		"class", "offered", "admitted", "shed", "errs",
		"admit p50/p99/p999", "ack p50/p99/p999", "detect p50/p99/p999")
	q := func(s latency.Summary) string {
		if s.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%dus/%dus/%dus", s.P50US, s.P99US, s.P999US)
	}
	for _, c := range rep.Classes {
		fmt.Fprintf(&b, "%-14s %8d %8d %6d %6d  %-24s %-24s %-24s\n",
			c.Class, c.Offered, c.Admitted, c.Shed, c.Errors,
			q(c.Admit), q(c.Ack), q(c.Detect))
	}
	if rep.Gateway != nil {
		fmt.Fprintf(&b, "gateway: admitted %d batches / %d events, rejected %d, flushes %d (max %d), maxQueued %d\n",
			rep.Gateway.AdmittedBatches, rep.Gateway.AdmittedEvents,
			rep.Gateway.RejectedBatches, rep.Gateway.Flushes,
			rep.Gateway.MaxFlush, rep.Gateway.MaxQueuedEvents)
	}
	return b.String()
}
