package provbench

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival is an interarrival-time process: each call draws the gap to
// the next request from the process's distribution. All processes are
// parameterized by their mean interarrival time, so swapping the
// process changes burstiness (the variance shape) without changing the
// offered rate — the knob the open-loop experiments sweep.
type Arrival interface {
	// Name identifies the process ("poisson", "gamma", "weibull",
	// "uniform") in specs and reports.
	Name() string
	// Next draws one interarrival gap from rng.
	Next(rng *rand.Rand) time.Duration
}

// ArrivalSpec selects and shapes an arrival process in a workload spec.
type ArrivalSpec struct {
	// Process is the process name; empty defaults to "poisson".
	Process string `json:"process,omitempty"`
	// Shape is the gamma/weibull shape parameter k. Shape < 1 is
	// burstier than Poisson (CV > 1), shape > 1 smoother (CV < 1).
	// Ignored by poisson and uniform; 0 defaults to 1.
	Shape float64 `json:"shape,omitempty"`
}

// NewArrival builds the process described by spec with the given mean
// interarrival time.
func NewArrival(spec ArrivalSpec, mean time.Duration) (Arrival, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("provbench: arrival mean must be positive, got %v", mean)
	}
	shape := spec.Shape
	if shape == 0 {
		shape = 1
	}
	if shape < 0 {
		return nil, fmt.Errorf("provbench: arrival shape must be positive, got %g", shape)
	}
	switch spec.Process {
	case "", "poisson":
		return poissonArrival{mean: mean}, nil
	case "gamma":
		return gammaArrival{mean: mean, shape: shape}, nil
	case "weibull":
		// Pre-solve the scale so the mean stays 1/rate:
		// E[X] = scale * Gamma(1 + 1/k).
		return weibullArrival{shape: shape, scale: float64(mean) / math.Gamma(1+1/shape)}, nil
	case "uniform":
		return uniformArrival{mean: mean}, nil
	default:
		return nil, fmt.Errorf("provbench: unknown arrival process %q (want poisson, gamma, weibull or uniform)", spec.Process)
	}
}

// poissonArrival is the memoryless baseline: exponential interarrivals,
// CV = 1.
type poissonArrival struct{ mean time.Duration }

func (poissonArrival) Name() string { return "poisson" }
func (p poissonArrival) Next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(p.mean))
}

// gammaArrival draws Gamma(shape, 1) scaled so the mean interarrival is
// preserved. CV = 1/sqrt(shape): shape 0.25 yields heavy bursts with
// long gaps between them.
type gammaArrival struct {
	mean  time.Duration
	shape float64
}

func (gammaArrival) Name() string { return "gamma" }
func (g gammaArrival) Next(rng *rand.Rand) time.Duration {
	x := gammaSample(rng, g.shape)
	return time.Duration(x / g.shape * float64(g.mean))
}

// weibullArrival inverts the Weibull CDF: X = scale * (-ln U)^(1/k).
type weibullArrival struct {
	shape, scale float64
}

func (weibullArrival) Name() string { return "weibull" }
func (w weibullArrival) Next(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 { // ln(0) guard
		u = rng.Float64()
	}
	return time.Duration(w.scale * math.Pow(-math.Log(u), 1/w.shape))
}

// uniformArrival paces perfectly evenly: CV = 0. The closed-loop
// comparison point and the simplest deterministic schedule.
type uniformArrival struct{ mean time.Duration }

func (uniformArrival) Name() string { return "uniform" }
func (u uniformArrival) Next(*rand.Rand) time.Duration {
	return u.mean
}

// gammaSample draws Gamma(shape, 1) by Marsaglia-Tsang squeeze
// (shape >= 1) with the standard U^(1/a) boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
