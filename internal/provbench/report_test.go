package provbench

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"
)

// dryRun executes one deterministic dry run: Inline + virtual clock +
// NullTarget, the exact configuration cmd/provbench uses for -dry.
func dryRun(t *testing.T, sched *Schedule) *Report {
	t.Helper()
	rep, err := Run(sched, &NullTarget{PendingPolls: 2}, Options{
		Clock:   NewVirtualClock(time.Unix(0, 0)),
		AckPoll: time.Millisecond,
		Inline:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func reportBytes(t *testing.T, rep *Report) (jsonB, csvB []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := rep.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestReportByteIdentical is the acceptance criterion: a fixed-seed
// dry run produces byte-identical JSON and CSV reports across repeated
// runs, and across a record -> replay round trip; a different seed
// produces a different report.
func TestReportByteIdentical(t *testing.T) {
	gen := func(seed int64) *Schedule {
		s, err := Generate(testSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	j1, c1 := reportBytes(t, dryRun(t, gen(21)))
	j2, c2 := reportBytes(t, dryRun(t, gen(21)))
	if !bytes.Equal(j1, j2) {
		t.Error("same seed: JSON reports differ")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("same seed: CSV reports differ")
	}

	// Replaying a recorded trace must reproduce the same report bytes.
	var trace bytes.Buffer
	if err := WriteTrace(&trace, gen(21)); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	j3, c3 := reportBytes(t, dryRun(t, replayed))
	if !bytes.Equal(j1, j3) || !bytes.Equal(c1, c3) {
		t.Error("replayed schedule produced a different report")
	}

	j4, _ := reportBytes(t, dryRun(t, gen(22)))
	if bytes.Equal(j1, j4) {
		t.Error("different seeds produced identical reports")
	}
}

// TestReportCSVShape parses the CSV back and checks the column set,
// one row per class plus TOTAL, and that the TOTAL counts add up.
func TestReportCSVShape(t *testing.T) {
	sched, err := Generate(testSpec(33))
	if err != nil {
		t.Fatal(err)
	}
	rep := dryRun(t, sched)
	_, csvB := reportBytes(t, rep)
	rows, err := csv.NewReader(bytes.NewReader(csvB)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rep.Classes)+2 {
		t.Fatalf("CSV has %d rows, want header + %d classes + TOTAL", len(rows), len(rep.Classes))
	}
	for i, col := range csvHeader {
		if rows[0][i] != col {
			t.Errorf("CSV column %d = %q, want %q", i, rows[0][i], col)
		}
	}
	total := rows[len(rows)-1]
	if total[0] != "TOTAL" {
		t.Fatalf("last row is %q, want TOTAL", total[0])
	}
	var offered int
	for _, r := range rows[1 : len(rows)-1] {
		n, err := strconv.Atoi(r[1])
		if err != nil {
			t.Fatal(err)
		}
		offered += n
	}
	if got, _ := strconv.Atoi(total[1]); got != offered || offered != rep.Offered {
		t.Errorf("TOTAL offered = %s, class sum = %d, report = %d", total[1], offered, rep.Offered)
	}
}

func TestReportRender(t *testing.T) {
	sched, err := Generate(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	out := dryRun(t, sched).Render()
	for _, want := range []string{"provbench", "interactive", "batch", "admit p50/p99/p999"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}
