// Package provbench is the open-loop workload generator and load
// harness for the provenance platform. It models heterogeneous client
// populations — per-class SLOs, skewed per-client rates, bursty
// arrival processes — generates a fully deterministic request schedule
// from a seed, and drives a target (the in-process system, or a provd
// server over HTTP) WITHOUT closing the loop: requests fire on the
// schedule no matter how the target behaves, sheds are counted rather
// than retried, and queueing delay therefore shows up in the measured
// latencies instead of being hidden by client back-pressure the way
// closed-loop benchmarks hide it.
//
// Everything is seed-deterministic and paced by an injectable clock:
// the same spec and seed yield byte-identical schedules (and, under
// virtual time, byte-identical reports), and a schedule can be recorded
// to a file and replayed so a production-shaped run is reproducible.
package provbench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/tenant"
)

// Dur is a time.Duration that marshals as a human-readable string
// ("750ms") in JSON specs and trace files.
type Dur time.Duration

func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Dur) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("provbench: bad duration %q: %v", s, err)
	}
	*d = Dur(v)
	return nil
}

// ClientClass is one homogeneous client population sharing an SLO
// class: its size, aggregate rate, rate skew across clients, arrival
// process, and the shape of the traffic each request carries.
type ClientClass struct {
	// Name is the SLO class label the report groups latencies by.
	Name string `json:"name"`
	// Domain selects the process domain whose scenario generator
	// produces the event stream: hiring, procurement or claims.
	Domain string `json:"domain"`
	// Clients is the population size.
	Clients int `json:"clients"`
	// RatePerSec is the class's aggregate offered rate in batches/sec,
	// spread over the clients according to Skew.
	RatePerSec float64 `json:"ratePerSec"`
	// Skew is the power-law exponent of the per-client rate spread:
	// client i carries weight (i+1)^-Skew. 0 spreads the rate evenly;
	// 1 is Zipf-like (a few hot clients carry most of the load).
	Skew float64 `json:"skew,omitempty"`
	// Arrival shapes each client's interarrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// BatchMin/BatchMax bound the events per request, drawn uniformly.
	// Zero values default to 16/64.
	BatchMin int `json:"batchMin,omitempty"`
	BatchMax int `json:"batchMax,omitempty"`
	// ViolationRate is passed to the domain simulator: the fraction of
	// generated traces seeded with a genuine control violation.
	ViolationRate float64 `json:"violationRate,omitempty"`
	// Tenant namespaces every generated trace ID under the named tenant
	// ("acme" turns trace T-1 into acme::T-1). Empty (or "default")
	// leaves IDs bare. Multi-tenant workloads give each class its own
	// tenant so per-tenant admission and fair-share checking are
	// measurable per class (experiment E17).
	Tenant string `json:"tenant,omitempty"`
}

// Spec is a complete workload description. It is pure data: Generate
// turns it into a schedule, and the schedule — not the spec — is what
// the runner executes, so a recorded schedule replays without the spec.
type Spec struct {
	// Name labels the workload in reports and idempotency keys.
	Name string `json:"name"`
	// Seed makes generation reproducible; same spec + seed = identical
	// schedule, byte for byte.
	Seed int64 `json:"seed"`
	// Duration is the open-loop schedule horizon.
	Duration Dur `json:"duration"`
	// Classes are the client populations offered concurrently.
	Classes []ClientClass `json:"classes"`
}

func (s *Spec) fill() {
	if s.Name == "" {
		s.Name = "provbench"
	}
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Clients <= 0 {
			c.Clients = 1
		}
		if c.BatchMin <= 0 {
			c.BatchMin = 16
		}
		if c.BatchMax < c.BatchMin {
			c.BatchMax = c.BatchMin
			if c.BatchMax < 64 {
				c.BatchMax = 64
			}
		}
	}
}

// Validate checks the spec for generate-time errors.
func (s *Spec) Validate() error {
	if time.Duration(s.Duration) <= 0 {
		return fmt.Errorf("provbench: spec duration must be positive")
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("provbench: spec has no client classes")
	}
	seen := map[string]bool{}
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("provbench: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("provbench: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.RatePerSec <= 0 {
			return fmt.Errorf("provbench: class %q rate must be positive", c.Name)
		}
		if c.Skew < 0 {
			return fmt.Errorf("provbench: class %q skew must be >= 0", c.Name)
		}
		if _, err := domainFor(c.Domain); err != nil {
			return err
		}
		if c.Tenant != "" && c.Tenant != tenant.DefaultID && !tenant.ValidID(c.Tenant) {
			return fmt.Errorf("provbench: class %q has invalid tenant %q", c.Name, c.Tenant)
		}
		if _, err := NewArrival(c.Arrival, time.Second); err != nil {
			return err
		}
	}
	return nil
}

// ParseSpec decodes a JSON spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("provbench: parse spec: %v", err)
	}
	s.fill()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// DefaultSpec is the single-class workload cmd/provbench builds from
// flags when no spec file is given: clients Poisson clients offering
// rate batches/sec of domain traffic under one "default" SLO class.
func DefaultSpec(domain string, seed int64, duration time.Duration, rate float64, clients int, arrival ArrivalSpec) Spec {
	s := Spec{
		Name:     "provbench-" + domain,
		Seed:     seed,
		Duration: Dur(duration),
		Classes: []ClientClass{{
			Name:          "default",
			Domain:        domain,
			Clients:       clients,
			RatePerSec:    rate,
			Skew:          1,
			Arrival:       arrival,
			ViolationRate: 0.2,
		}},
	}
	s.fill()
	return s
}
