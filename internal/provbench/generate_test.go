package provbench

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func testSpec(seed int64) Spec {
	s := Spec{
		Name:     "unit",
		Seed:     seed,
		Duration: Dur(500 * time.Millisecond),
		Classes: []ClientClass{
			{
				Name: "interactive", Domain: "hiring", Clients: 4,
				RatePerSec: 80, Skew: 1,
				Arrival:  ArrivalSpec{Process: "poisson"},
				BatchMin: 4, BatchMax: 16, ViolationRate: 0.3,
			},
			{
				Name: "batch", Domain: "claims", Clients: 2,
				RatePerSec: 20,
				Arrival:    ArrivalSpec{Process: "gamma", Shape: 0.5},
				BatchMin:   32, BatchMax: 64,
			},
		},
	}
	return s
}

func traceBytes(t *testing.T, s *Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateDeterministic is the deterministic-generation property:
// the same spec + seed yields an identical batch stream across two
// independent runs, and across a record -> replay round trip; a
// different seed diverges.
func TestGenerateDeterministic(t *testing.T) {
	s1, err := Generate(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := traceBytes(t, s1), traceBytes(t, s2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same spec + seed produced different schedules")
	}

	// Record -> replay round trip: replayed schedule re-records to the
	// same bytes and carries the same op stream.
	replayed, err := ReadTrace(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, traceBytes(t, replayed)) {
		t.Fatal("record -> replay -> record changed the trace bytes")
	}
	if replayed.Events != s1.Events || len(replayed.Ops) != len(s1.Ops) {
		t.Fatalf("replay: %d ops / %d events, want %d / %d",
			len(replayed.Ops), replayed.Events, len(s1.Ops), s1.Events)
	}
	for i := range s1.Ops {
		a, b := s1.Ops[i], replayed.Ops[i]
		if a.At != b.At || a.Key != b.Key || a.Client != b.Client || a.Class != b.Class || len(a.Events) != len(b.Events) {
			t.Fatalf("replayed op %d differs: %+v vs %+v", i, a, b)
		}
	}

	s3, err := Generate(testSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, traceBytes(t, s3)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateScheduleShape(t *testing.T) {
	sched, err := Generate(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Ops) == 0 {
		t.Fatal("empty schedule")
	}
	horizon := time.Duration(sched.Spec.Duration)
	perClass := map[string]int{}
	var events int
	for i, op := range sched.Ops {
		if op.At < 0 || op.At > horizon {
			t.Fatalf("op %d at %v outside horizon %v", i, op.At, horizon)
		}
		if i > 0 && op.At < sched.Ops[i-1].At {
			t.Fatalf("ops not time-ordered at %d", i)
		}
		if len(op.Events) == 0 {
			t.Fatalf("op %d has no events", i)
		}
		if op.Key == "" || op.Client == "" || op.Class == "" {
			t.Fatalf("op %d missing identity: %+v", i, op)
		}
		perClass[op.Class]++
		events += len(op.Events)
	}
	if events != sched.Events {
		t.Errorf("Events = %d, sum = %d", sched.Events, events)
	}
	// Offered volume tracks rate * horizon (Poisson/gamma noise allows
	// a generous band).
	for _, c := range sched.Spec.Classes {
		want := c.RatePerSec * horizon.Seconds()
		got := float64(perClass[c.Name])
		if got < want*0.5 || got > want*1.6 {
			t.Errorf("class %s offered %v ops, want about %v", c.Name, got, want)
		}
	}
}

func TestClientWeightsSkew(t *testing.T) {
	w := clientWeights(4, 1)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Errorf("skew 1: weight %d (%v) not below weight %d (%v)", i, v, i-1, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	for _, v := range clientWeights(3, 0) {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Errorf("skew 0 weight %v, want 1/3", v)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := testSpec(1)
	bad.Classes[0].Domain = "lending"
	if _, err := Generate(bad); err == nil {
		t.Error("unknown domain accepted")
	}
	bad = testSpec(1)
	bad.Duration = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero duration accepted")
	}
	bad = testSpec(1)
	bad.Classes[1].Name = bad.Classes[0].Name
	if _, err := Generate(bad); err == nil {
		t.Error("duplicate class name accepted")
	}
	bad = testSpec(1)
	bad.Classes[0].RatePerSec = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"provbench":99,"spec":{}}` + "\n"))); err == nil {
		t.Error("future version accepted")
	}
}
