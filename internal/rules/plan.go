package rules

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bal"
	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// The binder planner. A definition like
//
//	'the request' is a job requisition where the status of this is "open"
//
// is an access-path decision in disguise: which index to probe for
// candidates, which predicates are cheap enough to test before paying
// for the full where closure, and whether the resulting candidate set
// can be shared with other controls binding the same concept. The plan
// is extracted once at Compile time from the binder's AST; evaluation
// just follows it.

// attrPrefilter is one hoisted attribute-equality predicate: an O(1)
// field fetch and compare that can definitively reject a candidate
// before the where closure runs. Only a present-and-unequal attribute
// rejects — a missing attribute must still flow through the full
// three-valued where so its unknown-operand note is emitted.
type attrPrefilter struct {
	phrase string
	field  *xom.Field
	val    provenance.Value
}

// binderPlan is the compiled access path of one "a <concept>" binder.
type binderPlan struct {
	// typeName is the node type whose posting list enumerates candidates.
	typeName string
	// prefilters are hoisted equality predicates, cheapest (most
	// selective kind) first.
	prefilters []attrPrefilter
	// residual reports whether a where clause remains after prefilters
	// (prefilters never replace the where; they only short-circuit it).
	residual bool
	// fingerprint identifies the candidate set this binder computes:
	// concept type plus the normalized where rendering. Binders with
	// equal fingerprints bind identical node sets on the same trace
	// version.
	fingerprint string
	// shareable is true when the where clause is self-contained (no
	// references to other definition variables), so the candidate set
	// depends only on the trace and the fingerprint is a sound cache key.
	shareable bool
}

// buildBinderPlan extracts the plan for a binder of the given class.
// where is the binder's AST condition (nil when unconstrained).
func (c *compiler) buildBinderPlan(class *xom.Class, where bal.Cond) binderPlan {
	pl := binderPlan{typeName: class.Name, fingerprint: "type=" + class.Name, shareable: true}
	if where == nil {
		return pl
	}
	pl.residual = true
	pl.fingerprint += "|where=" + where.String()
	pl.shareable = !condRefsVars(where)
	pl.prefilters = c.collectEqPrefilters(class, where, nil)
	// Cheapest-first: all prefilters cost one map lookup, so order by
	// expected selectivity of the compared kind — bool equality splits
	// candidates in half at best and goes last.
	sort.SliceStable(pl.prefilters, func(i, j int) bool {
		return prefilterRank(pl.prefilters[i]) < prefilterRank(pl.prefilters[j])
	})
	return pl
}

func prefilterRank(pf attrPrefilter) int {
	if pf.val.Kind() == provenance.KindBool {
		return 1
	}
	return 0
}

// collectEqPrefilters walks the top-level conjunction of the where
// clause and hoists every `the <attr phrase> of this = <literal>`
// equality (either operand order). Disjunctions and negations are never
// descended into: a predicate is only a sound prefilter when it must
// hold for the whole where to hold.
func (c *compiler) collectEqPrefilters(class *xom.Class, cond bal.Cond, out []attrPrefilter) []attrPrefilter {
	switch n := cond.(type) {
	case *bal.And:
		out = c.collectEqPrefilters(class, n.L, out)
		out = c.collectEqPrefilters(class, n.R, out)
	case *bal.Cmp:
		if n.Op != bal.OpEq {
			return out
		}
		if pf, ok := c.eqPrefilter(class, n.L, n.R); ok {
			out = append(out, pf)
		} else if pf, ok := c.eqPrefilter(class, n.R, n.L); ok {
			out = append(out, pf)
		}
	}
	return out
}

// eqPrefilter recognizes `the <phrase> of this` compared to a literal,
// with the phrase resolving to a plain attribute of the binder's class.
func (c *compiler) eqPrefilter(class *xom.Class, navSide, litSide bal.Expr) (attrPrefilter, bool) {
	nav, ok := navSide.(*bal.Nav)
	if !ok {
		return attrPrefilter{}, false
	}
	if _, isThis := nav.Of.(*bal.This); !isThis {
		return attrPrefilter{}, false
	}
	lit, ok := litSide.(*bal.Lit)
	if !ok {
		return attrPrefilter{}, false
	}
	entry, err := c.vocab.Resolve(nav.Phrase, class)
	if err != nil || entry.Kind != bom.Attribute {
		return attrPrefilter{}, false
	}
	ce, err := compileLit(lit)
	if err != nil {
		return attrPrefilter{}, false
	}
	return attrPrefilter{phrase: nav.Phrase, field: entry.Field, val: ce.value(nil)}, true
}

// condRefsVars reports whether the condition references any definition
// variable. Such a where clause is evaluated relative to earlier
// bindings, so its candidate set cannot be shared across controls.
func condRefsVars(cond bal.Cond) bool {
	switch n := cond.(type) {
	case *bal.And:
		return condRefsVars(n.L) || condRefsVars(n.R)
	case *bal.Or:
		return condRefsVars(n.L) || condRefsVars(n.R)
	case *bal.Not:
		return condRefsVars(n.C)
	case *bal.Cmp:
		return exprRefsVars(n.L) || exprRefsVars(n.R)
	case *bal.IsNull:
		return exprRefsVars(n.E)
	case *bal.Exists:
		return exprRefsVars(n.E)
	case *bal.InList:
		if exprRefsVars(n.E) {
			return true
		}
		for _, it := range n.List {
			if exprRefsVars(it) {
				return true
			}
		}
		return false
	case *bal.Between:
		return exprRefsVars(n.E) || exprRefsVars(n.Lo) || exprRefsVars(n.Hi)
	case *bal.Within:
		return exprRefsVars(n.E) || exprRefsVars(n.Anchor)
	case *bal.Contains:
		return exprRefsVars(n.L) || exprRefsVars(n.R)
	default:
		// Unknown condition forms are conservatively unshareable.
		return true
	}
}

func exprRefsVars(e bal.Expr) bool {
	switch n := e.(type) {
	case *bal.Lit, *bal.This:
		return false
	case *bal.VarRef:
		return true
	case *bal.Nav:
		return exprRefsVars(n.Of)
	case *bal.Count:
		return exprRefsVars(n.Of)
	case *bal.Binary:
		return exprRefsVars(n.L) || exprRefsVars(n.R)
	case *bal.Neg:
		return exprRefsVars(n.E)
	default:
		return true
	}
}

// describe renders the plan for EXPLAIN-style introspection.
func (pl binderPlan) describe(varName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: TypeIndex(%s)", varName, pl.typeName)
	for _, pf := range pl.prefilters {
		fmt.Fprintf(&b, " -> Prefilter(%s = %s)", pf.phrase, pf.val.Text())
	}
	if pl.residual {
		b.WriteString(" -> Where")
	}
	if pl.shareable {
		b.WriteString(" [shareable]")
	}
	return b.String()
}

// PlanSummaries renders the access plan of each binder definition, in
// definition order. Expression definitions have no access path and are
// omitted.
func (c *Control) PlanSummaries() []string {
	var out []string
	for _, d := range c.defs {
		if d.binder != nil {
			out = append(out, d.binder.plan.describe(d.name))
		}
	}
	return out
}

// BindingCounters aggregates binding-cache traffic across all the caches
// an owner (typically the controls registry) creates over its lifetime.
type BindingCounters struct {
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// BindingCache memoizes binder candidate sets within one trace version:
// when N controls bind the same (concept, where) fingerprint against the
// same snapshot, the candidate set is computed once and replayed N-1
// times. The caller owns invalidation — a cache must not outlive the
// trace version it was populated from (the controls registry keys caches
// on the store's per-trace version counter, the same counter the check
// result cache keys on, so both invalidate together).
//
// Cached node pointers remain valid across snapshots of the same
// version: records are immutable once stored and shards are structurally
// shared.
type BindingCache struct {
	mu       sync.Mutex
	entries  map[string]*bindingEntry
	counters *BindingCounters
}

// bindingEntry is one memoized candidate set, with the notes its
// computation emitted so cache hits replay identical diagnostics.
type bindingEntry struct {
	nodes []*provenance.Node
	notes []string
}

// NewBindingCache returns an empty cache. counters may be nil.
func NewBindingCache(counters *BindingCounters) *BindingCache {
	return &BindingCache{entries: make(map[string]*bindingEntry), counters: counters}
}

// Len reports the number of memoized candidate sets.
func (bc *BindingCache) Len() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return len(bc.entries)
}

func (bc *BindingCache) lookup(fp string) (*bindingEntry, bool) {
	bc.mu.Lock()
	e, ok := bc.entries[fp]
	bc.mu.Unlock()
	if bc.counters != nil {
		if ok {
			bc.counters.Hits.Add(1)
		} else {
			bc.counters.Misses.Add(1)
		}
	}
	return e, ok
}

func (bc *BindingCache) store(fp string, nodes []*provenance.Node, notes []string) {
	e := &bindingEntry{nodes: nodes}
	if len(notes) > 0 {
		e.notes = append([]string(nil), notes...)
	}
	bc.mu.Lock()
	bc.entries[fp] = e
	bc.mu.Unlock()
}
