package rules

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bal"
	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// Compile parses the rule text against the vocabulary and resolves every
// phrase through the BOM-to-XOM mapping. Compilation performs the full
// static analysis: unknown variables, phrase/class mismatches, and type
// errors are reported with source positions, so a business user gets
// editor-style feedback without touching application code.
func Compile(text string, vocab *bom.Vocabulary) (*Control, error) {
	if vocab == nil {
		return nil, fmt.Errorf("rules: nil vocabulary")
	}
	rt, err := bal.Parse(text, vocabAdapter{vocab})
	if err != nil {
		return nil, err
	}
	c := &compiler{
		vocab:      vocab,
		varTypes:   make(map[string]exprType),
		binderVars: make(map[string]bool),
		fpReads:    make(map[string]struct{}),
		fpEdges:    make(map[string]struct{}),
	}
	ctrl := &Control{text: text, rt: rt, vocab: vocab}
	for _, d := range rt.Definitions {
		cd, err := c.compileDefinition(d)
		if err != nil {
			return nil, err
		}
		ctrl.defs = append(ctrl.defs, cd)
	}
	cond, err := c.compileCond(rt.If)
	if err != nil {
		return nil, err
	}
	ctrl.cond = cond
	ctrl.then, err = c.compileActions(rt.Then)
	if err != nil {
		return nil, err
	}
	ctrl.els, err = c.compileActions(rt.Else)
	if err != nil {
		return nil, err
	}
	fp := &Footprint{wildcard: c.fpWildcard, reads: c.fpReads, edges: c.fpEdges}
	for _, d := range ctrl.defs {
		if d.binder != nil {
			fp.binders = append(fp.binders, d.binder.plan)
		}
	}
	ctrl.footprint = fp
	ctrl.windows = c.windows
	return ctrl, nil
}

// vocabAdapter bridges bom's phrase matcher to the parser's interface
// (identical semantics, distinct struct types to keep bom and bal
// decoupled).
type vocabAdapter struct {
	v *bom.Vocabulary
}

// MatchPhrases implements bal.Vocabulary.
func (a vocabAdapter) MatchPhrases(tokens []string) []bal.PhraseMatch {
	ms := a.v.MatchPhrases(tokens)
	out := make([]bal.PhraseMatch, len(ms))
	for i, m := range ms {
		out[i] = bal.PhraseMatch{Phrase: m.Phrase, N: m.N}
	}
	return out
}

// MatchConceptLabel implements bal.Vocabulary.
func (a vocabAdapter) MatchConceptLabel(tokens []string) (string, int, bool) {
	return a.v.MatchConceptLabel(tokens)
}

type compiler struct {
	vocab    *bom.Vocabulary
	varTypes map[string]exprType
	// thisClass is non-nil while compiling a binder's where clause.
	thisClass *xom.Class

	// Footprint collection (see delta.go). binderVars marks variables
	// bound by "a <concept>" binders: attribute reads on them are covered
	// by the binder's access plan and stay out of fpReads.
	binderVars map[string]bool
	fpReads    map[string]struct{}
	fpEdges    map[string]struct{}
	fpWildcard bool
	// tscope, while non-nil, collects the timestamp sources of a Within
	// operand being compiled.
	tscope  *timeScope
	windows []WindowSpec
}

func errAt(pos bal.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *compiler) compileDefinition(d *bal.Definition) (compiledDef, error) {
	if _, ok := c.varTypes[d.Var]; ok {
		return compiledDef{}, errAt(d.Pos, "variable '%s' is defined twice", d.Var)
	}
	cd := compiledDef{name: d.Var}
	switch {
	case d.Binder != nil:
		concept := c.vocab.Concept(d.Binder.Concept)
		if concept == nil {
			return compiledDef{}, errAt(d.Binder.Pos, "unknown concept %q", d.Binder.Concept)
		}
		b := &compiledBinder{class: concept.Class}
		if d.Binder.Where != nil {
			c.thisClass = concept.Class
			where, err := c.compileCond(d.Binder.Where)
			c.thisClass = nil
			if err != nil {
				return compiledDef{}, err
			}
			b.where = where
		}
		b.plan = c.buildBinderPlan(concept.Class, d.Binder.Where)
		cd.binder = b
		cd.typ = exprType{isNode: true, class: concept.Class}
		c.binderVars[d.Var] = true
	default:
		e, err := c.compileExpr(d.Expr)
		if err != nil {
			return compiledDef{}, err
		}
		cd.expr = e
		cd.typ = e.typ
	}
	c.varTypes[d.Var] = cd.typ
	return cd, nil
}

func (c *compiler) compileCond(cond bal.Cond) (compiledCond, error) {
	switch n := cond.(type) {
	case *bal.And:
		l, err := c.compileCond(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(n.R)
		if err != nil {
			return nil, err
		}
		return func(ev *evalCtx) tri { return triAnd(l(ev), r(ev)) }, nil
	case *bal.Or:
		l, err := c.compileCond(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(n.R)
		if err != nil {
			return nil, err
		}
		return func(ev *evalCtx) tri { return triOr(l(ev), r(ev)) }, nil
	case *bal.Not:
		in, err := c.compileCond(n.C)
		if err != nil {
			return nil, err
		}
		return func(ev *evalCtx) tri { return in(ev).not() }, nil
	case *bal.Cmp:
		return c.compileCmp(n)
	case *bal.IsNull:
		return c.compileNullness(n.E, n.Negated, n.Position())
	case *bal.Exists:
		// "X exists" is "X is not null"; "X does not exist" is "X is null".
		return c.compileNullness(n.E, !n.Negated, n.Position())
	case *bal.InList:
		return c.compileInList(n)
	case *bal.Between:
		return c.compileBetween(n)
	case *bal.Within:
		return c.compileWithin(n)
	case *bal.Contains:
		l, err := c.compileExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(n.R)
		if err != nil {
			return nil, err
		}
		for _, side := range []*compiledExpr{l, r} {
			if side.typ.isNode || side.typ.kind != provenance.KindString {
				return nil, errAt(n.Pos, "contains requires strings, got %s", side.typ.describe())
			}
		}
		return func(ev *evalCtx) tri {
			lv, rv := l.value(ev), r.value(ev)
			if lv.IsZero() || rv.IsZero() {
				ev.note("%s: operand of contains is unknown", n.Pos)
				return triUnknown
			}
			if strings.Contains(lv.Str(), rv.Str()) {
				return triTrue
			}
			return triFalse
		}, nil
	default:
		return nil, fmt.Errorf("rules: unsupported condition %T", cond)
	}
}

// compileNullness handles is-null / exists on both node-typed expressions
// (definite: does the record/edge exist in the provenance graph?) and
// value-typed ones (definite: was the attribute captured?).
func (c *compiler) compileNullness(e bal.Expr, wantPresent bool, pos bal.Pos) (compiledCond, error) {
	ce, err := c.compileExpr(e)
	if err != nil {
		return nil, err
	}
	if ce.typ.isNode {
		return func(ev *evalCtx) tri {
			present := len(ce.nodes(ev)) > 0
			if present == wantPresent {
				return triTrue
			}
			return triFalse
		}, nil
	}
	return func(ev *evalCtx) tri {
		present := !ce.value(ev).IsZero()
		if present == wantPresent {
			return triTrue
		}
		return triFalse
	}, nil
}

func (c *compiler) compileCmp(n *bal.Cmp) (compiledCond, error) {
	l, err := c.compileExpr(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compileExpr(n.R)
	if err != nil {
		return nil, err
	}
	if l.typ.isNode || r.typ.isNode {
		return nil, errAt(n.Pos, "cannot compare %s %s %s; compare attributes, or use exists",
			l.typ.describe(), n.Op, r.typ.describe())
	}
	if err := checkComparable(l.typ.kind, r.typ.kind, n.Op, n.Pos); err != nil {
		return nil, err
	}
	eq := n.Op == bal.OpEq || n.Op == bal.OpNe
	return func(ev *evalCtx) tri {
		lv, rv := l.value(ev), r.value(ev)
		if lv.IsZero() || rv.IsZero() {
			ev.note("%s: operand of %q is unknown", n.Pos, n.Op.String())
			return triUnknown
		}
		if eq {
			same := lv.Equal(rv)
			if same == (n.Op == bal.OpEq) {
				return triTrue
			}
			return triFalse
		}
		cmp, err := lv.Compare(rv)
		if err != nil {
			ev.note("%s: %v", n.Pos, err)
			return triUnknown
		}
		var ok bool
		switch n.Op {
		case bal.OpLt:
			ok = cmp < 0
		case bal.OpLe:
			ok = cmp <= 0
		case bal.OpGt:
			ok = cmp > 0
		case bal.OpGe:
			ok = cmp >= 0
		}
		if ok {
			return triTrue
		}
		return triFalse
	}, nil
}

func checkComparable(a, b provenance.Kind, op bal.CmpOp, pos bal.Pos) error {
	numeric := func(k provenance.Kind) bool {
		return k == provenance.KindInt || k == provenance.KindFloat
	}
	comparable := a == b || (numeric(a) && numeric(b))
	if !comparable {
		return errAt(pos, "cannot compare %s to %s", a, b)
	}
	if op != bal.OpEq && op != bal.OpNe && a == provenance.KindBool {
		return errAt(pos, "ordered comparison on booleans")
	}
	return nil
}

func (c *compiler) compileInList(n *bal.InList) (compiledCond, error) {
	e, err := c.compileExpr(n.E)
	if err != nil {
		return nil, err
	}
	if e.typ.isNode {
		return nil, errAt(n.Pos, "is-one-of requires a value, got %s", e.typ.describe())
	}
	var items []*compiledExpr
	for _, it := range n.List {
		ce, err := c.compileExpr(it)
		if err != nil {
			return nil, err
		}
		if err := checkComparable(e.typ.kind, ce.typ.kind, bal.OpEq, it.Position()); err != nil {
			return nil, err
		}
		items = append(items, ce)
	}
	return func(ev *evalCtx) tri {
		v := e.value(ev)
		if v.IsZero() {
			ev.note("%s: operand of is-one-of is unknown", n.Pos)
			return triUnknown
		}
		for _, it := range items {
			iv := it.value(ev)
			if !iv.IsZero() && v.Equal(iv) {
				return triTrue
			}
		}
		return triFalse
	}, nil
}

// compileBetween lowers "X is between A and B" to an inclusive range test
// with the usual three-valued semantics.
func (c *compiler) compileBetween(n *bal.Between) (compiledCond, error) {
	e, err := c.compileExpr(n.E)
	if err != nil {
		return nil, err
	}
	lo, err := c.compileExpr(n.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := c.compileExpr(n.Hi)
	if err != nil {
		return nil, err
	}
	if e.typ.isNode {
		return nil, errAt(n.Pos, "is-between requires a value, got %s", e.typ.describe())
	}
	for _, bound := range []*compiledExpr{lo, hi} {
		if bound.typ.isNode {
			return nil, errAt(n.Pos, "is-between bounds must be values, got %s", bound.typ.describe())
		}
		if err := checkComparable(e.typ.kind, bound.typ.kind, bal.OpLe, n.Pos); err != nil {
			return nil, err
		}
	}
	return func(ev *evalCtx) tri {
		v, lv, hv := e.value(ev), lo.value(ev), hi.value(ev)
		if v.IsZero() || lv.IsZero() || hv.IsZero() {
			ev.note("%s: operand of is-between is unknown", n.Pos)
			return triUnknown
		}
		cl, err1 := v.Compare(lv)
		ch, err2 := v.Compare(hv)
		if err1 != nil || err2 != nil {
			ev.note("%s: incomparable values in is-between", n.Pos)
			return triUnknown
		}
		if cl >= 0 && ch <= 0 {
			return triTrue
		}
		return triFalse
	}, nil
}

// navCoveredByBinder reports whether an attribute read through this
// operand only ever touches nodes a binder access plan already accounts
// for: the "this" of a where clause, or a variable bound by a binder.
func (c *compiler) navCoveredByBinder(of bal.Expr) bool {
	switch n := of.(type) {
	case *bal.This:
		return true
	case *bal.VarRef:
		return c.binderVars[n.Name]
	default:
		return false
	}
}

// compileWithin lowers the windowed temporal predicate
// "X is within <d> of Y" to |X - Y| <= d over two captured timestamps,
// with the usual three-valued semantics: a side that was never captured
// yields Unknown, never a false alarm. The predicate is deliberately
// clock-free — it compares recorded provenance, not the evaluation
// instant — so verdicts stay reproducible; wall-clock window expiry is
// the window tracker's job (controls package), fed by the same specs
// this compilation collects.
func (c *compiler) compileWithin(n *bal.Within) (compiledCond, error) {
	collect := func(e bal.Expr) (*compiledExpr, []TimeRef, bool, error) {
		prev := c.tscope
		c.tscope = &timeScope{}
		ce, err := c.compileExpr(e)
		scope := c.tscope
		c.tscope = prev
		if err != nil {
			return nil, nil, false, err
		}
		return ce, scope.refs, scope.any, nil
	}
	target, tRefs, tAny, err := collect(n.E)
	if err != nil {
		return nil, err
	}
	anchor, aRefs, aAny, err := collect(n.Anchor)
	if err != nil {
		return nil, err
	}
	for _, side := range []*compiledExpr{target, anchor} {
		if side.typ.isNode || side.typ.kind != provenance.KindTime {
			return nil, errAt(n.Pos, "is-within requires timestamps, got %s", side.typ.describe())
		}
	}
	window := time.Duration(n.Seconds) * time.Second
	c.windows = append(c.windows, WindowSpec{
		Window: window,
		Anchor: aRefs, AnchorAny: aAny,
		Target: tRefs, TargetAny: tAny,
	})
	return func(ev *evalCtx) tri {
		tv, av := target.value(ev), anchor.value(ev)
		if tv.IsZero() || av.IsZero() {
			ev.note("%s: operand of is-within is unknown", n.Pos)
			return triUnknown
		}
		d := tv.TimeVal().Sub(av.TimeVal())
		if d < 0 {
			d = -d
		}
		if d <= window {
			return triTrue
		}
		return triFalse
	}, nil
}

func (c *compiler) compileExpr(e bal.Expr) (*compiledExpr, error) {
	switch n := e.(type) {
	case *bal.Lit:
		return compileLit(n)
	case *bal.VarRef:
		typ, ok := c.varTypes[n.Name]
		if !ok {
			return nil, errAt(n.Pos, "variable '%s' is not defined", n.Name)
		}
		if typ.isNode {
			return &compiledExpr{typ: typ, nodes: func(ev *evalCtx) []*provenance.Node {
				return ev.vars[n.Name].nodes
			}}, nil
		}
		return &compiledExpr{typ: typ, value: func(ev *evalCtx) provenance.Value {
			return ev.vars[n.Name].val
		}}, nil
	case *bal.This:
		if c.thisClass == nil {
			return nil, errAt(n.Pos, "\"this\" is only valid inside a where clause")
		}
		return &compiledExpr{
			typ: exprType{isNode: true, class: c.thisClass},
			nodes: func(ev *evalCtx) []*provenance.Node {
				if ev.this == nil {
					return nil
				}
				return []*provenance.Node{ev.this}
			},
		}, nil
	case *bal.Nav:
		return c.compileNav(n)
	case *bal.Count:
		of, err := c.compileExpr(n.Of)
		if err != nil {
			return nil, err
		}
		if !of.typ.isNode {
			return nil, errAt(n.Pos, "the number of requires business objects, got %s", of.typ.describe())
		}
		return &compiledExpr{
			typ: exprType{kind: provenance.KindInt},
			value: func(ev *evalCtx) provenance.Value {
				return provenance.Int(int64(len(of.nodes(ev))))
			},
		}, nil
	case *bal.Binary:
		return c.compileBinary(n)
	case *bal.Neg:
		in, err := c.compileExpr(n.E)
		if err != nil {
			return nil, err
		}
		if in.typ.isNode || !isNumericKind(in.typ.kind) {
			return nil, errAt(n.Pos, "unary minus requires a number, got %s", in.typ.describe())
		}
		return &compiledExpr{typ: in.typ, value: func(ev *evalCtx) provenance.Value {
			v := in.value(ev)
			if v.IsZero() {
				return v
			}
			if v.Kind() == provenance.KindInt {
				return provenance.Int(-v.IntVal())
			}
			return provenance.Float(-v.FloatVal())
		}}, nil
	default:
		return nil, fmt.Errorf("rules: unsupported expression %T", e)
	}
}

func compileLit(n *bal.Lit) (*compiledExpr, error) {
	var v provenance.Value
	switch n.Kind {
	case bal.LitString:
		v = provenance.String(n.Text)
	case bal.LitInt:
		i, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return nil, errAt(n.Pos, "bad integer literal %q", n.Text)
		}
		v = provenance.Int(i)
	case bal.LitFloat:
		f, err := strconv.ParseFloat(n.Text, 64)
		if err != nil {
			return nil, errAt(n.Pos, "bad number literal %q", n.Text)
		}
		v = provenance.Float(f)
	case bal.LitBool:
		v = provenance.Bool(n.Text == "true")
	default:
		return nil, errAt(n.Pos, "unknown literal kind")
	}
	return &compiledExpr{
		typ:   exprType{kind: v.Kind()},
		value: func(*evalCtx) provenance.Value { return v },
	}, nil
}

// compileNav resolves "the <phrase> of <operand>" through the vocabulary:
// the operand must be node-typed with a statically known class, and the
// phrase must be verbalized on that class.
func (c *compiler) compileNav(n *bal.Nav) (*compiledExpr, error) {
	of, err := c.compileExpr(n.Of)
	if err != nil {
		return nil, err
	}
	if !of.typ.isNode {
		return nil, errAt(n.Pos, "%q applies to a business object, but %s is a %s",
			n.Phrase, n.Of.String(), of.typ.describe())
	}
	if of.typ.class == nil {
		return nil, errAt(n.Pos, "the type of %s is not known; cannot resolve %q",
			n.Of.String(), n.Phrase)
	}
	entry, err := c.vocab.Resolve(n.Phrase, of.typ.class)
	if err != nil {
		return nil, errAt(n.Pos, "%v", err)
	}
	switch entry.Kind {
	case bom.Attribute:
		field := entry.Field
		// Footprint: an attribute read on "this" or on a binder-bound
		// variable only ever touches nodes that passed the binder's
		// prefilters, so the binder's access plan covers it; any other
		// operand (a navigation result) makes every write to the class a
		// potential influence.
		if !c.navCoveredByBinder(n.Of) {
			c.fpReads[of.typ.class.Name] = struct{}{}
		}
		if c.tscope != nil && entry.ResultKind == provenance.KindTime {
			c.tscope.refs = append(c.tscope.refs, TimeRef{Type: of.typ.class.Name, Field: field.Name})
		}
		return &compiledExpr{
			typ: exprType{kind: entry.ResultKind},
			value: func(ev *evalCtx) provenance.Value {
				node, ok := singleNode(ev, of, n)
				if !ok {
					return provenance.Value{}
				}
				v := field.Get(node)
				if v.IsZero() {
					ev.note("%s: %q of %s was not captured", n.Pos, n.Phrase, node.ID)
				}
				return v
			},
		}, nil
	case bom.MethodCall:
		method := entry.Method
		// A method body may read anything in the graph: the footprint
		// degrades to wildcard rather than guess at its reads.
		c.fpWildcard = true
		if c.tscope != nil && entry.ResultKind == provenance.KindTime {
			c.tscope.any = true
		}
		return &compiledExpr{
			typ: exprType{kind: entry.ResultKind},
			value: func(ev *evalCtx) provenance.Value {
				node, ok := singleNode(ev, of, n)
				if !ok {
					return provenance.Value{}
				}
				v, err := xom.Call(ev.g, node, method)
				if err != nil {
					ev.note("%s: %q failed: %v", n.Pos, n.Phrase, err)
					return provenance.Value{}
				}
				if v.IsZero() {
					ev.note("%s: %q of %s is unknown", n.Pos, n.Phrase, node.ID)
				}
				return v
			},
		}, nil
	case bom.RelationNav:
		rel := entry.Relation
		c.fpEdges[rel.EdgeType] = struct{}{}
		var class *xom.Class
		if entry.ResultConcept != nil {
			class = entry.ResultConcept.Class
		}
		return &compiledExpr{
			typ: exprType{isNode: true, class: class},
			nodes: func(ev *evalCtx) []*provenance.Node {
				var out []*provenance.Node
				for _, src := range of.nodes(ev) {
					out = append(out, ev.navigate(src, rel)...)
				}
				return dedupNodes(out)
			},
		}, nil
	default:
		return nil, errAt(n.Pos, "phrase %q has unsupported member kind", n.Phrase)
	}
}

// singleNode extracts the unique node from a node-typed operand, noting
// absence and ambiguity.
func singleNode(ev *evalCtx, of *compiledExpr, n *bal.Nav) (*provenance.Node, bool) {
	nodes := of.nodes(ev)
	switch len(nodes) {
	case 1:
		return nodes[0], true
	case 0:
		ev.note("%s: no %s to take %q of", n.Pos, of.typ.describe(), n.Phrase)
		return nil, false
	default:
		ev.note("%s: %d candidates for %q; ambiguous", n.Pos, len(nodes), n.Phrase)
		return nil, false
	}
}

func dedupNodes(in []*provenance.Node) []*provenance.Node {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, n := range in {
		if !seen[n.ID] {
			seen[n.ID] = true
			out = append(out, n)
		}
	}
	return out
}

func isNumericKind(k provenance.Kind) bool {
	return k == provenance.KindInt || k == provenance.KindFloat
}

func (c *compiler) compileBinary(n *bal.Binary) (*compiledExpr, error) {
	l, err := c.compileExpr(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compileExpr(n.R)
	if err != nil {
		return nil, err
	}
	if l.typ.isNode || r.typ.isNode || !isNumericKind(l.typ.kind) || !isNumericKind(r.typ.kind) {
		return nil, errAt(n.Pos, "arithmetic requires numbers, got %s and %s",
			l.typ.describe(), r.typ.describe())
	}
	kind := provenance.KindInt
	if l.typ.kind == provenance.KindFloat || r.typ.kind == provenance.KindFloat || n.Op == "/" {
		kind = provenance.KindFloat
	}
	op := n.Op
	return &compiledExpr{
		typ: exprType{kind: kind},
		value: func(ev *evalCtx) provenance.Value {
			lv, rv := l.value(ev), r.value(ev)
			if lv.IsZero() || rv.IsZero() {
				return provenance.Value{}
			}
			if kind == provenance.KindInt {
				a, b := lv.IntVal(), rv.IntVal()
				switch op {
				case "+":
					return provenance.Int(a + b)
				case "-":
					return provenance.Int(a - b)
				case "*":
					return provenance.Int(a * b)
				}
			}
			a, b := lv.FloatVal(), rv.FloatVal()
			switch op {
			case "+":
				return provenance.Float(a + b)
			case "-":
				return provenance.Float(a - b)
			case "*":
				return provenance.Float(a * b)
			case "/":
				if b == 0 {
					ev.note("%s: division by zero", n.Pos)
					return provenance.Value{}
				}
				return provenance.Float(a / b)
			}
			return provenance.Value{}
		},
	}, nil
}

func (c *compiler) compileActions(actions []bal.Action) ([]compiledAction, error) {
	var out []compiledAction
	for _, a := range actions {
		switch n := a.(type) {
		case *bal.SetStatus:
			sat := n.Satisfied
			out = append(out, func(_ *evalCtx, res *Result) {
				if sat {
					res.Verdict = Satisfied
				} else {
					res.Verdict = Violated
				}
			})
		case *bal.Alert:
			msg, err := c.compileExpr(n.Message)
			if err != nil {
				return nil, err
			}
			if msg.typ.isNode || msg.typ.kind != provenance.KindString {
				return nil, errAt(n.Pos, "alert message must be a string, got %s", msg.typ.describe())
			}
			out = append(out, func(ev *evalCtx, res *Result) {
				v := msg.value(ev)
				if v.IsZero() {
					res.Alerts = append(res.Alerts, "(alert message unavailable)")
					return
				}
				res.Alerts = append(res.Alerts, v.Str())
			})
		default:
			return nil, fmt.Errorf("rules: unsupported action %T", a)
		}
	}
	return out, nil
}
