package rules

import (
	"strings"
	"testing"

	"repro/internal/provenance"
)

// TestPlanSummaries checks the binder planner's access-path extraction:
// unconstrained binders are type-index probes, attribute equalities are
// hoisted into prefilters ahead of the residual where, and only
// self-contained where clauses are marked shareable.
func TestPlanSummaries(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		contains []string
		absent   []string
	}{
		{
			name: "unconstrained binder",
			src: `definitions set 'r' to a job requisition ;
			      if 'r' exists then the internal control is satisfied ;`,
			contains: []string{"r: TypeIndex(jobRequisition)", "[shareable]"},
			absent:   []string{"Prefilter", "Where"},
		},
		{
			name: "equality hoisted as prefilter",
			src: `definitions set 'r' to a job requisition where the position type of this is "new" ;
			      if 'r' exists then the internal control is satisfied ;`,
			contains: []string{"TypeIndex(jobRequisition)", "Prefilter(position type", "Where", "[shareable]"},
		},
		{
			name: "reversed operand order still hoisted",
			src: `definitions set 'r' to a job requisition where "new" is the position type of this ;
			      if 'r' exists then the internal control is satisfied ;`,
			contains: []string{"Prefilter(position type"},
		},
		{
			name: "disjunction is not hoisted",
			src: `definitions set 'r' to a job requisition where the position type of this is "new" or the requisition ID of this is "REQ-X" ;
			      if 'r' exists then the internal control is satisfied ;`,
			contains: []string{"Where", "[shareable]"},
			absent:   []string{"Prefilter"},
		},
		{
			name: "var-referencing where is unshareable",
			src: `definitions
			        set 'p' to a person ;
			        set 'r' to a job requisition where the requisition ID of this is the name of 'p' ;
			      if 'r' exists then the internal control is satisfied ;`,
			contains: []string{"p: TypeIndex(person) [shareable]", "r: TypeIndex(jobRequisition)"},
			absent:   []string{"r: TypeIndex(jobRequisition) -> Where [shareable]"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compileOrDie(t, tc.src)
			plans := strings.Join(c.PlanSummaries(), "\n")
			for _, want := range tc.contains {
				if !strings.Contains(plans, want) {
					t.Errorf("plans missing %q:\n%s", want, plans)
				}
			}
			for _, bad := range tc.absent {
				if strings.Contains(plans, bad) {
					t.Errorf("plans unexpectedly contain %q:\n%s", bad, plans)
				}
			}
		})
	}
}

// TestPrefilterPreservesThreeValuedSemantics pins the prefilter's reject
// rule: only a present-and-unequal attribute skips the where closure. A
// candidate missing the attribute must reach the full three-valued where
// so the unknown-operand diagnostic survives.
func TestPrefilterPreservesThreeValuedSemantics(t *testing.T) {
	src := `definitions set 'r' to a job requisition where the position type of this is "new" ;
	        if 'r' exists then the internal control is satisfied ;`
	c := compileOrDie(t, src)

	g := provenance.NewGraph()
	// A1 carries the attribute with the wrong value: prefilter rejects.
	buildTrace(t, g, "A1", traceOpts{positionType: "existing"})
	// A2 omits the attribute: where must run and note the unknown.
	buildTrace(t, g, "A2", traceOpts{})

	if res := c.Evaluate(g, "A1"); res.Verdict != NotApplicable {
		t.Fatalf("A1 verdict = %v, want NotApplicable", res.Verdict)
	}
	res := c.Evaluate(g, "A2")
	if res.Verdict != NotApplicable {
		t.Fatalf("A2 verdict = %v, want NotApplicable", res.Verdict)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "position") || strings.Contains(n, "unknown") {
			found = true
		}
	}
	if !found {
		t.Fatalf("A2 notes lost the unknown-operand diagnostic: %q", res.Notes)
	}
}

// TestBindingCacheReplaysNotes checks that a cache hit returns the same
// candidate set and replays the notes recorded at the miss.
func TestBindingCacheReplaysNotes(t *testing.T) {
	src := `definitions set 'r' to a job requisition where the position type of this is "new" ;
	        if 'r' exists then the internal control is satisfied ;`
	c := compileOrDie(t, src)

	g := provenance.NewGraph()
	buildTrace(t, g, "A2", traceOpts{}) // attribute missing -> note emitted

	var counters BindingCounters
	cache := NewBindingCache(&counters)
	first := c.EvaluateWith(g, "A2", cache)
	second := c.EvaluateWith(g, "A2", cache)
	if counters.Misses.Load() == 0 || counters.Hits.Load() == 0 {
		t.Fatalf("counters = %d hits / %d misses, want both > 0",
			counters.Hits.Load(), counters.Misses.Load())
	}
	if first.Verdict != second.Verdict {
		t.Fatalf("verdict changed across cache hit: %v vs %v", first.Verdict, second.Verdict)
	}
	if strings.Join(first.Notes, "|") != strings.Join(second.Notes, "|") {
		t.Fatalf("notes diverged across cache hit:\n miss: %q\n hit:  %q", first.Notes, second.Notes)
	}
}
