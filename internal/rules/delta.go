package rules

import (
	"sort"
	"strings"
	"time"

	"repro/internal/provenance"
)

// Delta discrimination. A compiled control's data dependencies are fully
// known at compile time: which node types its binders enumerate (and
// which hoisted equality prefilters gate them), which node types it
// reads attributes from through navigations, and which relation edge
// types those navigations traverse. The Footprint captures them so a
// consumer holding a commit's write set can decide — without touching
// the graph — whether the commit can possibly change the control's
// outcome. This is the Rete-style alpha-discrimination step over the
// binder access plans: a write that matches no binder type probe, passes
// no prefilter in either its pre- or post-image, reads into no navigated
// type and adds no navigated edge provably leaves the control's verdict,
// bindings and alerts untouched.
//
// The test is one-sided by design: it may claim "affected" for a write
// that turns out not to matter (a bounded false positive costs one
// re-evaluation), but it must never claim "unaffected" for a write that
// does (a false negative would freeze a stale verdict). The equivalence
// property test and the discrimination fuzz target hold that line.

// Footprint is a control's compile-time data-dependency summary.
type Footprint struct {
	// wildcard marks a control whose reads cannot be bounded statically
	// (it calls an XOM method, which may touch the whole graph): every
	// write affects it.
	wildcard bool
	// binders are the access plans of the control's binder definitions.
	// Attribute reads on the bound variables (and on "this" inside where
	// clauses) are covered here: only nodes passing the plan's prefilters
	// can ever be bound, so a node rejected by a prefilter in both its
	// pre- and post-image cannot feed those reads.
	binders []binderPlan
	// reads are node types whose attributes the control reads outside
	// binder coverage (navigation results); any write to such a node
	// affects the control.
	reads map[string]struct{}
	// edges are relation edge types the control navigates; any new edge
	// of such a type affects the control.
	edges map[string]struct{}
}

// Footprint returns the control's data-dependency summary.
func (c *Control) Footprint() *Footprint { return c.footprint }

// Wildcard reports whether the footprint gave up on static bounds —
// every write then affects the control.
func (fp *Footprint) Wildcard() bool { return fp.wildcard }

// passesPrefilters mirrors bindCandidates' rejection rule: only a
// present-and-unequal attribute disqualifies a candidate (a missing
// attribute still flows through the three-valued where, so it may bind).
func passesPrefilters(pl *binderPlan, n *provenance.Node) bool {
	for i := range pl.prefilters {
		pf := &pl.prefilters[i]
		if v := pf.field.Get(n); !v.IsZero() && !v.Equal(pf.val) {
			return false
		}
	}
	return true
}

// AffectedByNode reports whether a node write can affect the control.
// prev is the pre-image for updates, nil for inserts. The fast path is
// allocation-free: map probes and attribute fetches only.
func (fp *Footprint) AffectedByNode(node, prev *provenance.Node) bool {
	if fp.wildcard {
		return true
	}
	if _, ok := fp.reads[node.Type]; ok {
		return true
	}
	for i := range fp.binders {
		pl := &fp.binders[i]
		if pl.typeName != node.Type {
			continue
		}
		// An insert affects the binder iff it can enter the candidate
		// set; an update iff it was or becomes able to.
		if passesPrefilters(pl, node) {
			return true
		}
		if prev != nil && passesPrefilters(pl, prev) {
			return true
		}
	}
	return false
}

// AffectedByEdge reports whether a new edge of the given type can affect
// the control.
func (fp *Footprint) AffectedByEdge(edgeType string) bool {
	if fp.wildcard {
		return true
	}
	_, ok := fp.edges[edgeType]
	return ok
}

// Describe renders the footprint for EXPLAIN-style introspection.
func (fp *Footprint) Describe() string {
	if fp.wildcard {
		return "wildcard (method call: every write affects)"
	}
	var parts []string
	for i := range fp.binders {
		pl := &fp.binders[i]
		s := "binder(" + pl.typeName
		for _, pf := range pl.prefilters {
			s += " " + pf.phrase + "=" + pf.val.Text()
		}
		parts = append(parts, s+")")
	}
	var reads []string
	for t := range fp.reads {
		reads = append(reads, t)
	}
	sort.Strings(reads)
	for _, t := range reads {
		parts = append(parts, "reads("+t+")")
	}
	var edges []string
	for t := range fp.edges {
		edges = append(edges, t)
	}
	sort.Strings(edges)
	for _, t := range edges {
		parts = append(parts, "edge("+t+")")
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// TimeRef names one captured timestamp a windowed predicate reads: the
// node type and attribute it comes from.
type TimeRef struct {
	Type  string
	Field string
}

// WindowSpec describes one windowed ("is within d of") predicate of a
// control: its width and the timestamp attributes feeding each side.
// AnchorAny/TargetAny mark sides whose sources could not be bounded
// statically (a method call); window tracking then watches every
// captured timestamp for that side.
type WindowSpec struct {
	// Window is the predicate's width.
	Window time.Duration
	// Anchor are the timestamp attributes of the right-hand ("of ...")
	// side — the event the window is measured from.
	Anchor []TimeRef
	// Target are the timestamp attributes of the left-hand side — the
	// event that must land inside the window.
	Target    []TimeRef
	AnchorAny bool
	TargetAny bool
}

// Windows returns the control's windowed-predicate specs, in source
// order. Empty for controls without temporal predicates.
func (c *Control) Windows() []WindowSpec { return c.windows }

// timeScope accumulates the timestamp sources of one Within operand
// while it compiles.
type timeScope struct {
	refs []TimeRef
	any  bool
}
