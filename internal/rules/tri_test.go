package rules

import "testing"

// TestKleeneTables verifies the three-valued connectives exhaustively
// against Kleene's strong logic, which design decision D1 relies on.
func TestKleeneTables(t *testing.T) {
	F, T, U := triFalse, triTrue, triUnknown
	andTable := map[[2]tri]tri{
		{F, F}: F, {F, T}: F, {F, U}: F,
		{T, F}: F, {T, T}: T, {T, U}: U,
		{U, F}: F, {U, T}: U, {U, U}: U,
	}
	orTable := map[[2]tri]tri{
		{F, F}: F, {F, T}: T, {F, U}: U,
		{T, F}: T, {T, T}: T, {T, U}: T,
		{U, F}: U, {U, T}: T, {U, U}: U,
	}
	notTable := map[tri]tri{F: T, T: F, U: U}
	for in, want := range andTable {
		if got := triAnd(in[0], in[1]); got != want {
			t.Errorf("and(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
	for in, want := range orTable {
		if got := triOr(in[0], in[1]); got != want {
			t.Errorf("or(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
	for in, want := range notTable {
		if got := in.not(); got != want {
			t.Errorf("not(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestKleeneLaws checks De Morgan and double negation over all inputs.
func TestKleeneLaws(t *testing.T) {
	vals := []tri{triFalse, triTrue, triUnknown}
	for _, a := range vals {
		if a.not().not() != a {
			t.Errorf("double negation broken for %d", a)
		}
		for _, b := range vals {
			// not(a and b) == not a or not b
			if triAnd(a, b).not() != triOr(a.not(), b.not()) {
				t.Errorf("De Morgan (and) broken for %d,%d", a, b)
			}
			// not(a or b) == not a and not b
			if triOr(a, b).not() != triAnd(a.not(), b.not()) {
				t.Errorf("De Morgan (or) broken for %d,%d", a, b)
			}
			// commutativity
			if triAnd(a, b) != triAnd(b, a) || triOr(a, b) != triOr(b, a) {
				t.Errorf("commutativity broken for %d,%d", a, b)
			}
			for _, c := range vals {
				if triAnd(a, triAnd(b, c)) != triAnd(triAnd(a, b), c) {
					t.Errorf("and associativity broken for %d,%d,%d", a, b, c)
				}
				if triOr(a, triOr(b, c)) != triOr(triOr(a, b), c) {
					t.Errorf("or associativity broken for %d,%d,%d", a, b, c)
				}
				// distributivity: a and (b or c) == (a and b) or (a and c)
				if triAnd(a, triOr(b, c)) != triOr(triAnd(a, b), triAnd(a, c)) {
					t.Errorf("distributivity broken for %d,%d,%d", a, b, c)
				}
			}
		}
	}
}
