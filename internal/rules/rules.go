// Package rules compiles Business Action Language rule texts against the
// BOM-to-XOM mapping into executable internal controls, and evaluates them
// over provenance traces.
//
// This is the integration Section III of the paper describes: "linking the
// internal controls to the provenance graph is done automatically ...
// since the phrases used to express internal controls are linked to the
// members of the java classes that represent the data model of the
// provenance graph". Compilation resolves every business phrase to an XOM
// member (attribute getter, method, or relation navigation) using the
// vocabulary; evaluation walks the trace subgraph.
//
// Evaluation is three-valued (design decision D1): comparisons over
// attributes that were never captured yield Unknown rather than false, so
// a partially managed process produces Indeterminate verdicts instead of
// false alarms. Whether a *record or edge* exists, however, is a definite
// question — the paper defines a control as satisfied "if the edges
// specified in the definition of internal control point exist" — so
// exists/is-null tests on navigations answer definitely.
package rules

import (
	"fmt"

	"repro/internal/bal"
	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// Verdict is the outcome of evaluating a control on one trace.
type Verdict int

const (
	// Satisfied: the condition held and the then-branch declared success,
	// or the condition failed and the else-branch declared success.
	Satisfied Verdict = iota + 1
	// Violated: the executed branch declared the control not satisfied.
	Violated
	// Indeterminate: the condition could not be decided because a value it
	// needs was never captured.
	Indeterminate
	// NotApplicable: a definition binder matched no record in the trace,
	// so the control's subject is absent.
	NotApplicable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	case Indeterminate:
		return "indeterminate"
	case NotApplicable:
		return "not-applicable"
	default:
		return "invalid"
	}
}

// Definite reports whether the verdict is a definite compliance statement.
func (v Verdict) Definite() bool { return v == Satisfied || v == Violated }

// Result is the outcome of one evaluation.
type Result struct {
	// AppID is the evaluated trace.
	AppID string
	// Verdict is the control outcome.
	Verdict Verdict
	// Alerts collects messages from executed alert actions.
	Alerts []string
	// Bindings maps each definition variable to the IDs of the nodes it
	// bound (node-typed variables only) — the sub-graph the control point
	// links to (Fig 2 of the paper).
	Bindings map[string][]string
	// Notes explains Indeterminate/NotApplicable verdicts: which variable
	// bound nothing, which attribute was missing.
	Notes []string
}

// tri is Kleene three-valued logic.
type tri int8

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triUnknown
	}
}

func triAnd(a, b tri) tri {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triTrue && b == triTrue {
		return triTrue
	}
	return triUnknown
}

func triOr(a, b tri) tri {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triFalse && b == triFalse {
		return triFalse
	}
	return triUnknown
}

// exprType is the static type of a compiled expression: either a set of
// nodes of a known class, or a scalar value of a known kind.
type exprType struct {
	isNode bool
	class  *xom.Class      // set when isNode (nil = class statically unknown)
	kind   provenance.Kind // set when !isNode
}

func (t exprType) describe() string {
	if t.isNode {
		if t.class == nil {
			return "node"
		}
		return "node<" + t.class.Name + ">"
	}
	return t.kind.String()
}

// evalCtx carries evaluation state for one trace.
type evalCtx struct {
	g     *provenance.Graph
	appID string
	vars  map[string]*binding
	this  *provenance.Node
	notes []string
	// cache, when non-nil, shares binder candidate sets across controls
	// evaluated against the same trace version (see BindingCache).
	cache *BindingCache
	// navMemo memoizes relation-navigation traversals within this one
	// evaluation: a phrase like "the approval of 'the request'" costs one
	// graph walk no matter how many times the rule text repeats it.
	navMemo map[navMemoKey][]*provenance.Node
}

func (ev *evalCtx) note(format string, args ...any) {
	ev.notes = append(ev.notes, fmt.Sprintf(format, args...))
}

// navMemoKey identifies one traversal: a relation (relations are
// per-class singletons in the XOM) applied to one source node.
type navMemoKey struct {
	rel *xom.Relation
	src string
}

// navigate runs one relation navigation through the per-evaluation memo.
// The memoized slice is never returned directly — callers append it into
// their own result — so aliasing is safe.
func (ev *evalCtx) navigate(src *provenance.Node, rel *xom.Relation) []*provenance.Node {
	k := navMemoKey{rel, src.ID}
	if res, ok := ev.navMemo[k]; ok {
		return res
	}
	res := xom.Navigate(ev.g, src, rel)
	if ev.navMemo == nil {
		ev.navMemo = make(map[navMemoKey][]*provenance.Node)
	}
	ev.navMemo[k] = res
	return res
}

// binding is a runtime variable value.
type binding struct {
	typ   exprType
	nodes []*provenance.Node
	val   provenance.Value
}

// compiledExpr evaluates to nodes or a value depending on its type.
type compiledExpr struct {
	typ exprType
	// nodes is set when typ.isNode.
	nodes func(ev *evalCtx) []*provenance.Node
	// value is set when !typ.isNode. A zero Value means unknown/absent.
	value func(ev *evalCtx) provenance.Value
}

type compiledCond func(ev *evalCtx) tri

type compiledAction func(ev *evalCtx, res *Result)

// compiledDef binds one definition variable.
type compiledDef struct {
	name   string
	typ    exprType
	binder *compiledBinder // set for "a <concept>" definitions
	expr   *compiledExpr   // set for expression definitions
}

type compiledBinder struct {
	class *xom.Class
	where compiledCond // nil = unconstrained
	plan  binderPlan   // access path, extracted at compile time
}

// Control is a compiled internal control, ready to evaluate on traces.
type Control struct {
	text  string
	rt    *bal.RuleText
	defs  []compiledDef
	cond  compiledCond
	then  []compiledAction
	els   []compiledAction
	vocab *bom.Vocabulary
	// footprint is the compile-time data-dependency summary delta
	// discrimination consults; windows are the temporal predicates the
	// window tracker maintains from deltas.
	footprint *Footprint
	windows   []WindowSpec
}

// Text returns the original rule text.
func (c *Control) Text() string { return c.text }

// NodeVars lists the definition variables that bind nodes, in definition
// order; control deployment links the control-point custom node to them.
func (c *Control) NodeVars() []string {
	var out []string
	for _, d := range c.defs {
		if d.typ.isNode {
			out = append(out, d.name)
		}
	}
	return out
}
