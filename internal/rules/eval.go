package rules

import (
	"repro/internal/provenance"
)

// Evaluate runs the control on one trace of the graph. The graph is read
// under the caller's synchronization (typically store.View).
//
// Evaluation order follows the paper's rule structure:
//
//  1. Definitions bind, in order. A binder that matches no record makes
//     the control NotApplicable — its subject is absent from the trace.
//  2. The if-condition evaluates in three-valued logic. Unknown (a needed
//     attribute was never captured) yields Indeterminate.
//  3. True runs the then-actions, false the else-actions. The executed
//     branch's status action decides Satisfied/Violated; a branch without
//     one defaults to Satisfied for then and Violated for else.
func (c *Control) Evaluate(g *provenance.Graph, appID string) *Result {
	return c.EvaluateWith(g, appID, nil)
}

// EvaluateWith is Evaluate with a shared binding cache: shareable binder
// candidate sets are looked up in (and stored into) cache, so N controls
// binding the same concept against the same trace version compute the
// set once. A nil cache disables sharing. The caller must key the
// cache's lifetime to the trace version (see BindingCache).
func (c *Control) EvaluateWith(g *provenance.Graph, appID string, cache *BindingCache) *Result {
	ev := &evalCtx{g: g, appID: appID, vars: make(map[string]*binding), cache: cache}
	res := &Result{AppID: appID, Bindings: make(map[string][]string)}

	for _, d := range c.defs {
		b, applicable := c.bindDef(ev, d)
		if !applicable {
			res.Verdict = NotApplicable
			ev.note("no %s in trace %s for '%s'", d.binder.class.Name, appID, d.name)
			res.Notes = ev.notes
			return res
		}
		ev.vars[d.name] = b
		if d.typ.isNode {
			ids := make([]string, 0, len(b.nodes))
			for _, n := range b.nodes {
				ids = append(ids, n.ID)
			}
			res.Bindings[d.name] = ids
		}
	}

	switch c.cond(ev) {
	case triTrue:
		res.Verdict = Satisfied // default when then has no status action
		for _, a := range c.then {
			a(ev, res)
		}
	case triFalse:
		res.Verdict = Violated // default when else has no status action
		for _, a := range c.els {
			a(ev, res)
		}
	default:
		res.Verdict = Indeterminate
	}
	res.Notes = ev.notes
	return res
}

// bindDef computes one definition binding. The second result is false when
// a binder matched nothing (NotApplicable).
func (c *Control) bindDef(ev *evalCtx, d compiledDef) (*binding, bool) {
	if d.binder != nil {
		matched := c.bindCandidates(ev, d)
		if len(matched) == 0 {
			return nil, false
		}
		return &binding{typ: d.typ, nodes: matched}, true
	}
	if d.typ.isNode {
		return &binding{typ: d.typ, nodes: d.expr.nodes(ev)}, true
	}
	return &binding{typ: d.typ, val: d.expr.value(ev)}, true
}

// bindCandidates computes the binder's candidate set by following its
// compiled plan: enumerate via the type posting list, reject candidates
// on hoisted equality prefilters (only when the attribute is present and
// unequal — a missing attribute still flows through the full
// three-valued where clause so its diagnostics are preserved), then run
// the residual where. Shareable sets are served from (and stored into)
// the evaluation's binding cache; cached entries replay the notes their
// computation emitted.
func (c *Control) bindCandidates(ev *evalCtx, d compiledDef) []*provenance.Node {
	pl := &d.binder.plan
	if ev.cache != nil && pl.shareable {
		if e, ok := ev.cache.lookup(pl.fingerprint); ok {
			ev.notes = append(ev.notes, e.notes...)
			return e.nodes
		}
	}
	noteMark := len(ev.notes)
	var matched []*provenance.Node
	// NodesByType returns candidates sorted by ID on both the indexed and
	// the ablation path, so matched needs no re-sort.
candidates:
	for _, cand := range ev.g.NodesByType(ev.appID, pl.typeName) {
		for i := range pl.prefilters {
			pf := &pl.prefilters[i]
			if v := pf.field.Get(cand); !v.IsZero() && !v.Equal(pf.val) {
				continue candidates
			}
		}
		if d.binder.where == nil {
			matched = append(matched, cand)
			continue
		}
		ev.this = cand
		verdict := d.binder.where(ev)
		ev.this = nil
		if verdict == triTrue {
			matched = append(matched, cand)
		}
	}
	if ev.cache != nil && pl.shareable {
		ev.cache.store(pl.fingerprint, matched, ev.notes[noteMark:])
	}
	return matched
}

// EvaluateAll runs the control on every trace in the graph, sorted by
// trace ID.
func (c *Control) EvaluateAll(g *provenance.Graph) []*Result {
	ids := g.AppIDs()
	out := make([]*Result, 0, len(ids))
	for _, app := range ids {
		out = append(out, c.Evaluate(g, app))
	}
	return out
}
