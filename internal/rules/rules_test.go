package rules

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// hiringVocab builds the full model -> XOM -> BOM chain for the paper's
// hiring example.
func hiringVocab(t testing.TB) *bom.Vocabulary {
	t.Helper()
	m := provenance.NewModel("hiring")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	must(m.AddField("person", &provenance.FieldDef{Name: "manager", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "dept", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "headcount", Kind: provenance.KindInt}))
	must(m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString}))
	must(m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}))
	must(m.AddType(&provenance.TypeDef{Name: "candidateList", Class: provenance.ClassData}))
	must(m.AddField("candidateList", &provenance.FieldDef{Name: "count", Kind: provenance.KindInt}))
	must(m.AddRelation(&provenance.RelationDef{Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "approvalOf", SourceType: "approvalStatus", TargetType: "jobRequisition"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "candidatesFor", SourceType: "candidateList", TargetType: "jobRequisition"}))

	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	must(om.RegisterMethod("jobRequisition",
		xom.LookupTableMethod("getManagerGen", "dept", map[string]string{"dept501": "Jane Smith"})))

	v, err := bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{"jobRequisition": "job requisition"},
		MemberLabels: map[string]string{
			"jobRequisition.reqID":                "requisition ID",
			"jobRequisition.positionType":         "position type",
			"jobRequisition.getManagerGen":        "general manager",
			"jobRequisition.submitterOfInverse":   "submitter",
			"jobRequisition.approvalOfInverse":    "approval",
			"jobRequisition.candidatesForInverse": "candidate list",
			"approvalStatus.approved":             "approved flag",
			"candidateList.count":                 "candidate count",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// traceOpts configures buildTrace to simulate capture gaps.
type traceOpts struct {
	positionType string // "" omits the attribute (not captured)
	approval     bool   // approval node present
	approved     bool
	approvalEdge bool // approvalOf edge present (requires approval)
	candidates   bool
	submitter    bool
	noReq        bool // drop the requisition record entirely
}

func buildTrace(t testing.TB, g *provenance.Graph, app string, o traceOpts) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	ts := time.Unix(1000, 0).UTC()
	if !o.noReq {
		req := &provenance.Node{ID: app + "-req", Class: provenance.ClassData,
			Type: "jobRequisition", AppID: app, Timestamp: ts,
			Attrs: map[string]provenance.Value{
				"reqID": provenance.String("REQ-" + app),
				"dept":  provenance.String("dept501"),
			}}
		if o.positionType != "" {
			req.SetAttr("positionType", provenance.String(o.positionType))
		}
		must(g.AddNode(req))
	}
	if o.submitter && !o.noReq {
		must(g.AddNode(&provenance.Node{ID: app + "-hm", Class: provenance.ClassResource,
			Type: "person", AppID: app, Attrs: map[string]provenance.Value{
				"name": provenance.String("Joe Doe"), "manager": provenance.String("Jane Smith")}}))
		must(g.AddEdge(&provenance.Edge{ID: app + "-e-sub", Type: "submitterOf", AppID: app,
			Source: app + "-hm", Target: app + "-req"}))
	}
	if o.approval {
		must(g.AddNode(&provenance.Node{ID: app + "-apprv", Class: provenance.ClassData,
			Type: "approvalStatus", AppID: app, Attrs: map[string]provenance.Value{
				"reqID": provenance.String("REQ-" + app), "approved": provenance.Bool(o.approved)}}))
		if o.approvalEdge && !o.noReq {
			must(g.AddEdge(&provenance.Edge{ID: app + "-e-app", Type: "approvalOf", AppID: app,
				Source: app + "-apprv", Target: app + "-req"}))
		}
	}
	if o.candidates && !o.noReq {
		must(g.AddNode(&provenance.Node{ID: app + "-cand", Class: provenance.ClassData,
			Type: "candidateList", AppID: app, Attrs: map[string]provenance.Value{
				"count": provenance.Int(4)}}))
		must(g.AddEdge(&provenance.Edge{ID: app + "-e-cand", Type: "candidatesFor", AppID: app,
			Source: app + "-cand", Target: app + "-req"}))
	}
}

// paperControl is the paper's Section III internal control.
const paperControl = `
definitions
  set 'the current request' to a job requisition ;
if
  the position type of 'the current request' is "new"
  and the approval of 'the current request' exists
  and the approved flag of the approval of 'the current request' is true
  and the candidate list of 'the current request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "new-position requisition is missing approval or candidates" ;
`

func compileOrDie(t testing.TB, text string) *Control {
	t.Helper()
	c, err := Compile(text, hiringVocab(t))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvaluateSatisfied(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	c := compileOrDie(t, paperControl)
	res := c.Evaluate(g, "A1")
	if res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	if got := res.Bindings["the current request"]; len(got) != 1 || got[0] != "A1-req" {
		t.Fatalf("bindings = %v", res.Bindings)
	}
	if len(res.Alerts) != 0 {
		t.Fatalf("alerts = %v", res.Alerts)
	}
}

func TestEvaluateViolatedMissingApproval(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", candidates: true, submitter: true})
	c := compileOrDie(t, paperControl)
	res := c.Evaluate(g, "A1")
	if res.Verdict != Violated {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	if len(res.Alerts) != 1 || !strings.Contains(res.Alerts[0], "missing approval") {
		t.Fatalf("alerts = %v", res.Alerts)
	}
}

func TestEvaluateSatisfiedExistingPosition(t *testing.T) {
	// For an existing position no approval is needed: the condition's
	// first conjunct is false, so the else branch runs... but the paper's
	// control wants existing positions to be fine. The rule author writes
	// that with an or-guard; here we verify the basic else path fires.
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "existing", submitter: true})
	c := compileOrDie(t, paperControl)
	if res := c.Evaluate(g, "A1"); res.Verdict != Violated {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	guarded := `
definitions
  set 'the current request' to a job requisition ;
if
  the position type of 'the current request' is not "new"
  or the approval of 'the current request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`
	c2 := compileOrDie(t, guarded)
	if res := c2.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("guarded verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
}

func TestEvaluateIndeterminateOnMissingAttribute(t *testing.T) {
	// positionType never captured: comparing it is Unknown, and with the
	// approval conjunct also unknown-free the verdict is Indeterminate —
	// not a false alarm (design decision D1).
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{approval: true, approved: true, approvalEdge: true,
		candidates: true, submitter: true})
	c := compileOrDie(t, paperControl)
	res := c.Evaluate(g, "A1")
	if res.Verdict != Indeterminate {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if len(res.Notes) == 0 || !strings.Contains(strings.Join(res.Notes, "\n"), "position type") {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestEvaluateNotApplicableWithoutSubject(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{noReq: true, approval: true, approved: true})
	c := compileOrDie(t, paperControl)
	res := c.Evaluate(g, "A1")
	if res.Verdict != NotApplicable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "jobRequisition") {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestEvaluateKleeneShortCircuit(t *testing.T) {
	// False AND Unknown must be False (not Indeterminate): the position
	// type is captured and not "new", so the missing approval attr cannot
	// matter.
	src := `
definitions
  set 'r' to a job requisition ;
if
  the position type of 'r' is "new"
  and the approved flag of the approval of 'r' is true
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "existing"})
	c := compileOrDie(t, src)
	res := c.Evaluate(g, "A1")
	if res.Verdict != Violated {
		t.Fatalf("verdict = %v (want definite false -> Violated), notes=%v", res.Verdict, res.Notes)
	}
	// Unknown OR True must be True.
	src2 := `
definitions
  set 'r' to a job requisition ;
if
  the approved flag of the approval of 'r' is true
  or the position type of 'r' is "existing"
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`
	c2 := compileOrDie(t, src2)
	if res := c2.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("or verdict = %v", res.Verdict)
	}
}

func TestEvaluateWhereClauseBinding(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	src := `
definitions
  set 'r' to a job requisition where the requisition ID of this is "REQ-A1" ;
if 'r' exists then the internal control is satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	srcMiss := `
definitions
  set 'r' to a job requisition where the requisition ID of this is "REQ-OTHER" ;
if 'r' exists then the internal control is satisfied ;
`
	c2 := compileOrDie(t, srcMiss)
	if res := c2.Evaluate(g, "A1"); res.Verdict != NotApplicable {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestEvaluateMethodCall(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", submitter: true})
	src := `
definitions
  set 'r' to a job requisition ;
if the general manager of 'r' is "Jane Smith"
then the internal control is satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
}

func TestEvaluateRelationChain(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", submitter: true})
	// the manager of the submitter of 'r' follows the submitterOf inverse
	// then reads the manager attribute.
	src := `
definitions
  set 'r' to a job requisition ;
  set 'the hiring manager' to the submitter of 'r' ;
if the manager of 'the hiring manager' is "Jane Smith"
then the internal control is satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", candidates: true, submitter: true})
	src := `
definitions
  set 'r' to a job requisition ;
if the candidate count of the candidate list of 'r' * 2 is at least 8
then the internal control is satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
}

func TestEvaluateAllTraces(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	buildTrace(t, g, "A2", traceOpts{positionType: "new", submitter: true})
	c := compileOrDie(t, paperControl)
	results := c.EvaluateAll(g)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].AppID != "A1" || results[0].Verdict != Satisfied {
		t.Fatalf("r0 = %+v", results[0])
	}
	if results[1].AppID != "A2" || results[1].Verdict != Violated {
		t.Fatalf("r1 = %+v", results[1])
	}
}

func TestNodeVars(t *testing.T) {
	c := compileOrDie(t, `
definitions
  set 'r' to a job requisition ;
  set 'the submitter name' to the name of the submitter of 'r' ;
  set 'the approvals' to the approval of 'r' ;
if 'r' exists then the internal control is satisfied ;
`)
	vars := c.NodeVars()
	if len(vars) != 2 || vars[0] != "r" || vars[1] != "the approvals" {
		t.Fatalf("NodeVars = %v", vars)
	}
	if c.Text() == "" {
		t.Error("Text empty")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`if 'ghost' is 1 then the internal control is satisfied ;`, "not defined"},
		{`definitions set 'x' to a person ; set 'x' to a person ;
		  if 'x' exists then the internal control is satisfied ;`, "defined twice"},
		{`definitions set 'x' to a person ;
		  if the position type of 'x' is "new" then the internal control is satisfied ;`, "not defined for"},
		{`definitions set 'x' to a person ;
		  if 'x' is "Joe" then the internal control is satisfied ;`, "cannot compare"},
		{`definitions set 'x' to a job requisition ;
		  if the headcount of 'x' is "five" then the internal control is satisfied ;`, "cannot compare"},
		{`definitions set 'x' to a job requisition ;
		  if the headcount of 'x' contains "5" then the internal control is satisfied ;`, "requires strings"},
		{`definitions set 'x' to a job requisition ;
		  if the headcount of 'x' + "a" is 3 then the internal control is satisfied ;`, "arithmetic requires numbers"},
		{`definitions set 'x' to a job requisition ;
		  if -'x' exists then the internal control is satisfied ;`, "unary minus"},
		{`if this exists then the internal control is satisfied ;`, "where clause"},
		{`definitions set 'x' to a job requisition ;
		  if the approved flag of 'x' is true then the internal control is satisfied ;`, "not defined for"},
		{`definitions set 'x' to a job requisition ;
		  if 'x' is one of "a", "b" then the internal control is satisfied ;`, "requires a value"},
		{`definitions set 'x' to a job requisition ;
		  if the headcount of 'x' is one of "a" then the internal control is satisfied ;`, "cannot compare"},
		{`definitions set 'x' to a job requisition ;
		  if 'x' exists then add alert 42 ; the internal control is satisfied ;`, "must be a string"},
		{`definitions set 'x' to a job requisition ;
		  if the approved flag of the position type of 'x' is true
		  then the internal control is satisfied ;`, "applies to a business object"},
	}
	v := hiringVocab(t)
	for _, c := range cases {
		_, err := Compile(c.src, v)
		if err == nil {
			t.Errorf("Compile(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
	if _, err := Compile("if 'x' is 1 then the internal control is satisfied ;", nil); err == nil {
		t.Error("nil vocabulary accepted")
	}
}

func TestEvaluateAmbiguousNavigation(t *testing.T) {
	// Two approvals linked to one requisition: a scalar attribute of "the
	// approval" is ambiguous -> Unknown -> Indeterminate.
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	if err := g.AddNode(&provenance.Node{ID: "A1-apprv2", Class: provenance.ClassData,
		Type: "approvalStatus", AppID: "A1", Attrs: map[string]provenance.Value{
			"approved": provenance.Bool(false)}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&provenance.Edge{ID: "A1-e-app2", Type: "approvalOf", AppID: "A1",
		Source: "A1-apprv2", Target: "A1-req"}); err != nil {
		t.Fatal(err)
	}
	c := compileOrDie(t, paperControl)
	res := c.Evaluate(g, "A1")
	if res.Verdict != Indeterminate {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	if !strings.Contains(strings.Join(res.Notes, "\n"), "ambiguous") {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestVerdictHelpers(t *testing.T) {
	if !Satisfied.Definite() || !Violated.Definite() {
		t.Error("definite verdicts misreported")
	}
	if Indeterminate.Definite() || NotApplicable.Definite() {
		t.Error("indefinite verdicts misreported")
	}
	names := map[Verdict]string{
		Satisfied: "satisfied", Violated: "violated",
		Indeterminate: "indeterminate", NotApplicable: "not-applicable",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func BenchmarkCompilePaperControl(b *testing.B) {
	v := hiringVocab(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(paperControl, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatePaperControl(b *testing.B) {
	g := provenance.NewGraph()
	buildTrace(b, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	c, err := Compile(paperControl, hiringVocab(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
			b.Fatal(res.Verdict)
		}
	}
}

func TestEvaluateCount(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", approval: true, approved: true,
		approvalEdge: true, candidates: true, submitter: true})
	src := `
definitions
  set 'r' to a job requisition ;
if the number of the approval of 'r' is 1
   and the number of the candidate list of 'r' is at least 1
then the internal control is satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	// Counting an empty navigation is 0, a definite value — no Unknown.
	src2 := `
definitions
  set 'r' to a job requisition ;
if the number of the approval of 'r' is 0
then the internal control is satisfied ;
`
	g2 := provenance.NewGraph()
	buildTrace(t, g2, "A1", traceOpts{positionType: "new", submitter: true})
	c2 := compileOrDie(t, src2)
	if res := c2.Evaluate(g2, "A1"); res.Verdict != Satisfied {
		t.Fatalf("empty count verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	// Counting a scalar is a compile error.
	bad := `
definitions
  set 'r' to a job requisition ;
if the number of the position type of 'r' is 1
then the internal control is satisfied ;
`
	if _, err := Compile(bad, hiringVocab(t)); err == nil {
		t.Fatal("count over a scalar compiled")
	}
}

func TestEvaluateBetween(t *testing.T) {
	g := provenance.NewGraph()
	buildTrace(t, g, "A1", traceOpts{positionType: "new", candidates: true, submitter: true})
	src := `
definitions
  set 'r' to a job requisition ;
if the candidate count of the candidate list of 'r' is between 1 and 10
then the internal control is satisfied ;
else the internal control is not satisfied ;
`
	c := compileOrDie(t, src)
	if res := c.Evaluate(g, "A1"); res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, notes = %v", res.Verdict, res.Notes)
	}
	srcOut := `
definitions
  set 'r' to a job requisition ;
if the candidate count of the candidate list of 'r' is between 100 and 200
then the internal control is satisfied ;
else the internal control is not satisfied ;
`
	if res := compileOrDie(t, srcOut).Evaluate(g, "A1"); res.Verdict != Violated {
		t.Fatalf("out-of-range verdict = %v", res.Verdict)
	}
	// Unknown operand -> Indeterminate.
	gMissing := provenance.NewGraph()
	buildTrace(t, gMissing, "A1", traceOpts{positionType: "new", submitter: true})
	if res := compileOrDie(t, src).Evaluate(gMissing, "A1"); res.Verdict != Indeterminate {
		t.Fatalf("missing operand verdict = %v", res.Verdict)
	}
	// Type errors are compile-time.
	bad := `
definitions
  set 'r' to a job requisition ;
if the position type of 'r' is between 1 and 5
then the internal control is satisfied ;
`
	if _, err := Compile(bad, hiringVocab(t)); err == nil {
		t.Fatal("string between ints compiled")
	}
	badNode := `
definitions
  set 'r' to a job requisition ;
if 'r' is between 1 and 5 then the internal control is satisfied ;
`
	if _, err := Compile(badNode, hiringVocab(t)); err == nil {
		t.Fatal("node between ints compiled")
	}
}
