package rules

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/xom"
)

// reviewVocab builds a minimal model with captured timestamps for the
// windowed-predicate tests: a submission whose review must be decided
// within a deadline.
func reviewVocab(t testing.TB) *bom.Vocabulary {
	t.Helper()
	m := provenance.NewModel("review")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassData}))
	must(m.AddField("submission", &provenance.FieldDef{Name: "kind", Kind: provenance.KindString}))
	must(m.AddField("submission", &provenance.FieldDef{Name: "submittedAt", Kind: provenance.KindTime}))
	must(m.AddType(&provenance.TypeDef{Name: "review", Class: provenance.ClassData}))
	must(m.AddField("review", &provenance.FieldDef{Name: "decidedAt", Kind: provenance.KindTime}))
	must(m.AddRelation(&provenance.RelationDef{Name: "reviewOf", SourceType: "review", TargetType: "submission"}))

	om, err := xom.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := bom.Verbalize(om, bom.Options{
		MemberLabels: map[string]string{
			"submission.submittedAt":     "submission time",
			"review.decidedAt":           "decision time",
			"submission.reviewOfInverse": "review",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const deadlineControl = `
definitions
  set 'the sub' to a submission ;
if
  the decision time of the review of 'the sub'
  is within 2 days of the submission time of 'the sub'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "review decided outside the 48-hour window" ;
`

// buildReviewTrace writes one submission (and optionally its review) into
// a fresh graph. decidedAt zero omits the review's timestamp.
func buildReviewTrace(t testing.TB, g *provenance.Graph, app string, submittedAt, decidedAt time.Time, withReview bool) {
	t.Helper()
	sub := &provenance.Node{ID: app + "-sub", Class: provenance.ClassData,
		Type: "submission", AppID: app,
		Attrs: map[string]provenance.Value{
			"kind":        provenance.String("standard"),
			"submittedAt": provenance.Time(submittedAt),
		}}
	if err := g.AddNode(sub); err != nil {
		t.Fatal(err)
	}
	if !withReview {
		return
	}
	rv := &provenance.Node{ID: app + "-rev", Class: provenance.ClassData,
		Type: "review", AppID: app, Attrs: map[string]provenance.Value{}}
	if !decidedAt.IsZero() {
		rv.SetAttr("decidedAt", provenance.Time(decidedAt))
	}
	if err := g.AddNode(rv); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&provenance.Edge{ID: app + "-e", Type: "reviewOf", AppID: app,
		Source: app + "-rev", Target: app + "-sub"}); err != nil {
		t.Fatal(err)
	}
}

func TestWithinEvaluation(t *testing.T) {
	c, err := Compile(deadlineControl, reviewVocab(t))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2011, 4, 11, 9, 0, 0, 0, time.UTC)

	cases := []struct {
		name      string
		decidedAt time.Time
		review    bool
		want      Verdict
	}{
		{"inside window", base.Add(47 * time.Hour), true, Satisfied},
		{"exactly at window", base.Add(48 * time.Hour), true, Satisfied},
		{"outside window", base.Add(49 * time.Hour), true, Violated},
		{"decided before submission", base.Add(-1 * time.Hour), true, Satisfied},
		{"timestamp not captured", time.Time{}, true, Indeterminate},
		{"review missing", time.Time{}, false, Indeterminate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := provenance.NewGraph()
			buildReviewTrace(t, g, "A1", base, tc.decidedAt, tc.review)
			res := c.Evaluate(g, "A1")
			if res.Verdict != tc.want {
				t.Fatalf("verdict = %v, want %v (notes: %v)", res.Verdict, tc.want, res.Notes)
			}
			if tc.want == Violated && len(res.Alerts) != 1 {
				t.Fatalf("alerts = %v", res.Alerts)
			}
		})
	}
}

func TestWithinWindowSpec(t *testing.T) {
	c, err := Compile(deadlineControl, reviewVocab(t))
	if err != nil {
		t.Fatal(err)
	}
	wins := c.Windows()
	if len(wins) != 1 {
		t.Fatalf("windows = %d, want 1", len(wins))
	}
	w := wins[0]
	if w.Window != 48*time.Hour {
		t.Fatalf("window width = %v, want 48h", w.Window)
	}
	if w.AnchorAny || w.TargetAny {
		t.Fatalf("statically bounded sides flagged any: %+v", w)
	}
	if len(w.Anchor) != 1 || w.Anchor[0] != (TimeRef{Type: "submission", Field: "submittedAt"}) {
		t.Fatalf("anchor refs = %+v", w.Anchor)
	}
	if len(w.Target) != 1 || w.Target[0] != (TimeRef{Type: "review", Field: "decidedAt"}) {
		t.Fatalf("target refs = %+v", w.Target)
	}
}

func TestWithinFootprint(t *testing.T) {
	c, err := Compile(deadlineControl, reviewVocab(t))
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Footprint()
	if fp == nil || fp.Wildcard() {
		t.Fatalf("footprint = %v", fp)
	}
	rev := &provenance.Node{ID: "x", Type: "review", AppID: "A1"}
	if !fp.AffectedByNode(rev, nil) {
		t.Error("navigated review node not affected")
	}
	sub := &provenance.Node{ID: "y", Type: "submission", AppID: "A1"}
	if !fp.AffectedByNode(sub, nil) {
		t.Error("binder submission node not affected")
	}
	other := &provenance.Node{ID: "z", Type: "unrelated", AppID: "A1"}
	if fp.AffectedByNode(other, nil) {
		t.Error("unrelated node type claimed affected")
	}
	if !fp.AffectedByEdge("reviewOf") {
		t.Error("navigated reviewOf edge not affected")
	}
	if fp.AffectedByEdge("ghostRel") {
		t.Error("unknown edge type claimed affected")
	}
}

func TestWithinRejectsNonTimeOperands(t *testing.T) {
	bad := `
definitions
  set 'the sub' to a submission ;
if
  the kind of 'the sub' is within 2 days of the submission time of 'the sub'
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`
	_, err := Compile(bad, reviewVocab(t))
	if err == nil {
		t.Fatal("string operand accepted by is-within")
	}
	if !strings.Contains(err.Error(), "timestamp") {
		t.Fatalf("error does not mention timestamps: %v", err)
	}
}
