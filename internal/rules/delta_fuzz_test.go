package rules

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/provenance"
)

// FuzzFootprintDiscrimination drives the delta-discrimination soundness
// property: for any single node write (insert or update) and any compiled
// control, if evaluating the control before and after the write yields
// different outcomes, the control's footprint MUST claim the write
// affects it. A false negative here would freeze a stale verdict in the
// delta-driven checker. The converse bound is also held one-sidedly:
// a footprint may only claim "affected" for node types it statically
// depends on (or when it is a wildcard), so false positives stay
// explainable and bounded.

// fuzzControls are the control shapes discrimination must cover: a plain
// binder, a binder with a hoisted equality prefilter, navigation reads,
// and an unboundable method call (wildcard footprint).
var fuzzControlTexts = []string{
	paperControl,
	`definitions
  set 'r' to a job requisition where the position type of this is "new" ;
if the approval of 'r' exists
then the internal control is satisfied ;
else the internal control is not satisfied ; add alert "unapproved new position" ;`,
	`definitions
  set 'r' to a job requisition ;
if the candidate count of the candidate list of 'r' is at least 3
then the internal control is satisfied ;
else the internal control is not satisfied ; add alert "thin slate" ;`,
	`definitions
  set 'r' to a job requisition ;
if the general manager of 'r' is the manager of the submitter of 'r'
then the internal control is satisfied ;
else the internal control is not satisfied ; add alert "wrong approver" ;`,
}

// fuzzVals are the mutable attribute values of one trace build. Indexed
// attributes (reqID) stay constant: the store forbids mutating them and
// discrimination never needs to.
type fuzzVals struct {
	posType   string
	approved  bool
	candCount int64
	name      string
	manager   string
}

// buildFuzzTrace constructs the full hiring trace with the given mutable
// values baked in at construction time (no post-insert mutation, so the
// graph's internal indexes stay consistent).
func buildFuzzTrace(t *testing.T, g *provenance.Graph, v fuzzVals) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	app := "A1"
	must(g.AddNode(&provenance.Node{ID: app + "-req", Class: provenance.ClassData,
		Type: "jobRequisition", AppID: app, Attrs: map[string]provenance.Value{
			"reqID":        provenance.String("REQ-" + app),
			"dept":         provenance.String("dept501"),
			"positionType": provenance.String(v.posType),
		}}))
	must(g.AddNode(&provenance.Node{ID: app + "-hm", Class: provenance.ClassResource,
		Type: "person", AppID: app, Attrs: map[string]provenance.Value{
			"name": provenance.String(v.name), "manager": provenance.String(v.manager)}}))
	must(g.AddEdge(&provenance.Edge{ID: app + "-e-sub", Type: "submitterOf", AppID: app,
		Source: app + "-hm", Target: app + "-req"}))
	must(g.AddNode(&provenance.Node{ID: app + "-apprv", Class: provenance.ClassData,
		Type: "approvalStatus", AppID: app, Attrs: map[string]provenance.Value{
			"reqID": provenance.String("REQ-" + app), "approved": provenance.Bool(v.approved)}}))
	must(g.AddEdge(&provenance.Edge{ID: app + "-e-app", Type: "approvalOf", AppID: app,
		Source: app + "-apprv", Target: app + "-req"}))
	must(g.AddNode(&provenance.Node{ID: app + "-cand", Class: provenance.ClassData,
		Type: "candidateList", AppID: app, Attrs: map[string]provenance.Value{
			"count": provenance.Int(v.candCount)}}))
	must(g.AddEdge(&provenance.Edge{ID: app + "-e-cand", Type: "candidatesFor", AppID: app,
		Source: app + "-cand", Target: app + "-req"}))
}

// fuzzTargets maps the fuzzed type index to the node the update case
// rewrites.
var fuzzTargets = []struct {
	typeName string
	nodeID   string
}{
	{"jobRequisition", "A1-req"},
	{"approvalStatus", "A1-apprv"},
	{"candidateList", "A1-cand"},
	{"person", "A1-hm"},
}

// applyVals rewrites the mutable values of one target type, leaving the
// rest of the trace identical between the pre- and post-image builds.
func applyVals(base fuzzVals, typeIdx int, s string, i int64, b bool) fuzzVals {
	v := base
	switch typeIdx {
	case 0:
		v.posType = s
	case 1:
		v.approved = b
	case 2:
		v.candCount = i
	case 3:
		v.name = s
		v.manager = s + "-mgr"
	}
	return v
}

// outcomeOf projects a Result onto the fields the delta cache would
// freeze: verdict, alerts, bindings.
func outcomeOf(res *Result) any {
	return struct {
		Verdict  Verdict
		Alerts   []string
		Bindings map[string][]string
	}{res.Verdict, res.Alerts, res.Bindings}
}

// typeInFootprint reports whether the footprint statically depends on a
// node type (binder probe or navigation read) — the bound on false
// positives.
func typeInFootprint(fp *Footprint, typeName string) bool {
	if _, ok := fp.reads[typeName]; ok {
		return true
	}
	for i := range fp.binders {
		if fp.binders[i].typeName == typeName {
			return true
		}
	}
	return false
}

func FuzzFootprintDiscrimination(f *testing.F) {
	vocab := hiringVocab(f)
	controls := make([]*Control, len(fuzzControlTexts))
	for i, text := range fuzzControlTexts {
		c, err := Compile(text, vocab)
		if err != nil {
			f.Fatalf("control %d: %v", i, err)
		}
		controls[i] = c
	}

	f.Add(uint8(0), uint8(0), false, "new", "existing", int64(4), int64(1), true, false)
	f.Add(uint8(1), uint8(0), false, "existing", "new", int64(4), int64(4), true, true)
	f.Add(uint8(2), uint8(2), false, "new", "new", int64(4), int64(2), true, true)
	f.Add(uint8(3), uint8(3), true, "Joe Doe", "Jane Smith", int64(4), int64(4), true, true)
	f.Add(uint8(0), uint8(1), true, "new", "new", int64(4), int64(4), true, false)

	f.Fuzz(func(t *testing.T, ctrlIdx, typeIdx uint8, insert bool,
		preS, postS string, preI, postI int64, preB, postB bool) {
		ctrl := controls[int(ctrlIdx)%len(controls)]
		ti := int(typeIdx) % len(fuzzTargets)
		target := fuzzTargets[ti]
		base := fuzzVals{posType: preS, approved: preB, candCount: preI,
			name: preS, manager: preS + "-mgr"}

		gBefore := provenance.NewGraph()
		buildFuzzTrace(t, gBefore, base)

		gAfter := provenance.NewGraph()
		var postNode, prevNode *provenance.Node
		if insert {
			// Insert case: the post-image graph carries one extra node of
			// the target type; the write's pre-image is nil.
			buildFuzzTrace(t, gAfter, base)
			postNode = &provenance.Node{ID: "fz-new", Class: provenance.ClassData,
				Type: target.typeName, AppID: "A1",
				Attrs: fuzzAttrs(ti, postS, postI, postB)}
			if err := gAfter.AddNode(postNode); err != nil {
				t.Fatal(err)
			}
		} else {
			// Update case: same trace, the target node's mutable values
			// rewritten between the two builds.
			buildFuzzTrace(t, gAfter, applyVals(base, ti, postS, postI, postB))
			prevNode = gBefore.Node(target.nodeID)
			postNode = gAfter.Node(target.nodeID)
			if prevNode == nil || postNode == nil {
				t.Fatalf("target %s missing from built trace", target.nodeID)
			}
		}

		before := ctrl.Evaluate(gBefore, "A1")
		after := ctrl.Evaluate(gAfter, "A1")
		changed := !reflect.DeepEqual(outcomeOf(before), outcomeOf(after))

		fp := ctrl.Footprint()
		if fp == nil {
			t.Fatal("compiled control without footprint")
		}
		affected := fp.AffectedByNode(postNode, prevNode)

		// Soundness: an outcome change never escapes discrimination.
		if changed && !affected {
			t.Fatalf("false negative: %s write to %s changed outcome (%v -> %v) but footprint %s claims unaffected",
				map[bool]string{true: "insert", false: "update"}[insert],
				target.typeName, before.Verdict, after.Verdict, fp.Describe())
		}
		// Bounded false positives: "affected" claims trace back to a
		// static dependency on the written type (or a wildcard footprint).
		if affected && !fp.Wildcard() && !typeInFootprint(fp, target.typeName) {
			t.Fatalf("unexplained positive: footprint %s claims %s write affects control without depending on the type",
				fp.Describe(), target.typeName)
		}
	})
}

// fuzzAttrs builds the attribute map for an inserted node of the fuzzed
// target type.
func fuzzAttrs(typeIdx int, s string, i int64, b bool) map[string]provenance.Value {
	switch typeIdx {
	case 0:
		return map[string]provenance.Value{
			"reqID":        provenance.String(fmt.Sprintf("REQ-FZ-%d", i)),
			"dept":         provenance.String("dept501"),
			"positionType": provenance.String(s),
		}
	case 1:
		return map[string]provenance.Value{
			"reqID": provenance.String("REQ-A1"), "approved": provenance.Bool(b)}
	case 2:
		return map[string]provenance.Value{"count": provenance.Int(i)}
	default:
		return map[string]provenance.Value{
			"name": provenance.String(s), "manager": provenance.String(s + "-mgr")}
	}
}

// TestFootprintDiscriminationSeeds replays the fuzz seed corpus as a
// plain test so the property runs on every `go test` (the fuzz engine
// only replays f.Add seeds when invoked without -fuzz; this keeps the
// property visible in ordinary CI runs too).
func TestFootprintDiscriminationDirected(t *testing.T) {
	vocab := hiringVocab(t)
	prefiltered, err := Compile(fuzzControlTexts[1], vocab)
	if err != nil {
		t.Fatal(err)
	}
	fp := prefiltered.Footprint()

	// A requisition flipping out of the prefiltered value must be
	// affected (it was bindable before), and one that never matched the
	// prefilter in either image must not be.
	was := &provenance.Node{ID: "r", Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{"positionType": provenance.String("new")}}
	now := &provenance.Node{ID: "r", Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{"positionType": provenance.String("existing")}}
	if !fp.AffectedByNode(now, was) {
		t.Error("leaving the prefiltered set not flagged as affecting")
	}
	if !fp.AffectedByNode(was, now) {
		t.Error("entering the prefiltered set not flagged as affecting")
	}
	never := &provenance.Node{ID: "r", Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{"positionType": provenance.String("existing")}}
	still := &provenance.Node{ID: "r", Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{"positionType": provenance.String("backfill")}}
	if fp.AffectedByNode(still, never) {
		t.Error("update that never passes the prefilter claimed as affecting")
	}
	// A node missing the prefiltered attribute can still bind (three-
	// valued where): it must stay affected.
	bare := &provenance.Node{ID: "r2", Type: "jobRequisition", AppID: "A1",
		Attrs: map[string]provenance.Value{}}
	if !fp.AffectedByNode(bare, nil) {
		t.Error("insert missing the prefiltered attribute claimed unaffected")
	}
}
