package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// hireEvents builds a minimal hiring trace: one requisition, no
// approval. Record IDs embed the app name so traces never collide even
// when the same bare name appears under two tenants.
func hireEvents(app string) []events.AppEvent {
	return []events.AppEvent{{
		Source: "lombardi", Type: "requisition.submitted", AppID: app,
		Timestamp: time.Unix(1700000000, 0),
		Payload:   map[string]string{"recordId": app + "-req", "req": "REQ-" + app, "ptype": "new"},
	}}
}

// ingestScoped posts one batch through the router under a tenant scope
// and waits for the composite ack to apply on every touched shard.
func ingestScoped(t testing.TB, rt *Router, scope string, evs []events.AppEvent) {
	t.Helper()
	hdr := map[string]string{}
	if scope != "" {
		hdr["X-Tenant"] = scope
	}
	code, body := rdo(t, rt, http.MethodPost, "/events", toWire(evs), hdr)
	if code != http.StatusAccepted {
		t.Fatalf("scoped ingest: %d %s", code, body)
	}
	var ack struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Token == "" {
		t.Fatalf("composite ack: %v (%s)", err, body)
	}
	awaitAppliedVia(t, rt, ack.Token)
}

// TestMergeStatsTenantMaps: per-tenant admission maps ride inside the
// /stats document as nested objects, so the generic merge must fold each
// tenant's counters across shards and keep tenants only one shard saw.
func TestMergeStatsTenantMaps(t *testing.T) {
	a := decode(t, `{"tenants":{"acme":{"admittedEvents":5,"rejectedEvents":1,"queuedBytes":100}}}`)
	b := decode(t, `{"tenants":{"acme":{"admittedEvents":7,"rejectedEvents":0,"queuedBytes":40},"beta":{"admittedEvents":2}}}`)
	got := MergeStats([]map[string]any{a, b})
	want := decode(t, `{"tenants":{"acme":{"admittedEvents":12,"rejectedEvents":1,"queuedBytes":140},"beta":{"admittedEvents":2}}}`)
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		t.Errorf("tenant merge mismatch:\n got %s\nwant %s", gj, wj)
	}
}

// TestRouterTenantsEndpoint drives the tenant control plane through the
// router: creation broadcasts to every shard, the list view folds
// per-shard admission stats, and a dead shard degrades the read to the
// survivors with the failure named in X-Shard-Errors.
func TestRouterTenantsEndpoint(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")

	code, body := rdo(t, rt, http.MethodPost, "/tenants",
		map[string]any{"id": "acme", "name": "Acme", "weight": 2}, nil)
	if code != http.StatusOK {
		t.Fatalf("create tenant via router: %d %s", code, body)
	}
	for name, sh := range shards {
		got, ok := sh.sys.Tenants.Get("acme")
		if !ok || got.Weight != 2 {
			t.Fatalf("shard %s missing broadcast tenant: %+v", name, got)
		}
	}

	// Six scoped traces: the qualified IDs spread over the ring, so each
	// shard admits only its share — the router view must sum them back.
	for i := 0; i < 6; i++ {
		ingestScoped(t, rt, "acme", hireEvents(fmt.Sprintf("T-%d", i)))
	}

	code, body = rdo(t, rt, http.MethodGet, "/tenants", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/tenants via router: %d %s", code, body)
	}
	var list []struct {
		ID    string `json:"id"`
		Stats struct {
			AdmittedEvents uint64 `json:"admittedEvents"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("tenants body: %v (%s)", err, body)
	}
	admitted := uint64(0)
	seen := map[string]bool{}
	for _, tn := range list {
		seen[tn.ID] = true
		if tn.ID == "acme" {
			admitted = tn.Stats.AdmittedEvents
		}
	}
	if !seen["acme"] || !seen[tenant.DefaultID] {
		t.Fatalf("tenant list = %s", body)
	}
	if admitted != 6 {
		t.Fatalf("acme admitted across shards = %d, want 6", admitted)
	}

	// Kill one shard: the list degrades to the survivor and says so.
	shards["s2"].srv.Close()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tenants", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/tenants with dead shard: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Shard-Errors") == "" {
		t.Fatal("degraded /tenants without X-Shard-Errors envelope")
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) == 0 {
		t.Fatalf("degraded tenants body: %v (%s)", err, rec.Body.Bytes())
	}
}

// TestRouterShadowPromoteBroadcast: the promote action fans out so every
// shard swaps to the candidate version atomically from the caller's view.
func TestRouterShadowPromoteBroadcast(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	ctl := d.Controls[0]
	if code, body := rdo(t, rt, http.MethodPost, "/controls",
		map[string]string{"id": "sh-1", "name": "Shadowed", "text": ctl.Text}, nil); code != http.StatusOK {
		t.Fatalf("deploy: %d %s", code, body)
	}
	if code, body := rdo(t, rt, http.MethodPost, "/controls",
		map[string]any{"id": "sh-1", "text": ctl.Text, "shadow": true}, nil); code != http.StatusOK {
		t.Fatalf("shadow deploy: %d %s", code, body)
	}
	for name, sh := range shards {
		if cp := sh.sys.Registry.Get("sh-1"); !cp.HasShadow() {
			t.Fatalf("shard %s missing shadow candidate", name)
		}
	}
	if code, body := rdo(t, rt, http.MethodPost, "/controls/sh-1/promote", nil, nil); code != http.StatusOK {
		t.Fatalf("promote via router: %d %s", code, body)
	}
	for name, sh := range shards {
		cp := sh.sys.Registry.Get("sh-1")
		if cp == nil || cp.Version != 2 || cp.HasShadow() {
			t.Fatalf("shard %s after promote: %+v", name, cp)
		}
	}
	// No candidate left anywhere: the broadcast surfaces the first 422.
	if code, _ := rdo(t, rt, http.MethodPost, "/controls/sh-1/promote", nil, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("re-promote -> %d, want 422", code)
	}
}

// TestScatterQueryStringForwarded pins that scatter fan-out preserves the
// query string: a per-shard row limit must reach the shard, not be
// silently dropped at the router.
func TestScatterQueryStringForwarded(t *testing.T) {
	rt, _ := startCluster(t, "s1")
	for i := 0; i < 3; i++ {
		ingestVia(t, rt, hireEvents(fmt.Sprintf("Q-%d", i)), "")
	}
	code, body := rdo(t, rt, http.MethodGet, "/query?type=jobRequisition&limit=2", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/query: %d %s", code, body)
	}
	var rows []json.RawMessage
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("query body: %v (%s)", err, body)
	}
	if len(rows) != 2 {
		t.Fatalf("limit not forwarded: got %d rows, want 2", len(rows))
	}
}

// TestOwnerProxyTenantRetry: scoped single-trace reads hash the
// QUALIFIED trace ID (matching shard-side placement), and when the owner
// is unreachable the read retries once against the next ring member
// instead of failing the endpoint.
func TestOwnerProxyTenantRetry(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	if code, body := rdo(t, rt, http.MethodPost, "/tenants", map[string]any{"id": "acme"}, nil); code != http.StatusOK {
		t.Fatalf("create tenant: %d %s", code, body)
	}

	// Pick a trace whose bare and qualified names hash to DIFFERENT
	// shards: a router that forgot to qualify would provably miss.
	ring, _ := rt.topology()
	app := ""
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("T-%d", i)
		if ring.OwnerName(cand) != ring.OwnerName(tenant.Qualify("acme", cand)) {
			app = cand
			break
		}
	}
	if app == "" {
		t.Fatal("no trace name separates bare from qualified placement")
	}
	ingestScoped(t, rt, "acme", hireEvents(app))

	scoped := map[string]string{"X-Tenant": "acme"}
	code, body := rdo(t, rt, http.MethodGet, "/graph?app="+app, nil, scoped)
	if code != http.StatusOK {
		t.Fatalf("scoped graph: %d %s", code, body)
	}
	var g struct {
		Nodes []json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal(body, &g); err != nil || len(g.Nodes) == 0 {
		t.Fatalf("scoped graph empty — router hashed the bare ID? %s", body)
	}

	// Kill the owner: the retry serves the read from the next member.
	owner := ring.OwnerName(tenant.Qualify("acme", app))
	shards[owner].srv.Close()
	if code, body := rdo(t, rt, http.MethodGet, "/graph?app="+app, nil, scoped); code != http.StatusOK {
		t.Fatalf("read after owner death: %d %s, want 200 from successor", code, body)
	}
}
