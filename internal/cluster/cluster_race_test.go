package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
)

// TestClusterKillShardMidLoad drives concurrent ingest through the
// router against 3 shards and kills one mid-load. Invariants checked:
//
//   - 503s are scoped: only batches whose trace the dead shard owns are
//     shed; traces on the survivors never see one.
//   - per-trace order: each trace's applied rows are a contiguous,
//     in-order prefix of its event sequence — on the survivors the full
//     sequence, on the killed shard whatever was admitted before death
//     (its store outlives its listener, like a daemon behind a dead NIC).
//   - at-least-once with dedup: client retries under the same Ingest-Key
//     never duplicate a record.
//
// Run under -race in CI: the router's fan-out, ack table, and topology
// snapshots are all exercised concurrently here.
func TestClusterKillShardMidLoad(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2", "s3")
	ring := rt.RingSnapshot()
	const (
		numTraces      = 24
		eventsPerTrace = 16
		batchSize      = 4
		deadName       = "s2"
	)
	traces := make([]string, numTraces)
	for i := range traces {
		traces[i] = fmt.Sprintf("Load%03d", i)
	}
	deadOwned := map[string]bool{}
	hasDead := false
	for _, app := range traces {
		if ring.OwnerName(app) == deadName {
			deadOwned[app] = true
			hasDead = true
		}
	}
	if !hasDead {
		t.Fatalf("no trace of %d hashed to %s; widen the key set", numTraces, deadName)
	}

	mkEvent := func(app string, seq int) events.AppEvent {
		return events.AppEvent{Source: "hrdir", Type: "person.observed", AppID: app,
			Timestamp: time.Unix(1700000000+int64(seq), 0),
			Payload: map[string]string{
				// Zero-padded so ID order == sequence order.
				"recordId": fmt.Sprintf("p-%s-%03d", app, seq),
				"name":     "N", "email": "e@x",
			}}
	}

	totalBatches := numTraces * (eventsPerTrace / batchSize)
	var sentBatches atomic.Int64
	var killed atomic.Bool
	var killOnce sync.Once
	maybeKill := func() {
		if sentBatches.Add(1) == int64(totalBatches/2) {
			killOnce.Do(func() {
				shards[deadName].srv.Close()
				killed.Store(true)
			})
		}
	}

	// send posts one batch through the router, retrying 429s under the
	// same Ingest-Key. Returns false when the batch was shed with 503.
	send := func(app string, batch []events.AppEvent, key string) bool {
		body := mustJSON(t, toWire(batch))
		for attempt := 0; attempt < 200; attempt++ {
			req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(body))
			req.Header.Set("Ingest-Key", key)
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusAccepted:
				return true
			case http.StatusTooManyRequests:
				time.Sleep(2 * time.Millisecond)
			case http.StatusServiceUnavailable:
				if !deadOwned[app] {
					t.Errorf("503 for trace %s owned by live shard %s: %s",
						app, ring.OwnerName(app), rec.Body.String())
					return false
				}
				if !killed.Load() {
					// The shard is not dead yet; its listener may be mid-close.
					time.Sleep(2 * time.Millisecond)
					continue
				}
				return false
			default:
				t.Errorf("ingest %s: unexpected %d %s", app, rec.Code, rec.Body.String())
				return false
			}
		}
		t.Errorf("ingest %s: retry budget exhausted", app)
		return false
	}

	// Workers: each owns a disjoint slice of traces and plays every
	// trace's batches strictly in order — batch k+1 is sent only after
	// batch k was admitted, so admission order is sequence order.
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := w; ti < numTraces; ti += workers {
				app := traces[ti]
				for b := 0; b < eventsPerTrace/batchSize; b++ {
					batch := make([]events.AppEvent, batchSize)
					for j := range batch {
						batch[j] = mkEvent(app, b*batchSize+j)
					}
					ok := send(app, batch, fmt.Sprintf("load-%s-%d", app, b))
					maybeKill()
					if !ok {
						break // shed: this trace's range is dead, stop its sequence
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Survivor traces: the complete in-order sequence, exactly once.
	deadline := time.Now().Add(15 * time.Second)
	for _, app := range traces {
		if deadOwned[app] {
			continue
		}
		owner := shards[ring.OwnerName(app)]
		for {
			got := recordSeqs(ownerRowIDs(owner, app))
			if len(got) == eventsPerTrace && contiguous(got) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s on %s: rows %v, want contiguous 0..%d",
					app, ring.OwnerName(app), got, eventsPerTrace-1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Killed shard's traces: whatever was admitted pre-kill must be an
	// in-order contiguous prefix — no holes, no reordering, no dups. The
	// store outlived its listener, so admitted batches still flushed.
	stableAt := time.Now().Add(300 * time.Millisecond)
	for _, app := range traces {
		if !deadOwned[app] {
			continue
		}
		for time.Now().Before(stableAt) {
			time.Sleep(20 * time.Millisecond)
		}
		got := recordSeqs(ownerRowIDs(shards[deadName], app))
		if !contiguous(got) {
			t.Fatalf("killed shard trace %s: non-prefix rows %v", app, got)
		}
	}
}

// TestClusterJoinWritesNotLost hammers writes at the traces a join is
// about to move while the join runs. Cutover invariant: a write acked
// 202 for a moving trace is never lost — either the tail export shipped
// it (the shed plus the drain barrier plus the quiesced export make the
// tail complete) or the new ring routed it to the joiner. In particular
// the shed must outlive the ring swap; lifting it early lets a write
// route via the old ring to a source that is about to tombstone it.
func TestClusterJoinWritesNotLost(t *testing.T) {
	rt, _ := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 24)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)

	oldRing := rt.RingSnapshot()
	newRing, err := oldRing.Add("s3")
	if err != nil {
		t.Fatal(err)
	}
	moving := Moved(oldRing, newRing, apps)
	if len(moving) == 0 {
		t.Fatal("join would move nothing; widen the key set")
	}

	joiner := startShard(t, "s3")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := rt.Join(Shard{Name: "s3", URL: joiner.srv.URL}); err != nil {
			t.Errorf("join: %v", err)
		}
	}()

	// One writer loops over the moving traces until the join completes.
	// 503 (the cutover shed) retries the same record under the same key
	// next lap; only 202s count as acked.
	acked := map[string]int{}
	next := map[string]int{}
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		for _, app := range moving {
			n := next[app]
			ev := []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: app,
				Timestamp: time.Unix(1700000000+int64(n), 0),
				Payload: map[string]string{
					"recordId": fmt.Sprintf("p-live-%s-%04d", app, n),
					"name":     "N", "email": "e@x",
				}}}
			req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(mustJSON(t, toWire(ev))))
			req.Header.Set("Ingest-Key", fmt.Sprintf("live-%s-%d", app, n))
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusAccepted:
				acked[app]++
				next[app] = n + 1
			case http.StatusServiceUnavailable:
				// Shed mid-cutover; retry next lap.
			case http.StatusTooManyRequests:
				time.Sleep(time.Millisecond)
			default:
				t.Fatalf("ingest %s: %d %s", app, rec.Code, rec.Body.String())
			}
		}
	}
	<-done
	if t.Failed() {
		return
	}
	// Every acked write must surface on the new owner.
	deadline := time.Now().Add(15 * time.Second)
	for _, app := range moving {
		want := acked[app]
		for {
			got := 0
			for _, id := range ownerRowIDs(joiner, app) {
				if strings.HasPrefix(id, "p-live-") {
					got++
				}
			}
			if got >= want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s: %d of %d acked live writes reached the joiner; the cutover lost acked writes",
					app, got, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func ownerRowIDs(sh *testShard, app string) []string {
	rows := sh.sys.Store.RowsForApp(app)
	ids := make([]string, 0, len(rows))
	for _, r := range rows {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// recordSeqs extracts the numeric suffix of p-<app>-NNN record IDs.
func recordSeqs(ids []string) []int {
	var seqs []int
	for _, id := range ids {
		i := strings.LastIndexByte(id, '-')
		if i < 0 {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(id[i+1:], "%d", &n); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// contiguous reports whether seqs is exactly 0..len-1.
func contiguous(seqs []int) bool {
	for i, s := range seqs {
		if s != i {
			return false
		}
	}
	return true
}
