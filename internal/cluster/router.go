package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/tenant"
)

// Router is the stateless front door of a sharded provd cluster: it owns
// the consistent-hash ring, splits ingest batches by trace owner, proxies
// single-trace reads to the owning shard, and scatter-gathers cross-trace
// queries with the merge layer in merge.go. "Stateless" means no durable
// state — the ring and the bounded composite-ack table rebuild from
// configuration and client retries; a restarted router serves the next
// request correctly.
//
// Failure semantics: the router does not health-check shards out of band.
// A dead shard is discovered by the failing request itself and surfaces
// as 503 + Retry-After — but only for operations that touch that shard's
// key range. Traces owned by live shards keep flowing; this is the
// cluster-level analogue of the single-node gateway shedding one
// admission queue.
type Router struct {
	client *http.Client
	mux    *http.ServeMux

	mu     sync.RWMutex
	ring   *Ring
	urls   map[string]string // shard name -> base URL
	moving map[string]bool   // traces mid-handoff: writes shed with 503

	// ingestMu is held shared for the lifetime of every /events request
	// (shed check through fan-out) and exclusively by the handoff cutover:
	// after setMoving, acquiring it waits out every ingest that passed the
	// shed check before it went up, so none is still forwarding via the
	// old ring when the tail export runs.
	ingestMu sync.RWMutex

	ackMu    sync.Mutex
	acks     map[string]*compositeAck
	ackOrder []string // FIFO eviction
	ackSeq   uint64
	ackCap   int

	handoffMu sync.Mutex // serializes Join/Leave/ForceRemove

	// testHookPreSwap, when set, runs after the tail export and before the
	// ring swap — the window where the cutover shed must still be up
	// (tests only).
	testHookPreSwap func()
}

// Shard names one cluster member and its base URL.
type Shard struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// compositeAck maps one router ack token to the per-shard acks a split
// batch produced, with each part remembering which client batch indices
// it carried so event errors can be mapped back.
type compositeAck struct {
	events int
	parts  []ackPart
}

type ackPart struct {
	shard string
	token string
	idx   []int // client batch positions of this part's events
}

// DefaultAckCap bounds the composite-ack table. Evicted tokens answer
// 404 on poll, exactly like a restarted single-node gateway.
const DefaultAckCap = 4096

// NewRouter builds a router over the given shards. vnodes tunes ring
// granularity (<=0 uses DefaultVnodes).
func NewRouter(shards []Shard, vnodes int) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	names := make([]string, len(shards))
	urls := make(map[string]string, len(shards))
	for i, sh := range shards {
		if sh.URL == "" {
			return nil, fmt.Errorf("cluster: shard %q has no URL", sh.Name)
		}
		names[i] = sh.Name
		urls[sh.Name] = strings.TrimRight(sh.URL, "/")
	}
	ring, err := NewRing(names, vnodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		client: &http.Client{Timeout: 30 * time.Second},
		mux:    http.NewServeMux(),
		ring:   ring,
		urls:   urls,
		moving: map[string]bool{},
		acks:   map[string]*compositeAck{},
		ackCap: DefaultAckCap,
	}
	rt.mux.HandleFunc("/events", rt.handleEvents)
	rt.mux.HandleFunc("/ingest/ack", rt.handleAck)
	rt.mux.HandleFunc("/ingest/stats", rt.handleScatterStats)
	rt.mux.HandleFunc("/stats", rt.handleScatterStats)
	rt.mux.HandleFunc("/segments", rt.handleScatterConcat)
	rt.mux.HandleFunc("/violations", rt.handleScatterConcat)
	rt.mux.HandleFunc("/traces", rt.handleScatterConcat)
	rt.mux.HandleFunc("/compliance", rt.handleCompliance)
	rt.mux.HandleFunc("/graph", rt.handleOwnerProxy)
	rt.mux.HandleFunc("/graph.dot", rt.handleOwnerProxy)
	rt.mux.HandleFunc("/rows", rt.handleOwnerProxy)
	rt.mux.HandleFunc("/query", rt.handleQuery)
	rt.mux.HandleFunc("/controls", rt.handleControls)
	rt.mux.HandleFunc("/controls/", rt.handleControlAction)
	rt.mux.HandleFunc("/tenants", rt.handleTenants)
	rt.mux.HandleFunc("/dashboard", rt.handleDashboard)
	rt.mux.HandleFunc("/cluster", rt.handleCluster)
	rt.mux.HandleFunc("/cluster/join", rt.handleJoin)
	rt.mux.HandleFunc("/cluster/leave", rt.handleLeave)
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// topology returns a consistent (ring, urls) pair for one request.
func (rt *Router) topology() (*Ring, map[string]string) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring, rt.urls
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// shardUnavailable answers for a shard the router could not reach: 503
// with a short Retry-After, scoped to the key range the request touched.
func shardUnavailable(w http.ResponseWriter, shard string, err error) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": fmt.Sprintf("shard %s unavailable: %v", shard, err),
		"shard": shard,
	})
}

// maxEventBody mirrors the shard-side cap on one /events request.
const maxEventBody = 8 << 20

// handleEvents splits one client batch by ring owner and fans the parts
// to their shards concurrently. Per-trace ordering is preserved: all
// events of a trace land in one part (owner is a pure function of the
// trace ID), the part keeps client batch order, and the shard's gateway
// pins each trace to one admission queue.
//
// Response mapping:
//   - every part admitted        -> 202 with a composite ack token
//   - any part 429               -> 429, Retry-After = max over parts
//   - any part 503 / unreachable -> 503 for this batch only (its traces
//     touch the dead range); batches for live shards are unaffected
//   - any part 4xx               -> that status propagated
//
// A mixed outcome (some parts admitted, then a 429/503) is safe: the
// client retries the whole batch under the same Ingest-Key and the
// already-admitted shards dedup their parts.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	// Shared with the cutover drain barrier; see Router.ingestMu.
	rt.ingestMu.RLock()
	defer rt.ingestMu.RUnlock()
	r.Body = http.MaxBytesReader(w, r.Body, maxEventBody)
	var raw []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(raw) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	ring, urls := rt.topology()

	// A tenant-scoped batch is qualified by the SHARD's httpapi layer, so
	// the router must hash the same qualified ID the shard will store —
	// otherwise scoped writes and operator reads would land on different
	// ring members.
	scope := r.Header.Get("X-Tenant")

	type part struct {
		shard string
		idx   []int
		evs   []json.RawMessage
	}
	parts := map[string]*part{}
	var order []string // deterministic fan-out order
	for i, ev := range raw {
		var meta struct {
			AppID string `json:"appId"`
		}
		if err := json.Unmarshal(ev, &meta); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("event %d: %v", i, err))
			return
		}
		meta.AppID = tenant.Qualify(scope, meta.AppID)
		if rt.isMoving(meta.AppID) {
			// Cutover shed: this trace is mid-handoff; admitting the write
			// on either side would race the tail export.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": fmt.Sprintf("trace %s is being rebalanced", meta.AppID),
			})
			return
		}
		owner := ring.OwnerName(meta.AppID)
		p := parts[owner]
		if p == nil {
			p = &part{shard: owner}
			parts[owner] = p
			order = append(order, owner)
		}
		p.idx = append(p.idx, i)
		p.evs = append(p.evs, ev)
	}

	key := r.Header.Get("Ingest-Key")
	syncMode := r.URL.Query().Get("sync") != ""
	type result struct {
		part   *part
		status int
		body   []byte
		err    error
	}
	results := make([]result, len(order))
	var wg sync.WaitGroup
	for i, name := range order {
		wg.Add(1)
		go func(i int, p *part) {
			defer wg.Done()
			body, _ := json.Marshal(p.evs)
			url := urls[p.shard] + "/events"
			if syncMode {
				url += "?sync=1"
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				results[i] = result{part: p, err: err}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if scope != "" {
				req.Header.Set("X-Tenant", scope)
			}
			if key != "" {
				// Derived key: same client key + same split -> same part key,
				// so a client retry dedups on shards that already admitted.
				req.Header.Set("Ingest-Key", key+"#"+p.shard)
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				results[i] = result{part: p, err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxEventBody))
			if err != nil {
				results[i] = result{part: p, err: err}
				return
			}
			results[i] = result{part: p, status: resp.StatusCode, body: b}
		}(i, parts[name])
	}
	wg.Wait()

	// Order of precedence: unreachable/503 (dead range), then 429 (back
	// off), then other errors, then success.
	var retryAfterMs int64
	for _, res := range results {
		if res.err != nil {
			shardUnavailable(w, res.part.shard, res.err)
			return
		}
		if res.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write(res.body)
			return
		}
		if res.status == http.StatusTooManyRequests {
			var hint struct {
				RetryAfterMs int64 `json:"retryAfterMs"`
			}
			_ = json.Unmarshal(res.body, &hint)
			if hint.RetryAfterMs > retryAfterMs {
				retryAfterMs = hint.RetryAfterMs
			}
		}
	}
	if retryAfterMs > 0 {
		secs := retryAfterMs / 1000
		if retryAfterMs%1000 != 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":        "cluster overloaded: a shard shed this batch",
			"retryAfterMs": retryAfterMs,
		})
		return
	}
	for _, res := range results {
		if res.status != http.StatusAccepted && res.status != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		}
	}
	if syncMode {
		// Synchronous parts applied on arrival; nothing to poll. Answer
		// with the per-shard bodies keyed by shard name.
		out := map[string]json.RawMessage{}
		for _, res := range results {
			out[res.part.shard] = res.body
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	comp := &compositeAck{events: len(raw)}
	deduped := true
	for _, res := range results {
		var ack struct {
			Token   string `json:"token"`
			Deduped bool   `json:"deduped"`
		}
		if err := json.Unmarshal(res.body, &ack); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("shard %s: bad ack: %v", res.part.shard, err))
			return
		}
		if !ack.Deduped {
			deduped = false
		}
		comp.parts = append(comp.parts, ackPart{shard: res.part.shard, token: ack.Token, idx: res.part.idx})
	}
	token := rt.storeAck(comp)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"token":   token,
		"key":     key,
		"state":   "pending",
		"events":  len(raw),
		"deduped": deduped,
		"shards":  len(comp.parts),
	})
}

func (rt *Router) storeAck(c *compositeAck) string {
	rt.ackMu.Lock()
	defer rt.ackMu.Unlock()
	rt.ackSeq++
	token := "rt-" + strconv.FormatUint(rt.ackSeq, 10)
	rt.acks[token] = c
	rt.ackOrder = append(rt.ackOrder, token)
	for len(rt.ackOrder) > rt.ackCap {
		delete(rt.acks, rt.ackOrder[0])
		rt.ackOrder = rt.ackOrder[1:]
	}
	return token
}

// handleAck polls every shard ack behind one composite token and folds
// the parts: applied only when every part is applied, event counts
// summed, per-event errors mapped back to client batch positions.
func (rt *Router) handleAck(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("token")
	if token == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("token parameter required"))
		return
	}
	rt.ackMu.Lock()
	comp := rt.acks[token]
	rt.ackMu.Unlock()
	if comp == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown ack token %q", token))
		return
	}
	_, urls := rt.topology()
	state := "applied"
	var events, deduped int
	var evErrs []map[string]any
	for _, p := range comp.parts {
		u, ok := urls[p.shard]
		if !ok {
			// The shard left the cluster after admitting; its part was
			// flushed before the handoff released the traces.
			events += len(p.idx)
			continue
		}
		resp, err := rt.client.Get(u + "/ingest/ack?token=" + p.token)
		if err != nil {
			shardUnavailable(w, p.shard, err)
			return
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxEventBody))
		resp.Body.Close()
		if rerr != nil {
			shardUnavailable(w, p.shard, rerr)
			return
		}
		if resp.StatusCode != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(body)
			return
		}
		var ack struct {
			State       string `json:"state"`
			Events      int    `json:"events"`
			Deduped     bool   `json:"deduped"`
			EventErrors []struct {
				Index int    `json:"index"`
				Error string `json:"error"`
			} `json:"eventErrors"`
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("shard %s: bad ack: %v", p.shard, err))
			return
		}
		if ack.State != "applied" {
			state = "pending"
		}
		events += ack.Events
		if ack.Deduped {
			deduped += ack.Events
		}
		for _, ee := range ack.EventErrors {
			idx := ee.Index
			if idx >= 0 && idx < len(p.idx) {
				idx = p.idx[idx] // part position -> client batch position
			}
			evErrs = append(evErrs, map[string]any{"index": idx, "error": ee.Error, "shard": p.shard})
		}
	}
	sort.Slice(evErrs, func(i, j int) bool {
		return evErrs[i]["index"].(int) < evErrs[j]["index"].(int)
	})
	out := map[string]any{
		"token": token, "state": state, "events": comp.events,
		"shards": len(comp.parts),
	}
	if deduped > 0 {
		out["dedupedEvents"] = deduped
	}
	if len(evErrs) > 0 {
		out["eventErrors"] = evErrs
	}
	writeJSON(w, http.StatusOK, out)
}

// scatter fans one GET to every shard and returns the decoded bodies in
// shard order. Unreachable or failing shards land in errs. hdr, when
// non-nil, carries scope headers (X-Tenant) through to the shards so a
// tenant-scoped scatter merges tenant-scoped answers.
func (rt *Router) scatter(path string, hdr http.Header) (bodies map[string][]byte, errs map[string]string) {
	ring, urls := rt.topology()
	names := ring.Names()
	scope := ""
	if hdr != nil {
		scope = hdr.Get("X-Tenant")
	}
	type res struct {
		name string
		body []byte
		err  error
	}
	ch := make(chan res, len(names))
	for _, name := range names {
		go func(name string) {
			req, err := http.NewRequest(http.MethodGet, urls[name]+path, nil)
			if err != nil {
				ch <- res{name: name, err: err}
				return
			}
			if scope != "" {
				req.Header.Set("X-Tenant", scope)
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				ch <- res{name: name, err: err}
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(body))
			}
			ch <- res{name: name, body: body, err: err}
		}(name)
	}
	bodies, errs = map[string][]byte{}, map[string]string{}
	for range names {
		r := <-ch
		if r.err != nil {
			errs[r.name] = r.err.Error()
			continue
		}
		bodies[r.name] = r.body
	}
	return bodies, errs
}

func firstLine(b []byte) string {
	s := strings.Join(strings.Fields(string(b)), " ")
	if len(s) > 300 {
		s = s[:300]
	}
	return s
}

// handleScatterStats merges per-shard stats documents with the merge
// layer: counters sum, gauges max, latency summaries fold. The cluster
// envelope reports who answered.
func (rt *Router) handleScatterStats(w http.ResponseWriter, r *http.Request) {
	bodies, errs := rt.scatter(r.URL.RequestURI(), r.Header)
	docs := make([]map[string]any, 0, len(bodies))
	var shards []string
	for name, body := range bodies {
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			errs[name] = "bad stats document: " + err.Error()
			continue
		}
		docs = append(docs, doc)
		shards = append(shards, name)
	}
	if len(docs) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no shard responded", "shardErrors": errs,
		})
		return
	}
	merged := MergeStats(docs)
	sort.Strings(shards)
	merged["cluster"] = clusterEnvelope(shards, errs)
	writeJSON(w, http.StatusOK, merged)
}

func clusterEnvelope(responded []string, errs map[string]string) map[string]any {
	env := map[string]any{"responded": responded}
	if len(errs) > 0 {
		env["shardErrors"] = errs
	}
	return env
}

// handleScatterConcat concatenates per-shard JSON arrays (/segments,
// /violations, /traces), tagging elements with their shard where the
// element is an object. The response shape is the single-node one (a
// bare array), so partial failure cannot ride in an envelope: shards
// that failed or answered garbage are reported in the X-Shard-Errors
// header, and when no shard produced a usable array the answer is 503,
// never an empty 200.
func (rt *Router) handleScatterConcat(w http.ResponseWriter, r *http.Request) {
	bodies, errs := rt.scatter(r.URL.RequestURI(), r.Header)
	out := []any{}
	responded := 0
	names := make([]string, 0, len(bodies))
	for name := range bodies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var arr []any
		if err := json.Unmarshal(bodies[name], &arr); err != nil {
			errs[name] = "bad array document: " + err.Error()
			continue
		}
		responded++
		for _, el := range arr {
			if obj, ok := el.(map[string]any); ok {
				obj["shard"] = name
				out = append(out, obj)
				continue
			}
			out = append(out, el)
		}
	}
	if responded == 0 && len(errs) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no shard responded", "shardErrors": errs,
		})
		return
	}
	setShardErrors(w, errs)
	writeJSON(w, http.StatusOK, out)
}

// setShardErrors marks an array-shaped response as partial: the header
// carries shard -> error for every shard missing from the result. A 200
// with X-Shard-Errors set is a degraded answer, not a complete one.
func setShardErrors(w http.ResponseWriter, errs map[string]string) {
	if len(errs) == 0 {
		return
	}
	b, _ := json.Marshal(errs)
	w.Header().Set("X-Shard-Errors", string(b))
}

// proxyToShard forwards the request as-is to one shard and streams the
// response back, preserving status and content type.
func (rt *Router) proxyToShard(w http.ResponseWriter, r *http.Request, shard string) {
	_, urls := rt.topology()
	u, ok := urls[shard]
	if !ok {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("unknown shard %q", shard))
		return
	}
	if err := rt.proxyAttempt(w, r, u); err != nil {
		shardUnavailable(w, shard, err)
	}
}

// proxyAttempt forwards the request to one shard URL. Transport failures
// are returned with the ResponseWriter untouched, so the caller may retry
// against another ring member; once the shard responds — with any status
// — the response is streamed through and the request is settled.
func (rt *Router) proxyAttempt(w http.ResponseWriter, r *http.Request, shardURL string) error {
	var body io.Reader
	if r.Body != nil {
		body = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shardURL+r.URL.RequestURI(), body)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return nil
	}
	req.Header = r.Header.Clone()
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return nil
}

// proxyToAnyShard forwards a request any shard can answer (control
// lists, representative query plans), trying each ring member in order:
// a down shard costs one failed connection attempt, not the endpoint.
func (rt *Router) proxyToAnyShard(w http.ResponseWriter, r *http.Request) {
	ring, urls := rt.topology()
	var lastName string
	var lastErr error
	for _, name := range ring.Names() {
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			urls[name]+r.URL.RequestURI(), nil)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := rt.client.Do(req)
		if err != nil {
			lastName, lastErr = name, err
			continue
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	shardUnavailable(w, lastName, lastErr)
}

// handleOwnerProxy routes a single-trace read (?app=) to the trace's
// owner shard; the ring makes the owner a pure function of the trace ID,
// so reads after any number of router restarts land on the same shard.
func (rt *Router) handleOwnerProxy(w http.ResponseWriter, r *http.Request) {
	app := r.URL.Query().Get("app")
	if app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("app parameter required"))
		return
	}
	rt.ownerProxy(w, r, app)
}

// ownerProxy forwards a single-trace read to its owner shard, retrying
// once against the next ring member when the owner's connection fails
// outright. During a crash or an in-flight handoff the successor often
// holds a usable copy (moving traces double-write), and for a read a
// slightly stale answer beats a 503. The app parameter arrives bare; the
// tenant scope, if any, qualifies it exactly as the shard will, so the
// ring hash matches the shard that actually stored the trace.
func (rt *Router) ownerProxy(w http.ResponseWriter, r *http.Request, app string) {
	qualified := tenant.Qualify(r.Header.Get("X-Tenant"), app)
	ring, urls := rt.topology()
	owner := ring.OwnerName(qualified)
	u, ok := urls[owner]
	if !ok {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("unknown shard %q", owner))
		return
	}
	err := rt.proxyAttempt(w, r, u)
	if err == nil {
		return
	}
	names := ring.Names()
	for i, name := range names {
		if name != owner {
			continue
		}
		if next := names[(i+1)%len(names)]; next != owner {
			if rt.proxyAttempt(w, r, urls[next]) == nil {
				return
			}
		}
		break
	}
	shardUnavailable(w, owner, err)
}

// handleCompliance proxies ?app= reads to the owner and scatter-gathers
// the cross-trace form (no app): each shard checks its own traces and
// the router concatenates the outcome arrays.
func (rt *Router) handleCompliance(w http.ResponseWriter, r *http.Request) {
	if app := r.URL.Query().Get("app"); app != "" {
		rt.ownerProxy(w, r, app)
		return
	}
	rt.handleScatterConcat(w, r)
}

// handleQuery: typed node queries scoped to a trace go to its owner;
// unscoped queries scatter to all shards and concatenate (each node
// lives on exactly one shard, so concatenation is a disjoint union).
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("explain") != "" || r.URL.Query().Get("app") != "" {
		app := r.URL.Query().Get("app")
		if app == "" {
			// explain without a trace: any reachable shard's plan is
			// representative.
			rt.proxyToAnyShard(w, r)
			return
		}
		rt.ownerProxy(w, r, app)
		return
	}
	rt.handleScatterConcat(w, r)
}

// handleControls: deploy/remove broadcast to every shard (each shard
// evaluates controls over its own traces), list proxies to the first
// reachable shard (deployments go everywhere, so any live shard's list
// is authoritative).
func (rt *Router) handleControls(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		rt.proxyToAnyShard(w, r)
		return
	}
	rt.broadcast(w, r)
}

// handleControlAction broadcasts POST /controls/{id}/promote and
// /controls/{id}/rollback to every shard: each shard swaps its own copy
// of the control, and the first rejection (e.g. no shadow candidate on a
// shard that restarted without one) stops the rollout and surfaces.
func (rt *Router) handleControlAction(w http.ResponseWriter, r *http.Request) {
	rt.broadcast(w, r)
}

// handleTenants: tenant creation broadcasts to every shard — quotas and
// weights are admission state, enforced where the traces live — and GET
// scatter-gathers the per-shard views, folding each tenant's admission
// counters across shards. Like the concat endpoints, partial failure
// rides in X-Shard-Errors and only a fully dark cluster answers 503.
func (rt *Router) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.broadcast(w, r)
		return
	}
	bodies, errs := rt.scatter(r.URL.RequestURI(), r.Header)
	merged := map[string]map[string]any{}
	var order []string
	responded := 0
	names := make([]string, 0, len(bodies))
	for name := range bodies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var arr []map[string]any
		if err := json.Unmarshal(bodies[name], &arr); err != nil {
			errs[name] = "bad tenant document: " + err.Error()
			continue
		}
		responded++
		for _, t := range arr {
			id, _ := t["id"].(string)
			m, ok := merged[id]
			if !ok {
				// Config (name, weight, quota) is broadcast-identical on
				// every shard: the first responder's copy stands.
				merged[id] = cloneJSON(t).(map[string]any)
				order = append(order, id)
				continue
			}
			// Admission counters are per-shard tallies: fold them.
			sa, aok := m["stats"].(map[string]any)
			sb, bok := t["stats"].(map[string]any)
			if aok && bok {
				mergeInto(sa, sb)
			}
		}
	}
	if responded == 0 && len(errs) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no shard responded", "shardErrors": errs,
		})
		return
	}
	setShardErrors(w, errs)
	sort.Strings(order)
	out := make([]map[string]any, 0, len(order))
	for _, id := range order {
		out = append(out, merged[id])
	}
	writeJSON(w, http.StatusOK, out)
}

// broadcast forwards one mutating request to every shard in ring order,
// stopping at the first rejection (shards share vocabulary and tenant
// config, so a request that fails on one fails on all) and answering
// with the last shard's body on success.
func (rt *Router) broadcast(w http.ResponseWriter, r *http.Request) {
	ring, urls := rt.topology()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEventBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	scope := r.Header.Get("X-Tenant")
	var lastBody []byte
	lastStatus := 0
	for _, name := range ring.Names() {
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			urls[name]+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if scope != "" {
			req.Header.Set("X-Tenant", scope)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			shardUnavailable(w, name, err)
			return
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, maxEventBody))
		resp.Body.Close()
		if rerr != nil {
			shardUnavailable(w, name, rerr)
			return
		}
		if resp.StatusCode >= 400 {
			// Stop at the first rejection: shards share the vocabulary, so
			// a rule that fails to compile on one fails on all.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(b)
			return
		}
		lastBody, lastStatus = b, resp.StatusCode
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(lastStatus)
	_, _ = w.Write(lastBody)
}

// kpiRow mirrors dashboard.KPI on the wire. The verdict counts of one
// control merge exactly across shards — each shard counts a disjoint
// trace population — and the rates recompute from the merged counts.
type kpiRow struct {
	ControlID      string
	Name           string
	Total          int
	Satisfied      int
	Violated       int
	Indeterminate  int
	NotApplicable  int
	ComplianceRate float64
	DefiniteRate   float64
}

// handleDashboard merges the per-shard KPI snapshots into the exact
// single-node shape (a KPI array), so dashboard clients work unchanged
// against a cluster. Like the concat endpoints it degrades to the
// responding shards and answers 503 only when nobody responded.
func (rt *Router) handleDashboard(w http.ResponseWriter, r *http.Request) {
	bodies, errs := rt.scatter(r.URL.RequestURI(), r.Header)
	merged := map[string]*kpiRow{}
	var order []string
	responded := 0
	for name, body := range bodies {
		var rows []kpiRow
		if err := json.Unmarshal(body, &rows); err != nil {
			errs[name] = "bad KPI document: " + err.Error()
			continue
		}
		responded++
		for _, row := range rows {
			m, ok := merged[row.ControlID]
			if !ok {
				m = &kpiRow{ControlID: row.ControlID, Name: row.Name}
				merged[row.ControlID] = m
				order = append(order, row.ControlID)
			}
			m.Total += row.Total
			m.Satisfied += row.Satisfied
			m.Violated += row.Violated
			m.Indeterminate += row.Indeterminate
			m.NotApplicable += row.NotApplicable
		}
	}
	if responded == 0 && len(errs) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no shard responded", "shardErrors": errs,
		})
		return
	}
	setShardErrors(w, errs)
	sort.Strings(order)
	out := make([]kpiRow, 0, len(order))
	for _, id := range order {
		m := merged[id]
		if def := m.Satisfied + m.Violated; def > 0 {
			m.ComplianceRate = float64(m.Satisfied) / float64(def)
		}
		if m.Total > 0 {
			m.DefiniteRate = float64(m.Satisfied+m.Violated) / float64(m.Total)
		}
		out = append(out, *m)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster reports the cluster topology: shards, ring shares,
// liveness (one cheap probe per shard), and handoff state.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	ring, urls := rt.topology()
	_, errs := rt.scatter("/ingest/stats", nil)
	shares := ring.Shares()
	type shardInfo struct {
		Name    string  `json:"name"`
		URL     string  `json:"url"`
		Share   float64 `json:"share"`
		Healthy bool    `json:"healthy"`
		Error   string  `json:"error,omitempty"`
	}
	infos := make([]shardInfo, 0, len(ring.Names()))
	for i, name := range ring.Names() {
		si := shardInfo{Name: name, URL: urls[name], Share: shares[i], Healthy: true}
		if msg, bad := errs[name]; bad {
			si.Healthy, si.Error = false, msg
		}
		infos = append(infos, si)
	}
	rt.mu.RLock()
	movingCount := len(rt.moving)
	rt.mu.RUnlock()
	rt.ackMu.Lock()
	ackCount := len(rt.acks)
	rt.ackMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":       infos,
		"vnodes":       ring.Vnodes(),
		"movingTraces": movingCount,
		"pendingAcks":  ackCount,
	})
}

func (rt *Router) isMoving(app string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.moving) > 0 && rt.moving[app]
}

func (rt *Router) setMoving(apps []string) {
	rt.mu.Lock()
	for _, a := range apps {
		rt.moving[a] = true
	}
	rt.mu.Unlock()
}

func (rt *Router) clearMoving(apps []string) {
	rt.mu.Lock()
	for _, a := range apps {
		delete(rt.moving, a)
	}
	rt.mu.Unlock()
}

// drainIngest blocks until every in-flight /events request has finished
// forwarding. Called after setMoving: any ingest that saw the moving set
// empty is done by the time this returns, and later arrivals shed.
func (rt *Router) drainIngest() {
	rt.ingestMu.Lock()
	// The barrier is the acquisition itself: the write lock is granted
	// only once every reader (in-flight ingest) has released.
	rt.ingestMu.Unlock()
}

type joinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := rt.Join(Shard{Name: req.Name, URL: req.URL})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Name  string `json:"name"`
		Force bool   `json:"force"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Force {
		if err := rt.ForceRemove(req.Name); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": req.Name, "forced": true})
		return
	}
	res, err := rt.Leave(req.Name)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
