// Package cluster scales the single-node provd engine out to N shard
// nodes, each owning a contiguous arc of a consistent-hash ring keyed by
// trace ID, fronted by a stateless router (cmd/provrouter) that splits
// ingestion batches by owner, proxies single-trace reads, and
// scatter-gathers cross-trace queries with a merge layer.
//
// The design lifts the hash the store already applies internally — traces
// hash into 64 MVCC buckets inside one store — to the process level: the
// same per-trace independence that let PR 1-8 parallelize checking,
// admission, snapshots and tiering inside one node is what makes trace ID
// a safe sharding key across nodes. Every invariant the gateway
// established (per-trace admission order, whole-batch 429/Retry-After
// shedding, idempotency-key dedup, 202 ack tokens) survives the split
// because one trace's events always land on exactly one shard.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard. 128 points per
// shard keeps the max/min owner load ratio inside ~1.25 (verified by
// TestRingBalance) while a ring of a few thousand points still fits in
// one cache-friendly sorted slice.
const DefaultVnodes = 128

// ringPoint is one virtual node: a position on the hash circle and the
// shard that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	shard int32
}

// Ring is an immutable consistent-hash ring over named shards. Lookups
// are allocation-free (the ingest hot path calls Owner per event);
// rebalancing builds a new Ring and swaps it in, it never mutates one.
type Ring struct {
	names  []string
	points []ringPoint
	vnodes int
}

// hashKey is FNV-1a 64 over the key bytes followed by a 64-bit avalanche
// finalizer (splitmix64's mixer). Plain FNV clusters short sequential
// keys ("trace-1", "trace-2", ...) onto nearby ring positions; the
// finalizer spreads them uniformly. Inlined over the string so the hot
// path never converts to []byte (zero allocations, gated by
// TestRingOwnerAllocs).
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given shard names. vnodes <= 0 takes
// DefaultVnodes. Names must be unique and non-empty; order fixes the
// shard indices Owner returns.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty shard name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", n)
		}
		seen[n] = true
	}
	r := &Ring{names: append([]string(nil), names...), vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			h := hashKey(name + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, shard: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties resolve by shard index so the ring is deterministic
		// regardless of sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Owner returns the index (into Names) of the shard owning key: the
// first ring point clockwise from the key's hash, wrapping at the top.
// Allocation-free — this sits on the router's per-event ingest path.
func (r *Ring) Owner(key string) int {
	h := hashKey(key)
	// Manual binary search for the first point with hash >= h; sort.Search
	// would work but a hand-rolled loop keeps the hot path trivially
	// inline- and allocation-free.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap
	}
	return int(r.points[lo].shard)
}

// OwnerName returns the owning shard's name.
func (r *Ring) OwnerName(key string) string { return r.names[r.Owner(key)] }

// Names returns the shard names in index order. Callers must not mutate.
func (r *Ring) Names() []string { return r.names }

// Index returns the position of a shard name, or -1.
func (r *Ring) Index(name string) int {
	for i, n := range r.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// Shares estimates each shard's fraction of the key space by summing the
// hash-circle arc lengths its virtual nodes own. The estimate is exact
// for uniformly hashed keys, which hashKey's avalanche finalizer
// provides.
func (r *Ring) Shares() []float64 {
	shares := make([]float64, len(r.names))
	if len(r.points) == 0 {
		return shares
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	prev := r.points[len(r.points)-1].hash
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			arc = p.hash + (^prev + 1) // wraparound arc
		} else {
			arc = p.hash - prev
		}
		shares[p.shard] += float64(arc) / whole
		prev = p.hash
	}
	return shares
}

// Add returns a new ring with one more shard appended. Existing shard
// indices are preserved.
func (r *Ring) Add(name string) (*Ring, error) {
	return NewRing(append(append([]string(nil), r.names...), name), r.vnodes)
}

// Remove returns a new ring without the named shard. Indices of the
// remaining shards may shift; route by name across a removal.
func (r *Ring) Remove(name string) (*Ring, error) {
	names := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if n != name {
			names = append(names, n)
		}
	}
	if len(names) == len(r.names) {
		return nil, fmt.Errorf("cluster: shard %q not in ring", name)
	}
	return NewRing(names, r.vnodes)
}

// Moved returns the keys whose owner NAME differs between the two rings —
// the traces a rebalance must hand off. Consistent hashing bounds this to
// roughly K/N of K keys when one of N shards joins or leaves (verified by
// TestRingRebalanceMovement).
func Moved(old, new_ *Ring, keys []string) []string {
	var moved []string
	for _, k := range keys {
		if old.OwnerName(k) != new_.OwnerName(k) {
			moved = append(moved, k)
		}
	}
	return moved
}
