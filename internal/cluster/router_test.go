package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/httpapi"
	"repro/internal/workload"
)

// testShard is one in-process provd node: a full core.System behind the
// real HTTP API, served over a real listener so the router's client path
// is exercised end to end.
type testShard struct {
	name string
	sys  *core.System
	srv  *httptest.Server
}

func startShard(t testing.TB, name string) *testShard {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(d, core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(sys, false))
	t.Cleanup(func() {
		srv.Close()
		sys.Close()
	})
	return &testShard{name: name, sys: sys, srv: srv}
}

func startCluster(t testing.TB, names ...string) (*Router, map[string]*testShard) {
	t.Helper()
	shards := make(map[string]*testShard, len(names))
	specs := make([]Shard, 0, len(names))
	for _, n := range names {
		sh := startShard(t, n)
		shards[n] = sh
		specs = append(specs, Shard{Name: n, URL: sh.srv.URL})
	}
	rt, err := NewRouter(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rt, shards
}

// rdo drives the router directly (no listener needed on the router side).
func rdo(t testing.TB, rt *Router, method, path string, body any, hdr map[string]string) (int, []byte) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(raw)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func toWire(evs []events.AppEvent) []map[string]any {
	out := make([]map[string]any, len(evs))
	for i, ev := range evs {
		out[i] = map[string]any{
			"source": ev.Source, "type": ev.Type, "appId": ev.AppID,
			"timestamp": ev.Timestamp, "payload": ev.Payload,
		}
	}
	return out
}

// ingestVia posts one batch through the router and waits until every
// shard applied its part.
func ingestVia(t testing.TB, rt *Router, evs []events.AppEvent, key string) map[string]any {
	t.Helper()
	hdr := map[string]string{}
	if key != "" {
		hdr["Ingest-Key"] = key
	}
	code, body := rdo(t, rt, http.MethodPost, "/events", toWire(evs), hdr)
	if code != http.StatusAccepted {
		t.Fatalf("router ingest: %d %s", code, body)
	}
	var ack struct {
		Token  string `json:"token"`
		Events int    `json:"events"`
		Shards int    `json:"shards"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Token == "" {
		t.Fatalf("composite ack: %v (%s)", err, body)
	}
	if ack.Events != len(evs) {
		t.Fatalf("ack events = %d, want %d", ack.Events, len(evs))
	}
	return awaitAppliedVia(t, rt, ack.Token)
}

func awaitAppliedVia(t testing.TB, rt *Router, token string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := rdo(t, rt, http.MethodGet, "/ingest/ack?token="+token, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("ack poll: %d %s", code, body)
		}
		var st map[string]any
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st["state"] == "applied" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never applied: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func simEvents(t testing.TB, traces int) (*workload.Domain, *workload.SimResult) {
	t.Helper()
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	return d, d.Simulate(workload.SimOptions{Seed: 7, Traces: traces, ViolationRate: 0.3, Visibility: 1.0})
}

func traceIDs(res *workload.SimResult) []string {
	ids := make([]string, 0, len(res.Truth))
	for app := range res.Truth {
		ids = append(ids, app)
	}
	sort.Strings(ids)
	return ids
}

// TestRouterIngestFanout: one client batch splits by ring owner, every
// shard holds exactly its own key range, and every trace reads back
// through the router.
func TestRouterIngestFanout(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 24)
	ingestVia(t, rt, res.Events, "batch-1")

	ring := rt.RingSnapshot()
	apps := traceIDs(res)
	byOwner := map[string]map[string]bool{}
	for _, app := range apps {
		o := ring.OwnerName(app)
		if byOwner[o] == nil {
			byOwner[o] = map[string]bool{}
		}
		byOwner[o][app] = true
	}
	if len(byOwner) != 2 {
		t.Fatalf("24 traces landed on %d shards; hash ring is broken", len(byOwner))
	}
	for name, sh := range shards {
		for _, app := range sh.sys.Store.AppIDs() {
			if !byOwner[name][app] {
				t.Fatalf("shard %s holds trace %s owned by %s", name, app, ring.OwnerName(app))
			}
		}
		if got, want := len(sh.sys.Store.AppIDs()), len(byOwner[name]); got != want {
			t.Fatalf("shard %s holds %d traces, ring assigns %d", name, got, want)
		}
	}
	// Reads through the router reach the owner transparently.
	for _, app := range apps {
		code, body := rdo(t, rt, http.MethodGet, "/graph?app="+app, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("graph %s: %d %s", app, code, body)
		}
		var g struct {
			Nodes []any `json:"nodes"`
		}
		if err := json.Unmarshal(body, &g); err != nil || len(g.Nodes) == 0 {
			t.Fatalf("graph %s empty through router: %s", app, body)
		}
	}
	// /traces scatter-gathers the union.
	code, body := rdo(t, rt, http.MethodGet, "/traces", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/traces: %d %s", code, body)
	}
	var all []string
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	sort.Strings(all)
	if fmt.Sprint(all) != fmt.Sprint(apps) {
		t.Fatalf("cluster /traces = %v, want %v", all, apps)
	}
}

// TestRouterScatterStats: the merged /stats document sums counters
// across shards and reports who answered.
func TestRouterScatterStats(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 16)
	ingestVia(t, rt, res.Events, "")

	code, body := rdo(t, rt, http.MethodGet, "/stats", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	wantTraces := 0
	for _, sh := range shards {
		wantTraces += len(sh.sys.Store.AppIDs())
	}
	if got := int(st["traces"].(float64)); got != wantTraces {
		t.Fatalf("merged traces = %d, want %d", got, wantTraces)
	}
	env := st["cluster"].(map[string]any)
	if resp := env["responded"].([]any); len(resp) != 2 {
		t.Fatalf("responded = %v", resp)
	}
}

// TestRouterDashboardMerge: /dashboard through the router keeps the
// single-node shape (a KPI array) with per-control verdict counts
// summed across shards and rates recomputed from the merged counts.
func TestRouterDashboardMerge(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 16)
	ingestVia(t, rt, res.Events, "")
	want := map[string]kpiRow{}
	for _, sh := range shards {
		if _, err := sh.sys.CheckAll(); err != nil {
			t.Fatal(err)
		}
		code, body := rdoURL(t, sh.srv.URL, http.MethodGet, "/dashboard")
		if code != http.StatusOK {
			t.Fatalf("shard dashboard: %d %s", code, body)
		}
		var rows []kpiRow
		if err := json.Unmarshal(body, &rows); err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			m := want[row.ControlID]
			m.ControlID = row.ControlID
			m.Total += row.Total
			m.Satisfied += row.Satisfied
			m.Violated += row.Violated
			m.Indeterminate += row.Indeterminate
			m.NotApplicable += row.NotApplicable
			want[row.ControlID] = m
		}
	}
	code, body := rdo(t, rt, http.MethodGet, "/dashboard", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/dashboard: %d %s", code, body)
	}
	var merged []kpiRow
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatalf("dashboard is not a KPI array: %v: %s", err, body)
	}
	if len(merged) == 0 || len(merged) != len(want) {
		t.Fatalf("merged %d controls, want %d", len(merged), len(want))
	}
	for _, row := range merged {
		w := want[row.ControlID]
		if row.Total != w.Total || row.Satisfied != w.Satisfied ||
			row.Violated != w.Violated || row.Indeterminate != w.Indeterminate ||
			row.NotApplicable != w.NotApplicable {
			t.Fatalf("control %s merged %+v, want counts of %+v", row.ControlID, row, w)
		}
		if w.Total > 0 {
			wantDef := float64(w.Satisfied+w.Violated) / float64(w.Total)
			if diff := row.DefiniteRate - wantDef; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("control %s DefiniteRate %v, want %v", row.ControlID, row.DefiniteRate, wantDef)
			}
		}
	}
}

// rdoURL does one request against a live base URL (not the router mux).
func rdoURL(t testing.TB, base, method, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRouterCompliance: cross-trace compliance scatter-gathers every
// shard's verdicts; single-trace goes to the owner only.
func TestRouterCompliance(t *testing.T) {
	rt, _ := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 12)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)

	code, body := rdo(t, rt, http.MethodGet, "/compliance", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/compliance: %d %s", code, body)
	}
	var outcomes []map[string]any
	if err := json.Unmarshal(body, &outcomes); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, o := range outcomes {
		seen[o["appId"].(string)] = true
	}
	for _, app := range apps {
		if !seen[app] {
			t.Fatalf("cluster compliance missing trace %s", app)
		}
	}
	// Single-trace form answers for that trace only.
	code, body = rdo(t, rt, http.MethodGet, "/compliance?app="+apps[0], nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/compliance?app: %d %s", code, body)
	}
	outcomes = nil
	if err := json.Unmarshal(body, &outcomes); err != nil || len(outcomes) == 0 {
		t.Fatalf("single-trace compliance: %v %s", err, body)
	}
	for _, o := range outcomes {
		if o["appId"] != apps[0] {
			t.Fatalf("owner proxy leaked outcome for %v", o["appId"])
		}
	}
}

// TestRouterEventErrorRemap: a bad event's error index refers to the
// CLIENT batch position, not its position inside the shard part.
func TestRouterEventErrorRemap(t *testing.T) {
	rt, _ := startCluster(t, "s1", "s2")
	ring := rt.RingSnapshot()
	// Two traces on different shards, bad event sandwiched at client
	// index 1 on whichever trace comes second in part order.
	appA, appB := pickSplitPair(ring)
	mk := func(app, rec string, payload map[string]string) events.AppEvent {
		p := map[string]string{"recordId": rec}
		for k, v := range payload {
			p[k] = v
		}
		return events.AppEvent{Source: "hrdir", Type: "person.observed", AppID: app,
			Timestamp: time.Unix(1700000000, 0), Payload: p}
	}
	batch := []events.AppEvent{
		mk(appA, "p-a-0", map[string]string{"name": "Ann", "email": "ann@x"}),
		mk(appB, "p-b-0", nil), // missing required name/email -> event error
		mk(appB, "p-b-1", map[string]string{"name": "Bob", "email": "bob@x"}),
	}
	st := ingestVia(t, rt, batch, "remap-1")
	raw, ok := st["eventErrors"].([]any)
	if !ok || len(raw) != 1 {
		t.Fatalf("eventErrors = %v, want exactly 1", st["eventErrors"])
	}
	ee := raw[0].(map[string]any)
	if int(ee["index"].(float64)) != 1 {
		t.Fatalf("event error index = %v, want client position 1", ee["index"])
	}
	if ee["shard"] != ring.OwnerName(appB) {
		t.Fatalf("event error shard = %v, want %s", ee["shard"], ring.OwnerName(appB))
	}
}

// pickSplitPair finds two keys with different ring owners.
func pickSplitPair(ring *Ring) (string, string) {
	first := fmt.Sprintf("App%03d", 0)
	owner := ring.OwnerName(first)
	for i := 1; ; i++ {
		k := fmt.Sprintf("App%03d", i)
		if ring.OwnerName(k) != owner {
			return first, k
		}
	}
}

// TestRouterDeadShardSheds: killing one shard 503s only the traces in
// its range; the rest of the cluster keeps ingesting and serving.
func TestRouterDeadShardSheds(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2", "s3")
	ring := rt.RingSnapshot()
	deadName := "s2"
	shards[deadName].srv.Close()

	var deadApp, liveApp string
	for i := 0; deadApp == "" || liveApp == ""; i++ {
		k := fmt.Sprintf("App%03d", i)
		if ring.OwnerName(k) == deadName {
			if deadApp == "" {
				deadApp = k
			}
		} else if liveApp == "" {
			liveApp = k
		}
	}
	mk := func(app string) []events.AppEvent {
		return []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: app,
			Timestamp: time.Unix(1700000000, 0),
			Payload:   map[string]string{"recordId": "p-" + app, "name": "N", "email": "e@x"}}}
	}
	// Batch touching the dead range: 503 with a Retry-After hint.
	req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(mustJSON(t, toWire(mk(deadApp)))))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead-range ingest: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Batch for a live shard is untouched by the failure.
	ingestVia(t, rt, mk(liveApp), "live-1")

	// Reads: the dead range degrades to the successor shard (owner-proxied
	// reads retry once around the ring), which answers with its own — here
	// empty — view instead of a 503. Live range serves normally.
	if code, _ := rdo(t, rt, http.MethodGet, "/graph?app="+deadApp, nil, nil); code != http.StatusOK {
		t.Fatalf("dead-range read: %d, want 200 from successor", code)
	}
	if code, body := rdo(t, rt, http.MethodGet, "/graph?app="+liveApp, nil, nil); code != http.StatusOK {
		t.Fatalf("live-range read: %d %s", code, body)
	}
	// Scatter endpoints degrade to the survivors and say so.
	code, body := rdo(t, rt, http.MethodGet, "/stats", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/stats with dead shard: %d %s", code, body)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	env := st["cluster"].(map[string]any)
	if len(env["responded"].([]any)) != 2 {
		t.Fatalf("responded = %v, want the 2 survivors", env["responded"])
	}
	if env["shardErrors"].(map[string]any)[deadName] == nil {
		t.Fatalf("shardErrors missing %s: %v", deadName, env["shardErrors"])
	}
	// /cluster marks it unhealthy.
	code, body = rdo(t, rt, http.MethodGet, "/cluster", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/cluster: %d", code)
	}
	var topo struct {
		Shards []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	for _, sh := range topo.Shards {
		if sh.Healthy == (sh.Name == deadName) {
			t.Fatalf("health of %s reported %v", sh.Name, sh.Healthy)
		}
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRouterControlsBroadcast: deploying a control through the router
// lands it on every shard; removing removes it everywhere.
func TestRouterControlsBroadcast(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	d, err := workload.Hiring()
	if err != nil {
		t.Fatal(err)
	}
	ctl := d.Controls[0]
	code, body := rdo(t, rt, http.MethodPost, "/controls",
		map[string]string{"id": "bcast-1", "name": "Broadcast test", "text": ctl.Text}, nil)
	if code != http.StatusOK {
		t.Fatalf("deploy via router: %d %s", code, body)
	}
	for name, sh := range shards {
		found := false
		for _, cp := range sh.sys.Registry.List() {
			if cp.ID == "bcast-1" {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %s missing broadcast control", name)
		}
	}
	if code, body := rdo(t, rt, http.MethodDelete, "/controls?id=bcast-1", nil, nil); code != http.StatusOK {
		t.Fatalf("remove via router: %d %s", code, body)
	}
	for name, sh := range shards {
		for _, cp := range sh.sys.Registry.List() {
			if cp.ID == "bcast-1" {
				t.Fatalf("shard %s still has removed control", name)
			}
		}
	}
}

// TestRouterAckEviction: the composite-ack table is bounded FIFO;
// evicted tokens 404 like a restarted gateway.
func TestRouterAckEviction(t *testing.T) {
	rt, _ := startCluster(t, "s1")
	rt.SetAckCap(1)
	mk := func(i int) []events.AppEvent {
		return []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: fmt.Sprintf("Ev%d", i),
			Timestamp: time.Unix(1700000000, 0),
			Payload:   map[string]string{"recordId": fmt.Sprintf("p-ev-%d", i), "name": "N", "email": "e@x"}}}
	}
	code, body := rdo(t, rt, http.MethodPost, "/events", toWire(mk(1)), nil)
	if code != http.StatusAccepted {
		t.Fatalf("ingest 1: %d %s", code, body)
	}
	var first struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if code, _ = rdo(t, rt, http.MethodPost, "/events", toWire(mk(2)), nil); code != http.StatusAccepted {
		t.Fatalf("ingest 2: %d", code)
	}
	if code, _ = rdo(t, rt, http.MethodGet, "/ingest/ack?token="+first.Token, nil, nil); code != http.StatusNotFound {
		t.Fatalf("evicted token poll: %d, want 404", code)
	}
}

// TestScatterConcatPartialFailure: with one shard dead, the array
// endpoints still answer 200 from the survivors but mark the response
// partial via X-Shard-Errors, so a degraded result is distinguishable
// from a complete one.
func TestScatterConcatPartialFailure(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2", "s3")
	_, res := simEvents(t, 12)
	ingestVia(t, rt, res.Events, "")
	ring := rt.RingSnapshot()
	dead := "s2"
	shards[dead].srv.Close()

	req := httptest.NewRequest(http.MethodGet, "/traces", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces with one dead shard: %d %s", rec.Code, rec.Body.String())
	}
	hdr := rec.Header().Get("X-Shard-Errors")
	if hdr == "" {
		t.Fatal("partial scatter answered 200 without X-Shard-Errors")
	}
	var shardErrs map[string]string
	if err := json.Unmarshal([]byte(hdr), &shardErrs); err != nil {
		t.Fatalf("X-Shard-Errors is not a JSON object: %v (%s)", err, hdr)
	}
	if shardErrs[dead] == "" {
		t.Fatalf("X-Shard-Errors missing dead shard %s: %v", dead, shardErrs)
	}
	var got []string
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, app := range got {
		have[app] = true
	}
	for _, app := range traceIDs(res) {
		if owner := ring.OwnerName(app); owner != dead && !have[app] {
			t.Fatalf("survivor-owned trace %s (on %s) missing from partial result", app, owner)
		}
	}
}

// TestScatterConcatAllBadBodies: when every shard responds but none
// produces a parseable array, the endpoint answers 503, not an empty
// 200 masquerading as "no data".
func TestScatterConcatAllBadBodies(t *testing.T) {
	fake := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"not":"an array"}`)
		}))
	}
	a, b := fake(), fake()
	defer a.Close()
	defer b.Close()
	rt, err := NewRouter([]Shard{{Name: "a", URL: a.URL}, {Name: "b", URL: b.URL}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	code, body := rdo(t, rt, http.MethodGet, "/traces", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-garbage scatter: %d %s, want 503", code, body)
	}
}

// TestScatterStatsKeepsQueryString: /stats scatters with the query
// string intact, like the other scatter endpoints.
func TestScatterStatsKeepsQueryString(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	fake := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen = append(seen, r.URL.RequestURI())
			mu.Unlock()
			fmt.Fprint(w, `{}`)
		}))
	}
	a, b := fake(), fake()
	defer a.Close()
	defer b.Close()
	rt, err := NewRouter([]Shard{{Name: "a", URL: a.URL}, {Name: "b", URL: b.URL}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := rdo(t, rt, http.MethodGet, "/stats?window=9", nil, nil); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("scatter reached %d shards, want 2", len(seen))
	}
	for _, uri := range seen {
		if uri != "/stats?window=9" {
			t.Fatalf("shard saw %q; query string dropped by the router", uri)
		}
	}
}

// TestControlsListFallsBackPastDeadShard: requests any shard can serve
// (control list, app-less explain) must not pin to the first ring
// member — with it dead, the router tries the next one.
func TestControlsListFallsBackPastDeadShard(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	first := rt.RingSnapshot().Names()[0]
	shards[first].srv.Close()

	code, body := rdo(t, rt, http.MethodGet, "/controls", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("controls list with first ring member dead: %d %s", code, body)
	}
	var list []any
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("controls list: %v (%s)", err, body)
	}
	if code, body := rdo(t, rt, http.MethodGet, "/query?explain=1", nil, nil); code == http.StatusServiceUnavailable {
		t.Fatalf("app-less explain still pinned to the dead shard: %d %s", code, body)
	}
}

// TestRouterIngestKeyDedup: retrying a batch under the same Ingest-Key
// dedups on the shards (derived part keys survive the split).
func TestRouterIngestKeyDedup(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 8)
	ingestVia(t, rt, res.Events, "retry-me")
	rows := 0
	for _, sh := range shards {
		rows += sh.sys.Store.Stats().Rows
	}
	// Same key, same batch: every part must dedup, no new rows.
	st := ingestVia(t, rt, res.Events, "retry-me")
	if st["state"] != "applied" {
		t.Fatalf("redelivered batch state = %v", st["state"])
	}
	rows2 := 0
	for _, sh := range shards {
		rows2 += sh.sys.Store.Stats().Rows
	}
	if rows2 != rows {
		t.Fatalf("redelivery grew the store: %d -> %d rows", rows, rows2)
	}
}
