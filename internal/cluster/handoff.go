package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Shard handoff, router side. A ring change (join or leave) moves the
// traces whose arc lands on a different shard — about K/N of K traces
// for an N-shard cluster, never a full reshuffle. The move is two-phase:
//
//  1. bulk: while writes keep flowing, each source shard exports its
//     moving traces as a sealed segment (/handoff/export) and the target
//     imports it (/handoff/import). The bulk copy does the heavy lifting
//     with zero write downtime.
//  2. cutover: the router sheds writes for the moving traces only
//     (503 + Retry-After — all other traces are untouched), waits for
//     ingests already past the shed check to finish forwarding, re-runs
//     the same export/import to pick up the tail (the export quiesces
//     the source's admission queue so every acked write is in the
//     segment; the import dedups the overlap by record ID), swaps the
//     ring, lifts the shed, and finally tells each source to release
//     (tombstone + scrub) what it shipped. The shed must outlive the
//     ring swap: a write admitted between tail and swap would route via
//     the old ring to the source and die under the release tombstone.
//
// Everything is idempotent: a crashed rebalance re-runs from the start
// and the imports skip what already landed. Until the ring swap commits,
// reads keep hitting the old owner, which still has everything.

// RebalanceResult summarizes one Join or Leave.
type RebalanceResult struct {
	// Shard is the joining or leaving shard.
	Shard string `json:"shard"`
	// Moved counts traces that changed owner.
	Moved int `json:"moved"`
	// BulkRows and TailRows count imported rows per phase; TailRows stay
	// near zero when the bulk phase did its job.
	BulkRows int `json:"bulkRows"`
	TailRows int `json:"tailRows"`
	// Sources maps each shard that shipped traces to how many it shipped.
	Sources map[string]int `json:"sources,omitempty"`
	// ReleaseErrors reports sources whose post-swap release failed; their
	// tombstones were not committed and the move should be re-released
	// (re-running the release is idempotent). The cluster still serves
	// correctly — reads go to the new owner.
	ReleaseErrors map[string]string `json:"releaseErrors,omitempty"`
}

// Join adds a shard to the ring, pulling its key range from the current
// owners with the two-phase handoff.
func (rt *Router) Join(sh Shard) (*RebalanceResult, error) {
	rt.handoffMu.Lock()
	defer rt.handoffMu.Unlock()
	if sh.Name == "" || sh.URL == "" {
		return nil, fmt.Errorf("cluster: join needs a name and a URL")
	}
	sh.URL = strings.TrimRight(sh.URL, "/")
	oldRing, urls := rt.topology()
	if _, exists := urls[sh.Name]; exists {
		return nil, fmt.Errorf("cluster: shard %q already in the ring", sh.Name)
	}
	newRing, err := oldRing.Add(sh.Name)
	if err != nil {
		return nil, err
	}
	// Plan: every trace a current shard holds whose new owner is the
	// joiner moves. Trace lists come from the shards, not the router —
	// the router is stateless.
	plan := map[string][]string{}
	res := &RebalanceResult{Shard: sh.Name, Sources: map[string]int{}}
	for _, src := range oldRing.Names() {
		apps, err := rt.shardTraces(urls[src])
		if err != nil {
			return nil, fmt.Errorf("cluster: join: traces from %s: %v", src, err)
		}
		for _, app := range apps {
			if newRing.OwnerName(app) == sh.Name {
				plan[src] = append(plan[src], app)
			}
		}
	}
	shed, err := rt.runHandoff(plan, func(string) string { return sh.URL }, urls, res)
	if err != nil {
		return nil, fmt.Errorf("cluster: join %s: %v", sh.Name, err)
	}
	if rt.testHookPreSwap != nil {
		rt.testHookPreSwap()
	}
	rt.mu.Lock()
	rt.ring = newRing
	nu := make(map[string]string, len(rt.urls)+1)
	for k, v := range rt.urls {
		nu[k] = v
	}
	nu[sh.Name] = sh.URL
	rt.urls = nu
	rt.mu.Unlock()
	// Only now, with the new ring visible, may writes to the moved traces
	// resume: they route to the joiner, not the about-to-release sources.
	rt.clearMoving(shed)
	rt.releaseAll(plan, urls, res)
	return res, nil
}

// Leave drains a shard gracefully: its traces scatter to their new
// owners under the shrunk ring, then it is removed. The shard must be
// reachable — removing a dead shard is ForceRemove.
func (rt *Router) Leave(name string) (*RebalanceResult, error) {
	rt.handoffMu.Lock()
	defer rt.handoffMu.Unlock()
	oldRing, urls := rt.topology()
	srcURL, ok := urls[name]
	if !ok {
		return nil, fmt.Errorf("cluster: shard %q not in the ring", name)
	}
	newRing, err := oldRing.Remove(name)
	if err != nil {
		return nil, err
	}
	apps, err := rt.shardTraces(srcURL)
	if err != nil {
		return nil, fmt.Errorf("cluster: leave: traces from %s: %v", name, err)
	}
	// Group the leaver's traces by their new owner; each group is one
	// export/import stream.
	byTarget := map[string][]string{}
	for _, app := range apps {
		byTarget[newRing.OwnerName(app)] = append(byTarget[newRing.OwnerName(app)], app)
	}
	res := &RebalanceResult{Shard: name, Sources: map[string]int{}}
	// runHandoff is keyed by source; here the single source fans to many
	// targets, so invert: one pseudo-plan per target with the same source.
	plan := map[string][]string{}
	targetURL := map[string]string{}
	for tgt, moved := range byTarget {
		key := name + "->" + tgt
		plan[key] = moved
		targetURL[key] = urls[tgt]
	}
	shed, err := rt.runHandoff(plan, func(k string) string { return targetURL[k] },
		map[string]string{}, res)
	if err != nil {
		return nil, fmt.Errorf("cluster: leave %s: %v", name, err)
	}
	if rt.testHookPreSwap != nil {
		rt.testHookPreSwap()
	}
	res.Sources = map[string]int{name: res.Moved}
	rt.mu.Lock()
	rt.ring = newRing
	nu := make(map[string]string, len(rt.urls))
	for k, v := range rt.urls {
		if k != name {
			nu[k] = v
		}
	}
	rt.urls = nu
	rt.mu.Unlock()
	rt.clearMoving(shed)
	if len(apps) > 0 {
		if err := rt.release(srcURL, apps); err != nil {
			res.ReleaseErrors = map[string]string{name: err.Error()}
		}
	}
	return res, nil
}

// ForceRemove drops an unreachable shard from the ring without handoff:
// its key range reassigns to the survivors, and its traces are gone
// until an operator re-imports its data directory. Use Leave when the
// shard is alive.
func (rt *Router) ForceRemove(name string) error {
	rt.handoffMu.Lock()
	defer rt.handoffMu.Unlock()
	oldRing, urls := rt.topology()
	if _, ok := urls[name]; !ok {
		return fmt.Errorf("cluster: shard %q not in the ring", name)
	}
	newRing, err := oldRing.Remove(name)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.ring = newRing
	nu := make(map[string]string, len(rt.urls))
	for k, v := range rt.urls {
		if k != name {
			nu[k] = v
		}
	}
	rt.urls = nu
	rt.mu.Unlock()
	return nil
}

// runHandoff executes both phases for a plan of source-keyed trace
// groups. targetOf maps a plan key to the import URL; srcURLs resolves a
// plan key to its export URL when the key is a plain shard name (Join);
// Leave pre-encodes "src->tgt" keys and passes its own URLs.
//
// On success the write shed for the moved traces is STILL UP: the caller
// must swap the ring first and then clearMoving the returned set, so no
// write admitted after the tail export can route via the old ring. On
// error the shed is lifted here — no swap or release will follow, the
// old owners keep serving, and the aborted move is re-runnable.
func (rt *Router) runHandoff(plan map[string][]string, targetOf func(string) string,
	srcURLs map[string]string, res *RebalanceResult) (shed []string, err error) {
	keys := make([]string, 0, len(plan))
	for k := range plan {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	exportURL := func(key string) string {
		if u, ok := srcURLs[key]; ok {
			return u
		}
		// Leave encodes "source->target"; the source URL was captured
		// before the ring shrank, so resolve it live.
		name := key
		if i := strings.Index(key, "->"); i >= 0 {
			name = key[:i]
		}
		_, urls := rt.topology()
		return urls[name]
	}
	var all []string
	for _, k := range keys {
		all = append(all, plan[k]...)
	}
	res.Moved = len(all)
	// Phase 1: bulk, writes still flowing.
	for _, k := range keys {
		rows, err := rt.exportImport(exportURL(k), targetOf(k), plan[k], false)
		if err != nil {
			return nil, fmt.Errorf("bulk %s: %v", k, err)
		}
		res.BulkRows += rows
		res.Sources[sourceName(k)] += len(plan[k])
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Phase 2: shed writes for the moving traces only, wait out the
	// ingests that passed the shed check before it went up, then ship
	// the tail with the source's admission queue quiesced.
	rt.setMoving(all)
	rt.drainIngest()
	for _, k := range keys {
		rows, err := rt.exportImport(exportURL(k), targetOf(k), plan[k], true)
		if err != nil {
			rt.clearMoving(all)
			return nil, fmt.Errorf("tail %s: %v", k, err)
		}
		res.TailRows += rows
	}
	return all, nil
}

func sourceName(key string) string {
	if i := strings.Index(key, "->"); i >= 0 {
		return key[:i]
	}
	return key
}

// releaseAll tombstones the shipped traces on each source after the ring
// swap. Failures are recorded, not fatal: the new owner is serving, and
// re-running release is idempotent.
func (rt *Router) releaseAll(plan map[string][]string, urls map[string]string, res *RebalanceResult) {
	for src, apps := range plan {
		if len(apps) == 0 {
			continue
		}
		if err := rt.release(urls[sourceName(src)], apps); err != nil {
			if res.ReleaseErrors == nil {
				res.ReleaseErrors = map[string]string{}
			}
			res.ReleaseErrors[sourceName(src)] = err.Error()
		}
	}
}

// shardTraces asks one shard for the traces it holds (both tiers).
func (rt *Router) shardTraces(url string) ([]string, error) {
	resp, err := rt.client.Get(url + "/traces")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(b))
	}
	var apps []string
	if err := json.NewDecoder(resp.Body).Decode(&apps); err != nil {
		return nil, err
	}
	return apps, nil
}

// exportImport streams one export from src straight into dst's import
// endpoint and returns the number of rows dst inserted. The segment
// bytes never touch the router's disk. quiesce (tail phase) asks the
// source to flush its admission queue before exporting, so writes acked
// before the shed went up cannot slip past the tail and die under the
// release tombstone; a source that cannot quiesce in time fails the
// export and safely aborts the move.
func (rt *Router) exportImport(srcURL, dstURL string, apps []string, quiesce bool) (int, error) {
	if len(apps) == 0 {
		return 0, nil
	}
	body, err := json.Marshal(map[string][]string{"apps": apps})
	if err != nil {
		return 0, err
	}
	exportURL := srcURL + "/handoff/export"
	if quiesce {
		exportURL += "?quiesce=1"
	}
	exp, err := rt.client.Post(exportURL, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("export: %v", err)
	}
	defer exp.Body.Close()
	if exp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(exp.Body, 4096))
		return 0, fmt.Errorf("export: status %d: %s", exp.StatusCode, firstLine(b))
	}
	imp, err := rt.client.Post(dstURL+"/handoff/import", "application/octet-stream", exp.Body)
	if err != nil {
		return 0, fmt.Errorf("import: %v", err)
	}
	defer imp.Body.Close()
	ib, _ := io.ReadAll(io.LimitReader(imp.Body, 1<<20))
	if imp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("import: status %d: %s", imp.StatusCode, firstLine(ib))
	}
	var out struct {
		Inserted int `json:"inserted"`
	}
	if err := json.Unmarshal(ib, &out); err != nil {
		return 0, fmt.Errorf("import: bad reply: %v", err)
	}
	return out.Inserted, nil
}

// release tombstones handed-off traces on their old owner.
func (rt *Router) release(srcURL string, apps []string) error {
	body, err := json.Marshal(map[string][]string{"apps": apps})
	if err != nil {
		return err
	}
	resp, err := rt.client.Post(srcURL+"/handoff/release", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(b))
	}
	return nil
}

// Ring exposes the router's current ring (tests, /cluster).
func (rt *Router) RingSnapshot() *Ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

// SetAckCap overrides the composite-ack table bound (tests).
func (rt *Router) SetAckCap(n int) {
	rt.ackMu.Lock()
	defer rt.ackMu.Unlock()
	if n > 0 {
		rt.ackCap = n
	}
}
