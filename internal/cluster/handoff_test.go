package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"repro/internal/events"
)

// assertClusterServes checks every trace reads back through the router
// with a non-empty graph.
func assertClusterServes(t testing.TB, rt *Router, apps []string) {
	t.Helper()
	for _, app := range apps {
		code, body := rdo(t, rt, http.MethodGet, "/graph?app="+app, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("graph %s: %d %s", app, code, body)
		}
		var g struct {
			Nodes []any `json:"nodes"`
		}
		if err := json.Unmarshal(body, &g); err != nil || len(g.Nodes) == 0 {
			t.Fatalf("graph %s empty: %s", app, body)
		}
	}
}

// TestClusterJoin: a third shard joins a loaded 2-shard cluster. Exactly
// the traces the new ring reassigns move (shipped as sealed segments,
// including some already-demoted cold ones), the old owners release
// them, and every trace keeps serving through the router — including
// writes to moved traces, which now land on the joiner.
func TestClusterJoin(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 24)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)

	// Demote a couple of traces so the handoff exports from the cold
	// tier too, not just the hot path.
	demoted := 0
	for name, sh := range shards {
		held := sh.sys.Store.AppIDs()
		if len(held) > 2 {
			if err := sh.sys.Store.DemoteTraces(held[0], held[1]); err != nil {
				t.Fatalf("demote on %s: %v", name, err)
			}
			demoted += 2
		}
	}
	if demoted == 0 {
		t.Fatal("no traces demoted; test setup broken")
	}

	oldRing := rt.RingSnapshot()
	joiner := startShard(t, "s3")
	resJoin, err := rt.Join(Shard{Name: "s3", URL: joiner.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	newRing := rt.RingSnapshot()
	wantMoved := Moved(oldRing, newRing, apps)
	if resJoin.Moved != len(wantMoved) {
		t.Fatalf("join moved %d traces, ring predicts %d", resJoin.Moved, len(wantMoved))
	}
	if len(resJoin.ReleaseErrors) != 0 {
		t.Fatalf("release errors: %v", resJoin.ReleaseErrors)
	}
	if len(wantMoved) == 0 {
		t.Fatal("ring moved nothing on a 24-trace join; hash placement broken")
	}
	// The joiner holds exactly the moved set.
	got := joiner.sys.Store.AppIDs()
	sort.Strings(got)
	sort.Strings(wantMoved)
	if fmt.Sprint(got) != fmt.Sprint(wantMoved) {
		t.Fatalf("joiner holds %v, want %v", got, wantMoved)
	}
	// The old owners released what they shipped.
	movedSet := map[string]bool{}
	for _, app := range wantMoved {
		movedSet[app] = true
	}
	for name, sh := range shards {
		for _, app := range sh.sys.Store.AppIDs() {
			if movedSet[app] {
				t.Fatalf("shard %s still holds moved trace %s", name, app)
			}
		}
	}
	assertClusterServes(t, rt, apps)
	// No trace is still shedding writes.
	if rt.isMoving(wantMoved[0]) {
		t.Fatal("moving set not cleared after join")
	}
	// A write to a moved trace lands on the joiner.
	target := wantMoved[0]
	before := len(joiner.sys.Store.RowsForApp(target))
	ingestVia(t, rt, []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: target,
		Timestamp: time.Unix(1700000100, 0),
		Payload:   map[string]string{"recordId": "p-joined-" + target, "name": "J", "email": "j@x"}}}, "")
	if after := len(joiner.sys.Store.RowsForApp(target)); after != before+1 {
		t.Fatalf("post-join write: joiner rows %d -> %d, want +1", before, after)
	}
}

// TestShedOutlivesRingSwap pins the cutover ordering: between the tail
// export and the ring swap, a write to a moved trace must still shed.
// This is exactly the window where lifting the shed early would route
// the write via the OLD ring to a source shard that is about to
// tombstone everything it shipped — silently losing an acked write.
func TestShedOutlivesRingSwap(t *testing.T) {
	rt, _ := startCluster(t, "s1", "s2")
	_, res := simEvents(t, 24)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)

	oldRing := rt.RingSnapshot()
	newRing, err := oldRing.Add("s3")
	if err != nil {
		t.Fatal(err)
	}
	moving := Moved(oldRing, newRing, apps)
	if len(moving) == 0 {
		t.Fatal("join would move nothing; widen the key set")
	}
	target := moving[0]
	mk := func(rec string) []events.AppEvent {
		return []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: target,
			Timestamp: time.Unix(1700000300, 0),
			Payload:   map[string]string{"recordId": rec, "name": "W", "email": "w@x"}}}
	}
	hookRan := false
	rt.testHookPreSwap = func() {
		hookRan = true
		code, body := rdo(t, rt, http.MethodPost, "/events", toWire(mk("p-window-"+target)), nil)
		if code != http.StatusServiceUnavailable {
			t.Errorf("write in the tail→swap window answered %d (%s), want 503: the shed was lifted before the ring swap",
				code, body)
		}
	}
	joiner := startShard(t, "s3")
	if _, err := rt.Join(Shard{Name: "s3", URL: joiner.srv.URL}); err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("pre-swap hook never ran")
	}
	// After the join the same write goes through — to the joiner.
	before := len(joiner.sys.Store.RowsForApp(target))
	ingestVia(t, rt, mk("p-after-"+target), "")
	if after := len(joiner.sys.Store.RowsForApp(target)); after != before+1 {
		t.Fatalf("post-join write: joiner rows %d -> %d, want +1", before, after)
	}
}

// TestClusterLeave: a shard drains gracefully; its traces scatter to
// the survivors under the shrunk ring and it ends up empty.
func TestClusterLeave(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2", "s3")
	_, res := simEvents(t, 24)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)

	leaver := shards["s2"]
	held := leaver.sys.Store.AppIDs()
	if len(held) == 0 {
		t.Fatal("leaver holds nothing; pick a different shard")
	}
	resLeave, err := rt.Leave("s2")
	if err != nil {
		t.Fatal(err)
	}
	if resLeave.Moved != len(held) {
		t.Fatalf("leave moved %d, leaver held %d", resLeave.Moved, len(held))
	}
	if len(resLeave.ReleaseErrors) != 0 {
		t.Fatalf("release errors: %v", resLeave.ReleaseErrors)
	}
	if rest := leaver.sys.Store.AppIDs(); len(rest) != 0 {
		t.Fatalf("leaver still holds %v", rest)
	}
	newRing := rt.RingSnapshot()
	if newRing.Index("s2") >= 0 {
		t.Fatal("leaver still on the ring")
	}
	// Every former trace serves from its new owner.
	assertClusterServes(t, rt, apps)
	for _, app := range held {
		owner := newRing.OwnerName(app)
		found := false
		for _, a := range shards[owner].sys.Store.AppIDs() {
			if a == app {
				found = true
			}
		}
		if !found {
			t.Fatalf("moved trace %s not on its new owner %s", app, owner)
		}
	}
}

// TestClusterForceRemove: a dead shard is cut from the ring without
// handoff; its range 404s/503s but the survivors keep serving.
func TestClusterForceRemove(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2", "s3")
	_, res := simEvents(t, 12)
	ingestVia(t, rt, res.Events, "")
	apps := traceIDs(res)
	oldRing := rt.RingSnapshot()

	shards["s3"].srv.Close()
	if err := rt.ForceRemove("s3"); err != nil {
		t.Fatal(err)
	}
	newRing := rt.RingSnapshot()
	if newRing.Index("s3") >= 0 {
		t.Fatal("dead shard still on the ring")
	}
	// Traces that lived on the survivors are still served; the dead
	// shard's traces are gone (their new owners never got the data).
	for _, app := range apps {
		code, _ := rdo(t, rt, http.MethodGet, "/graph?app="+app, nil, nil)
		if oldRing.OwnerName(app) == "s3" {
			if code == http.StatusServiceUnavailable {
				t.Fatalf("dead range must not 503 after removal (got %d for %s): its new owner just has no data", code, app)
			}
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("surviving trace %s: %d", app, code)
		}
	}
	// Ingest into the reassigned range works again (fresh trace state).
	var reassigned string
	for _, app := range apps {
		if oldRing.OwnerName(app) == "s3" {
			reassigned = app
			break
		}
	}
	if reassigned == "" {
		t.Skip("no trace landed on the removed shard")
	}
	ingestVia(t, rt, []events.AppEvent{{Source: "hrdir", Type: "person.observed", AppID: reassigned,
		Timestamp: time.Unix(1700000200, 0),
		Payload:   map[string]string{"recordId": "p-fr-" + reassigned, "name": "R", "email": "r@x"}}}, "")
}

// TestJoinValidation: duplicate names and missing URLs are rejected
// before any data moves.
func TestJoinValidation(t *testing.T) {
	rt, shards := startCluster(t, "s1", "s2")
	if _, err := rt.Join(Shard{Name: "s1", URL: shards["s1"].srv.URL}); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if _, err := rt.Join(Shard{Name: "s9"}); err == nil {
		t.Fatal("join without URL accepted")
	}
	if _, err := rt.Leave("ghost"); err == nil {
		t.Fatal("leave of unknown shard accepted")
	}
	if err := rt.ForceRemove("ghost"); err == nil {
		t.Fatal("force-remove of unknown shard accepted")
	}
}
