package cluster

import "repro/internal/latency"

// Scatter-gather merge layer. The router fans /stats, /segments and
// cross-trace queries to every shard and folds the JSON replies into one
// document a single-node client can't tell apart from provd's own:
//
//   - numeric counters SUM (the default — admitted events, flushes,
//     cold hits, nodes, rows, traces ... are per-shard tallies)
//   - gauges and config high-water marks take MAX (queue depth, max
//     flush, seq, cache capacity ...), and min_seq-style floors take MIN
//   - booleans OR (draining, enabled)
//   - strings keep the first value seen (domain name — identical on
//     every shard by construction)
//   - objects recurse, arrays concatenate
//   - latency summaries (the JSON shape of latency.Summary) merge with
//     count-summed, percentile-maxed semantics — an upper bound, since
//     percentiles are not mergeable from summaries alone. Latencies the
//     router measures itself merge exactly via latency.Digest.Merge.

// gaugeKeys are JSON keys whose values are levels or configuration, not
// per-shard tallies: summing them across shards would fabricate load.
// Both JSON-tagged (camelCase/snake_case) and untagged Go field names
// appear in /stats, so both spellings are listed.
var gaugeKeys = map[string]bool{
	"maxFlush":        true,
	"maxQueuedEvents": true,
	"queueDepth":      true,
	"maxBatch":        true,
	"shards":          true,
	"retryAfterMs":    true,
	"seq":             true,
	"Seq":             true,
	"LastSeq":         true,
	"Workers":         true,
	"cap_bytes":       true,
	"seal_seq":        true,
	"max_seq":         true,
	"bloom_fill":      true,
	"bloom_fpp":       true,
}

// minKeys take the minimum across shards (range floors).
var minKeys = map[string]bool{
	"min_seq": true,
}

// MergeStats folds per-shard decoded /stats documents into one. Inputs
// are not mutated.
func MergeStats(docs []map[string]any) map[string]any {
	out := map[string]any{}
	for _, d := range docs {
		mergeInto(out, d)
	}
	return out
}

func mergeInto(dst, src map[string]any) {
	for k, v := range src {
		cur, ok := dst[k]
		if !ok || cur == nil {
			dst[k] = cloneJSON(v)
			continue
		}
		if v == nil {
			continue
		}
		dst[k] = mergeValue(k, cur, v)
	}
}

// mergeValue folds src value b into accumulated value a (which mergeInto
// already owns — maps/slices under a are clones, safe to mutate).
func mergeValue(key string, a, b any) any {
	switch av := a.(type) {
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return a
		}
		switch {
		case gaugeKeys[key]:
			if bv > av {
				return bv
			}
			return av
		case minKeys[key]:
			if bv < av {
				return bv
			}
			return av
		default:
			return av + bv
		}
	case bool:
		bv, _ := b.(bool)
		return av || bv
	case string:
		return av // first wins; differing strings mean heterogeneous shards
	case map[string]any:
		bm, ok := b.(map[string]any)
		if !ok {
			return a
		}
		if isSummary(av) && isSummary(bm) {
			return mergeSummary(av, bm)
		}
		mergeInto(av, bm)
		return av
	case []any:
		bl, ok := b.([]any)
		if !ok {
			return a
		}
		out := av
		for _, e := range bl {
			out = append(out, cloneJSON(e))
		}
		return out
	}
	return a
}

// cloneJSON deep-copies a decoded-JSON value so merging never aliases a
// shard's reply.
func cloneJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(t))
		for k, e := range t {
			m[k] = cloneJSON(e)
		}
		return m
	case []any:
		l := make([]any, len(t))
		for i, e := range t {
			l[i] = cloneJSON(e)
		}
		return l
	default:
		return v
	}
}

// summaryKeys is the JSON shape of latency.Summary.
var summaryKeys = []string{"count", "p50us", "p99us", "p999us", "maxUs", "meanUs"}

func isSummary(m map[string]any) bool {
	if len(m) != len(summaryKeys) {
		return false
	}
	for _, k := range summaryKeys {
		if _, ok := m[k].(float64); !ok {
			return false
		}
	}
	return true
}

// mergeSummary folds two latency.Summary JSON objects: counts sum, the
// mean is count-weighted, and percentiles/max take the pairwise max — a
// sound upper bound on the true merged percentile.
func mergeSummary(a, b map[string]any) map[string]any {
	ca, cb := a["count"].(float64), b["count"].(float64)
	out := map[string]any{"count": ca + cb}
	for _, k := range []string{"p50us", "p99us", "p999us", "maxUs"} {
		va, vb := a[k].(float64), b[k].(float64)
		if vb > va {
			va = vb
		}
		out[k] = va
	}
	if ca+cb > 0 {
		out["meanUs"] = (a["meanUs"].(float64)*ca + b["meanUs"].(float64)*cb) / (ca + cb)
	} else {
		out["meanUs"] = float64(0)
	}
	return out
}

// MergeDigests folds per-shard latency digests the router records itself
// (admission, proxy round-trip) into one exact digest.
func MergeDigests(ds []*latency.Digest) *latency.Digest {
	out := &latency.Digest{}
	for _, d := range ds {
		if d != nil {
			out.Merge(d)
		}
	}
	return out
}
