package cluster

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/latency"
)

// decode round-trips a literal through JSON so the merge sees exactly
// what the router sees (float64 numbers, map[string]any objects).
func decode(t *testing.T, s string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		t.Fatalf("bad fixture: %v", err)
	}
	return m
}

// TestMergeStatsTable is the ISSUE scatter-gather merge table: counters
// sum, gauges max, bools OR, strings first, objects recurse, arrays
// concatenate, latency summaries merge count-summed/percentile-maxed.
func TestMergeStatsTable(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want string
	}{
		{
			name: "counters sum",
			a:    `{"ingest":{"admittedEvents":10,"flushes":3}}`,
			b:    `{"ingest":{"admittedEvents":5,"flushes":4}}`,
			want: `{"ingest":{"admittedEvents":15,"flushes":7}}`,
		},
		{
			name: "gauges max",
			a:    `{"ingest":{"maxFlush":64,"maxQueuedEvents":100,"queueDepth":4096,"retryAfterMs":250}}`,
			b:    `{"ingest":{"maxFlush":80,"maxQueuedEvents":90,"queueDepth":4096,"retryAfterMs":500}}`,
			want: `{"ingest":{"maxFlush":80,"maxQueuedEvents":100,"queueDepth":4096,"retryAfterMs":500}}`,
		},
		{
			name: "seq is a gauge not a counter",
			a:    `{"seq":120,"store":{"Seq":120}}`,
			b:    `{"seq":95,"store":{"Seq":95}}`,
			want: `{"seq":120,"store":{"Seq":120}}`,
		},
		{
			name: "min_seq floors, max_seq peaks",
			a:    `{"tiering":{"min_seq":10,"max_seq":50}}`,
			b:    `{"tiering":{"min_seq":4,"max_seq":90}}`,
			want: `{"tiering":{"min_seq":4,"max_seq":90}}`,
		},
		{
			name: "bools OR",
			a:    `{"ingest":{"draining":false},"tiering":{"enabled":true}}`,
			b:    `{"ingest":{"draining":true},"tiering":{"enabled":true}}`,
			want: `{"ingest":{"draining":true},"tiering":{"enabled":true}}`,
		},
		{
			name: "strings first, traces sum",
			a:    `{"domain":"hiring","traces":40}`,
			b:    `{"domain":"hiring","traces":25}`,
			want: `{"domain":"hiring","traces":65}`,
		},
		{
			name: "null on one shard (ingest disabled) keeps the other",
			a:    `{"ingest":null,"traces":1}`,
			b:    `{"ingest":{"admittedEvents":7},"traces":2}`,
			want: `{"ingest":{"admittedEvents":7},"traces":3}`,
		},
		{
			name: "arrays concatenate",
			a:    `{"plans":[{"control":"c1"}]}`,
			b:    `{"plans":[{"control":"c2"}]}`,
			want: `{"plans":[{"control":"c1"},{"control":"c2"}]}`,
		},
		{
			name: "latency summary: count sums, percentiles max, mean weighted",
			a:    `{"admit":{"count":100,"p50us":10,"p99us":40,"p999us":60,"maxUs":80,"meanUs":12}}`,
			b:    `{"admit":{"count":300,"p50us":8,"p99us":50,"p999us":55,"maxUs":200,"meanUs":16}}`,
			want: `{"admit":{"count":400,"p50us":10,"p99us":50,"p999us":60,"maxUs":200,"meanUs":15}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeStats([]map[string]any{decode(t, tc.a), decode(t, tc.b)})
			want := decode(t, tc.want)
			if !reflect.DeepEqual(got, want) {
				gj, _ := json.Marshal(got)
				wj, _ := json.Marshal(want)
				t.Errorf("merge mismatch:\n got %s\nwant %s", gj, wj)
			}
		})
	}
}

func TestMergeStatsDoesNotMutateInputs(t *testing.T) {
	a := decode(t, `{"store":{"Nodes":3},"plans":[{"control":"c1"}]}`)
	b := decode(t, `{"store":{"Nodes":4},"plans":[{"control":"c2"}]}`)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	_ = MergeStats([]map[string]any{a, b})
	if aj2, _ := json.Marshal(a); string(aj) != string(aj2) {
		t.Errorf("input a mutated: %s -> %s", aj, aj2)
	}
	if bj2, _ := json.Marshal(b); string(bj) != string(bj2) {
		t.Errorf("input b mutated: %s -> %s", bj, bj2)
	}
}

// TestMergeStatsAssociative: folding three shards must not depend on
// grouping — the router merges replies in arrival order.
func TestMergeStatsAssociative(t *testing.T) {
	docs := []map[string]any{
		decode(t, `{"traces":1,"seq":5,"ingest":{"draining":false}}`),
		decode(t, `{"traces":2,"seq":9,"ingest":{"draining":true}}`),
		decode(t, `{"traces":3,"seq":2,"ingest":{"draining":false}}`),
	}
	all := MergeStats(docs)
	pair := MergeStats([]map[string]any{MergeStats(docs[:2]), docs[2]})
	if !reflect.DeepEqual(all, pair) {
		t.Errorf("merge not associative: %v vs %v", all, pair)
	}
}

func TestMergeDigests(t *testing.T) {
	var a, b latency.Digest
	for i := 1; i <= 100; i++ {
		a.Add(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Add(time.Duration(i) * time.Microsecond)
	}
	m := MergeDigests([]*latency.Digest{&a, &b, nil})
	if m.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count())
	}
	if max := m.Max(); max != 200*time.Microsecond {
		t.Errorf("merged max = %v, want 200us", max)
	}
	// The exact merged median sits at the union's midpoint — this is the
	// property summary-based merging cannot give and digest merging can.
	if p50 := m.Quantile(0.5); p50 < 99*time.Microsecond || p50 > 102*time.Microsecond {
		t.Errorf("merged p50 = %v, want ~100us", p50)
	}
}
