package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("trace-%d", i)
	}
	return keys
}

// TestRingBalance is the ISSUE balance gate: with 128 vnodes the
// max/min owner load ratio over a large uniform key population stays
// within 1.25 for every cluster size the CI exercises.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(200000)
	for _, n := range []int{2, 3, 4, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		r, err := NewRing(names, DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("n=%d: a shard owns zero keys: %v", n, counts)
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d counts=%v max/min=%.3f", n, counts, ratio)
		if ratio > 1.25 {
			t.Errorf("n=%d: balance ratio %.3f > 1.25 (counts %v)", n, ratio, counts)
		}
		// Shares() should agree with observed ownership within a couple
		// of percent — it is what GET /cluster reports.
		shares := r.Shares()
		for i, s := range shares {
			obs := float64(counts[i]) / float64(len(keys))
			if diff := s - obs; diff > 0.02 || diff < -0.02 {
				t.Errorf("n=%d shard %d: share %.4f vs observed %.4f", n, i, s, obs)
			}
		}
	}
}

// TestRingRebalanceMovement checks the consistent-hashing contract that
// join/leave moves only ~K/N keys: no key moves between two surviving
// shards, and the moved fraction stays near the ideal 1/N (join) or
// 1/(N) of the leaver's share (leave).
func TestRingRebalanceMovement(t *testing.T) {
	keys := ringKeys(100000)
	base := []string{"shard-0", "shard-1", "shard-2"}
	r3, err := NewRing(base, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}

	// Join: 3 -> 4 shards. Ideal movement is K/4; allow 1.6x slack for
	// vnode variance.
	r4, err := r3.Add("shard-3")
	if err != nil {
		t.Fatal(err)
	}
	moved := Moved(r3, r4, keys)
	ideal := float64(len(keys)) / 4
	t.Logf("join: moved %d (ideal %.0f)", len(moved), ideal)
	if float64(len(moved)) > 1.6*ideal {
		t.Errorf("join moved %d keys, want <= ~%.0f", len(moved), 1.6*ideal)
	}
	// Every moved key must land on the joiner — anything else is churn
	// between survivors, which consistent hashing must not produce.
	for _, k := range moved {
		if r4.OwnerName(k) != "shard-3" {
			t.Fatalf("join: key %s moved %s -> %s, not to the joiner",
				k, r3.OwnerName(k), r4.OwnerName(k))
		}
	}

	// Leave: 4 -> 3. Only the leaver's keys move.
	r3b, err := r4.Remove("shard-3")
	if err != nil {
		t.Fatal(err)
	}
	movedBack := Moved(r4, r3b, keys)
	for _, k := range movedBack {
		if r4.OwnerName(k) != "shard-3" {
			t.Fatalf("leave: key %s owned by %s moved; only the leaver's keys may move",
				k, r4.OwnerName(k))
		}
	}
	// Remove must restore the original 3-shard assignment exactly.
	for _, k := range keys {
		if r3.OwnerName(k) != r3b.OwnerName(k) {
			t.Fatalf("remove(add(x)) changed owner of %s: %s vs %s",
				k, r3.OwnerName(k), r3b.OwnerName(k))
		}
	}
}

// TestRingOwnerAllocs is the ISSUE hot-path gate: Owner must not
// allocate — the router calls it once per event in every POST /events
// batch.
func TestRingOwnerAllocs(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Owner(keys[i&63])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Ring.Owner allocates: %v allocs/op, want 0", allocs)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate name accepted")
	}
	r, err := NewRing([]string{"x"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != 0 {
		t.Errorf("single-shard ring Owner = %d, want 0", got)
	}
	if _, err := r.Remove("nope"); err == nil {
		t.Error("Remove of unknown shard accepted")
	}
	if r.Index("x") != 0 || r.Index("nope") != -1 {
		t.Error("Index lookup wrong")
	}
}

func TestRingDeterminism(t *testing.T) {
	a, _ := NewRing([]string{"s0", "s1", "s2"}, 64)
	b, _ := NewRing([]string{"s0", "s1", "s2"}, 64)
	for _, k := range ringKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("same config, different owner for %s", k)
		}
	}
}
