package provenance

import "sync/atomic"

// Secondary indexes over the copy-on-write graph.
//
// Each trace shard carries posting lists alongside its record maps:
// class→[]nodeID, type→[]nodeID, and (node, edgeType)→[]edgeID for each
// direction. The lists are sorted node/edge ID slices maintained at
// insert time under the same copy-on-first-write discipline as the rest
// of the shard, so every snapshot observes posting lists exactly
// consistent with the records it holds, at zero extra read-side cost.
// Indexes are never rebuilt: a shard clone copies them, an in-epoch
// insert shifts them in place.

// adjKey addresses one typed adjacency posting list: the edges of one
// type touching one node in one direction.
type adjKey struct {
	node string
	typ  string
}

// IndexStats counts index-backed versus scan-backed lookups since the
// working graph was constructed. Hits and scans are counted per query,
// not per record, so hits/(hits+scans) is the fraction of filtered reads
// the posting lists served.
type IndexStats struct {
	NodeHits  uint64 // Nodes/NodesByType served from a posting list
	NodeScans uint64 // Nodes/NodesByType that walked nodeIDs
	EdgeHits  uint64 // typed Edges/HasEdge/Neighbors served from a posting list
	EdgeScans uint64 // Edges/Neighbors that filtered the full adjacency list
}

// indexCounters is the mutable backing of IndexStats. One instance is
// shared by a working graph and every snapshot derived from it (like the
// record router), so reads through retained snapshots are attributed to
// the store's counters.
type indexCounters struct {
	nodeHits  atomic.Uint64
	nodeScans atomic.Uint64
	edgeHits  atomic.Uint64
	edgeScans atomic.Uint64
}

// IndexStats returns the cumulative index hit/miss counters.
func (g *Graph) IndexStats() IndexStats {
	return IndexStats{
		NodeHits:  g.ix.nodeHits.Load(),
		NodeScans: g.ix.nodeScans.Load(),
		EdgeHits:  g.ix.edgeHits.Load(),
		EdgeScans: g.ix.edgeScans.Load(),
	}
}

// DisableIndexLookups turns off index-backed reads on g and on every
// snapshot subsequently taken from it. Posting lists are still
// maintained, so the switch is purely a read-path ablation: it backs the
// DisableRuleIndexes config knob used to measure what the indexes buy,
// and is not meant for production use.
func (g *Graph) DisableIndexLookups() { g.noIndex = true }

// posting returns the most selective node posting list for the filter:
// the type list when Type is set, else the class list. residual reports
// whether a per-node class check is still needed (both fields set — the
// type list does not imply the class matches). ok is false when the
// filter constrains neither field.
func (sh *traceShard) posting(f NodeFilter) (ids []string, residual bool, ok bool) {
	switch {
	case f.Type != "":
		return sh.byType[f.Type], f.Class != ClassInvalid, true
	case f.Class != ClassInvalid:
		return sh.byClass[f.Class], false, true
	default:
		return nil, false, false
	}
}

// indexedNodes serves a trace-scoped Nodes call from the shard's posting
// lists. ok is false when indexes are disabled or the filter has no
// indexable field, in which case the caller falls back to the scan path.
func (g *Graph) indexedNodes(sh *traceShard, f NodeFilter) (res []*Node, ok bool) {
	if g.noIndex {
		return nil, false
	}
	ids, residual, ok := sh.posting(f)
	if !ok {
		return nil, false
	}
	g.ix.nodeHits.Add(1)
	if len(ids) == 0 {
		return nil, true
	}
	if !residual {
		res = make([]*Node, len(ids))
		for i, id := range ids {
			res[i] = sh.nodes[id]
		}
		return res, true
	}
	for _, id := range ids {
		if n := sh.nodes[id]; n.Class == f.Class {
			res = append(res, n)
		}
	}
	return res, true
}

// NodesByType returns the nodes of one type sorted by ID, scoped to a
// trace when appID is non-empty. It is the binder access path of the
// rule planner: with indexes enabled, a trace-scoped lookup costs one
// allocation and never touches nodes of other types.
func (g *Graph) NodesByType(appID, typ string) []*Node {
	if appID == "" {
		return g.Nodes(NodeFilter{Type: typ})
	}
	sh := g.shard(appID)
	if sh == nil {
		return nil
	}
	if g.noIndex {
		g.ix.nodeScans.Add(1)
		var res []*Node
		for _, id := range sh.nodeIDs {
			if n := sh.nodes[id]; n.Type == typ {
				res = append(res, n)
			}
		}
		return res
	}
	g.ix.nodeHits.Add(1)
	ids := sh.byType[typ]
	if len(ids) == 0 {
		return nil
	}
	res := make([]*Node, len(ids))
	for i, id := range ids {
		res[i] = sh.nodes[id]
	}
	return res
}
