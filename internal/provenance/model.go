package provenance

import (
	"fmt"
	"sort"
)

// Model is the provenance data model developed for a process: the node and
// relation types expected to be produced at runtime, "based on the known
// types of events that the IT systems produce" (Section II). The model is
// the schema against which internal controls run; the execution object
// model (package xom) and business vocabulary (package bom) are generated
// from it.
type Model struct {
	// Name identifies the model, e.g. "hiring".
	Name string

	types     map[string]*TypeDef
	relations map[string]*RelationDef
	order     []string // insertion order of type names, for determinism
	relOrder  []string
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{
		Name:      name,
		types:     make(map[string]*TypeDef),
		relations: make(map[string]*RelationDef),
	}
}

// TypeDef declares a node record type: its class, and the typed fields its
// records carry.
type TypeDef struct {
	// Name is the type name used in Node.Type, e.g. "jobRequisition".
	Name string
	// Class is the node class records of this type belong to.
	Class Class
	// Doc is a one-line description surfaced in generated documentation.
	Doc string
	// Label is the business noun verbalization uses for the concept
	// ("job requisition"). Empty falls back to camel-case splitting of
	// Name. This realizes the paper's future-work item of "adding business
	// semantic into the provenance data model".
	Label string

	fields map[string]*FieldDef
	order  []string
}

// FieldDef declares a typed attribute of a node type.
type FieldDef struct {
	// Name is the attribute key used in Node.Attrs, e.g. "reqID".
	Name string
	// Kind is the attribute's primitive type.
	Kind Kind
	// Doc is a one-line description.
	Doc string
	// Label is the business phrase verbalization uses for the field
	// ("requisition ID"). Empty falls back to camel-case splitting.
	Label string
	// Indexed requests a secondary index on (type, field) in the store;
	// definition binding in the rule engine uses it (design decision D4).
	Indexed bool
}

// RelationDef declares an edge type with its permitted endpoint types.
type RelationDef struct {
	// Name is the relation type used in Edge.Type, e.g. "submitterOf".
	Name string
	// SourceType and TargetType name the node types the relation connects.
	// An empty string permits any type of the corresponding class.
	SourceType string
	TargetType string
	// Doc is a one-line description.
	Doc string
	// Label and InverseLabel are the business phrases for navigating the
	// relation forward (from the source) and backward (from the target).
	// Empty falls back to camel-case splitting.
	Label        string
	InverseLabel string
}

// AddType declares a node type. It fails on duplicates or invalid classes.
func (m *Model) AddType(t *TypeDef) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("provenance: type with empty name")
	}
	if !t.Class.IsNode() {
		return fmt.Errorf("provenance: type %s has non-node class %v", t.Name, t.Class)
	}
	if _, ok := m.types[t.Name]; ok {
		return fmt.Errorf("provenance: duplicate type %s", t.Name)
	}
	if t.fields == nil {
		t.fields = make(map[string]*FieldDef)
	}
	m.types[t.Name] = t
	m.order = append(m.order, t.Name)
	return nil
}

// AddField declares a field on an existing type.
func (m *Model) AddField(typeName string, f *FieldDef) error {
	t, ok := m.types[typeName]
	if !ok {
		return fmt.Errorf("provenance: field %s on unknown type %s", f.Name, typeName)
	}
	return t.addField(f)
}

func (t *TypeDef) addField(f *FieldDef) error {
	if f == nil || f.Name == "" {
		return fmt.Errorf("provenance: field with empty name on type %s", t.Name)
	}
	if f.Kind == KindInvalid {
		return fmt.Errorf("provenance: field %s.%s has invalid kind", t.Name, f.Name)
	}
	if t.fields == nil {
		t.fields = make(map[string]*FieldDef)
	}
	if _, ok := t.fields[f.Name]; ok {
		return fmt.Errorf("provenance: duplicate field %s.%s", t.Name, f.Name)
	}
	t.fields[f.Name] = f
	t.order = append(t.order, f.Name)
	return nil
}

// AddRelation declares a relation type.
func (m *Model) AddRelation(r *RelationDef) error {
	if r == nil || r.Name == "" {
		return fmt.Errorf("provenance: relation with empty name")
	}
	if _, ok := m.relations[r.Name]; ok {
		return fmt.Errorf("provenance: duplicate relation %s", r.Name)
	}
	if r.SourceType != "" {
		if _, ok := m.types[r.SourceType]; !ok {
			return fmt.Errorf("provenance: relation %s has unknown source type %s", r.Name, r.SourceType)
		}
	}
	if r.TargetType != "" {
		if _, ok := m.types[r.TargetType]; !ok {
			return fmt.Errorf("provenance: relation %s has unknown target type %s", r.Name, r.TargetType)
		}
	}
	m.relations[r.Name] = r
	m.relOrder = append(m.relOrder, r.Name)
	return nil
}

// Type returns the declaration of the named type, or nil.
func (m *Model) Type(name string) *TypeDef { return m.types[name] }

// Relation returns the declaration of the named relation, or nil.
func (m *Model) Relation(name string) *RelationDef { return m.relations[name] }

// Types returns all type declarations in insertion order.
func (m *Model) Types() []*TypeDef {
	res := make([]*TypeDef, 0, len(m.order))
	for _, name := range m.order {
		res = append(res, m.types[name])
	}
	return res
}

// Relations returns all relation declarations in insertion order.
func (m *Model) Relations() []*RelationDef {
	res := make([]*RelationDef, 0, len(m.relOrder))
	for _, name := range m.relOrder {
		res = append(res, m.relations[name])
	}
	return res
}

// Field returns the declaration of the named field, or nil.
func (t *TypeDef) Field(name string) *FieldDef {
	if t == nil {
		return nil
	}
	return t.fields[name]
}

// Fields returns all field declarations in insertion order.
func (t *TypeDef) Fields() []*FieldDef {
	res := make([]*FieldDef, 0, len(t.order))
	for _, name := range t.order {
		res = append(res, t.fields[name])
	}
	return res
}

// CheckNode validates a node against the model: its type must be declared
// with the node's class, and every attribute must match a declared field's
// kind. Missing attributes are permitted — partially managed processes do
// not guarantee complete capture.
func (m *Model) CheckNode(n *Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	t, ok := m.types[n.Type]
	if !ok {
		return fmt.Errorf("provenance: node %s has undeclared type %s", n.ID, n.Type)
	}
	if t.Class != n.Class {
		return fmt.Errorf("provenance: node %s: type %s is class %v, record says %v",
			n.ID, n.Type, t.Class, n.Class)
	}
	for name, v := range n.Attrs {
		f := t.fields[name]
		if f == nil {
			return fmt.Errorf("provenance: node %s has undeclared attribute %s.%s", n.ID, n.Type, name)
		}
		if v.IsZero() {
			continue
		}
		if v.Kind() != f.Kind && !(v.isNumeric() && (f.Kind == KindInt || f.Kind == KindFloat)) {
			return fmt.Errorf("provenance: node %s attribute %s.%s is %v, declared %v",
				n.ID, n.Type, name, v.Kind(), f.Kind)
		}
	}
	return nil
}

// CheckEdge validates an edge against the model and, when the endpoint
// nodes are supplied, against the relation's declared endpoint types.
func (m *Model) CheckEdge(e *Edge, src, dst *Node) error {
	if err := e.Validate(); err != nil {
		return err
	}
	r, ok := m.relations[e.Type]
	if !ok {
		return fmt.Errorf("provenance: edge %s has undeclared relation type %s", e.ID, e.Type)
	}
	if src != nil && r.SourceType != "" && src.Type != r.SourceType {
		return fmt.Errorf("provenance: edge %s: relation %s requires source type %s, got %s",
			e.ID, r.Name, r.SourceType, src.Type)
	}
	if dst != nil && r.TargetType != "" && dst.Type != r.TargetType {
		return fmt.Errorf("provenance: edge %s: relation %s requires target type %s, got %s",
			e.ID, r.Name, r.TargetType, dst.Type)
	}
	return nil
}

// IndexedFields lists every (type, field) pair declared Indexed, sorted,
// so the store can build its secondary indexes.
func (m *Model) IndexedFields() [][2]string {
	var res [][2]string
	for _, tn := range m.order {
		t := m.types[tn]
		for _, fn := range t.order {
			if t.fields[fn].Indexed {
				res = append(res, [2]string{tn, fn})
			}
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i][0] != res[j][0] {
			return res[i][0] < res[j][0]
		}
		return res[i][1] < res[j][1]
	})
	return res
}

// RelationsFrom returns relations whose declared source type is the given
// type (or unconstrained), in declaration order. The BOM verbalizer uses
// this to generate relation navigation phrases.
func (m *Model) RelationsFrom(typeName string) []*RelationDef {
	var res []*RelationDef
	for _, rn := range m.relOrder {
		r := m.relations[rn]
		if r.SourceType == "" || r.SourceType == typeName {
			res = append(res, r)
		}
	}
	return res
}
