package provenance

import (
	"testing"
)

// TestGraphSnapshotImmutable pins the MVCC contract: a snapshot is a
// point-in-time view that later writes to the working graph can never
// disturb, and the snapshot itself rejects mutation.
func TestGraphSnapshotImmutable(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")

	snap := g.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}
	if snap.NumNodes() != 7 || snap.NumEdges() != 6 {
		t.Fatalf("snapshot census = %d/%d, want 7/6", snap.NumNodes(), snap.NumEdges())
	}

	// Mutate the working graph: a second trace, an update and a new edge
	// in the snapshotted trace.
	hiringTrace(t, g, "App02")
	upd := g.Node("App01-req").Clone()
	upd.SetAttr("dept", String("dept501"))
	if err := g.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("App01-e7", "App01", "nextTask", "App01-approve", "App01-cand")); err != nil {
		t.Fatal(err)
	}

	// The snapshot still shows the old world.
	if snap.NumNodes() != 7 || snap.NumEdges() != 6 {
		t.Fatalf("snapshot census moved to %d/%d", snap.NumNodes(), snap.NumEdges())
	}
	if snap.Node("App02-req") != nil {
		t.Error("snapshot sees a trace created after it was taken")
	}
	if !snap.Node("App01-req").Attr("dept").IsZero() {
		t.Error("snapshot sees an attribute update applied after it was taken")
	}
	if snap.Edge("App01-e7") != nil || snap.HasEdge("App01-approve", "nextTask", "App01-cand") {
		t.Error("snapshot sees an edge added after it was taken")
	}
	if v := snap.TraceVersion("App01"); v != 13 {
		t.Errorf("snapshot trace version = %d, want 13", v)
	}
	if v := g.TraceVersion("App01"); v != 15 {
		t.Errorf("working trace version = %d, want 15", v)
	}

	// The working graph shows the new world.
	if g.Node("App02-req") == nil || !g.HasEdge("App01-approve", "nextTask", "App01-cand") {
		t.Error("working graph lost writes")
	}

	// Snapshots reject mutation.
	if err := snap.AddNode(node("x", "App01", ClassData, "jobRequisition", nil)); err != ErrFrozen {
		t.Errorf("AddNode on snapshot = %v, want ErrFrozen", err)
	}
	if err := snap.UpdateNode(upd); err != ErrFrozen {
		t.Errorf("UpdateNode on snapshot = %v, want ErrFrozen", err)
	}
	if err := snap.AddEdge(edge("y", "App01", "actor", "App01-hm", "App01-submit")); err != ErrFrozen {
		t.Errorf("AddEdge on snapshot = %v, want ErrFrozen", err)
	}
}

// TestGraphSnapshotStructuralSharing verifies that publishing snapshots
// costs copies only for the traces actually touched afterwards.
func TestGraphSnapshotStructuralSharing(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	hiringTrace(t, g, "App02")
	if cs := g.CopyStats(); cs.Shards != 0 {
		t.Fatalf("copies before any snapshot: %+v", cs)
	}

	_ = g.Snapshot()
	// Touch only App01: exactly one shard (7 nodes, 6 edges) is cloned,
	// and only once despite two writes in the same epoch.
	upd := g.Node("App01-req").Clone()
	upd.SetAttr("dept", String("dept1"))
	if err := g.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}
	upd2 := g.Node("App01-cand").Clone()
	upd2.SetAttr("count", Int(3))
	if err := g.UpdateNode(upd2); err != nil {
		t.Fatal(err)
	}
	cs := g.CopyStats()
	if cs.Shards != 1 || cs.Nodes != 7 || cs.Edges != 6 {
		t.Fatalf("copy stats after one touched trace = %+v, want {1 7 6}", cs)
	}

	// A second snapshot epoch and another touch of the same trace clones
	// it once more; App02 has still never been copied.
	_ = g.Snapshot()
	upd3 := g.Node("App01-req").Clone()
	upd3.SetAttr("dept", String("dept2"))
	if err := g.UpdateNode(upd3); err != nil {
		t.Fatal(err)
	}
	cs = g.CopyStats()
	if cs.Shards != 2 || cs.Nodes != 14 || cs.Edges != 12 {
		t.Fatalf("copy stats after second epoch = %+v, want {2 14 12}", cs)
	}
}

// TestGraphSnapshotOfSnapshot pins that Snapshot on a frozen graph is the
// identity, and Trace on a frozen graph shares rather than copies.
func TestGraphSnapshotOfSnapshot(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	snap := g.Snapshot()
	if snap.Snapshot() != snap {
		t.Error("Snapshot of a snapshot is not the identity")
	}
	tr := snap.Trace("App01")
	if !tr.Frozen() {
		t.Error("Trace subgraph not frozen")
	}
	if tr.NumNodes() != 7 || tr.NumEdges() != 6 {
		t.Fatalf("trace census = %d/%d", tr.NumNodes(), tr.NumEdges())
	}
	// Foreign IDs resolve to nothing even though the router is shared.
	hiringTrace(t, g, "App02")
	if tr.Node("App02-req") != nil {
		t.Error("trace subgraph leaks another trace's node")
	}
}

// TestGraphReadAllocs is the allocation regression gate for the hot
// checking primitives on a hiring trace: HasEdge must not allocate at
// all, and Edges must only allocate its result slice. Re-sorting per call
// (the pre-D7 behavior) would show up here immediately.
func TestGraphReadAllocs(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	snap := g.Snapshot()

	if n := testing.AllocsPerRun(200, func() {
		if !snap.HasEdge("App01-hm", "submitterOf", "App01-req") {
			t.Fatal("edge missing")
		}
	}); n != 0 {
		t.Errorf("HasEdge allocates %.1f per call, want 0", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		if len(snap.Edges("App01-submit", Both, "")) != 3 {
			t.Fatal("wrong edge count")
		}
	}); n > 1 {
		t.Errorf("Edges allocates %.1f per call, want <= 1", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		if len(snap.Nodes(NodeFilter{AppID: "App01", Class: ClassData})) != 3 {
			t.Fatal("wrong node count")
		}
	}); n > 3 {
		t.Errorf("Nodes allocates %.1f per call, want <= 3", n)
	}
}
