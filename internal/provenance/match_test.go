package provenance

import (
	"fmt"
	"math/rand"
	"testing"
)

// controlPattern is the paper's example control as a subgraph pattern:
// a new-position job requisition with an approval and a submitter.
func controlPattern(t testing.TB) *Pattern {
	t.Helper()
	p := NewPattern()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.AddNode(&PatternNode{Var: "req", Class: ClassData, Type: "jobRequisition",
		Where: func(n *Node) bool { return n.Attr("positionType").Str() == "new" }}))
	must(p.AddNode(&PatternNode{Var: "apprv", Class: ClassData, Type: "approvalStatus",
		Where: func(n *Node) bool { return n.Attr("approved").BoolVal() }}))
	must(p.AddNode(&PatternNode{Var: "hm", Class: ClassResource, Type: "person"}))
	must(p.AddEdge(&PatternEdge{From: "apprv", Type: "approvalOf", To: "req"}))
	must(p.AddEdge(&PatternEdge{From: "hm", Type: "submitterOf", To: "req"}))
	return p
}

func TestPatternMatchesCompliantTrace(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	p := controlPattern(t)

	matches := p.FindMatches(g, "App01", 0)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	b := matches[0]
	if b["req"].ID != "App01-req" || b["apprv"].ID != "App01-apprv" || b["hm"].ID != "App01-hm" {
		t.Fatalf("binding = %v", b)
	}
	if !p.Matches(g, "App01") {
		t.Error("Matches returned false")
	}
}

func TestPatternRejectsViolatingTrace(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	// Remove the approval edge's effect by building a second trace without
	// an approval node at all.
	if err := g.AddNode(node("App02-req", "App02", ClassData, "jobRequisition",
		map[string]Value{"positionType": String("new")})); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(node("App02-hm", "App02", ClassResource, "person", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("App02-e1", "App02", "submitterOf", "App02-hm", "App02-req")); err != nil {
		t.Fatal(err)
	}
	p := controlPattern(t)
	if p.Matches(g, "App02") {
		t.Error("pattern matched a trace with no approval")
	}
	// The compliant trace still matches; traces are isolated by appID.
	if !p.Matches(g, "App01") {
		t.Error("compliant trace stopped matching")
	}
}

func TestPatternWherePredicate(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	// Flip the requisition to an existing position: the control pattern
	// requires positionType == "new" so it must no longer match.
	req := g.Node("App01-req").Clone()
	req.SetAttr("positionType", String("existing"))
	if err := g.UpdateNode(req); err != nil {
		t.Fatal(err)
	}
	if controlPattern(t).Matches(g, "App01") {
		t.Error("pattern matched despite failing Where predicate")
	}
}

func TestPatternInjective(t *testing.T) {
	// Two pattern vars of the same type must bind distinct nodes.
	g := NewGraph()
	if err := g.AddNode(node("a", "A", ClassData, "doc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(node("b", "A", ClassData, "doc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("e", "A", "follows", "a", "b")); err != nil {
		t.Fatal(err)
	}
	p := NewPattern()
	if err := p.AddNode(&PatternNode{Var: "x", Type: "doc"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(&PatternNode{Var: "y", Type: "doc"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(&PatternEdge{From: "x", Type: "follows", To: "y"}); err != nil {
		t.Fatal(err)
	}
	matches := p.FindMatches(g, "A", 0)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want exactly 1 (injective)", len(matches))
	}
	if matches[0]["x"].ID != "a" || matches[0]["y"].ID != "b" {
		t.Fatalf("binding = %v", matches[0])
	}
}

func TestPatternLimit(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		if err := g.AddNode(node(fmt.Sprintf("n%d", i), "A", ClassData, "doc", nil)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPattern()
	if err := p.AddNode(&PatternNode{Var: "x", Type: "doc"}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.FindMatches(g, "A", 3)); got != 3 {
		t.Fatalf("limited matches = %d, want 3", got)
	}
	if got := len(p.FindMatches(g, "A", 0)); got != 10 {
		t.Fatalf("unlimited matches = %d, want 10", got)
	}
}

func TestPatternValidation(t *testing.T) {
	p := NewPattern()
	if err := p.AddNode(&PatternNode{}); err == nil {
		t.Error("empty var accepted")
	}
	if err := p.AddNode(&PatternNode{Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(&PatternNode{Var: "x"}); err == nil {
		t.Error("duplicate var accepted")
	}
	if err := p.AddEdge(&PatternEdge{From: "x", Type: "t", To: "ghost"}); err == nil {
		t.Error("edge to unknown var accepted")
	}
	if err := p.AddEdge(&PatternEdge{From: "ghost", Type: "t", To: "x"}); err == nil {
		t.Error("edge from unknown var accepted")
	}
	if err := p.AddEdge(&PatternEdge{From: "x", To: "x"}); err == nil {
		t.Error("edge with empty type accepted")
	}
	if got := len(NewPattern().FindMatches(NewGraph(), "", 0)); got != 0 {
		t.Errorf("empty pattern matched %d times", got)
	}
}

// Property-style randomized test: every binding returned by FindMatches
// actually satisfies all node predicates and edge constraints, on random
// graphs.
func TestPatternMatchesAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := NewGraph()
		nNodes := 5 + rng.Intn(15)
		types := []string{"doc", "task", "person"}
		classes := []Class{ClassData, ClassTask, ClassResource}
		for i := 0; i < nNodes; i++ {
			k := rng.Intn(3)
			if err := g.AddNode(node(fmt.Sprintf("n%d", i), "A", classes[k], types[k], nil)); err != nil {
				t.Fatal(err)
			}
		}
		edgeTypes := []string{"reads", "writes", "actor"}
		nEdges := rng.Intn(2 * nNodes)
		eid := 0
		for i := 0; i < nEdges; i++ {
			a, b := rng.Intn(nNodes), rng.Intn(nNodes)
			if a == b {
				continue
			}
			e := edge(fmt.Sprintf("e%d", eid), "A", edgeTypes[rng.Intn(3)],
				fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
			eid++
			if err := g.AddEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		p := NewPattern()
		if err := p.AddNode(&PatternNode{Var: "a", Type: types[rng.Intn(3)]}); err != nil {
			t.Fatal(err)
		}
		if err := p.AddNode(&PatternNode{Var: "b"}); err != nil {
			t.Fatal(err)
		}
		et := edgeTypes[rng.Intn(3)]
		if err := p.AddEdge(&PatternEdge{From: "a", Type: et, To: "b"}); err != nil {
			t.Fatal(err)
		}
		for _, m := range p.FindMatches(g, "A", 0) {
			if m["a"].Type != p.nodes["a"].Type {
				t.Fatalf("trial %d: node predicate violated: %v", trial, m["a"])
			}
			if !g.HasEdge(m["a"].ID, et, m["b"].ID) {
				t.Fatalf("trial %d: edge constraint violated: %v -%s-> %v",
					trial, m["a"].ID, et, m["b"].ID)
			}
			if m["a"].ID == m["b"].ID {
				t.Fatalf("trial %d: injectivity violated", trial)
			}
		}
	}
}

func TestPatternString(t *testing.T) {
	p := controlPattern(t)
	s := p.String()
	for _, want := range []string{"req:data/jobRequisition", "apprv", "submitterOf"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func BenchmarkPatternMatchHiring(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 100; i++ {
		hiringTrace(b, g, fmt.Sprintf("App%03d", i))
	}
	p := controlPattern(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Matches(g, "App050") {
			b.Fatal("no match")
		}
	}
}
