package provenance

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	ts := time.Date(2011, 4, 11, 9, 30, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		kind Kind
		text string
	}{
		{String("REQ001"), KindString, "REQ001"},
		{Int(42), KindInt, "42"},
		{Float(3.5), KindFloat, "3.5"},
		{Bool(true), KindBool, "true"},
		{Time(ts), KindTime, "2011-04-11T09:30:00Z"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.IsZero() {
			t.Errorf("%v reported zero", c.v)
		}
		if got := c.v.Text(); got != c.text {
			t.Errorf("Text() = %q, want %q", got, c.text)
		}
	}
	var zero Value
	if !zero.IsZero() || zero.Kind() != KindInvalid || zero.Text() != "" {
		t.Errorf("zero value misbehaves: %v", zero)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{
		String(""), String("hello world"), String("<xml & stuff>"),
		Int(0), Int(-7), Int(math.MaxInt64),
		Float(0), Float(-2.25), Float(1e100),
		Bool(true), Bool(false),
		Time(time.Date(1999, 12, 31, 23, 59, 59, 123456789, time.UTC)),
	}
	for _, v := range vals {
		got, err := ParseValue(v.Kind(), v.Text())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind(), v.Text(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	cases := []struct {
		kind Kind
		text string
	}{
		{KindInt, "abc"},
		{KindFloat, "1.2.3"},
		{KindBool, "maybe"},
		{KindTime, "yesterday"},
		{KindInvalid, "x"},
	}
	for _, c := range cases {
		if _, err := ParseValue(c.kind, c.text); err == nil {
			t.Errorf("ParseValue(%v, %q) succeeded, want error", c.kind, c.text)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindString, KindInt, KindFloat, KindBool, KindTime} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("widget"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
	if _, err := ParseKind("invalid"); err == nil {
		t.Error("ParseKind accepted 'invalid'")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) != Float(3)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) == Float(3.5)")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("Int(1) == Bool(true): kinds must not coerce")
	}
	if String("true").Equal(Bool(true)) {
		t.Error("string/bool coerced")
	}
}

func TestValueCompare(t *testing.T) {
	lt := [][2]Value{
		{Int(1), Int(2)},
		{Int(1), Float(1.5)},
		{Float(-1), Int(0)},
		{String("a"), String("b")},
		{Bool(false), Bool(true)},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0))},
	}
	for _, p := range lt {
		c, err := p[0].Compare(p[1])
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d, %v; want -1", p[0], p[1], c, err)
		}
		c, err = p[1].Compare(p[0])
		if err != nil || c != 1 {
			t.Errorf("Compare(%v,%v) = %d, %v; want 1", p[1], p[0], c, err)
		}
	}
	if c, err := Int(5).Compare(Int(5)); err != nil || c != 0 {
		t.Errorf("Compare equal ints = %d, %v", c, err)
	}
	if _, err := String("x").Compare(Int(1)); err == nil {
		t.Error("string/int compare should fail")
	}
	if _, err := Bool(true).Compare(Time(time.Now())); err == nil {
		t.Error("bool/time compare should fail")
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	// "1" as a string must not collide with the integer 1, but Int(1) and
	// Float(1) must share a key because Equal treats them as equal.
	if String("1").Key() == Int(1).Key() {
		t.Error("string/int key collision")
	}
	if Int(1).Key() != Float(1).Key() {
		t.Error("int/float keys disagree for equal values")
	}
	if String("true").Key() == Bool(true).Key() {
		t.Error("string/bool key collision")
	}
}

// Property: for any string, round-tripping through Text/ParseValue is the
// identity, and Key equality matches Equal.
func TestValueStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		v := String(s)
		got, err := ParseValue(KindString, v.Text())
		return err == nil && got.Equal(v) && got.Key() == v.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer round trip and ordering consistency with Go's <.
func TestValueIntProperties(t *testing.T) {
	roundTrip := func(i int64) bool {
		v := Int(i)
		got, err := ParseValue(KindInt, v.Text())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
	ordered := func(a, b int32) bool {
		// int32 keeps values inside float64's exact range, matching the
		// numeric comparison semantics.
		c, err := Int(int64(a)).Compare(Int(int64(b)))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(ordered, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal implies identical Keys (index lookups agree with Equal).
func TestValueKeyConsistencyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Float(float64(b))
		return va.Equal(vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
