package provenance

import (
	"fmt"
	"sort"
)

// The paper states that "a business control point is a sub graph of the
// provenance graph": the control is satisfied iff certain vertices and
// edges exist. Pattern and Match implement that check directly: a Pattern
// declares pattern vertices with predicates and pattern edges between
// them; FindMatches enumerates the embeddings of the pattern in a trace.

// Pattern is a small graph pattern to embed into a provenance graph.
type Pattern struct {
	vars  []string
	nodes map[string]*PatternNode
	edges []*PatternEdge
}

// PatternNode constrains one pattern vertex.
type PatternNode struct {
	// Var names the vertex within the pattern ("req", "approval").
	Var string
	// Class, Type restrict the candidate nodes; zero values match any.
	Class Class
	Type  string
	// Where is an optional extra predicate on the candidate node.
	Where func(*Node) bool
}

// PatternEdge requires an edge of the given type between two pattern
// vertices.
type PatternEdge struct {
	From string // pattern var of the edge source
	Type string
	To   string // pattern var of the edge target
}

// NewPattern returns an empty pattern.
func NewPattern() *Pattern {
	return &Pattern{nodes: make(map[string]*PatternNode)}
}

// AddNode adds a pattern vertex. Duplicate vars are rejected.
func (p *Pattern) AddNode(pn *PatternNode) error {
	if pn == nil || pn.Var == "" {
		return fmt.Errorf("provenance: pattern node with empty var")
	}
	if _, ok := p.nodes[pn.Var]; ok {
		return fmt.Errorf("provenance: duplicate pattern var %s", pn.Var)
	}
	p.nodes[pn.Var] = pn
	p.vars = append(p.vars, pn.Var)
	return nil
}

// AddEdge adds a pattern edge. Both endpoints must be declared.
func (p *Pattern) AddEdge(pe *PatternEdge) error {
	if pe == nil || pe.Type == "" {
		return fmt.Errorf("provenance: pattern edge with empty type")
	}
	if _, ok := p.nodes[pe.From]; !ok {
		return fmt.Errorf("provenance: pattern edge from unknown var %s", pe.From)
	}
	if _, ok := p.nodes[pe.To]; !ok {
		return fmt.Errorf("provenance: pattern edge to unknown var %s", pe.To)
	}
	p.edges = append(p.edges, pe)
	return nil
}

// Binding maps pattern vars to the matched graph nodes.
type Binding map[string]*Node

// clone copies the binding so backtracking does not alias results.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// FindMatches enumerates embeddings of the pattern in the graph, up to
// limit results (limit <= 0 means unbounded). Matching is injective: two
// pattern vars never bind the same graph node. The search assigns vars in
// declaration order and prunes with the edge constraints incident to
// already-bound vars, which keeps the common control-point patterns
// (3-6 vertices) cheap.
func (p *Pattern) FindMatches(g *Graph, appID string, limit int) []Binding {
	if len(p.vars) == 0 {
		return nil
	}
	var results []Binding
	used := make(map[string]bool)
	binding := make(Binding)

	var assign func(i int) bool // returns true when the limit is reached
	assign = func(i int) bool {
		if i == len(p.vars) {
			results = append(results, binding.clone())
			return limit > 0 && len(results) >= limit
		}
		v := p.vars[i]
		pn := p.nodes[v]
		for _, cand := range p.candidates(g, appID, pn, binding) {
			if used[cand.ID] {
				continue
			}
			binding[v] = cand
			if p.edgesSatisfied(g, binding) {
				used[cand.ID] = true
				done := assign(i + 1)
				used[cand.ID] = false
				if done {
					delete(binding, v)
					return true
				}
			}
			delete(binding, v)
		}
		return false
	}
	assign(0)
	return results
}

// Matches reports whether at least one embedding exists.
func (p *Pattern) Matches(g *Graph, appID string) bool {
	return len(p.FindMatches(g, appID, 1)) > 0
}

// candidates lists graph nodes that can bind the pattern vertex. When an
// edge constraint connects the vertex to an already-bound var the search
// space is the bound node's neighborhood instead of a class scan.
func (p *Pattern) candidates(g *Graph, appID string, pn *PatternNode, bound Binding) []*Node {
	ok := func(n *Node) bool {
		if n == nil {
			return false
		}
		if pn.Class != ClassInvalid && n.Class != pn.Class {
			return false
		}
		if pn.Type != "" && n.Type != pn.Type {
			return false
		}
		if appID != "" && n.AppID != appID {
			return false
		}
		return pn.Where == nil || pn.Where(n)
	}
	// Prefer neighborhood enumeration via a constraint edge to a bound var.
	for _, pe := range p.edges {
		if pe.From == pn.Var {
			if other, isBound := bound[pe.To]; isBound {
				var res []*Node
				for _, n := range g.Neighbors(other.ID, In, pe.Type) {
					if ok(n) {
						res = append(res, n)
					}
				}
				return res
			}
		}
		if pe.To == pn.Var {
			if other, isBound := bound[pe.From]; isBound {
				var res []*Node
				for _, n := range g.Neighbors(other.ID, Out, pe.Type) {
					if ok(n) {
						res = append(res, n)
					}
				}
				return res
			}
		}
	}
	var res []*Node
	for _, n := range g.Nodes(NodeFilter{Class: pn.Class, Type: pn.Type, AppID: appID}) {
		if ok(n) {
			res = append(res, n)
		}
	}
	return res
}

// edgesSatisfied checks every pattern edge whose endpoints are both bound.
func (p *Pattern) edgesSatisfied(g *Graph, bound Binding) bool {
	for _, pe := range p.edges {
		from, okF := bound[pe.From]
		to, okT := bound[pe.To]
		if okF && okT && !g.HasEdge(from.ID, pe.Type, to.ID) {
			return false
		}
	}
	return true
}

// Vars returns the declared pattern vars in declaration order.
func (p *Pattern) Vars() []string { return append([]string(nil), p.vars...) }

// NodeVar returns the declaration of one pattern var, or nil.
func (p *Pattern) NodeVar(v string) *PatternNode { return p.nodes[v] }

// String renders the pattern for diagnostics: vars sorted, then edges.
func (p *Pattern) String() string {
	vars := append([]string(nil), p.vars...)
	sort.Strings(vars)
	s := "pattern{"
	for i, v := range vars {
		if i > 0 {
			s += ", "
		}
		pn := p.nodes[v]
		s += fmt.Sprintf("%s:%s/%s", v, pn.Class, pn.Type)
	}
	for _, pe := range p.edges {
		s += fmt.Sprintf("; %s -%s-> %s", pe.From, pe.Type, pe.To)
	}
	return s + "}"
}
